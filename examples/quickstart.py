"""Quickstart: encrypted arithmetic with the CKKS API.

Encrypts two complex vectors, computes ``v0 + v1``, ``v0 * v1`` and a slot
rotation homomorphically, and verifies the decrypted results -- first with
the classic Hybrid key switch, then with the paper's KLSS method.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    KlssConfig,
    small_test_parameters,
)


def main():
    # Reduced-degree parameters: N = 64 keeps this demo instant while
    # exercising exactly the same code paths as N = 2**16.
    params = small_test_parameters(
        degree=64,
        max_level=5,
        wordsize=25,
        dnum=3,
        klss=KlssConfig(wordsize_t=28, alpha_tilde=2),
    )
    print(f"parameters: {params}")

    gen = KeyGenerator(params, seed=2025)
    secret = gen.secret_key()
    public = gen.public_key(secret)
    relin = gen.relinearisation_key(secret)
    rotations = gen.rotation_keys(secret, [1, 4])

    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=public, seed=1)
    decryptor = Decryptor(params, secret)

    rng = np.random.default_rng(0)
    v0 = rng.normal(size=params.slots) + 1j * rng.normal(size=params.slots)
    v1 = rng.normal(size=params.slots) + 1j * rng.normal(size=params.slots)
    ct0 = encryptor.encrypt(encoder.encode(v0))
    ct1 = encryptor.encrypt(encoder.encode(v1))
    print(f"encrypted two vectors of {params.slots} complex slots")

    for method in ("hybrid", "klss"):
        ev = Evaluator(params, relin_key=relin, galois_keys=rotations, method=method)
        total = ev.add(ct0, ct1)
        product = ev.rescale(ev.multiply(ct0, ct1))
        rotated = ev.rotate(ct0, 1)

        dec = lambda ct: encoder.decode(decryptor.decrypt(ct))
        err_add = np.abs(dec(total) - (v0 + v1)).max()
        err_mul = np.abs(dec(product) - v0 * v1).max()
        err_rot = np.abs(dec(rotated) - np.roll(v0, -1)).max()
        print(
            f"[{method:6s}] max error: add={err_add:.2e}  "
            f"mul={err_mul:.2e}  rotate={err_rot:.2e}"
        )
        assert max(err_add, err_mul, err_rot) < 1e-2

    print("OK: homomorphic add / multiply / rotate verified on both back-ends")


if __name__ == "__main__":
    main()
