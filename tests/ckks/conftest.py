"""Shared fixtures: one small functional CKKS context for the whole suite."""

import pytest

from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    KlssConfig,
    small_test_parameters,
)

DEGREE = 32
MAX_LEVEL = 5


@pytest.fixture(scope="session")
def params():
    return small_test_parameters(
        degree=DEGREE,
        max_level=MAX_LEVEL,
        wordsize=25,
        dnum=3,
        klss=KlssConfig(wordsize_t=28, alpha_tilde=2),
    )


@pytest.fixture(scope="session")
def keyset(params):
    gen = KeyGenerator(params, seed=42)
    secret = gen.secret_key()
    return {
        "secret": secret,
        "public": gen.public_key(secret),
        "relin": gen.relinearisation_key(secret),
        "galois": gen.rotation_keys(secret, [1, 2, 3, 4, 8]),
    }


@pytest.fixture(scope="session")
def encoder(params):
    return CkksEncoder(params)


@pytest.fixture(scope="session")
def encryptor(params, keyset):
    return Encryptor(params, public_key=keyset["public"], seed=7)


@pytest.fixture(scope="session")
def decryptor(params, keyset):
    return Decryptor(params, keyset["secret"])


@pytest.fixture(scope="session")
def evaluator(params, keyset):
    return Evaluator(
        params,
        relin_key=keyset["relin"],
        galois_keys=keyset["galois"],
        method="hybrid",
    )


@pytest.fixture(scope="session")
def klss_evaluator(params, keyset):
    return Evaluator(
        params,
        relin_key=keyset["relin"],
        galois_keys=keyset["galois"],
        method="klss",
    )


# The shared ``rng`` fixture (seeded from ``--seed``) lives in the suite
# root conftest; every test here picks it up from there.


def random_slots(rng, count, scale=1.0):
    return scale * (rng.normal(size=count) + 1j * rng.normal(size=count))
