"""HELR: homomorphic logistic-regression training (Table 5, column 2).

The paper's HELR workload (Han et al.) trains a binary classifier over
14x14 MNIST digits (196 features) with 1024-image mini-batches; one
training iteration is reported.

Two faces:

* :class:`HelrApp` -- the *operation schedule* of one iteration for the
  performance model (dominated by the rotation-based inner-product sums,
  the degree-3 sigmoid approximation, and the amortised bootstrapping).
* :class:`EncryptedLogisticRegression` -- a *functional* encrypted training
  step at reduced ring degree using the real CKKS API, proving the pipeline
  end-to-end (gradient computed under encryption decrypts to the plaintext
  gradient).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Optional

import numpy as np

from ..ckks.ciphertext import Ciphertext
from ..ckks.encoder import CkksEncoder
from ..ckks.evaluator import Evaluator
from ..ckks.params import ParameterSet
from ..core.neo_context import NeoContext
from .bootstrap_app import PackBootstrap, Schedule


class HelrApp:
    """Schedule builder for one HELR training iteration.

    Args:
        features: model dimension (14*14 = 196 in the paper).
        batch_images: mini-batch size (1024 in the paper).
        bootstrap_every: iterations between bootstrappings; the amortised
            share of a bootstrap is folded into each iteration's schedule.
    """

    name = "helr"

    def __init__(
        self,
        features: int = 196,
        batch_images: int = 1024,
        bootstrap_every: int = 3,
        single_scaling: bool = False,
    ):
        self.features = features
        self.batch_images = batch_images
        self.bootstrap_every = bootstrap_every
        self._bootstrap = PackBootstrap(use_double_rescale=not single_scaling)

    def schedule(self, params: ParameterSet) -> Schedule:
        table: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        level = params.max_level
        slots = params.degree // 2
        # Packed ciphertexts holding the feature matrix.
        cts = max(1, math.ceil(self.features * self.batch_images / slots))
        log_f = max(1, math.ceil(math.log2(self.features)))

        # Forward pass: X*w via PMULT + rotate-and-sum over features.
        table[level]["pmult"] += cts
        table[level]["rescale"] += cts
        table[level]["hrotate"] += cts * log_f
        table[level]["hadd"] += cts * log_f
        level -= 1

        # Sigmoid: degree-3 least-squares approximation -> 2 HMULT levels.
        for _ in range(2):
            table[level]["hmult"] += cts
            table[level]["rescale"] += cts
            table[level]["padd"] += cts
            level -= 1

        # Gradient: (sigma - y) backpropagated -- PMULT by X^T, rotate-sum
        # over the batch dimension, then the weight update.
        log_b = max(1, math.ceil(math.log2(self.batch_images)))
        table[level]["pmult"] += cts
        table[level]["rescale"] += cts
        table[level]["hrotate"] += cts * log_b
        table[level]["hadd"] += cts * log_b
        level -= 1
        table[level]["pmult"] += 1  # learning-rate scaling
        table[level]["rescale"] += 1
        table[level]["hadd"] += 1  # weight update

        # Amortised bootstrapping share.
        boot = self._bootstrap.schedule(params)
        for lvl, ops in boot.items():
            for op, count in ops.items():
                share = max(1, round(count / self.bootstrap_every))
                table[lvl][op] += share
        return {lvl: dict(ops) for lvl, ops in table.items()}

    def time_s(self, ctx: NeoContext) -> float:
        """Per-ciphertext-batch time of one training iteration."""
        return ctx.schedule_time_s(self.schedule(ctx.params)) / ctx.batch


class EncryptedLogisticRegression:
    """A functional encrypted gradient step at reduced parameters.

    Packs one feature column per slot block, computes
    ``sigma3(X w) - y`` and the gradient under encryption, and exposes a
    plaintext reference for verification.  ``sigma3`` is the standard HELR
    cubic sigmoid approximation ``0.5 + 0.15x - 0.0015x**3`` (coefficients
    folded to keep the example's multiplicative depth at 3).
    """

    SIG_C0, SIG_C1, SIG_C3 = 0.5, 0.15, -0.0015

    def __init__(
        self,
        encoder: CkksEncoder,
        evaluator: Evaluator,
        learning_rate: float = 1.0,
    ):
        self.encoder = encoder
        self.evaluator = evaluator
        self.learning_rate = learning_rate

    def sigmoid_plain(self, x: np.ndarray) -> np.ndarray:
        return self.SIG_C0 + self.SIG_C1 * x + self.SIG_C3 * x**3

    def predict(self, ct_score: Ciphertext) -> Ciphertext:
        """Apply the cubic sigmoid to an encrypted score vector."""
        ev = self.evaluator
        enc = self.encoder
        # x^2 (level -1)
        x_sq = ev.rescale(ev.square(ct_score))
        # c3 * x^2 (plain mult keeps depth low)
        c3 = enc.encode_constant(self.SIG_C3, level=x_sq.level)
        c3x2 = ev.rescale(ev.multiply_plain(x_sq, c3))
        # c1 + c3 x^2
        c1 = enc.encode_constant(self.SIG_C1, level=c3x2.level, scale=c3x2.scale)
        inner = ev.add_plain(c3x2, c1)
        # x * (c1 + c3 x^2)  (level -1)
        x_low = ev.mod_switch_to_level(ct_score, inner.level)
        poly = ev.rescale(ev.multiply(x_low, inner))
        # + c0
        c0 = enc.encode_constant(self.SIG_C0, level=poly.level, scale=poly.scale)
        return ev.add_plain(poly, c0)

    def gradient_step(
        self,
        ct_score: Ciphertext,
        labels: np.ndarray,
    ) -> Ciphertext:
        """Encrypted ``lr * (sigma(score) - y)`` residual (per slot)."""
        ev = self.evaluator
        enc = self.encoder
        probs = self.predict(ct_score)
        y = enc.encode(labels, level=probs.level, scale=probs.scale)
        residual = ev.sub_plain(probs, y)
        lr = enc.encode_constant(self.learning_rate, level=residual.level)
        return ev.rescale(ev.multiply_plain(residual, lr))

    def gradient_step_plain(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.learning_rate * (self.sigmoid_plain(scores) - labels)
