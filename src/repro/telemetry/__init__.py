"""Unified telemetry: metrics registry, span tracing, FHE health meters,
benchmark history.

The always-on observability layer the serving / fleet / autotuning
roadmap items report through:

* :mod:`repro.telemetry.registry` -- labelled counters, gauges and
  fixed-bucket histograms with JSON-snapshot and Prometheus-text
  exporters; near-zero cost while disabled.
* :mod:`repro.telemetry.tracing` -- request-scoped span traces (simulated
  *and* wall clock) exported as Chrome-trace JSON and JSONL.
* :mod:`repro.telemetry.stats` -- the one :class:`CacheStats` type every
  cache shares, plus the process-wide cache directory.
* :mod:`repro.telemetry.fhe` -- noise-budget / level / scale-drift meters
  over the CKKS evaluator and analytic serving schedules.
* :mod:`repro.telemetry.bench_history` -- ``BENCH_<name>.json`` recorder
  and the regression comparator CI gates on.

``fhe`` (which reaches into :mod:`repro.ckks`) loads lazily so that ckks
modules can import the stdlib-only telemetry layers without a cycle.
"""

from __future__ import annotations

from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_telemetry,
    enable_telemetry,
    global_registry,
    telemetry_enabled,
)
from .stats import (
    CacheStats,
    all_cache_sizes,
    all_cache_stats,
    cache_stats,
    register_cache,
    registered_caches,
)
from .tracing import (
    Span,
    SpanNode,
    Tracer,
    activate_tracer,
    active_tracer,
    deactivate_tracer,
    span,
)

_LAZY = {
    "FheMeter": "fhe",
    "FheWarning": "fhe",
    "TrajectoryPoint": "fhe",
    "ModeledNoisePoint": "fhe",
    "modeled_noise_trajectory": "fhe",
    "BenchRecord": "bench_history",
    "Regression": "bench_history",
    "compare_to_last": "bench_history",
    "format_regressions": "bench_history",
    "load_history": "bench_history",
    "record_result": "bench_history",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)


__all__ = [
    "CacheStats",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanNode",
    "Tracer",
    "activate_tracer",
    "active_tracer",
    "all_cache_sizes",
    "all_cache_stats",
    "cache_stats",
    "deactivate_tracer",
    "disable_telemetry",
    "enable_telemetry",
    "global_registry",
    "register_cache",
    "registered_caches",
    "span",
    "telemetry_enabled",
    # lazy (repro.telemetry.fhe / bench_history)
    "FheMeter",
    "FheWarning",
    "TrajectoryPoint",
    "ModeledNoisePoint",
    "modeled_noise_trajectory",
    "BenchRecord",
    "Regression",
    "compare_to_last",
    "format_regressions",
    "load_history",
    "record_result",
]
