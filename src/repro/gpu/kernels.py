"""Analytic kernel cost model (roofline + launch overhead).

Every Neo / baseline kernel reports a :class:`KernelCost`: how many FLOPs it
places on each compute component, how many bytes it moves through global
memory, and how many kernel launches it needs.  Time on a device follows a
roofline: ``launches * launch_us + max(compute_time, memory_time)``, with
the compute side serialised across components *within* one kernel (streams
overlap components across kernels -- see :mod:`repro.gpu.trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .device import DeviceSpec
from .memory_model import TrafficProfile, extra_launches, hier_memory_time_s
from .fragments import (
    FP64_FRAGMENT,
    FragmentShape,
    best_int8_fragment,
    fragment_ops,
)
from .tensorcore import plan_fp64_split, plan_int8_split

#: FP64-equivalent instruction cost of one modular multiply-accumulate on
#: CUDA cores: wide integer mul.lo/mul.hi pairs plus Barrett/Montgomery
#: reduction come to roughly a dozen issue slots per 36-60-bit MAC.
CUDA_MODMUL_FLOPS = 12.0

#: FP64-equivalent cost of one element-wise split/merge/reorder step.
ELEMENTWISE_FLOPS = 2.0

#: Effective cap on redundant global-memory re-reads.  The paper's traffic
#: analysis (Figs. 2/15) counts every logical re-read; in the *time* model
#: the L2 cache absorbs part of that redundancy, so the DRAM amplification
#: of a poor-reuse kernel saturates around this factor.
CACHE_REREAD_CAP = 8.0

#: Bytes of one stored polynomial coefficient (64-bit words for WordSize > 32).
def word_bytes(wordsize: int) -> int:
    """Storage bytes per coefficient for a given WordSize."""
    if wordsize <= 0:
        raise ValueError("wordsize must be positive")
    return 4 if wordsize <= 32 else 8


@dataclass(frozen=True)
class KernelCost:
    """Resource usage of one GPU kernel (or a fused group of kernels)."""

    name: str
    cuda_flops: float = 0.0
    tcu_fp64_flops: float = 0.0
    tcu_int8_ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    #: Kernel launches.  Fractional values model launch overhead amortised
    #: over fractional repetitions (``scaled``); a true no-op carries 0.
    launches: float = 1
    #: Optional reuse profile for the hierarchical memory model.  ``None``
    #: means a streaming kernel (no redundant traffic beyond the recorded
    #: bytes).  Ignored entirely by devices with ``memory_model="flat"``,
    #: so the default pricing is bit-identical to the pre-hierarchy model.
    traffic: Optional[TrafficProfile] = None

    # -- timing ----------------------------------------------------------------

    def compute_time_s(self, device: DeviceSpec) -> float:
        """Serialised compute time over all components, seconds."""
        time = 0.0
        if self.cuda_flops:
            time += self.cuda_flops / device.cuda_fp64_flops
        if self.tcu_fp64_flops:
            if device.tcu_fp64_flops == 0:
                raise ValueError(f"{device.name} has no FP64 tensor cores")
            time += self.tcu_fp64_flops / device.tcu_fp64_flops
        if self.tcu_int8_ops:
            if device.tcu_int8_ops == 0:
                raise ValueError(f"{device.name} has no INT8 tensor cores")
            time += self.tcu_int8_ops / device.tcu_int8_ops
        return time

    def memory_time_s(self, device: DeviceSpec) -> float:
        """Global-memory transfer time, seconds.

        Devices with ``memory_model="hier"`` split the traffic across the
        L2/HBM tiers from the kernel's :class:`TrafficProfile`; flat
        devices (the default) price the recorded bytes at HBM bandwidth
        exactly as before.
        """
        if device.memory_model == "hier":
            return hier_memory_time_s(
                self.bytes_read + self.bytes_written, self.traffic, device
            )
        return (self.bytes_read + self.bytes_written) / device.memory_bytes_per_s

    def effective_launches(self, device: DeviceSpec) -> float:
        """Launches including tiled-execution launches under ``hier``."""
        if device.memory_model == "hier":
            return self.launches + extra_launches(self.traffic)
        return self.launches

    def time_s(self, device: DeviceSpec) -> float:
        """Roofline execution time on `device`, seconds."""
        if device.memory_model == "hier":
            overhead = self.effective_launches(device) * device.kernel_launch_us * 1e-6
        else:
            overhead = self.launches * device.kernel_launch_us * 1e-6
        return overhead + max(self.compute_time_s(device), self.memory_time_s(device))

    def time_us(self, device: DeviceSpec) -> float:
        return self.time_s(device) * 1e6

    # -- algebra -----------------------------------------------------------------

    def scaled(self, factor: float, name: Optional[str] = None) -> "KernelCost":
        """The cost of running this kernel `factor` times.

        Launches scale linearly (no rounding, no floor): a zero-launch
        placeholder stays launch-free, and ``scaled(a).scaled(b)`` equals
        ``scaled(a * b)`` exactly.
        """
        return KernelCost(
            name=name or self.name,
            cuda_flops=self.cuda_flops * factor,
            tcu_fp64_flops=self.tcu_fp64_flops * factor,
            tcu_int8_ops=self.tcu_int8_ops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            launches=self.launches * factor,
            traffic=self.traffic.scaled(factor) if self.traffic else None,
        )

    def merged(self, other: "KernelCost", name: Optional[str] = None) -> "KernelCost":
        """Back-to-back execution of two kernels (launches add)."""
        if self.traffic is not None:
            traffic = self.traffic.merged(other.traffic)
        else:
            traffic = other.traffic
        return KernelCost(
            name=name or f"{self.name}+{other.name}",
            cuda_flops=self.cuda_flops + other.cuda_flops,
            tcu_fp64_flops=self.tcu_fp64_flops + other.tcu_fp64_flops,
            tcu_int8_ops=self.tcu_int8_ops + other.tcu_int8_ops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            launches=self.launches + other.launches,
            traffic=traffic,
        )

    def fused_with(self, other: "KernelCost", saved_bytes: float, name: Optional[str] = None) -> "KernelCost":
        """Kernel fusion (Section 4.6): one launch, intermediates stay in
        shared memory so `saved_bytes` of global traffic disappear."""
        merged = self.merged(other, name=name)
        saved = min(saved_bytes, merged.bytes_read + merged.bytes_written)
        read_saved = min(saved / 2, merged.bytes_read)
        write_saved = min(saved - read_saved, merged.bytes_written)
        return replace(
            merged,
            name=name or f"fused({self.name},{other.name})",
            bytes_read=merged.bytes_read - read_saved,
            bytes_written=merged.bytes_written - write_saved,
            launches=1,
        )


def zero_cost(name: str) -> KernelCost:
    """A named kernel with no resource usage (placeholder for no-ops)."""
    return KernelCost(name=name, launches=0)


# ---------------------------------------------------------------------------
# GEMM cost builders
# ---------------------------------------------------------------------------


def gemm_cost_cuda(
    name: str, m: int, n: int, k: int, wordsize: int, include_io: bool = True
) -> KernelCost:
    """Modular GEMM executed on CUDA cores (one modmul-add per MAC)."""
    wb = word_bytes(wordsize)
    return KernelCost(
        name=name,
        cuda_flops=m * n * k * CUDA_MODMUL_FLOPS,
        bytes_read=(m * k + k * n) * wb if include_io else 0.0,
        bytes_written=m * n * wb if include_io else 0.0,
    )


def gemm_cost_tcu_fp64(
    name: str, m: int, n: int, k: int, wordsize: int, include_io: bool = True
) -> KernelCost:
    """Modular GEMM on FP64 tensor cores via bit-sliced plane products.

    Includes the CUDA-core split/merge work (Step 1 / postprocessing of
    Fig. 11) and the padded-fragment waste of the 8x8x4 shape.
    """
    plan = plan_fp64_split(wordsize, wordsize, k)
    frags = fragment_ops(m, n, k, FP64_FRAGMENT)
    tcu_flops = frags * FP64_FRAGMENT.flops * plan.products
    split_elems = plan.a_planes * m * k + plan.b_planes * k * n
    merge_elems = plan.products * m * n + m * n  # weighted adds + reduction
    wb = word_bytes(wordsize)
    return KernelCost(
        name=name,
        cuda_flops=(split_elems + merge_elems) * ELEMENTWISE_FLOPS,
        tcu_fp64_flops=tcu_flops,
        bytes_read=(m * k + k * n) * wb if include_io else 0.0,
        bytes_written=m * n * wb if include_io else 0.0,
    )


def gemm_cost_tcu_int8(
    name: str,
    m: int,
    n: int,
    k: int,
    wordsize: int,
    shape: Optional[FragmentShape] = None,
    include_io: bool = True,
) -> KernelCost:
    """Modular GEMM on INT8 tensor cores (TensorFHE's Booth-split scheme)."""
    plan = plan_int8_split(wordsize, wordsize)
    if shape is None:
        shape = best_int8_fragment(m, n, k)
    frags = fragment_ops(m, n, k, shape)
    int8_ops = frags * shape.flops * plan.products
    split_elems = plan.a_planes * m * k + plan.b_planes * k * n
    merge_elems = plan.products * m * n + m * n
    wb = word_bytes(wordsize)
    return KernelCost(
        name=name,
        cuda_flops=(split_elems + merge_elems) * ELEMENTWISE_FLOPS,
        tcu_int8_ops=int8_ops,
        bytes_read=(m * k + k * n) * wb if include_io else 0.0,
        bytes_written=m * n * wb if include_io else 0.0,
    )


def elementwise_cost(
    name: str,
    elements: float,
    wordsize: int,
    flops_per_element: float = CUDA_MODMUL_FLOPS,
    reads_per_element: float = 2.0,
    writes_per_element: float = 1.0,
) -> KernelCost:
    """An element-wise CUDA-core kernel (ModMUL / ModADD / AUTO / reorder)."""
    wb = word_bytes(wordsize)
    return KernelCost(
        name=name,
        cuda_flops=elements * flops_per_element,
        bytes_read=elements * reads_per_element * wb,
        bytes_written=elements * writes_per_element * wb,
    )
