"""Tests for RNS ring polynomials and the AUTO kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.math import modarith
from repro.math.polynomial import (
    RnsPolynomial,
    automorphism,
    negacyclic_multiply,
    negacyclic_multiply_schoolbook,
)
from repro.math.primes import ntt_primes
from repro.math.rns import RnsBasis

DEGREE = 32
BASIS = RnsBasis(ntt_primes(30, DEGREE, 3))


def random_poly(seed=0, bound=2**40):
    rng = np.random.default_rng(seed)
    coeffs = rng.integers(-bound, bound, size=DEGREE).astype(object)
    return RnsPolynomial.from_int_coeffs(coeffs, DEGREE, BASIS), coeffs


def test_from_int_roundtrip():
    poly, coeffs = random_poly(1)
    assert (poly.to_int_coeffs() == coeffs).all()


def test_zero():
    z = RnsPolynomial.zero(DEGREE, BASIS)
    assert (z.to_int_coeffs() == 0).all()


def test_add_sub():
    a, ca = random_poly(2)
    b, cb = random_poly(3)
    assert (a.add(b).to_int_coeffs() == ca + cb).all()
    assert (a.sub(b).to_int_coeffs() == ca - cb).all()
    assert (a.negate().to_int_coeffs() == -ca).all()


def test_multiply_matches_schoolbook():
    a, _ = random_poly(4, bound=2**20)
    b, _ = random_poly(5, bound=2**20)
    product = a.multiply(b).from_ntt()
    for limb, q in zip(product.limbs, BASIS.moduli):
        ref = negacyclic_multiply_schoolbook(
            a.limbs[BASIS.moduli.index(q)], b.limbs[BASIS.moduli.index(q)], DEGREE, q
        )
        assert (limb.astype(object) == ref.astype(object)).all()


def test_ntt_roundtrip_preserves_value():
    a, ca = random_poly(6)
    assert (a.to_ntt().from_ntt().to_int_coeffs() == ca).all()


def test_multiply_scalar():
    a, ca = random_poly(7, bound=2**20)
    scaled = a.multiply_scalar(12345)
    assert (scaled.to_int_coeffs() == ca * 12345).all()


def test_multiply_scalar_per_limb_validates():
    a, _ = random_poly(8)
    with pytest.raises(ValueError):
        a.multiply_scalar_per_limb([1])


def test_keep_limbs():
    a, _ = random_poly(9)
    dropped = a.keep_limbs(2)
    assert len(dropped.basis) == 2
    assert dropped.basis.moduli == BASIS.moduli[:2]
    with pytest.raises(ValueError):
        a.keep_limbs(0)


def test_domain_mismatch_rejected():
    a, _ = random_poly(10)
    b, _ = random_poly(11)
    with pytest.raises(ValueError):
        a.add(b.to_ntt())


def test_basis_mismatch_rejected():
    a, _ = random_poly(12)
    other = RnsPolynomial.zero(DEGREE, RnsBasis(BASIS.moduli[:2]))
    with pytest.raises(ValueError):
        a.add(other)


def test_negacyclic_multiply_function():
    q = BASIS.moduli[0]
    rng = np.random.default_rng(13)
    a = rng.integers(0, q, size=DEGREE)
    b = rng.integers(0, q, size=DEGREE)
    fast = negacyclic_multiply(a, b, DEGREE, q)
    slow = negacyclic_multiply_schoolbook(a, b, DEGREE, q)
    assert (fast.astype(object) == slow.astype(object)).all()


class TestAutomorphism:
    def test_rejects_even_power(self):
        with pytest.raises(ValueError):
            automorphism(np.zeros(DEGREE), 2, DEGREE, BASIS.moduli[0])

    def test_identity(self):
        a, ca = random_poly(14)
        assert (a.automorphism(1).to_int_coeffs() == ca).all()

    def test_composition(self):
        """tau_k1 . tau_k2 == tau_(k1*k2 mod 2N)."""
        a, _ = random_poly(15)
        k1, k2 = 5, 9
        lhs = a.automorphism(k1).automorphism(k2)
        rhs = a.automorphism(k1 * k2 % (2 * DEGREE))
        assert (lhs.to_int_coeffs() == rhs.to_int_coeffs()).all()

    def test_is_ring_homomorphism(self):
        """tau(a*b) == tau(a) * tau(b)."""
        a, _ = random_poly(16, bound=2**15)
        b, _ = random_poly(17, bound=2**15)
        k = 5
        lhs = a.multiply(b).automorphism(k)
        rhs = a.automorphism(k).multiply(b.automorphism(k)).from_ntt()
        assert (lhs.to_int_coeffs() == rhs.to_int_coeffs()).all()

    def test_explicit_small_case(self):
        """X -> X^3 on N=4: X^2 -> X^6 = -X^2 mod X^4+1."""
        q = ntt_primes(20, 4, 1)[0]
        coeffs = np.array([0, 0, 1, 0], dtype=object)
        out = automorphism(coeffs, 3, 4, q)
        assert list(out.astype(object)) == [0, 0, q - 1, 0]


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=15))
def test_property_monomial_multiplication(shift):
    """Multiplying by X^shift rotates coefficients negacyclically."""
    a, ca = random_poly(18, bound=2**20)
    monomial = np.zeros(DEGREE, dtype=object)
    monomial[shift] = 1
    x_k = RnsPolynomial.from_int_coeffs(monomial, DEGREE, BASIS)
    product = a.multiply(x_k).to_int_coeffs()
    expected = np.concatenate([-ca[DEGREE - shift :], ca[: DEGREE - shift]]) if shift else ca
    assert (product == expected).all()
