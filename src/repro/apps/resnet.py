"""ResNet-20/32/56 FHE inference (Table 5, columns 3-5).

The paper runs the CKKS ResNet construction of Lee et al. (multiplexed
parallel convolutions) on one 32x32x3 CIFAR-10 image.  A ResNet of depth
``6n + 2`` has ``6n`` residual convolution layers plus the stem and the
FC head; every ReLU is a high-degree polynomial approximation that burns
enough levels to require a bootstrapping per activation.

The per-layer operation counts below follow the multiplexed-convolution
structure: a 3x3 convolution over ``c`` packed channels costs ~9 plaintext
multiplications and ~(9 + 2*log2(c)) rotations, the ReLU approximation is
a depth-~10 composition of three polynomials (~15 non-scalar
multiplications), and each activation is followed by a bootstrap.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict

from ..ckks.params import ParameterSet
from ..core.neo_context import NeoContext
from .bootstrap_app import PackBootstrap, Schedule

#: depth -> n with depth = 6n + 2.
SUPPORTED_DEPTHS = {20: 3, 32: 5, 56: 9}


class ResNetApp:
    """Schedule builder for one ResNet-`depth` CKKS inference."""

    def __init__(self, depth: int = 20, single_scaling: bool = False):
        if depth not in SUPPORTED_DEPTHS:
            raise ValueError(
                f"depth must be one of {sorted(SUPPORTED_DEPTHS)}, got {depth}"
            )
        self.depth = depth
        self.name = f"resnet{depth}"
        self._bootstrap = PackBootstrap(use_double_rescale=not single_scaling)

    @property
    def conv_layers(self) -> int:
        """Convolution layers: stem + 6n residual convolutions."""
        return 1 + 6 * SUPPORTED_DEPTHS[self.depth]

    def schedule(self, params: ParameterSet) -> Schedule:
        table: Dict[int, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        top = params.max_level
        channels = 16  # CIFAR stage-1 channel count; stages widen 16->32->64

        boot = self._bootstrap.schedule(params)
        for layer in range(self.conv_layers):
            stage = min(2, layer * 3 // self.conv_layers)
            c = channels << stage
            log_c = max(1, math.ceil(math.log2(c)))
            conv_level = max(3, top - 2)
            # Multiplexed 3x3 convolution.
            table[conv_level]["pmult"] += 9
            table[conv_level]["hrotate"] += 9 + 2 * log_c
            table[conv_level]["hadd"] += 9 + 2 * log_c
            table[conv_level]["rescale"] += 1
            # BatchNorm folds into the conv; residual add.
            table[conv_level]["hadd"] += 1
            # ReLU: composite polynomial approximation (~15 HMULTs).
            relu_level = max(3, top - 4)
            table[relu_level]["hmult"] += 15
            table[relu_level]["rescale"] += 15
            # One bootstrap per activation.
            for lvl, ops in boot.items():
                for op, count in ops.items():
                    table[lvl][op] += count
        # Average-pool + FC head.
        table[max(3, top - 4)]["hrotate"] += 6
        table[max(3, top - 4)]["hadd"] += 6
        table[max(3, top - 4)]["pmult"] += 10
        return {lvl: dict(ops) for lvl, ops in table.items()}

    def time_s(self, ctx: NeoContext) -> float:
        """Per-ciphertext-batch time of one inference."""
        return ctx.schedule_time_s(self.schedule(ctx.params)) / ctx.batch

    def bootstrap_count(self) -> int:
        return self.conv_layers
