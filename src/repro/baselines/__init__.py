"""Comparator systems: TensorFHE, HEonGPU and the CPU reference."""

from .cpu import CPU_DEVICE, CPU_CONFIG, CpuModel
from .heongpu import HeonGpuModel
from .tensorfhe import TensorFheModel

#: CLI/profiler registry: system name -> (context factory, default set).
#: Every factory accepts ``(params, batch=None)`` and returns a NeoContext
#: subclass pinned to that system's configuration; ``neo`` itself lives in
#: :mod:`repro.core` and is added by the CLI to avoid a circular import.
BASELINE_MODELS = {
    "tensorfhe": (TensorFheModel, "A"),
    "heongpu": (HeonGpuModel, "E"),
    "cpu": (CpuModel, "H"),
}

__all__ = [
    "BASELINE_MODELS",
    "CPU_CONFIG",
    "CPU_DEVICE",
    "CpuModel",
    "HeonGpuModel",
    "TensorFheModel",
]
