"""Serving requests and per-request completion records.

A :class:`Request` is one user job: an application (PackBootstrap / HELR /
ResNet-20/32/56), how many ciphertexts it carries (its *size* -- requests
arrive pre-packed), when it arrived on the simulated clock, and the latency
SLO it was admitted under.  The server turns each request into a
:class:`RequestRecord` once its dynamic batch finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..apps import APPLICATIONS

#: Default per-application latency SLOs, simulated seconds.  FHE service
#: times on the modelled A100 are tens of seconds per dynamic batch
#: (Table 5), so SLOs sit a few batch-services out: enough room for the
#: batching window plus one queued batch ahead of you.
DEFAULT_SLO_S: Dict[str, float] = {
    "packbootstrap": 240.0,
    "helr": 300.0,
    "resnet20": 900.0,
    "resnet32": 1500.0,
    "resnet56": 2400.0,
}


def default_slo_s(app: str) -> float:
    """The default latency SLO for `app` (falls back to the slowest tier)."""
    return DEFAULT_SLO_S.get(app, max(DEFAULT_SLO_S.values()))


#: Service-tier names -> admission priority.  Higher priorities are
#: admitted first and shed last; the overload controller sheds ``batch``
#: traffic under pressure while ``premium`` requests may evict queued
#: lower-priority work instead of being rejected.
TIER_PRIORITIES: Dict[str, int] = {"batch": 0, "standard": 1, "premium": 2}

#: Priority -> tier name (priorities above the table map to ``premium``).
_TIER_NAMES = {prio: name for name, prio in TIER_PRIORITIES.items()}


def tier_priority(tier: str) -> int:
    """The admission priority of a named service tier."""
    try:
        return TIER_PRIORITIES[tier.lower()]
    except KeyError:
        known = ", ".join(sorted(TIER_PRIORITIES))
        raise ValueError(
            f"unknown service tier {tier!r}; choose from {known}"
        ) from None


def tier_name(priority: int) -> str:
    """The tier name a priority reports under (clamps above the table)."""
    if priority >= max(TIER_PRIORITIES.values()):
        return "premium"
    return _TIER_NAMES.get(priority, "batch")


@dataclass(frozen=True)
class Request:
    """One FHE job submitted to the server."""

    rid: int
    app: str
    size: int = 1
    arrival_s: float = 0.0
    slo_s: float = 0.0
    #: Submitting tenant, for per-tenant admission quotas.
    tenant: str = "default"
    #: Admission priority (see :data:`TIER_PRIORITIES`); higher wins.
    priority: int = 1

    def __post_init__(self):
        app = self.app.lower()
        if app not in APPLICATIONS:
            known = ", ".join(sorted(set(APPLICATIONS) - {"bootstrap"}))
            raise ValueError(f"unknown application {self.app!r}; choose from {known}")
        object.__setattr__(self, "app", app)
        if self.size < 1:
            raise ValueError(f"request size must be >= 1, got {self.size}")
        if self.arrival_s < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.arrival_s}")
        if self.slo_s <= 0:
            object.__setattr__(self, "slo_s", default_slo_s(app))
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")

    @property
    def tier(self) -> str:
        """The service-tier name this request's priority falls under."""
        return tier_name(self.priority)

    @property
    def deadline_s(self) -> float:
        """The absolute SLO deadline on the simulated clock."""
        return self.arrival_s + self.slo_s

    @property
    def trace_id(self) -> str:
        """The request's trace id (``repro trace req-<rid>`` finds it)."""
        return f"req-{self.rid}"


@dataclass(frozen=True)
class RequestRecord:
    """A served request: where and when its dynamic batch ran."""

    request: Request
    batch_id: int
    lane: int
    #: Executed BatchSize of the dynamic batch this request rode in.
    batch_size: int
    #: When the batch was formed (left the admission queue).
    dispatch_s: float
    start_s: float
    finish_s: float

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency (what the SLO is against)."""
        return self.finish_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Time spent in the admission queue before the batch started."""
        return self.start_s - self.request.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def slo_met(self) -> bool:
        return self.latency_s <= self.request.slo_s
