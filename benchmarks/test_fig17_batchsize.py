"""Fig. 17: per-ciphertext time vs BatchSize (8 .. 128) on three apps.

Larger batches raise GPU utilisation, so per-batch-element time decreases
monotonically; 128 is the default (bounded by the A100's 40 GiB memory).
"""

from repro.analysis.paper_data import FIG17_BATCH_SIZES
from repro.analysis.reporting import format_table
from repro.apps import HelrApp, PackBootstrap, ResNetApp
from repro.core import NEO_CONFIG, NeoContext
from repro.gpu.kernels import word_bytes

APPS = (PackBootstrap(), HelrApp(), ResNetApp(20))


def _build_table():
    table = {}
    for batch in FIG17_BATCH_SIZES:
        ctx = NeoContext("C", config=NEO_CONFIG, batch=batch)
        table[batch] = {app.name: app.time_s(ctx) for app in APPS}
    return table


def test_fig17_batchsize(benchmark):
    table = benchmark(_build_table)
    reference = table[128]
    rows = []
    for batch, times in table.items():
        rows.append(
            [batch]
            + [f"{times[app.name] / reference[app.name]:.2f}" for app in APPS]
        )
    print()
    print(
        format_table(
            ["BatchSize"] + [app.name for app in APPS],
            rows,
            title="Fig. 17: per-ciphertext time normalised to BatchSize = 128",
        )
    )
    # --- Shape assertions ----------------------------------------------------
    for app in APPS:
        series = [table[b][app.name] for b in FIG17_BATCH_SIZES]
        # Per-batch-element time decreases monotonically with BatchSize.
        for small, large in zip(series, series[1:]):
            assert large <= small * 1.001, app.name
        # The total win from batching 8 -> 128 is meaningful.
        assert series[0] / series[-1] > 1.2, app.name


def test_fig17_memory_bound():
    """BatchSize is capped by device memory (the paper's reason for 128)."""
    ctx = NeoContext("C", config=NEO_CONFIG, batch=128)
    params = ctx.params
    limbs = params.max_level + 1 + params.alpha
    ct_bytes = 2 * limbs * params.degree * word_bytes(params.wordsize)
    # 128 batched ciphertexts plus working set fit in 40 GiB; 1024 would not
    # leave room for the evk working set.
    assert 128 * ct_bytes * 4 < ctx.device.memory_gib * 2**30
    assert 2048 * ct_bytes * 4 > ctx.device.memory_gib * 2**30
