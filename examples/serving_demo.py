"""Dynamic-batching serving demo: continuous batching vs serial admission.

Replays one seeded mixed HELR + PackBootstrap arrival trace through three
server configurations on the analytic A100 model -- serial batch-1
admission, FIFO continuous batching, and SLO-aware size-bucketed
continuous batching -- and prints each serving report side by side.  The
throughput gap is the Fig. 17 occupancy effect turned into requests per
second.

Run:  python examples/serving_demo.py
"""

from repro.serving import Server, parse_workload_spec, synthesize_arrivals

WORKLOAD = "smoke"  # 12x helr @ 1/s + 8x packbootstrap @ 0.5/s
SEED = 0

CONFIGS = [
    (
        "serial batch-1 admission (the no-batching baseline)",
        dict(policy="fifo", max_batch=1, max_wait_s=0.0, lanes=1),
    ),
    (
        "FIFO continuous batching, 2 lanes",
        dict(policy="fifo", max_batch=16, max_wait_s=20.0, lanes=2),
    ),
    (
        "size-bucketed EDF-friendly batching, 2 lanes",
        dict(policy="bucketed", max_batch=16, max_wait_s=20.0, lanes=2),
    ),
]


def main():
    phases = parse_workload_spec(WORKLOAD)
    requests = synthesize_arrivals(phases, seed=SEED)
    print(
        f"workload {WORKLOAD!r} (seed {SEED}): "
        + ", ".join(f"{p.count}x {p.app} @ {p.rate_hz:g}/s" for p in phases)
    )
    baseline_rps = None
    for title, kwargs in CONFIGS:
        server = Server(params="C", **kwargs)
        server.submit_many(requests)
        report = server.drain()
        print(f"\n=== {title} ===")
        print(report.format())
        if baseline_rps is None:
            baseline_rps = report.throughput_rps
        else:
            print(
                f"-> {report.throughput_rps / baseline_rps:.1f}x the serial "
                "baseline's throughput"
            )


if __name__ == "__main__":
    main()
