"""Tests for the trace cache, its pipeline wiring, and the profiling layer."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import get_application
from repro.core import (
    HEONGPU_CONFIG,
    NEO_CONFIG,
    TENSORFHE_CONFIG,
    NeoContext,
    OperationPipeline,
    TraceCache,
    default_trace_cache,
    profile_application,
)
from repro.core.profiling import chrome_trace_json
from repro.ckks.params import get_set
from repro.gpu.trace import ExecutionTrace
from repro.gpu.kernels import KernelCost

#: (config, parameter set) pairs covering every paper system model.
CONFIG_SETS = [
    (NEO_CONFIG, "C"),
    (NEO_CONFIG, "D"),
    (TENSORFHE_CONFIG.with_overrides(keyswitch="hybrid"), "A"),
    (TENSORFHE_CONFIG.with_overrides(keyswitch="hybrid"), "B"),
    (HEONGPU_CONFIG, "E"),
]

OPS = ("hmult", "hrotate", "pmult", "hadd", "padd", "rescale", "keyswitch")


class TestTraceCache:
    def test_miss_then_hit(self):
        cache = TraceCache(maxsize=4)
        trace = ExecutionTrace().add(KernelCost("k", cuda_flops=1.0))
        built = []

        def build():
            built.append(1)
            return trace

        first = cache.get_or_build(("a",), build)
        second = cache.get_or_build(("a",), build)
        assert len(built) == 1
        assert first is second
        assert first.is_frozen
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = TraceCache(maxsize=2)
        mk = lambda n: (lambda: ExecutionTrace().add(KernelCost(n, cuda_flops=1.0)))
        cache.get_or_build(("a",), mk("a"))
        cache.get_or_build(("b",), mk("b"))
        cache.get_or_build(("a",), mk("a"))  # refresh "a"
        cache.get_or_build(("c",), mk("c"))  # evicts "b", the LRU entry
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache
        assert cache.stats.evictions == 1

    def test_maxsize_zero_disables_storage(self):
        cache = TraceCache(maxsize=0)
        mk = lambda: ExecutionTrace().add(KernelCost("k", cuda_flops=1.0))
        cache.get_or_build(("a",), mk)
        cache.get_or_build(("a",), mk)
        assert len(cache) == 0
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_clear_resets(self):
        cache = TraceCache(maxsize=4)
        cache.get_or_build(("a",), lambda: ExecutionTrace())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_frozen_trace_rejects_mutation(self):
        cache = TraceCache(maxsize=4)
        got = cache.get_or_build(
            ("a",), lambda: ExecutionTrace().add(KernelCost("k", cuda_flops=1.0))
        )
        with pytest.raises(AttributeError):
            got.add(KernelCost("x"))
        # Deriving new traces from a frozen one still works.
        assert len(got.merged(got)) == 2
        assert len(got.scaled(2.0)) == 1

    def test_frozen_equals_mutable_and_hashes(self):
        mutable = ExecutionTrace().add(KernelCost("k", cuda_flops=1.0))
        frozen = mutable.frozen()
        assert frozen == mutable
        assert hash(frozen) == hash(mutable)
        assert frozen.frozen() is frozen


class TestPipelineCaching:
    def test_repeated_operation_trace_hits(self):
        ctx = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
        before = ctx.cache_stats()
        first = ctx.operation_trace("hmult", 35)
        second = ctx.operation_trace("hmult", 35)
        after = ctx.cache_stats()
        assert first is second
        assert after.hits >= before.hits + 1

    def test_repeated_operation_time_us_hits(self):
        ctx = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
        t1 = ctx.operation_time_us("hmult", 35)
        hits_after_first = ctx.cache_stats().hits
        t2 = ctx.operation_time_us("hmult", 35)
        assert ctx.cache_stats().hits > hits_after_first
        assert t1 == t2

    def test_repeated_application_time_hits(self):
        app = get_application("packbootstrap")
        ctx = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
        t1 = ctx.application_time(app)
        stats = ctx.cache_stats()
        t2 = ctx.application_time(app)
        after = ctx.cache_stats()
        assert t1 == t2
        assert after.hits > stats.hits
        assert after.misses == stats.misses  # second pass builds nothing

    def test_application_time_matches_app_time_s(self):
        app = get_application("resnet20")
        ctx = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
        assert ctx.application_time(app) == app.time_s(ctx)

    def test_contexts_share_default_cache(self):
        a = NeoContext("C", config=NEO_CONFIG)
        b = NeoContext("C", config=NEO_CONFIG)
        assert a.trace_cache is b.trace_cache is default_trace_cache()
        assert a.operation_trace("hmult", 30) is b.operation_trace("hmult", 30)

    def test_distinct_batches_do_not_alias(self):
        cache = TraceCache()
        small = NeoContext("C", config=NEO_CONFIG, batch=8, trace_cache=cache)
        large = NeoContext("C", config=NEO_CONFIG, batch=128, trace_cache=cache)
        assert small.operation_trace("hmult", 35) != large.operation_trace("hmult", 35)

    def test_unknown_operation_raises_value_error(self):
        ctx = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
        with pytest.raises(ValueError, match="unknown operation"):
            ctx.operation_trace("nosuchop", 35)

    def test_builder_keyerror_is_not_misreported(self, monkeypatch):
        """Regression: a KeyError from inside a trace builder used to be
        swallowed and re-raised as 'unknown operation'."""
        pipeline = OperationPipeline(get_set("C"), NEO_CONFIG, cache=TraceCache())

        def broken(level):
            raise KeyError("missing twiddle table")

        monkeypatch.setattr(pipeline, "hmult_trace", broken)
        with pytest.raises(KeyError, match="missing twiddle table"):
            pipeline.operation_trace("hmult", 35)

    @pytest.mark.parametrize("config,set_name", CONFIG_SETS)
    @pytest.mark.parametrize("op", OPS)
    def test_cached_identical_to_uncached(self, config, set_name, op):
        """The cached path returns byte-identical traces and times."""
        cached = NeoContext(set_name, config=config, trace_cache=TraceCache())
        uncached = NeoContext(
            set_name, config=config, trace_cache=TraceCache(maxsize=0)
        )
        for level in (5, 20, 35):
            fresh = cached.pipeline.build_operation_trace(op, level)
            via_cache = cached.operation_trace(op, level)
            assert via_cache == fresh
            assert tuple(via_cache.events) == tuple(fresh.events)
            assert cached.operation_time_us(op, level) == uncached.operation_time_us(
                op, level
            )

    @settings(max_examples=30, deadline=None)
    @given(
        index=st.integers(min_value=0, max_value=len(CONFIG_SETS) - 1),
        op=st.sampled_from(OPS),
        level=st.integers(min_value=2, max_value=35),
        repeats=st.integers(min_value=2, max_value=4),
    )
    def test_property_cache_is_transparent(self, index, op, level, repeats):
        """Any (config, op, level): N cached queries == uncached construction."""
        config, set_name = CONFIG_SETS[index]
        cached = NeoContext(set_name, config=config, trace_cache=TraceCache())
        uncached = NeoContext(
            set_name, config=config, trace_cache=TraceCache(maxsize=0)
        )
        reference = uncached.operation_time_us(op, level)
        for _ in range(repeats):
            assert cached.operation_time_us(op, level) == reference
        stats = cached.cache_stats()
        assert stats.misses <= 1 and stats.hits == repeats - 1

    @pytest.mark.parametrize("config,set_name", CONFIG_SETS[:3])
    def test_schedule_time_matches_seed_semantics(self, config, set_name):
        """The single-pass schedule runner equals the old merge-based one."""
        ctx = NeoContext(set_name, config=config, trace_cache=TraceCache())
        schedule = {35: {"hmult": 2, "hrotate": 3}, 20: {"rescale": 1, "hadd": 0}}
        total = ExecutionTrace()
        for level, ops in schedule.items():
            for op_name, count in ops.items():
                if count <= 0:
                    continue
                total = total.merged(
                    ctx.pipeline.build_operation_trace(op_name, level).scaled(count)
                )
        old = total.overlapped_time_s(ctx.device, ctx.config.streams)
        assert ctx.schedule_time_s(schedule) == old


class TestProfiling:
    def test_profile_application_shape(self):
        app = get_application("packbootstrap")
        ctx = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
        profile = profile_application(ctx, app)
        assert profile.app == "packbootstrap"
        assert profile.params == "C"
        assert 0 < profile.total_s <= profile.serial_s
        # Per-op serial attribution sums to the full serial time.
        assert sum(op.serial_s for op in profile.per_op.values()) == pytest.approx(
            profile.serial_s, rel=1e-9
        )
        assert sum(profile.per_kernel.values()) == pytest.approx(
            profile.serial_s, rel=1e-9
        )
        # NTT dominates KeySwitch-heavy workloads (the paper's Fig. 13 shape).
        assert {"ntt", "intt"} <= set(profile.per_kernel)
        report = profile.format()
        assert "per-operation" in report and "trace cache" in report

    def test_profile_counts_match_schedule(self):
        app = get_application("helr")
        ctx = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
        profile = profile_application(ctx, app)
        schedule = app.schedule(ctx.params)
        for op_name, op in profile.per_op.items():
            expected = sum(ops.get(op_name, 0) for ops in schedule.values())
            assert op.calls == expected

    def test_chrome_trace_export(self):
        app = get_application("packbootstrap")
        ctx = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
        trace = ctx.application_trace(app)
        payload = json.loads(chrome_trace_json(ctx, trace))
        assert len(payload["traceEvents"]) == len(trace)
        assert {"name", "ph", "ts", "dur", "tid"} <= set(payload["traceEvents"][0])
