"""Extension: evaluation-key and working-set memory (Section 2.3, Fig. 17).

The paper notes the ``beta x beta~ x alpha'`` KLSS key sets "significantly
impact overall performance" and stops BatchSize at 128 for memory reasons.
This bench quantifies both on our model.
"""

from repro.analysis.memory_footprint import (
    ciphertext_bytes,
    hybrid_evk_bytes,
    klss_evk_bytes,
    max_batch_size,
    working_set_bytes,
)
from repro.analysis.reporting import format_table
from repro.ckks.params import TABLE4, get_set
from repro.gpu.device import A100


def _build_rows():
    rows = []
    for name in sorted(TABLE4):
        params = get_set(name)
        evk = (
            klss_evk_bytes(params) if params.klss is not None
            else hybrid_evk_bytes(params)
        )
        rows.append(
            [
                name,
                f"{ciphertext_bytes(params) / 2**20:.0f}",
                f"{evk / 2**20:.0f}",
                max_batch_size(params, A100),
            ]
        )
    return rows


def test_memory_footprint(benchmark):
    rows = benchmark(_build_rows)
    print()
    print(
        format_table(
            ["set", "ciphertext MiB", "evk MiB", "max BatchSize"],
            rows,
            title="Extension: memory footprint per Table 4 set (A100-40GB)",
        )
    )
    table = {row[0]: row for row in rows}
    # KLSS keys are larger than the matching Hybrid keys (Section 2.3).
    assert float(table["C"][2]) > float(table["B"][2])
    # Every set supports the paper's BatchSize = 128.
    for name, row in table.items():
        assert row[3] >= 128, name
    # The working set at batch 128 fits in 40 GiB with reserve.
    ws = working_set_bytes(get_set("C"), 128)
    assert sum(ws.values()) < 0.75 * A100.memory_gib * 2**30
