"""Functional test: an encrypted logistic-regression gradient step.

Runs the real CKKS pipeline at reduced parameters and checks the encrypted
gradient decrypts to the plaintext gradient.
"""

import numpy as np
import pytest

from repro.apps import EncryptedLogisticRegression
from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_test_parameters,
)


@pytest.fixture(scope="module")
def lr_setup():
    params = small_test_parameters(degree=32, max_level=5, wordsize=25, dnum=3)
    gen = KeyGenerator(params, seed=11)
    sk = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=5)
    decryptor = Decryptor(params, sk)
    evaluator = Evaluator(params, relin_key=gen.relinearisation_key(sk))
    model = EncryptedLogisticRegression(encoder, evaluator, learning_rate=0.5)
    return params, encoder, encryptor, decryptor, model


def test_sigmoid_plain_shape(lr_setup):
    _, _, _, _, model = lr_setup
    x = np.linspace(-4, 4, 9)
    y = model.sigmoid_plain(x)
    assert y[4] == pytest.approx(0.5)  # sigma3(0) = 0.5
    assert (np.diff(y[2:7]) > 0).all()  # increasing near the origin


def test_encrypted_sigmoid_matches_plain(lr_setup):
    params, encoder, encryptor, decryptor, model = lr_setup
    rng = np.random.default_rng(0)
    scores = rng.uniform(-2, 2, size=params.slots)
    ct = encryptor.encrypt(encoder.encode(scores))
    probs = encoder.decode(decryptor.decrypt(model.predict(ct))).real
    assert np.abs(probs - model.sigmoid_plain(scores)).max() < 1e-2


def test_encrypted_gradient_matches_plain(lr_setup):
    params, encoder, encryptor, decryptor, model = lr_setup
    rng = np.random.default_rng(1)
    scores = rng.uniform(-2, 2, size=params.slots)
    labels = rng.integers(0, 2, size=params.slots).astype(float)
    ct = encryptor.encrypt(encoder.encode(scores))
    encrypted = model.gradient_step(ct, labels)
    decrypted = encoder.decode(decryptor.decrypt(encrypted)).real
    expected = model.gradient_step_plain(scores, labels)
    assert np.abs(decrypted - expected).max() < 2e-2


def test_gradient_direction_reduces_loss(lr_setup):
    """One (plaintext-mirrored) gradient step lowers the logistic loss."""
    params, encoder, encryptor, decryptor, model = lr_setup
    rng = np.random.default_rng(2)
    slots = params.slots
    x = rng.normal(size=slots)  # one feature per slot for simplicity
    w = 0.3
    labels = (x > 0).astype(float)

    def loss(w):
        p = np.clip(model.sigmoid_plain(w * x), 1e-6, 1 - 1e-6)
        return -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()

    ct = encryptor.encrypt(encoder.encode(w * x))
    residual = encoder.decode(decryptor.decrypt(model.gradient_step(ct, labels))).real
    gradient = (residual * x).mean()
    assert loss(w - 0.5 * gradient) < loss(w)


def test_gradient_step_works_under_klss(lr_setup):
    """The same functional pipeline through the KLSS key switch."""
    from repro.ckks import Evaluator, KlssConfig, small_test_parameters

    params = small_test_parameters(
        degree=32, max_level=5, wordsize=25, dnum=3,
        klss=KlssConfig(wordsize_t=28, alpha_tilde=2),
    )
    gen = KeyGenerator(params, seed=21)
    sk = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=3)
    decryptor = Decryptor(params, sk)
    evaluator = Evaluator(
        params, relin_key=gen.relinearisation_key(sk), method="klss"
    )
    model = EncryptedLogisticRegression(encoder, evaluator)
    rng = np.random.default_rng(4)
    scores = rng.uniform(-2, 2, size=params.slots)
    labels = rng.integers(0, 2, size=params.slots).astype(float)
    ct = encryptor.encrypt(encoder.encode(scores))
    decrypted = encoder.decode(
        decryptor.decrypt(model.gradient_step(ct, labels))
    ).real
    expected = model.gradient_step_plain(scores, labels)
    assert np.abs(decrypted - expected).max() < 2e-2
