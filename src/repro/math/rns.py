"""Residue Number System (RNS) bases and base conversion (BConv).

The CKKS modulus chain ``Q = q_0 ... q_L``, the special modulus ``P`` and the
KLSS auxiliary modulus ``T`` are all RNS bases.  ``BConv`` is the paper's
central memory-bound kernel (Algorithm 1/2): it maps the residues of a value
from one basis to another.

Two conversions are provided:

* :func:`bconv_approx` -- the standard full-RNS conversion of Cheon et al.
  [SAC'18], which returns ``x + u*Q`` for a small overflow ``0 <= u < len(Q)``.
  This is the kernel whose dataflow Neo optimises; the slack is absorbed by
  the noise budget in ModUp/ModDown.
* :func:`bconv_exact` -- exact conversion through CRT recomposition, used
  where overflow would corrupt the result (KLSS Recover Limbs) and as the
  ground truth in tests.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, List, Sequence, Tuple

import numpy as np

from . import modarith
from .modstack import ModulusStack


class RnsBasis:
    """An ordered set of pairwise-coprime prime moduli with CRT tables."""

    def __init__(self, moduli: Sequence[int]):
        moduli = tuple(int(q) for q in moduli)
        if len(set(moduli)) != len(moduli):
            raise ValueError("RNS moduli must be distinct")
        if not moduli:
            raise ValueError("RNS basis needs at least one modulus")
        self.moduli: Tuple[int, ...] = moduli
        self.product: int = reduce(lambda a, b: a * b, moduli, 1)
        #: ``q_hat_i = Q / q_i`` as exact integers.
        self.q_hat: Tuple[int, ...] = tuple(self.product // q for q in moduli)
        #: ``q_hat_i^{-1} mod q_i``.
        self.q_hat_inv: Tuple[int, ...] = tuple(
            modarith.inv_mod(h % q, q) for h, q in zip(self.q_hat, moduli)
        )

    def __len__(self) -> int:
        return len(self.moduli)

    def __eq__(self, other) -> bool:
        return isinstance(other, RnsBasis) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __repr__(self) -> str:
        bits = [q.bit_length() for q in self.moduli]
        return f"RnsBasis({len(self.moduli)} limbs, {min(bits)}-{max(bits)} bits)"

    def subbasis(self, start: int, stop: int) -> "RnsBasis":
        """The basis formed by moduli ``[start:stop]``."""
        return RnsBasis(self.moduli[start:stop])

    def decompose(self, values) -> List[np.ndarray]:
        """Split integer array `values` into one residue array per limb.

        Machine-word integer inputs reduce natively per limb; only inputs
        that genuinely exceed 64 bits route through Python integers.
        """
        arr = np.asarray(values)
        return [modarith.asarray_mod(arr, q) for q in self.moduli]

    def compose(self, limbs: Sequence[np.ndarray]) -> np.ndarray:
        """CRT-recompose residue arrays into integers in ``[0, product)``."""
        if len(limbs) != len(self.moduli):
            raise ValueError(
                f"expected {len(self.moduli)} limb arrays, got {len(limbs)}"
            )
        acc = np.zeros(np.asarray(limbs[0]).shape, dtype=object)
        for limb, q, q_hat, q_hat_inv in zip(
            limbs, self.moduli, self.q_hat, self.q_hat_inv
        ):
            partial = (np.asarray(limb, dtype=object) * q_hat_inv) % q
            acc += partial * q_hat
        return acc % self.product

    def compose_signed(self, limbs: Sequence[np.ndarray]) -> np.ndarray:
        """CRT-recompose into centred integers in ``(-product/2, product/2]``."""
        return modarith.to_signed(self.compose(limbs), self.product)


#: (from moduli, to moduli) -> per-target Shoup tables for the BConv matrix
#: ``B[j, i] = q_hat_i mod p_j``: ``(B, shoup(B))`` as ``(Lt, Lf)`` uint64.
_BCONV_TABLE_CACHE: Dict[
    Tuple[Tuple[int, ...], Tuple[int, ...]], Tuple[np.ndarray, np.ndarray]
] = {}


def _bconv_tables(
    from_basis: RnsBasis, to_basis: RnsBasis
) -> Tuple[np.ndarray, np.ndarray]:
    key = (from_basis.moduli, to_basis.moduli)
    tables = _BCONV_TABLE_CACHE.get(key)
    if tables is None:
        weights = [
            [q_hat % p for q_hat in from_basis.q_hat] for p in to_basis.moduli
        ]
        shoup = [
            [modarith.shoup_precompute(w, p) for w in row]
            for row, p in zip(weights, to_basis.moduli)
        ]
        tables = (
            np.array(weights, dtype=np.uint64),
            np.array(shoup, dtype=np.uint64),
        )
        _BCONV_TABLE_CACHE[key] = tables
    return tables


def bconv_approx(
    limbs: Sequence[np.ndarray], from_basis: RnsBasis, to_basis: RnsBasis
) -> List[np.ndarray]:
    """Approximate RNS base conversion (the paper's Algorithm 1 semantics).

    For input residues of ``x`` (with ``0 <= x < Q``), the output residues
    represent ``x + u*Q`` modulo each target limb, where ``0 <= u < len(Q)``.
    Every input coefficient participates in ``len(to_basis)`` scalar
    multiply-accumulates -- the poor-data-reuse pattern Neo rewrites as GEMM.

    When every modulus on both sides is native the whole conversion stays
    on ``uint64``: the scaled residues stack into an ``(Lf, ..., N)`` tensor,
    each target limb reduces it once, Shoup-multiplies by its row of the
    BConv matrix, and folds the limb axis with chunked accumulation.
    """
    scaled, native = _scaled_residues(limbs, from_basis, to_basis)
    if native:
        return _bconv_approx_native(np.stack(scaled), from_basis, to_basis)
    return _bconv_approx_object(scaled, from_basis, to_basis)


def bconv_approx_eager(
    limbs: Sequence[np.ndarray], from_basis: RnsBasis, to_basis: RnsBasis
) -> List[np.ndarray]:
    """:func:`bconv_approx` with eager per-step reduction (the pre-GEMM path).

    Value-identical to :func:`bconv_approx` -- both compute the exact sum
    of scaled residues modulo each target limb -- but reduces after (almost)
    every multiply-accumulate instead of deferring to one reduction per
    accumulator.  Kept as the loop-form baseline that the GEMM key-switch
    benchmarks race against.
    """
    scaled, native = _scaled_residues(limbs, from_basis, to_basis)
    if native:
        return _bconv_approx_native_eager(np.stack(scaled), from_basis, to_basis)
    return _bconv_approx_object(scaled, from_basis, to_basis)


def _scaled_residues(
    limbs: Sequence[np.ndarray], from_basis: RnsBasis, to_basis: RnsBasis
):
    """``y_i = [x_i * q_hat_inv_i]_{q_i}`` plus the native-backend verdict."""
    if len(limbs) != len(from_basis):
        raise ValueError("limb count does not match source basis")
    scaled = [
        modarith.scalar_mul_mod(modarith.asarray_mod(limb, q), q_hat_inv, q)
        for limb, q, q_hat_inv in zip(limbs, from_basis.moduli, from_basis.q_hat_inv)
    ]
    native = all(
        modarith.uses_native_backend(q)
        for q in from_basis.moduli + to_basis.moduli
    ) and all(np.asarray(y).dtype != object for y in scaled)
    return scaled, native


def _bconv_approx_object(
    scaled: List[np.ndarray], from_basis: RnsBasis, to_basis: RnsBasis
) -> List[np.ndarray]:
    """Exact object-dtype fallback shared by both conversion spellings."""
    out: List[np.ndarray] = []
    scaled = [np.asarray(y, dtype=object) for y in scaled]
    for p in to_basis.moduli:
        acc = np.zeros(scaled[0].shape, dtype=object)
        for y, q_hat in zip(scaled, from_basis.q_hat):
            acc = (acc + y * (q_hat % p)) % p
        out.append(modarith.asarray_mod(acc, p))
    return out


def _bconv_approx_native(
    scaled: np.ndarray, from_basis: RnsBasis, to_basis: RnsBasis
) -> List[np.ndarray]:
    """The all-``uint64`` BConv over a stacked ``(Lf, ..., N)`` tensor.

    One lazy-reduced GEMM against the precomputed conversion matrix
    (:meth:`~repro.math.modstack.ModulusStack.bconv_matmul`, the paper's
    Algorithm 2) replaces the per-target-limb Shoup loop; the result is
    value-identical because both compute the exact sum modulo each target.
    """
    weights, _ = _bconv_tables(from_basis, to_basis)
    mstack = ModulusStack.for_moduli(to_basis.moduli)
    out = mstack.bconv_matmul(
        scaled, weights, operand_bound=max(from_basis.moduli)
    )
    return list(out)


def _bconv_approx_native_eager(
    scaled: np.ndarray, from_basis: RnsBasis, to_basis: RnsBasis
) -> List[np.ndarray]:
    """The seed's per-target-limb BConv over a stacked ``(Lf, ..., N)``.

    Each target limb reduces the whole stack, Shoup-multiplies by its row
    of the conversion matrix, and folds the limb axis with a full Barrett
    reduction every three terms -- the eager dataflow the GEMM replaces.
    """
    weights, shoups = _bconv_tables(from_basis, to_basis)
    cols = (len(from_basis),) + (1,) * (scaled.ndim - 1)
    out: List[np.ndarray] = []
    for j, p in enumerate(to_basis.moduli):
        p64 = np.uint64(p)
        reduced = scaled % p64
        terms = modarith.shoup_mul_mod(
            reduced, weights[j].reshape(cols), shoups[j].reshape(cols), p64
        )
        # Accumulate the limb axis three terms at a time: acc < p plus three
        # summands below p keeps the running total under 4p <= 2**64 - 4.
        acc = np.zeros(scaled.shape[1:], dtype=np.uint64)
        for start in range(0, terms.shape[0], 3):
            chunk = terms[start : start + 3].sum(axis=0, dtype=np.uint64)
            acc = (acc + chunk) % p64
        out.append(acc)
    return out


def bconv_weights(from_basis: RnsBasis, to_basis: RnsBasis) -> np.ndarray:
    """The reduced conversion matrix ``W[j, i] = q_hat_i mod p_j``.

    Shaped ``(len(to), len(from))`` in the target backend's dtype, ready to
    feed :meth:`~repro.math.modstack.ModulusStack.bconv_matmul` (the GEMM
    operand of Algorithm 2).  Native targets reuse the cached uint64 table.
    """
    if all(modarith.uses_native_backend(p) for p in to_basis.moduli):
        return _bconv_tables(from_basis, to_basis)[0]
    return np.array(
        [[q_hat % p for q_hat in from_basis.q_hat] for p in to_basis.moduli],
        dtype=object,
    )


def bconv_exact(
    limbs: Sequence[np.ndarray], from_basis: RnsBasis, to_basis: RnsBasis
) -> List[np.ndarray]:
    """Exact base conversion of the value ``x in [0, from_basis.product)``."""
    values = from_basis.compose(limbs)
    return to_basis.decompose(values)


def bconv_matrix(from_basis: RnsBasis, to_basis: RnsBasis) -> np.ndarray:
    """The ``len(from) x len(to)`` matrix ``B[i, j] = q_hat_i mod p_j``.

    This is matrix ``B`` of the paper's Algorithm 2: after the per-limb
    scalar multiplication by ``q_hat_inv_i``, BConv is exactly a GEMM with
    this constant matrix (modulo each output prime).
    """
    rows = []
    for q_hat in from_basis.q_hat:
        rows.append([q_hat % p for p in to_basis.moduli])
    return np.array(rows, dtype=object)


def overflow_bound(from_basis: RnsBasis) -> int:
    """Upper bound (exclusive) on the ``u`` overflow of :func:`bconv_approx`."""
    return len(from_basis)
