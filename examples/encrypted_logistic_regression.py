"""HELR in miniature: train a logistic-regression classifier on encrypted data.

This is the functional face of the paper's HELR workload (Table 5): a
binary classifier trained with encrypted gradient steps.  The server only
ever sees ciphertexts; the client decrypts the residuals to fold them into
the model (a common interactive-HELR deployment).

Run:  python examples/encrypted_logistic_regression.py
"""

import numpy as np

from repro.apps import EncryptedLogisticRegression
from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_test_parameters,
)


def make_dataset(rng, samples, separation=2.0):
    """A 1-D synthetic two-class problem (one feature per slot)."""
    labels = rng.integers(0, 2, size=samples).astype(float)
    features = rng.normal(loc=(labels - 0.5) * separation, scale=1.0)
    return features, labels


def main():
    params = small_test_parameters(degree=64, max_level=5, wordsize=25, dnum=3)
    gen = KeyGenerator(params, seed=7)
    secret = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(secret), seed=3)
    decryptor = Decryptor(params, secret)
    evaluator = Evaluator(params, relin_key=gen.relinearisation_key(secret))
    model = EncryptedLogisticRegression(encoder, evaluator, learning_rate=1.0)

    rng = np.random.default_rng(42)
    x, y = make_dataset(rng, params.slots)
    weight = 0.0

    def accuracy(w):
        return ((model.sigmoid_plain(w * x) > 0.5) == (y > 0.5)).mean()

    print(f"training on {params.slots} encrypted samples")
    print(f"iteration 0: weight={weight:+.3f} accuracy={accuracy(weight):.1%}")
    for iteration in range(1, 6):
        # Server side: compute the encrypted residual sigma(w*x) - y.
        scores = encryptor.encrypt(encoder.encode(weight * x))
        encrypted_residual = model.gradient_step(scores, y)
        # Client side: decrypt the residual, finish the gradient locally.
        residual = encoder.decode(decryptor.decrypt(encrypted_residual)).real
        gradient = (residual * x).mean()
        weight -= gradient
        print(
            f"iteration {iteration}: weight={weight:+.3f} "
            f"accuracy={accuracy(weight):.1%}"
        )

    assert accuracy(weight) > 0.85, "training should separate the classes"
    print("OK: encrypted training reached a usable classifier")


if __name__ == "__main__":
    main()
