"""Key-switching back-ends: Hybrid (Han-Ki) and KLSS (Kim-Lee-Seo-Song)."""

from . import hybrid, klss

__all__ = ["hybrid", "klss"]
