"""CKKS ciphertexts.

A ciphertext is a pair ``(c0, c1)`` over the level-``l`` basis that
decrypts as ``c0 + c1 * s ~ m``; an unrelinearised product temporarily
carries a third component ``d2`` (the coefficient of ``s**2``).
"""

from __future__ import annotations

import math
from typing import Optional

from ..math.polynomial import RnsPolynomial
from .params import CkksParameters


class Ciphertext:
    """An encryption of a packed complex vector at a given level and scale."""

    __slots__ = ("c0", "c1", "c2", "scale", "params")

    def __init__(
        self,
        c0: RnsPolynomial,
        c1: RnsPolynomial,
        scale: float,
        params: CkksParameters,
        c2: Optional[RnsPolynomial] = None,
    ):
        if c0.basis != c1.basis:
            raise ValueError("ciphertext components live in different bases")
        if c2 is not None and c2.basis != c0.basis:
            raise ValueError("c2 lives in a different basis")
        self.c0 = c0
        self.c1 = c1
        self.c2 = c2
        self.scale = float(scale)
        self.params = params

    @property
    def level(self) -> int:
        """Current level ``l`` (number of remaining rescalings)."""
        return len(self.c0.basis) - 1

    @property
    def degree(self) -> int:
        return self.c0.degree

    @property
    def is_relinearised(self) -> bool:
        return self.c2 is None

    def copy(self) -> "Ciphertext":
        return Ciphertext(
            self.c0.copy(),
            self.c1.copy(),
            self.scale,
            self.params,
            None if self.c2 is None else self.c2.copy(),
        )

    def __repr__(self) -> str:
        extra = "" if self.c2 is None else ", +s^2 term"
        return (
            f"Ciphertext(level={self.level}, "
            f"scale=2^{math.log2(self.scale):.1f}{extra})"
        )
