"""KLSS key switching (Kim-Lee-Seo-Song, CRYPTO'23) -- Section 2.2.

The six-step pipeline of the paper's Fig. 5:

1. **Mod Up** -- BConv each of the ``beta`` ciphertext digits from its
   ``alpha``-limb group basis into the auxiliary basis ``T`` (``alpha'``
   limbs of ``WordSize_T`` bits).  Because ``T`` far exceeds the digit
   bound, the limbs of ``T`` represent the digit *exactly* as an integer.
2. **NTT** over ``R_T``.
3. **IP** -- multiply-accumulate against ``beta~ x beta`` evk digit pairs.
   The evk digits are the RNS gadget decomposition (groups of ``alpha~``
   limbs of the ``PQ`` chain) of the *hybrid* evk -- KLSS is a key
   decomposition technique, so the key material is shared.
4. **INTT** over ``R_T``.
5. **Recover Limbs** -- the accumulated integers are below ``T/2`` in
   magnitude (Eq. 4), so an exact signed base conversion brings each of
   the ``beta~`` groups back to ``R_PQ``, where they are recombined with
   the gadget factors ``G_hat_i``.
6. **Mod Down** -- divide by ``P`` (shared with the hybrid back-end).
"""

from __future__ import annotations

from functools import reduce
from typing import List, Tuple

import numpy as np

from ...math import modarith
from ...math.polynomial import RnsPolynomial
from ...math.rns import RnsBasis, bconv_approx
from ..keys import KeySwitchKey
from ..params import CkksParameters
from . import hybrid


class KlssBoundError(ValueError):
    """Raised when the auxiliary modulus cannot hold the IP exactly (Eq. 4)."""


class _KlssLevelKey:
    """The evk of one level, gadget-decomposed into the auxiliary basis."""

    def __init__(
        self,
        t_basis: RnsBasis,
        digit_pairs: List[List[Tuple[RnsPolynomial, RnsPolynomial]]],
        gadget_factors: List[int],
        pq_basis: RnsBasis,
    ):
        #: ``digit_pairs[i][j]`` = digit ``i`` of evk pair ``j``, over ``R_T`` (NTT).
        self.t_basis = t_basis
        self.digit_pairs = digit_pairs
        #: ``gadget_factors[i] = G_hat_i = PQ_l / G_i`` (exact integers).
        self.gadget_factors = gadget_factors
        self.pq_basis = pq_basis

    @property
    def beta_tilde(self) -> int:
        return len(self.digit_pairs)


def _limb_groups(n_limbs: int, alpha_tilde: int) -> List[Tuple[int, int]]:
    """Half-open limb ranges of the ``alpha~``-sized gadget groups."""
    return [
        (start, min(start + alpha_tilde, n_limbs))
        for start in range(0, n_limbs, alpha_tilde)
    ]


def _check_ip_bound(params: CkksParameters, level: int, t_basis: RnsBasis):
    """Assert the Eq. 4 correctness bound: ``T > 2 * N * beta * B * B~``."""
    pq_moduli = params.pq_basis(level).moduli
    alpha = params.alpha
    beta = params.beta(level)
    digit_bound = 0
    for j in range(beta):
        start, stop = params.digit_range(j, level)
        group = reduce(lambda a, b: a * b, params.moduli[start:stop], 1)
        digit_bound = max(digit_bound, group)
    b_bound = (alpha + 1) * digit_bound  # Mod Up overflow slack included
    groups = _limb_groups(len(pq_moduli), params.klss.alpha_tilde)
    key_digit_bound = max(
        reduce(lambda a, b: a * b, pq_moduli[start:stop], 1) for start, stop in groups
    )
    required = 2 * params.degree * beta * b_bound * key_digit_bound
    if t_basis.product <= required:
        raise KlssBoundError(
            f"auxiliary modulus T (~2^{t_basis.product.bit_length()}) too small: "
            f"Eq. 4 needs > 2^{required.bit_length()} at level {level}"
        )


def decompose_key(
    ksk: KeySwitchKey, params: CkksParameters, level: int
) -> _KlssLevelKey:
    """Gadget-decompose the hybrid evk for use at `level` (cached on the key)."""
    if params.klss is None:
        raise ValueError("parameters carry no KLSS configuration")
    cache = getattr(ksk, "_klss_cache", None)
    if cache is None:
        cache = {}
        ksk._klss_cache = cache
    decomposed = cache.get(level)
    if decomposed is not None:
        return decomposed

    alpha_prime, beta, _ = params.klss_dims(level)
    t_basis = params.aux_basis.subbasis(0, alpha_prime)
    _check_ip_bound(params, level, t_basis)

    pq = params.pq_basis(level)
    groups = _limb_groups(len(pq.moduli), params.klss.alpha_tilde)
    pq_product = pq.product
    gadget_factors = []
    group_data = []  # (group_basis, inv_factor, start, stop)
    for start, stop in groups:
        group_basis = RnsBasis(pq.moduli[start:stop])
        g_hat = pq_product // group_basis.product
        inv = modarith.inv_mod(g_hat % group_basis.product, group_basis.product)
        gadget_factors.append(g_hat)
        group_data.append((group_basis, inv, start, stop))

    digit_pairs: List[List[Tuple[RnsPolynomial, RnsPolynomial]]] = []
    restricted = [
        (
            hybrid.restrict_to_pq(b, params, level),
            hybrid.restrict_to_pq(a, params, level),
        )
        for b, a in ksk.pairs[:beta]
    ]
    for group_basis, inv, start, stop in group_data:
        row: List[Tuple[RnsPolynomial, RnsPolynomial]] = []
        for b, a in restricted:
            row.append(
                (
                    _extract_digit(b, group_basis, inv, start, stop, t_basis),
                    _extract_digit(a, group_basis, inv, start, stop, t_basis),
                )
            )
        digit_pairs.append(row)
    decomposed = _KlssLevelKey(t_basis, digit_pairs, gadget_factors, pq)
    cache[level] = decomposed
    return decomposed


def _extract_digit(
    poly: RnsPolynomial,
    group_basis: RnsBasis,
    inv_factor: int,
    start: int,
    stop: int,
    t_basis: RnsBasis,
) -> RnsPolynomial:
    """Digit ``[v * G_hat^{-1}]_{G}`` of `poly`, lifted exactly into ``R_T``."""
    group_value = group_basis.compose(poly.limbs[start:stop])
    digit = (group_value * inv_factor) % group_basis.product
    limbs = t_basis.decompose(digit)
    return RnsPolynomial(poly.degree, t_basis, limbs, is_ntt=False).to_ntt()


def keyswitch(
    poly: RnsPolynomial, ksk: KeySwitchKey, params: CkksParameters
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """KLSS key switch of `poly`; same contract as :func:`hybrid.keyswitch`."""
    level = len(poly.basis) - 1
    key = decompose_key(ksk, params, level)
    t_basis = key.t_basis
    degree = poly.degree

    # Step 1 + 2: Mod Up into R_T, then NTT.
    raised: List[RnsPolynomial] = []
    for digit in hybrid.decompose_digits(poly, params):
        limbs = bconv_approx(digit.limbs, digit.basis, t_basis)
        raised.append(
            RnsPolynomial(degree, t_basis, limbs, is_ntt=False).to_ntt()
        )

    # Step 3: Inner Product over R_T (beta~ accumulator pairs).
    acc = [
        (
            RnsPolynomial.zero(degree, t_basis, is_ntt=True),
            RnsPolynomial.zero(degree, t_basis, is_ntt=True),
        )
        for _ in range(key.beta_tilde)
    ]
    for i in range(key.beta_tilde):
        acc_b, acc_a = acc[i]
        for j, digit in enumerate(raised):
            evk_b, evk_a = key.digit_pairs[i][j]
            acc_b = acc_b.add(digit.multiply(evk_b))
            acc_a = acc_a.add(digit.multiply(evk_a))
        acc[i] = (acc_b, acc_a)

    # Step 4 + 5: INTT, then Recover Limbs back into R_PQ.
    pq = key.pq_basis
    out_shape = poly.batch_shape + (degree,)
    sum_b = np.zeros(out_shape, dtype=object)
    sum_a = np.zeros(out_shape, dtype=object)
    for (acc_b, acc_a), g_hat in zip(acc, key.gadget_factors):
        r_b = t_basis.compose_signed(acc_b.from_ntt().limbs)
        r_a = t_basis.compose_signed(acc_a.from_ntt().limbs)
        sum_b += r_b * g_hat
        sum_a += r_a * g_hat
    recovered_b = RnsPolynomial(degree, pq, pq.decompose(sum_b), is_ntt=False)
    recovered_a = RnsPolynomial(degree, pq, pq.decompose(sum_a), is_ntt=False)

    # Step 6: Mod Down by P.
    p0 = hybrid.mod_down(recovered_b, params, level)
    p1 = hybrid.mod_down(recovered_a, params, level)
    return p0, p1
