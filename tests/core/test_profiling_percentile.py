"""Regression tests for the audited ``percentile`` edge cases (S2).

The nearest-rank definition is load-bearing for serving determinism:
every reported percentile must be an observed sample, bit for bit.
"""

import pytest

from repro.core.profiling import latency_percentiles, percentile


class TestValidation:
    @pytest.mark.parametrize("q", [-0.001, -1, 100.001, 200])
    def test_out_of_range_q_raises(self, q):
        with pytest.raises(ValueError, match="must be in"):
            percentile([1.0, 2.0], q)

    @pytest.mark.parametrize("q", [-5, 150])
    def test_invalid_q_raises_even_on_empty_input(self, q):
        # validation runs before the empty-sample check: an invalid
        # quantile never silently returns 0.0
        with pytest.raises(ValueError):
            percentile([], q)


class TestEdgeCases:
    def test_empty_sample_returns_zero_for_valid_q(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 0) == 0.0
        assert percentile([], 100) == 0.0

    def test_q0_is_minimum_q100_is_maximum(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_single_sample_for_every_q(self):
        for q in (0, 1, 50, 99, 100):
            assert percentile([7.5], q) == 7.5

    def test_nearest_rank_returns_observed_values_only(self):
        values = [1.0, 2.0, 3.0, 4.0]
        for q in (10, 25, 37.5, 50, 75, 90, 99):
            assert percentile(values, q) in values

    def test_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        percentile(values, 50)
        assert values == [3.0, 1.0, 2.0]

    def test_median_of_even_sample_is_lower_middle(self):
        # nearest-rank (no interpolation): ceil(0.5 * 4) = rank 2
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_duplicates_are_ranked_not_collapsed(self):
        assert percentile([1.0, 1.0, 1.0, 10.0], 75) == 1.0
        assert percentile([1.0, 1.0, 1.0, 10.0], 76) == 10.0


class TestLatencySummary:
    def test_summary_keys_and_empty_sample(self):
        empty = latency_percentiles([])
        assert empty == {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                         "max": 0.0}

    def test_summary_consistency(self):
        values = [float(i) for i in range(1, 101)]
        summary = latency_percentiles(values)
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
