"""Property tests: the Barrett/Shoup uint64 backend against the object oracle.

Every test draws random moduli from the Barrett range ``[2**31, 2**62)`` --
the ISSUE's acceptance bar is element-for-element agreement with exact
Python-integer arithmetic across that whole range, not just at the paper's
named word sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.math import modarith

wide_moduli = st.integers(min_value=2**31, max_value=2**62 - 1)
raw_values = st.lists(
    st.integers(min_value=0, max_value=2**62 - 2), min_size=1, max_size=16
)


def _pair(q, xs, ys):
    size = min(len(xs), len(ys))
    a = modarith.asarray_mod(xs[:size], q)
    b = modarith.asarray_mod(ys[:size], q)
    return a, b


@settings(max_examples=80, deadline=None)
@given(wide_moduli, raw_values, raw_values)
def test_barrett_mul_matches_python(q, xs, ys):
    a, b = _pair(q, xs, ys)
    got = modarith.mul_mod(a, b, q).astype(object)
    want = [
        int(x) * int(y) % q
        for x, y in zip(a.astype(object), b.astype(object))
    ]
    assert list(got) == want


@settings(max_examples=80, deadline=None)
@given(wide_moduli, raw_values, st.integers(min_value=0, max_value=2**80))
def test_shoup_mul_matches_python(q, xs, w):
    a = modarith.asarray_mod(xs, q)
    w_red = w % q
    got = modarith.shoup_mul_mod(
        a,
        np.uint64(w_red),
        np.uint64(modarith.shoup_precompute(w_red, q)),
        np.uint64(q),
    )
    want = [int(x) * w_red % q for x in a.astype(object)]
    assert list(got.astype(object)) == want


@settings(max_examples=40, deadline=None)
@given(wide_moduli, raw_values, raw_values)
def test_add_sub_neg_match_object_backend(q, xs, ys):
    a, b = _pair(q, xs, ys)
    native = {
        "add": modarith.add_mod(a, b, q).astype(object),
        "sub": modarith.sub_mod(a, b, q).astype(object),
        "neg": modarith.neg_mod(a, q).astype(object),
    }
    with modarith.object_backend():
        oa, ob = a.astype(object), b.astype(object)
        oracle = {
            "add": modarith.add_mod(oa, ob, q),
            "sub": modarith.sub_mod(oa, ob, q),
            "neg": modarith.neg_mod(oa, q),
        }
    for name, got in native.items():
        assert (got == oracle[name]).all(), name


@settings(max_examples=40, deadline=None)
@given(
    wide_moduli,
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31),
)
def test_matmul_matches_object_oracle(q, m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = modarith.asarray_mod(
        rng.integers(0, 2**62, size=(m, k)).astype(object), q
    )
    b = modarith.asarray_mod(
        rng.integers(0, 2**62, size=(k, n)).astype(object), q
    )
    got = modarith.matmul_mod(a, b, q)
    assert got.dtype == np.uint64
    want = (np.asarray(a, dtype=object) @ np.asarray(b, dtype=object)) % q
    assert (got.astype(object) == want).all()


@settings(max_examples=40, deadline=None)
@given(wide_moduli, raw_values, raw_values)
def test_dot_matches_object_oracle(q, xs, ys):
    a, b = _pair(q, xs, ys)
    got = modarith.dot_mod(a[None, :], b, q)
    want = sum(int(x) * int(y) for x, y in zip(a.astype(object), b.astype(object))) % q
    assert int(got.astype(object)[0]) == want


def test_object_backend_is_reentrant():
    q = (1 << 60) - 93
    a = modarith.asarray_mod([5, q - 1], q)
    assert modarith.uses_barrett_backend(q)
    with modarith.object_backend():
        assert not modarith.uses_barrett_backend(q)
        with modarith.object_backend():
            assert not modarith.uses_barrett_backend(q)
        assert not modarith.uses_barrett_backend(q)
    assert modarith.uses_barrett_backend(q)
    assert modarith.mul_mod(a, a, q).dtype == np.uint64
