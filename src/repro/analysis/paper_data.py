"""Every number the paper's evaluation section reports, as Python data.

Used by the benchmark harness to print paper-vs-measured comparisons and by
EXPERIMENTS.md generation.  Source: Tables 5-8 and the prose of Section 6
of the Neo paper (ISCA'25).
"""

from __future__ import annotations

#: Table 5 -- application execution times in seconds.
TABLE5_SECONDS = {
    ("CPU", None): {
        "packbootstrap": 17.2, "helr": 356.0, "resnet20": 1380.0,
        "resnet32": None, "resnet56": None,
    },
    ("TensorFHE_SS", "F"): {
        "packbootstrap": 0.53, "helr": 0.90, "resnet20": 35.27,
        "resnet32": 57.70, "resnet56": 102.71,
    },
    ("Neo_SS", "G"): {
        "packbootstrap": 0.17, "helr": 0.19, "resnet20": 9.11,
        "resnet32": 14.90, "resnet56": 26.48,
    },
    ("TensorFHE", "A"): {
        "packbootstrap": 0.67, "helr": 0.96, "resnet20": 41.07,
        "resnet32": 67.18, "resnet56": 119.49,
    },
    ("TensorFHE", "B"): {
        "packbootstrap": 0.74, "helr": 0.78, "resnet20": 38.77,
        "resnet32": 64.22, "resnet56": 114.15,
    },
    ("TensorFHE", "C"): {
        "packbootstrap": 0.85, "helr": 0.73, "resnet20": 40.68,
        "resnet32": 66.19, "resnet56": 117.30,
    },
    ("HEonGPU", "E"): {
        "packbootstrap": 0.36, "helr": 0.26, "resnet20": 16.42,
        "resnet32": 27.00, "resnet56": 47.99,
    },
    ("Neo", "C"): {
        "packbootstrap": 0.24, "helr": 0.22, "resnet20": 12.03,
        "resnet32": 19.68, "resnet56": 34.98,
    },
    ("Neo", "D"): {
        "packbootstrap": 0.27, "helr": 0.25, "resnet20": 13.39,
        "resnet32": 21.83, "resnet56": 38.78,
    },
}

#: Table 6 -- operation times in microseconds at l = 35 (CPU rows excluded;
#: they are in seconds/milliseconds and from 100x at Set H).
TABLE6_MICROSECONDS = {
    ("TensorFHE", "A"): {
        "hmult": 15304.6, "hrotate": 15256.2, "pmult": 82.3,
        "hadd": 47.0, "padd": 47.2, "rescale": 115.1,
    },
    ("TensorFHE", "B"): {
        "hmult": 18689.4, "hrotate": 18592.1, "pmult": 82.3,
        "hadd": 47.0, "padd": 47.2, "rescale": 115.1,
    },
    ("TensorFHE", "C"): {
        "hmult": 32523.6, "hrotate": 32498.9, "pmult": 82.3,
        "hadd": 47.0, "padd": 47.2, "rescale": 115.1,
    },
    ("HEonGPU", "E"): {
        "hmult": 8172.6, "hrotate": 8200.0, "pmult": 92.7,
        "hadd": 62.4, "padd": 48.6, "rescale": 150.5,
    },
    ("Neo", "C"): {
        "hmult": 3472.5, "hrotate": 3422.1, "pmult": 81.7,
        "hadd": 46.1, "padd": 46.4, "rescale": 114.3,
    },
}

#: Table 6 CPU row (Set H, from 100x) in seconds.
TABLE6_CPU_SECONDS = {
    "hmult": 2.6, "hrotate": 2.6, "pmult": 26.2e-3,
    "hadd": 28.2e-3, "padd": 28.2e-3, "rescale": 45.8e-3,
}

#: Table 7 -- kernel throughput under Set B (invocations per second).
TABLE7_THROUGHPUT = {
    "TensorFHE": {"bconv": 311526, "ip": 621762, "ntt": 25478},
    "Neo": {"bconv": 854700, "ip": 1617978, "ntt": 95329},
}

#: Table 7 speedups as printed.
TABLE7_SPEEDUPS = {"bconv": 2.74, "ip": 2.60, "ntt": 3.74}

#: Table 8 -- KeySwitch time (ms) under (alpha~, dnum); optimum at (5, 9).
TABLE8_KEYSWITCH_MS = {
    4: {4: 5.34, 6: 4.30, 9: 3.81, 12: 3.84, 18: 4.00},
    5: {4: 4.50, 6: 4.11, 9: 3.22, 12: 3.82, 18: 4.12},
    6: {4: 4.53, 6: 3.67, 9: 3.39, 12: 3.51, 18: 4.37},
    7: {4: 4.39, 6: 3.30, 9: 3.51, 12: 3.61, 18: 4.03},
    8: {4: 3.95, 6: 3.69, 9: 3.38, 12: 3.65, 18: 4.13},
    9: {4: 3.57, 6: 3.55, 9: 3.48, 12: 3.99, 18: 4.61},
    10: {4: 3.93, 6: 3.79, 9: 3.24, 12: 3.59, 18: 4.61},
}

#: Section 6 headline claims.
HEADLINES = {
    "speedup_vs_tensorfhe_same_params": 3.41,
    "speedup_vs_tensorfhe_best_params": 3.28,
    "advantage_vs_heongpu_percent": 19.9,
    "fp64_vs_int8_speedup_ws36": 1.65,
    "fp64_vs_int8_speedup_ws48": 1.74,
    "radix16_gemm_complexity_fraction": 1 / 8,
}

#: Fig. 2 anchor point quoted in the prose: BConv and IP shares of KeySwitch
#: data transfer at l = 35 under the KLSS method.
FIG2_KLSS_L35_SHARES = {"bconv": 0.434, "ip": 0.418}

#: Fig. 17 -- BatchSize sweep values.
FIG17_BATCH_SIZES = (8, 16, 32, 64, 128)
