"""Memory footprint of keys and ciphertexts.

Section 2.3 notes that the IP step "requires two sets of beta*beta~*alpha'
polynomial keys, which significantly impact overall performance", and
Fig. 17's BatchSize cap comes from the A100's 40 GiB.  This module sizes
everything so those constraints can be checked quantitatively.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ckks.params import ParameterSet
from ..gpu.device import A100, DeviceSpec
from ..gpu.kernels import word_bytes


def ciphertext_bytes(params: ParameterSet, level: Optional[int] = None) -> int:
    """One ciphertext: two polynomials over the level-``l`` basis."""
    level = params.max_level if level is None else level
    return 2 * (level + 1) * params.degree * word_bytes(params.wordsize)


def hybrid_evk_bytes(params: ParameterSet) -> int:
    """One Hybrid key-switching key: ``dnum`` pairs over the PQ basis."""
    limbs = params.max_level + 1 + params.alpha
    return 2 * params.dnum * limbs * params.degree * word_bytes(params.wordsize)


def klss_evk_bytes(params: ParameterSet, level: Optional[int] = None) -> int:
    """One KLSS key: ``beta~ x beta`` digit pairs over the ``alpha'``-limb
    auxiliary basis (the "two sets of beta*beta~*alpha' polynomial keys")."""
    if params.klss is None:
        raise ValueError(f"set {params.name} has no KLSS configuration")
    level = params.max_level if level is None else level
    alpha_prime, beta, beta_tilde = params.klss_dims(level)
    return (
        2
        * beta_tilde
        * beta
        * alpha_prime
        * params.degree
        * word_bytes(params.klss.wordsize_t)
    )


def bootstrap_key_bytes(params: ParameterSet, rotation_count: int = 40) -> int:
    """Rough bootstrap key material: relin + `rotation_count` Galois keys."""
    return (1 + rotation_count) * hybrid_evk_bytes(params)


def working_set_bytes(
    params: ParameterSet, batch: int, level: Optional[int] = None
) -> Dict[str, int]:
    """The resident working set of one batched KeySwitch."""
    level = params.max_level if level is None else level
    ct = batch * ciphertext_bytes(params, level)
    evk = (
        klss_evk_bytes(params, level)
        if params.klss is not None
        else hybrid_evk_bytes(params)
    )
    limbs = level + 1 + params.alpha
    scratch = 2 * batch * limbs * params.degree * word_bytes(params.wordsize)
    return {"ciphertexts": ct, "evk": evk, "scratch": scratch}


def max_batch_size(
    params: ParameterSet,
    device: DeviceSpec = A100,
    reserve_fraction: float = 0.25,
) -> int:
    """Largest power-of-two BatchSize fitting the device memory.

    `reserve_fraction` of memory stays free for keys, twiddles and the
    allocator.  Reproduces the paper's reason for stopping at 128.
    """
    budget = device.memory_gib * 2**30 * (1 - reserve_fraction)
    batch = 1
    while True:
        candidate = batch * 2
        need = working_set_bytes(params, candidate)
        if sum(need.values()) > budget:
            return batch
        batch = candidate
        if batch >= 1 << 20:  # safety stop
            return batch
