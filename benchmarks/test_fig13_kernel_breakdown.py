"""Fig. 13: optimised BConv/IP step breakdown vs pre-optimisation total.

The optimised kernels add pre/post-processing (reorder, bit-split/merge)
around the GEMM, but those stages are a small fraction of the kernel and
the whole optimised kernel is far below the original element-wise time.
"""

from repro.analysis.reporting import format_table
from repro.ckks.params import get_set
from repro.core.bconv_matmul import bconv_cost
from repro.core.ip_matmul import ip_cost
from repro.gpu.device import A100
from repro.gpu.trace import ExecutionTrace


def _time_ms(cost):
    return ExecutionTrace().add(cost).serial_time_s(A100) * 1e3


def _build_rows():
    params = get_set("C")
    level = params.max_level
    alpha_prime, beta, beta_tilde = params.klss_dims(level)
    batch, n = params.batch_size, params.degree
    wst = params.klss.wordsize_t

    rows = []
    # BConv: one Mod Up digit conversion.
    orig = bconv_cost(params.alpha, alpha_prime, batch, n, wst, style="elementwise")
    fused = bconv_cost(params.alpha, alpha_prime, batch, n, wst, style="gemm",
                       component="tcu_fp64", fused=True)
    staged = bconv_cost(params.alpha, alpha_prime, batch, n, wst, style="gemm",
                        component="tcu_fp64", fused=False)
    pre_post = max(_time_ms(staged) - _time_ms(fused), 0.0)
    rows.append(["bconv", f"{_time_ms(orig):.3f}", f"{_time_ms(fused):.3f}",
                 f"{pre_post:.3f}"])

    orig = ip_cost(beta, beta_tilde, alpha_prime, batch, n, wst, style="elementwise")
    fused = ip_cost(beta, beta_tilde, alpha_prime, batch, n, wst, style="gemm",
                    component="tcu_fp64", fused=True)
    staged = ip_cost(beta, beta_tilde, alpha_prime, batch, n, wst, style="gemm",
                     component="tcu_fp64", fused=False)
    pre_post = max(_time_ms(staged) - _time_ms(fused), 0.0)
    rows.append(["ip", f"{_time_ms(orig):.3f}", f"{_time_ms(fused):.3f}",
                 f"{pre_post:.3f}"])
    return rows


def test_fig13_kernel_breakdown(benchmark):
    rows = benchmark(_build_rows)
    print()
    print(
        format_table(
            ["kernel", "pre-opt total ms", "optimised ms", "pre/post overhead ms"],
            rows,
            title="Fig. 13: optimised kernel time vs pre-optimisation total "
            "(Set C, l=35, per batch)",
        )
    )
    for kernel, orig, opt, overhead in rows:
        orig, opt, overhead = float(orig), float(opt), float(overhead)
        assert opt < orig, f"{kernel}: optimisation must reduce total time"
        # "both constituting negligible proportions of the computational
        # workflow" -- pre/post-processing stays a modest fraction.
        assert overhead < 0.5 * orig, f"{kernel}: pre/post overhead too large"
