"""Property-based serving invariants under randomised traffic.

Hypothesis drives the whole (arrival trace, overload policy, batching
knobs) space and asserts the invariants the overload layer was built
around:

* **conservation** -- every offered request lands in exactly one outcome
  bucket: ``served + shed + rejected + cancelled == offered``, and the
  admission ledger's own ``admitted + shed + rejected == offered``.
* **bounded depth** -- the admission queue never exceeds its capacity.
* **ordering** -- FIFO dispatches in arrival order and EDF in deadline
  order *within each batch-compatible bucket* (policies only order
  requests the batcher may co-schedule).
* **no starvation** -- every admitted (never-shed, never-cancelled)
  request is eventually served; drains terminate.

The service model is a cheap fixed-time double: these are scheduling
properties, analytic timings would only slow the search.
"""

from hypothesis import given, settings, strategies as st

from repro.serving import (
    FixedServiceModel,
    OverloadPolicy,
    Request,
    Server,
)

FLAT = FixedServiceModel(lambda app, size: 7.0)

#: Two apps so buckets / per-app batching are exercised.
APPS = ("helr", "packbootstrap")


def traffic(min_size=1, max_size=40):
    """A strategy producing deterministic arrival traces."""
    return st.lists(
        st.tuples(
            st.sampled_from(APPS),
            st.floats(min_value=0.0, max_value=300.0),
            st.integers(min_value=0, max_value=2),  # priority
            st.sampled_from(("t0", "t1", "t2")),  # tenant
        ),
        min_size=min_size,
        max_size=max_size,
    )


def overload_policies():
    return st.builds(
        OverloadPolicy,
        queue_capacity=st.integers(min_value=1, max_value=12),
        shed_threshold=st.floats(min_value=0.1, max_value=1.0),
        shed_below_priority=st.integers(min_value=0, max_value=3),
        tenant_quota=st.one_of(
            st.none(), st.integers(min_value=1, max_value=4)
        ),
        evict_lower_priority=st.booleans(),
    )


def build_server(arrivals, policy=None, admission="fifo", **kwargs):
    defaults = dict(
        policy=admission, max_batch=4, max_wait_s=5.0, lanes=1, model=FLAT,
        overload=policy,
    )
    defaults.update(kwargs)
    server = Server(**defaults)
    for app, at_s, priority, tenant in arrivals:
        server.submit(
            app=app, arrival_s=at_s, priority=priority, tenant=tenant
        )
    return server


@settings(max_examples=60, deadline=None)
@given(arrivals=traffic(), policy=overload_policies())
def test_property_conservation(arrivals, policy):
    """admitted + shed + rejected == offered, at both accounting levels."""
    report = build_server(arrivals, policy).drain()
    assert report.offered == len(arrivals)
    assert (
        report.served + report.shed_count + report.rejected_count
        + report.cancelled_count
    ) == len(arrivals)
    ledger = report.admission
    assert ledger["offered"] == len(arrivals)
    assert (
        ledger["admitted"] + ledger["shed"] + ledger["rejected"]
        == ledger["offered"]
    )
    # No request appears in two buckets.
    rids = (
        [r.request.rid for r in report.records]
        + [r.rid for r in report.shed]
        + [r.rid for r in report.rejected]
        + [r.rid for r in report.cancelled]
    )
    assert len(rids) == len(set(rids)) == len(arrivals)


@settings(max_examples=60, deadline=None)
@given(arrivals=traffic(), policy=overload_policies())
def test_property_queue_depth_never_exceeds_capacity(arrivals, policy):
    report = build_server(arrivals, policy).drain()
    assert report.max_queue_depth <= policy.queue_capacity
    assert 0.0 <= report.peak_pressure <= 1.0


@settings(max_examples=60, deadline=None)
@given(arrivals=traffic())
def test_property_fifo_orders_within_bucket(arrivals):
    """FIFO: within one batch bucket, dispatch order follows arrival order."""
    report = build_server(arrivals, None, admission="fifo").drain()
    by_bucket = {}
    for record in sorted(report.records, key=lambda r: (r.dispatch_s, r.batch_id)):
        by_bucket.setdefault(record.request.app, []).append(record)
    for records in by_bucket.values():
        keys = [
            (r.request.arrival_s, r.request.rid)
            for r in sorted(records, key=lambda r: (r.dispatch_s, r.request.rid))
        ]
        dispatch_times = [r.dispatch_s for r in records]
        # A later-dispatched batch never holds a strictly earlier arrival
        # than any earlier-dispatched batch of the same bucket.
        seen_max = None
        for record in sorted(records, key=lambda r: r.dispatch_s):
            key = (record.request.arrival_s, record.request.rid)
            if seen_max is not None and record.dispatch_s > seen_max[0]:
                assert key > seen_max[1] or record.dispatch_s == seen_max[0]
            if seen_max is None or key > seen_max[1]:
                seen_max = (record.dispatch_s, key)
        assert len(keys) == len(records) and len(dispatch_times) == len(records)


@settings(max_examples=60, deadline=None)
@given(arrivals=traffic())
def test_property_edf_batches_order_by_deadline(arrivals):
    """EDF: each dispatched batch holds the earliest deadlines available."""
    report = build_server(arrivals, None, admission="edf").drain()
    for batch in report.batches:
        batch_rids = {r.rid for r in batch.requests}
        latest = max(r.deadline_s for r in batch.requests)
        # Any same-app request that arrived before this batch formed but
        # dispatched later must not have had a strictly earlier deadline.
        for record in report.records:
            other = record.request
            if (
                other.app == batch.app
                and other.rid not in batch_rids
                and other.arrival_s <= batch.formed_s
                and record.dispatch_s > batch.formed_s
            ):
                assert other.deadline_s >= latest or len(batch.requests) >= 4


@settings(max_examples=40, deadline=None)
@given(arrivals=traffic(min_size=1, max_size=25), policy=overload_policies())
def test_property_no_starvation_of_admitted_requests(arrivals, policy):
    """Every admitted request is served: drains terminate with nothing lost."""
    server = build_server(arrivals, policy, admission="priority")
    report = server.drain()
    dropped = {r.rid for r in report.shed} | {r.rid for r in report.rejected}
    served = {r.request.rid for r in report.records}
    all_rids = set(range(len(arrivals)))
    assert served == all_rids - dropped
    # Served latencies are finite and non-negative; clocks are monotone.
    for record in report.records:
        assert record.finish_s >= record.start_s >= record.dispatch_s
        assert record.dispatch_s >= record.request.arrival_s
        assert record.latency_s >= 0.0


@settings(max_examples=40, deadline=None)
@given(arrivals=traffic(min_size=2, max_size=20), data=st.data())
def test_property_cancels_conserve(arrivals, data):
    """Randomised cancels: outcomes still partition the offered set."""
    server = build_server(arrivals, None)
    count = len(arrivals)
    cancel_rids = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=count - 1),
            max_size=count,
            unique=True,
        )
    )
    for rid in cancel_rids:
        at_s = data.draw(
            st.floats(min_value=0.0, max_value=400.0), label=f"cancel-{rid}"
        )
        server.cancel(rid, at_s)
    report = server.drain()
    assert (
        report.served + report.cancelled_count == count
    )  # no overload policy: nothing shed or rejected
    cancelled = {r.rid for r in report.cancelled}
    served = {r.request.rid for r in report.records}
    assert cancelled.isdisjoint(served)
    assert cancelled | served == set(range(count))
    assert cancelled <= set(cancel_rids)
