"""One cache-stats vocabulary for every cache in the process.

Before this module each caching layer grew its own counters dataclass --
``core.trace_cache.CacheStats``, ``math.ntt.PlanCacheStats`` and the
key-switch/op-plan LRU all carried structurally identical (hits, misses,
evictions) triples with slightly different surfaces.  They now share one
:class:`CacheStats`, and every long-lived cache *registers* itself here so
observability consumers (the metrics registry, :class:`ServingReport`, the
``repro metrics`` CLI) can enumerate all of them without knowing which
subsystem owns which cache.

This module sits below every other layer (stdlib only), so ``math`` --
which cannot import ``core`` -- and ``core`` both import it freely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Tuple


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache (trace, plan, op-plan...)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


#: name -> (stats provider, size provider).  Providers are zero-argument
#: callables so registration never pins a cache's *contents*, only a way
#: to read its counters at snapshot time.
_CACHE_PROVIDERS: Dict[str, Tuple[Callable[[], CacheStats], Callable[[], int]]] = {}
_LOCK = threading.Lock()


def register_cache(
    name: str,
    stats_fn: Callable[[], CacheStats],
    size_fn: Callable[[], int] = lambda: 0,
) -> None:
    """Register (or re-register) a named cache with the stats directory.

    Re-registration replaces the providers: module reloads and tests that
    rebuild a global cache keep the directory pointing at the live object.
    """
    with _LOCK:
        _CACHE_PROVIDERS[name] = (stats_fn, size_fn)


def registered_caches() -> Tuple[str, ...]:
    with _LOCK:
        return tuple(sorted(_CACHE_PROVIDERS))


def cache_stats(name: str) -> CacheStats:
    """Point-in-time counters of one registered cache."""
    with _LOCK:
        stats_fn, _ = _CACHE_PROVIDERS[name]
    return stats_fn()


def all_cache_stats() -> Dict[str, CacheStats]:
    """Point-in-time counters of every registered cache, by name."""
    with _LOCK:
        providers = dict(_CACHE_PROVIDERS)
    return {name: stats_fn() for name, (stats_fn, _) in providers.items()}


def all_cache_sizes() -> Dict[str, int]:
    """Resident entry counts of every registered cache, by name."""
    with _LOCK:
        providers = dict(_CACHE_PROVIDERS)
    return {name: size_fn() for name, (_, size_fn) in providers.items()}
