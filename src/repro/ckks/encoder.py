"""CKKS encoder: packing complex vectors into ring plaintexts.

Implements the canonical-embedding encoding of Cheon-Kim-Kim-Song: a vector
of ``N/2`` complex *slots* is mapped to a real polynomial that evaluates to
those values (times the scale) at the primitive ``2N``-th roots of unity
``zeta**(5**j)``.  The evaluation/interpolation runs in ``O(N log N)``
through a twisted FFT rather than a Vandermonde solve.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..math.polynomial import RnsPolynomial
from ..math.rns import RnsBasis
from .params import CkksParameters


class Plaintext:
    """An encoded message: an integer polynomial plus its scale."""

    __slots__ = ("poly", "scale")

    def __init__(self, poly: RnsPolynomial, scale: float):
        self.poly = poly
        self.scale = scale

    @property
    def level(self) -> int:
        return len(self.poly.basis) - 1

    def __repr__(self) -> str:
        return f"Plaintext(level={self.level}, scale=2^{np.log2(self.scale):.1f})"


class CkksEncoder:
    """Encode/decode between complex slot vectors and ring plaintexts."""

    def __init__(self, params: CkksParameters):
        self.params = params
        self.degree = params.degree
        self.slots = params.slots
        self._index_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._twist = np.exp(1j * np.pi * np.arange(self.degree) / self.degree)

    # -- slot/FFT-bin bookkeeping -------------------------------------------------

    def _slot_bins(self) -> Tuple[np.ndarray, np.ndarray]:
        """FFT bin indices of slot roots and of their conjugate roots.

        Slot ``j`` lives at root ``zeta**e_j`` with ``e_j = 5**j mod 2N``;
        the twisted FFT places the evaluation at the odd exponent
        ``2k + 1`` into bin ``k``.
        """
        cached = self._index_cache.get(self.degree)
        if cached is not None:
            return cached
        two_n = 2 * self.degree
        exponents = np.empty(self.slots, dtype=np.int64)
        e = 1
        for j in range(self.slots):
            exponents[j] = e
            e = e * 5 % two_n
        slot_bins = (exponents - 1) // 2
        conj_bins = (two_n - exponents - 1) // 2
        self._index_cache[self.degree] = (slot_bins, conj_bins)
        return slot_bins, conj_bins

    # -- float-level embedding ------------------------------------------------------

    def embed(self, values: np.ndarray, scale: Optional[float] = None) -> np.ndarray:
        """Inverse canonical embedding: slots -> scaled integer coefficients."""
        scale = self.params.scale if scale is None else scale
        values = np.asarray(values, dtype=np.complex128)
        if values.ndim != 1 or len(values) > self.slots:
            raise ValueError(f"expected <= {self.slots} slot values")
        if len(values) < self.slots:
            values = np.pad(values, (0, self.slots - len(values)))
        slot_bins, conj_bins = self._slot_bins()
        spectrum = np.zeros(self.degree, dtype=np.complex128)
        spectrum[slot_bins] = values
        spectrum[conj_bins] = np.conj(values)
        # evaluations[k] = m(zeta**(2k+1)) = N * ifft(coeffs * twist)[k]
        # => coeffs = fft(spectrum / N) / twist  (times N/N bookkeeping)
        twisted = np.fft.fft(spectrum) / self.degree
        coeffs = twisted / self._twist
        scaled = np.round(coeffs.real * scale)
        if np.all(np.abs(scaled) < float(2**62)):
            # Machine-word coefficients decompose natively per limb.
            return scaled.astype(np.int64)
        return np.array([int(v) for v in scaled], dtype=object)

    def project(self, coeffs: np.ndarray, scale: float) -> np.ndarray:
        """Canonical embedding: integer coefficients -> complex slots."""
        coeffs = np.asarray(coeffs, dtype=object)
        if coeffs.shape != (self.degree,):
            raise ValueError(f"expected {self.degree} coefficients")
        floats = coeffs.astype(np.float64)
        evaluations = np.fft.ifft(floats * self._twist) * self.degree
        slot_bins, _ = self._slot_bins()
        return evaluations[slot_bins] / scale

    # -- ring-level encode/decode -----------------------------------------------------

    def encode(self, values, level: Optional[int] = None, scale: Optional[float] = None) -> Plaintext:
        """Encode complex values into a plaintext at `level` (default: top)."""
        level = self.params.max_level if level is None else level
        scale = self.params.scale if scale is None else scale
        coeffs = self.embed(np.atleast_1d(np.asarray(values)), scale)
        basis = self.params.q_basis(level)
        poly = RnsPolynomial.from_int_coeffs(coeffs, self.degree, basis)
        return Plaintext(poly, scale)

    def decode(self, plaintext: Plaintext) -> np.ndarray:
        """Decode a plaintext back to its complex slot values."""
        coeffs = plaintext.poly.to_int_coeffs()
        return self.project(coeffs, plaintext.scale)

    def encode_constant(self, value: float, level: Optional[int] = None, scale: Optional[float] = None) -> Plaintext:
        """Encode a scalar broadcast across every slot."""
        return self.encode(np.full(self.slots, value, dtype=np.complex128), level, scale)
