"""Table 6: primitive-operation times at l = 35 across implementations."""

import pytest

from repro.analysis.paper_data import TABLE6_MICROSECONDS
from repro.analysis.reporting import format_table

OPS = ("hmult", "hrotate", "pmult", "hadd", "padd", "rescale")


def _build_table(systems):
    return {
        label: {op: ctx.operation_time_us(op, 35) for op in OPS}
        for label, ctx in systems
    }


@pytest.fixture(scope="module")
def systems(tensorfhe_a, tensorfhe_b, tensorfhe_c, heongpu_e, neo_c):
    return [
        ("TensorFHE(A)", tensorfhe_a),
        ("TensorFHE(B)", tensorfhe_b),
        ("TensorFHE(C)", tensorfhe_c),
        ("HEonGPU(E)", heongpu_e),
        ("Neo(C)", neo_c),
    ]


PAPER_KEYS = {
    "TensorFHE(A)": ("TensorFHE", "A"),
    "TensorFHE(B)": ("TensorFHE", "B"),
    "TensorFHE(C)": ("TensorFHE", "C"),
    "HEonGPU(E)": ("HEonGPU", "E"),
    "Neo(C)": ("Neo", "C"),
}


def test_table6_operations(benchmark, systems):
    table = benchmark(_build_table, systems)
    rows = []
    for label, times in table.items():
        paper = TABLE6_MICROSECONDS[PAPER_KEYS[label]]
        rows.append([label] + [f"{times[op]:.1f}" for op in OPS])
        rows.append(["  (paper)"] + [f"{paper[op]:.1f}" for op in OPS])
    print()
    print(
        format_table(
            ["system"] + [op.upper() for op in OPS],
            rows,
            title="Table 6: operation time at l = 35, microseconds "
            "(per ciphertext, batch-amortised)",
        )
    )
    neo = table["Neo(C)"]
    # --- Shape assertions --------------------------------------------------
    # KeySwitch-bearing ops: Neo wins by a large factor.
    for label in ("TensorFHE(A)", "TensorFHE(B)", "TensorFHE(C)", "HEonGPU(E)"):
        for op in ("hmult", "hrotate"):
            assert table[label][op] > 1.5 * neo[op], (label, op)
    # Element-wise ops are implementation-agnostic (all rows within ~50%).
    for op in ("pmult", "hadd", "padd"):
        values = [table[label][op] for label in table]
        assert max(values) < 1.6 * min(values), op
    # Absolute magnitudes: element-wise ops land in the paper's range.
    assert 30 < neo["padd"] < 120
    assert 40 < neo["pmult"] < 200
    assert 1000 < neo["hmult"] < 8000
    # HMULT ~ HROTATE (both are KeySwitch-dominated).
    assert abs(neo["hmult"] - neo["hrotate"]) < 0.25 * neo["hmult"]
    # TensorFHE's HMULT grows with dnum (A < B < C ordering of Table 6).
    assert (
        table["TensorFHE(A)"]["hmult"]
        < table["TensorFHE(B)"]["hmult"]
        < table["TensorFHE(C)"]["hmult"]
    )
