"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_params_all(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    for name in "ABCDEFGH":
        assert f"\n{name} " in out


def test_params_single(capsys):
    assert main(["params", "c"]) == 0
    out = capsys.readouterr().out
    assert "C" in out and "T=48" in out


def test_params_unknown(capsys):
    assert main(["params", "Z"]) == 2


@pytest.mark.parametrize("number", ["2", "6", "7", "8"])
def test_tables(capsys, number):
    assert main(["table", number]) == 0
    assert capsys.readouterr().out.strip()


def test_table_unknown(capsys):
    assert main(["table", "99"]) == 2


@pytest.mark.parametrize("number", ["3", "14", "16"])
def test_figs(capsys, number):
    assert main(["fig", number]) == 0
    assert capsys.readouterr().out.strip()


def test_fig_unknown(capsys):
    assert main(["fig", "99"]) == 2


def test_fig16_shape(capsys):
    main(["fig", "16"])
    out = capsys.readouterr().out
    assert "KLSS-48" in out and "Hybrid" in out


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])


class TestProfileCommand:
    def test_profile_default_system(self, capsys):
        assert main(["profile", "packbootstrap"]) == 0
        out = capsys.readouterr().out
        assert "per-operation" in out
        assert "per-kernel" in out
        assert "trace cache" in out

    @pytest.mark.parametrize("system", ["tensorfhe", "heongpu", "cpu"])
    def test_profile_baseline_systems(self, capsys, system):
        assert main(["profile", "helr", "--system", system]) == 0
        assert "per-operation" in capsys.readouterr().out

    def test_profile_with_set_and_batch(self, capsys):
        assert main(["profile", "resnet20", "--set", "D", "--batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "set D" in out and "batch 64" in out

    def test_profile_chrome_trace_output(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(["profile", "packbootstrap", "--chrome-trace", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert "chrome trace" in capsys.readouterr().out

    def test_profile_unknown_app(self, capsys):
        assert main(["profile", "nosuchapp"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_profile_unknown_system(self, capsys):
        assert main(["profile", "helr", "--system", "tpu"]) == 2
        assert "unknown system" in capsys.readouterr().err


class TestServeCommand:
    SMOKE = ["serve", "--workload", "smoke", "--max-batch", "16"]

    def test_serve_smoke_report(self, capsys):
        assert main(self.SMOKE) == 0
        out = capsys.readouterr().out
        assert "workload 'smoke'" in out
        assert "throughput" in out and "P95" in out and "SLO" in out
        assert "helr" in out and "packbootstrap" in out

    def test_serve_explicit_spec_and_policy(self, capsys):
        assert main(["serve", "--workload", "helr:5:1.0", "--policy", "edf",
                     "--lanes", "1", "--seed", "3"]) == 0
        assert "5x helr" in capsys.readouterr().out

    def test_serve_chrome_trace_output(self, capsys, tmp_path):
        import json

        path = tmp_path / "serving.json"
        assert main(self.SMOKE + ["--chrome-trace", str(path)]) == 0
        assert json.loads(path.read_text())["traceEvents"]
        assert "serving timeline" in capsys.readouterr().out

    def test_serve_same_seed_same_report(self, capsys):
        assert main(self.SMOKE + ["--seed", "11"]) == 0
        first = capsys.readouterr().out
        assert main(self.SMOKE + ["--seed", "11"]) == 0
        assert capsys.readouterr().out == first

    def test_serve_unknown_policy(self, capsys):
        assert main(["serve", "--policy", "lifo"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_serve_unknown_workload(self, capsys):
        assert main(["serve", "--workload", "nosuchapp:5:1.0"]) == 2
        assert "unknown application" in capsys.readouterr().err


class TestBenchCommand:
    SMOKE = ["bench", "keyswitch", "--degree", "512", "--dnum", "2",
             "--repeats", "1"]

    def test_bench_keyswitch_smoke(self, capsys):
        assert main(self.SMOKE) == 0
        out = capsys.readouterr().out
        assert "KeySwitch loop vs GEMM" in out
        assert "hybrid" in out and "klss" in out
        assert "speedup" in out
        assert "plan cache:" in out and "hit rate" in out

    def test_bench_bootstrap_smoke(self, capsys):
        assert main(["bench", "bootstrap", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Bootstrap loop vs GEMM plan" in out
        assert "speedup" in out and "bit-identical" in out
        assert "True" in out
        assert "plan cache:" in out

    def test_bench_unknown_kernel(self, capsys):
        assert main(["bench", "ntt"]) == 2
        assert "unknown bench kernel" in capsys.readouterr().err

    def test_bench_rejects_bad_degree(self, capsys):
        assert main(["bench", "keyswitch", "--degree", "100"]) == 2
        assert "power of two" in capsys.readouterr().err

    def test_bench_rejects_bad_counts(self, capsys):
        assert main(["bench", "keyswitch", "--repeats", "0"]) == 2
        assert ">= 1" in capsys.readouterr().err
