"""Tests for the Fig. 3 Booth analysis and the report formatting helpers."""

import pytest

from repro.analysis import booth, reporting


class TestBooth:
    def test_plane_products_match_paper(self):
        bars = booth.fig3_comparison()
        assert bars["int8_ws36"].plane_products == 25
        assert bars["int8_ws48"].plane_products == 36
        assert bars["fp64_ws36"].plane_products == 3
        assert bars["fp64_ws48"].plane_products == 4

    def test_fp64_wins_both_wordsizes(self):
        assert booth.fp64_speedup(36) > 1.0
        assert booth.fp64_speedup(48) > 1.0

    def test_speedup_in_paper_ballpark(self):
        """Paper: 1.65x at WS 36, 1.74x at WS 48 -- expect within ~2.5x."""
        assert 1.0 < booth.fp64_speedup(36) < 4.5
        assert 1.0 < booth.fp64_speedup(48) < 4.5

    def test_total_is_sum_of_steps(self):
        steps = booth.fp64_step_times(36)
        assert steps.total_s == pytest.approx(
            steps.split_s + steps.matmul_s + steps.merge_s
        )

    def test_int8_raw_matmul_is_fast_per_plane(self):
        """Fig. 3's nuance: per plane set, the INT8 matmul step is quick --
        the loss is the 25-36 plane products."""
        int8 = booth.int8_step_times(36)
        fp64 = booth.fp64_step_times(36)
        per_plane_int8 = int8.matmul_s / int8.plane_products
        per_plane_fp64 = fp64.matmul_s / fp64.plane_products
        assert per_plane_int8 < per_plane_fp64


class TestReporting:
    def test_format_table_alignment(self):
        text = reporting.format_table(
            ["name", "value"], [["a", 1], ["long-name", 2.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_table_none_dash(self):
        text = reporting.format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        assert reporting._cell(0.5) == "0.5"
        assert reporting._cell(1234567.0) == "1.23e+06"
        assert reporting._cell(0) == "0"
        assert reporting._cell("abc") == "abc"

    def test_format_series(self):
        line = reporting.format_series("s", {1: 2.0, 2: 3.0}, unit="ms")
        assert line.startswith("s: ")
        assert "1=2ms" in line and "2=3ms" in line

    def test_ratio_report(self):
        line = reporting.ratio_report("x", measured=2.0, paper=1.0)
        assert "x2.00" in line
        assert "OK" in reporting.ratio_report("x", 1.05, 1.0, tolerance=0.1)
        assert "DIVERGES" in reporting.ratio_report("x", 2.0, 1.0, tolerance=0.1)
