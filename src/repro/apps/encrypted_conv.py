"""Functional encrypted 2-D convolution (the ResNet substrate, in miniature).

The paper's ResNet workloads build on the multiplexed-convolution technique
of Lee et al.: an image is packed row-major into the slots, and a ``k x k``
convolution becomes ``k*k`` slot rotations, each multiplied by a plaintext
mask carrying the corresponding filter tap, summed up.  This module
implements exactly that on the real CKKS API, so a (small) encrypted
convolution can be verified against ``scipy``-style direct convolution.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..ckks.ciphertext import Ciphertext
from ..ckks.encoder import CkksEncoder
from ..ckks.evaluator import Evaluator


class EncryptedConv2d:
    """Same-padding 2-D convolution over a slot-packed image.

    Args:
        encoder: CKKS encoder; the image must fit its slot count.
        evaluator: evaluator with Galois keys for
            :meth:`required_rotations`.
        height, width: image dimensions (``height * width <= slots``).
        kernel: ``k x k`` real filter taps, odd ``k``.
    """

    def __init__(
        self,
        encoder: CkksEncoder,
        evaluator: Evaluator,
        height: int,
        width: int,
        kernel: np.ndarray,
    ):
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError("kernel must be square")
        if kernel.shape[0] % 2 == 0:
            raise ValueError("kernel size must be odd")
        if height * width > encoder.slots:
            raise ValueError(
                f"{height}x{width} image does not fit {encoder.slots} slots"
            )
        self.encoder = encoder
        self.evaluator = evaluator
        self.height = height
        self.width = width
        self.kernel = kernel
        self.radius = kernel.shape[0] // 2
        self._taps = self._build_taps()

    def _build_taps(self) -> List[Tuple[int, np.ndarray]]:
        """(rotation steps, validity mask * tap) per filter position.

        Rotating the row-major packing by ``dy * width + dx`` aligns the
        neighbour ``(y + dy, x + dx)`` under each output pixel; the mask
        zeroes contributions that would wrap across the image border.
        """
        taps = []
        for dy in range(-self.radius, self.radius + 1):
            for dx in range(-self.radius, self.radius + 1):
                weight = self.kernel[dy + self.radius, dx + self.radius]
                if weight == 0.0:
                    continue
                steps = dy * self.width + dx
                mask = np.zeros(self.encoder.slots, dtype=np.complex128)
                for y in range(self.height):
                    if not 0 <= y + dy < self.height:
                        continue
                    for x in range(self.width):
                        if not 0 <= x + dx < self.width:
                            continue
                        mask[y * self.width + x] = weight
                taps.append((steps, mask))
        return taps

    def required_rotations(self) -> List[int]:
        """Slot rotations needing Galois keys (negative = right rotation)."""
        slots = self.encoder.slots
        return sorted({steps % slots for steps, _ in self._taps if steps % slots})

    def pack(self, image: np.ndarray):
        """Row-major packing of an image into an encodable slot vector."""
        image = np.asarray(image, dtype=np.float64)
        if image.shape != (self.height, self.width):
            raise ValueError(f"expected {self.height}x{self.width} image")
        slots = np.zeros(self.encoder.slots, dtype=np.complex128)
        slots[: image.size] = image.reshape(-1)
        return slots

    def unpack(self, slots: np.ndarray) -> np.ndarray:
        return np.asarray(slots[: self.height * self.width]).real.reshape(
            self.height, self.width
        )

    def apply(self, ct: Ciphertext) -> Ciphertext:
        """Homomorphic convolution (consumes one level)."""
        ev = self.evaluator
        result = None
        for steps, mask in self._taps:
            rotated = ev.rotate(ct, steps % self.encoder.slots) if steps % self.encoder.slots else ct
            pt = self.encoder.encode(mask, level=rotated.level)
            term = ev.multiply_plain(rotated, pt)
            result = term if result is None else ev.add(result, term)
        return ev.rescale(result)

    def reference(self, image: np.ndarray) -> np.ndarray:
        """Plaintext same-padding convolution (zero boundary)."""
        image = np.asarray(image, dtype=np.float64)
        out = np.zeros_like(image)
        r = self.radius
        for y in range(self.height):
            for x in range(self.width):
                acc = 0.0
                for dy in range(-r, r + 1):
                    for dx in range(-r, r + 1):
                        yy, xx = y + dy, x + dx
                        if 0 <= yy < self.height and 0 <= xx < self.width:
                            acc += self.kernel[dy + r, dx + r] * image[yy, xx]
                out[y, x] = acc
        return out
