"""Tests for the functional bootstrapping pipeline."""

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.ckks.bootstrap import Bootstrapper
from repro.ckks.keys import conjugation_galois_power


@pytest.fixture(scope="module")
def boot_setup():
    # q0 / Delta = 4 keeps the sine-approximation error amplification low.
    params = CkksParameters(
        degree=32, max_level=12, wordsize=25, dnum=4, first_prime_bits=27
    )
    gen = KeyGenerator(params, seed=5)
    sk = gen.secret_key(hamming_weight=1)  # sparse: |I| <= 1 after ModRaise
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=6)
    decryptor = Decryptor(params, sk)
    evaluator = Evaluator(params, relin_key=gen.relinearisation_key(sk))
    boot = Bootstrapper(params, encoder, evaluator, eval_degree=15,
                        overflow_bound=1.0)
    galois = gen.rotation_keys(sk, boot.required_rotations())
    conj = conjugation_galois_power(params.degree)
    galois.add(conj, gen.galois_key(sk, conj))
    evaluator.galois_keys = galois
    return params, sk, encoder, encryptor, decryptor, evaluator, boot


class TestModRaise:
    def test_raises_level(self, boot_setup):
        params, sk, encoder, encryptor, decryptor, evaluator, boot = boot_setup
        ct = encryptor.encrypt(encoder.encode([0.25], level=0))
        raised = boot.mod_raise(ct)
        assert raised.level == params.max_level

    def test_decrypts_to_message_plus_q0_multiple(self, boot_setup):
        params, sk, encoder, encryptor, decryptor, evaluator, boot = boot_setup
        rng = np.random.default_rng(0)
        v = 0.3 * rng.normal(size=params.slots)
        pt = encoder.encode(v, level=0)
        ct = encryptor.encrypt(pt)
        raised = boot.mod_raise(ct)
        s = sk.poly(params.q_basis(params.max_level))
        decrypted = raised.c0.add(raised.c1.multiply(s).from_ntt()).to_int_coeffs()
        q0 = params.moduli[0]
        for got, want in zip(decrypted, pt.poly.to_int_coeffs()):
            residue = (int(got) - int(want)) % q0
            noise = min(residue, q0 - residue)
            assert noise < 200  # message + q0*I + small noise only

    def test_rejects_non_level0(self, boot_setup):
        params, _, encoder, encryptor, *_ , boot = boot_setup
        ct = encryptor.encrypt(encoder.encode([0.25], level=3))
        with pytest.raises(ValueError):
            boot.mod_raise(ct)

    @pytest.mark.parametrize("bad_target", [0, -1, 13, 100])
    def test_rejects_out_of_range_target_level(self, boot_setup, bad_target):
        params, _, encoder, encryptor, *_, boot = boot_setup
        ct = encryptor.encrypt(encoder.encode([0.25], level=0))
        with pytest.raises(ValueError, match="target_level"):
            boot.mod_raise(ct, target_level=bad_target)


class TestStages:
    def test_coeff_to_slot_extracts_coefficients(self, boot_setup):
        params, sk, encoder, encryptor, decryptor, evaluator, boot = boot_setup
        rng = np.random.default_rng(1)
        v = 0.3 * rng.normal(size=params.slots)
        ct = encryptor.encrypt(encoder.encode(v, level=0))
        raised = boot.mod_raise(ct)
        s = sk.poly(params.q_basis(params.max_level))
        coeffs = raised.c0.add(raised.c1.multiply(s).from_ntt()).to_int_coeffs()
        q0 = params.moduli[0]
        u_lo, u_hi = boot.coeff_to_slot(raised)
        got_lo = encoder.decode(decryptor.decrypt(u_lo))
        got_hi = encoder.decode(decryptor.decrypt(u_hi))
        want_lo = np.array([float(c) for c in coeffs[: params.slots]]) / q0
        want_hi = np.array([float(c) for c in coeffs[params.slots :]]) / q0
        assert np.abs(got_lo - want_lo).max() < 1e-4
        assert np.abs(got_hi - want_hi).max() < 1e-4

    def test_eval_mod_removes_integer_part(self, boot_setup):
        params, sk, encoder, encryptor, decryptor, evaluator, boot = boot_setup
        rng = np.random.default_rng(2)
        # Slots hold I + eps with small eps: eval_mod should return ~eps.
        integer_part = rng.integers(-1, 2, size=params.slots).astype(float)
        eps = 0.02 * rng.normal(size=params.slots)
        ct = encryptor.encrypt(encoder.encode(integer_part + eps))
        out = boot.eval_mod(ct)
        got = encoder.decode(decryptor.decrypt(out)).real
        assert np.abs(got - eps).max() < 5e-3


#: Documented precision envelope of the reduced-parameter bootstrap:
#: with the degree-15 sine approximation, q0/Delta = 4 and a sparse
#: (|h| = 1) key, the worst slot error observed across seeds is ~9e-3;
#: 2e-2 gives a 2x margin while still catching any precision regression
#: an order of magnitude before the 5e-2 usability bound below.
BOOTSTRAP_MAX_ERROR = 2e-2
#: Mean (per-slot average) error is a few 1e-3; bound it separately so a
#: regression that shifts every slot a little cannot hide under the max.
BOOTSTRAP_MEAN_ERROR = 8e-3


class TestPrecisionEnvelope:
    """End-to-end precision: bootstrap output error stays inside the
    documented envelope, not merely within decode tolerance."""

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_round_trip_error_within_envelope(self, boot_setup, seed):
        params, sk, encoder, encryptor, decryptor, evaluator, boot = boot_setup
        rng = np.random.default_rng(seed)
        v = np.clip(0.3 * rng.normal(size=params.slots), -0.8, 0.8)
        ct = encryptor.encrypt(encoder.encode(v, level=0))
        refreshed = boot.bootstrap(ct)
        assert refreshed.level > 0
        got = encoder.decode(decryptor.decrypt(refreshed)).real
        errors = np.abs(got - v)
        assert errors.max() < BOOTSTRAP_MAX_ERROR, (
            f"seed {seed}: max slot error {errors.max():.4f} exceeds the "
            f"documented {BOOTSTRAP_MAX_ERROR} envelope"
        )
        assert errors.mean() < BOOTSTRAP_MEAN_ERROR, (
            f"seed {seed}: mean slot error {errors.mean():.4f} exceeds "
            f"{BOOTSTRAP_MEAN_ERROR}"
        )


class TestEndToEnd:
    def test_bootstrap_refreshes_levels(self, boot_setup):
        params, sk, encoder, encryptor, decryptor, evaluator, boot = boot_setup
        rng = np.random.default_rng(3)
        v = 0.3 * rng.normal(size=params.slots)
        ct = encryptor.encrypt(encoder.encode(v, level=0))
        refreshed = boot.bootstrap(ct)
        assert refreshed.level > 0
        got = encoder.decode(decryptor.decrypt(refreshed)).real
        assert np.abs(got - v).max() < 0.05

    def test_refreshed_ciphertext_is_usable(self, boot_setup):
        """The whole point: multiply *after* bootstrapping."""
        params, sk, encoder, encryptor, decryptor, evaluator, boot = boot_setup
        rng = np.random.default_rng(4)
        v = 0.4 * rng.normal(size=params.slots)
        ct = encryptor.encrypt(encoder.encode(v, level=0))
        refreshed = boot.bootstrap(ct)
        squared = evaluator.rescale(evaluator.square(refreshed))
        got = encoder.decode(decryptor.decrypt(squared)).real
        assert np.abs(got - v * v).max() < 0.05

    def test_mod_raise_to_partial_level(self, boot_setup):
        params, sk, encoder, encryptor, decryptor, evaluator, boot = boot_setup
        ct = encryptor.encrypt(encoder.encode([0.25], level=0))
        raised = boot.mod_raise(ct, target_level=6)
        assert raised.level == 6
