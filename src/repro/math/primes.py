"""NTT-friendly prime generation.

CKKS in RNS form needs chains of primes ``q ≡ 1 (mod 2N)`` so that the
negacyclic NTT of degree ``N`` exists modulo each limb.  This module
provides deterministic Miller-Rabin primality testing (exact below 3.3e24,
probabilistic with extra random bases above) and generators for prime
chains of a requested bit width.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)

# Deterministic witness set for n < 3,317,044,064,679,887,385,961,981
# (Sorenson & Webster); covers every modulus size used in this library.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def is_prime(candidate: int) -> bool:
    """Miller-Rabin primality test, deterministic for all sizes we use."""
    if candidate < 2:
        return False
    for small in _SMALL_PRIMES:
        if candidate == small:
            return True
        if candidate % small == 0:
            return False
    # Write candidate - 1 = d * 2**r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MR_WITNESSES:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = x * x % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def ntt_primes(bits: int, degree: int, count: int, descending: bool = True) -> List[int]:
    """Return `count` primes of exactly `bits` bits with ``p ≡ 1 (mod 2N)``.

    Args:
        bits: requested bit width (``p`` satisfies ``2**(bits-1) <= p < 2**bits``).
        degree: ring degree ``N``; primes are 1 modulo ``2 * degree``.
        count: how many distinct primes to return.
        descending: scan down from ``2**bits`` (True) or up from
            ``2**(bits-1)`` (False); lets callers build disjoint chains.
    """
    primes: List[int] = []
    for p in _iter_ntt_primes(bits, degree, descending):
        primes.append(p)
        if len(primes) == count:
            return primes
    raise ValueError(
        f"could not find {count} primes of {bits} bits congruent to 1 mod {2 * degree}"
    )


def _iter_ntt_primes(bits: int, degree: int, descending: bool) -> Iterator[int]:
    """Yield `bits`-bit primes congruent to 1 modulo ``2 * degree``."""
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    step = 2 * degree
    if 1 << (bits - 1) <= step:
        raise ValueError(f"{bits}-bit primes cannot be 1 mod {step}")
    low, high = 1 << (bits - 1), 1 << bits
    if descending:
        start = (high - 1) - ((high - 1 - 1) % step)  # largest value ≡ 1 mod step
        candidates = range(start, low, -step)
    else:
        start = low + ((1 - low) % step)
        candidates = range(start, high, step)
    for candidate in candidates:
        if is_prime(candidate):
            yield candidate


def disjoint_prime_chains(
    bits_per_chain: Sequence[int], degree: int, counts: Sequence[int]
) -> List[List[int]]:
    """Build several chains of NTT primes guaranteed pairwise disjoint.

    Used to carve the main modulus chain ``Q``, the special primes ``P`` and
    the KLSS auxiliary basis ``T`` out of non-overlapping prime pools even
    when they share a bit width.
    """
    if len(bits_per_chain) != len(counts):
        raise ValueError("bits_per_chain and counts must have equal length")
    used = set()
    chains: List[List[int]] = []
    for bits, count in zip(bits_per_chain, counts):
        chain: List[int] = []
        for p in _iter_ntt_primes(bits, degree, descending=True):
            if p in used:
                continue
            chain.append(p)
            used.add(p)
            if len(chain) == count:
                break
        if len(chain) != count:
            raise ValueError(
                f"exhausted {bits}-bit primes before collecting {count} of them"
            )
        chains.append(chain)
    return chains


def primitive_root(modulus: int) -> int:
    """Find the smallest primitive root of the prime `modulus`."""
    if not is_prime(modulus):
        raise ValueError(f"{modulus} is not prime")
    order = modulus - 1
    factors = _factorise(order)
    for g in range(2, modulus):
        if all(pow(g, order // f, modulus) != 1 for f in factors):
            return g
    raise ValueError(f"no primitive root found for {modulus}")  # pragma: no cover


def root_of_unity(order: int, modulus: int) -> int:
    """Return a primitive `order`-th root of unity modulo the prime `modulus`."""
    if (modulus - 1) % order != 0:
        raise ValueError(f"{order} does not divide {modulus} - 1")
    g = primitive_root(modulus)
    root = pow(g, (modulus - 1) // order, modulus)
    # Sanity: root has exact multiplicative order `order`.
    if pow(root, order // 2, modulus) == 1:
        raise ValueError(f"{root} is not a primitive {order}-th root")  # pragma: no cover
    return root


def _factorise(value: int) -> List[int]:
    """Return the distinct prime factors of `value` (trial division + Pollard rho)."""
    factors = set()
    for p in _SMALL_PRIMES:
        while value % p == 0:
            factors.add(p)
            value //= p
    stack = [value] if value > 1 else []
    while stack:
        n = stack.pop()
        if n == 1:
            continue
        if is_prime(n):
            factors.add(n)
            continue
        divisor = _pollard_rho(n)
        stack.extend((divisor, n // divisor))
    return sorted(factors)


def _pollard_rho(n: int) -> int:
    """Pollard's rho factorisation step for odd composite `n`."""
    if n % 2 == 0:
        return 2
    for increment in range(1, 64):
        x = y = 2
        d = 1
        while d == 1:
            x = (x * x + increment) % n
            y = (y * y + increment) % n
            y = (y * y + increment) % n
            d = _gcd(abs(x - y), n)
        if d != n:
            return d
    raise ValueError(f"pollard rho failed for {n}")  # pragma: no cover


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
