"""Fleet-scale serving: route requests across N modeled GPUs.

One modeled A100 tops out around three requests per second on the mixed
workload -- a "millions of users" arrival stream provably blows through any
single device's SLO.  The fleet layer scales the serving stack out:

* **Evaluation-key placement** (:func:`plan_key_placement`): each
  application's evaluation-key set (relinearisation + Galois keys) is either
  *replicated* on every device group (HBM-heavy, any group serves any app)
  or *sharded* across groups (HBM-light, routing constrained to the groups
  holding the keys).  Placement models per-GPU HBM residency and the
  one-time interconnect broadcast that distributes the keys.
* **Cluster routing** (:class:`Fleet`): requests are routed at arrival to
  the *eligible* device group (key residency) with the least outstanding
  backlog -- earliest expected availability, the queue-depth-weighted
  join-shortest-queue rule.  Routing is deterministic: ties break by group
  id, and the whole schedule is a pure function of the submitted trace.
* **Per-device continuous batching**: each group runs the existing
  :class:`~repro.serving.server.Server` (admission queue, continuous
  batcher, multi-stream lanes) under one shared simulated clock; all
  groups share one trace cache so a batch shape is timed at most once
  fleet-wide.
* **Tensor parallelism** (``tensor_parallel > 1``): groups of that many
  GPUs serve each batch together through
  :class:`~repro.gpu.multi_gpu.MultiGpuModel` -- compute shards, the
  exchange stages (BConv digit exchange, NTT all-to-all) pay modeled
  NVLink/PCIe bytes, and evaluation keys shard limb-wise across the group
  (cutting per-GPU HBM residency by the group size).

The fleet-level :class:`FleetReport` aggregates per-device utilization,
queue depths, interconnect bytes per kernel class, latency percentiles and
SLO attainment, and exports all of it through the telemetry registry and
tracer (``repro serve --gpus N``, ``repro metrics --gpus N``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..analysis.memory_footprint import (
    ciphertext_bytes,
    hybrid_evk_bytes,
    klss_evk_bytes,
)
from ..analysis.reporting import format_table
from ..ckks.params import ParameterSet, get_set
from ..core.pipeline import NEO_CONFIG, PipelineConfig
from ..core.profiling import latency_percentiles, timeline_schedule_result
from ..core.streams import ScheduledKernel
from ..core.trace_cache import TraceCache
from ..gpu.device import A100, DeviceSpec
from ..gpu.multi_gpu import NVLINK3, Interconnect, MultiGpuModel
from ..gpu.trace import ExecutionTrace
from ..telemetry.registry import MetricsRegistry, global_registry
from ..telemetry.tracing import Tracer, active_tracer
from .overload import OverloadPolicy
from .policies import AdmissionPolicy
from .request import Request, RequestRecord
from .server import NeoServiceModel, Server, ServingReport

#: Modeled Galois-key counts per application: the rotation sets their
#: schedules hoist (bootstrap needs the CoeffToSlot/SlotToCoeff ladder,
#: HELR a handful of in-iteration rotations, ResNet the conv/pool shifts).
GALOIS_KEY_COUNTS: Dict[str, int] = {
    "helr": 12,
    "packbootstrap": 44,
    "bootstrap": 44,
    "resnet20": 48,
    "resnet32": 48,
    "resnet56": 48,
}

#: Galois keys assumed for applications not in the table.
DEFAULT_GALOIS_KEYS = 32

#: Key-placement policies accepted by :class:`Fleet`.
PLACEMENT_POLICIES = ("replicate", "shard")


def app_key_bytes(params: ParameterSet, app: str) -> int:
    """Modeled evaluation-key bytes one application keeps resident.

    One relinearisation key plus the app's Galois-key set, each the size of
    one key-switching key under the parameter set's method (KLSS keys when
    the set carries KLSS parameters, Hybrid otherwise).
    """
    evk = (
        klss_evk_bytes(params) if params.klss is not None else hybrid_evk_bytes(params)
    )
    return (1 + GALOIS_KEY_COUNTS.get(app.lower(), DEFAULT_GALOIS_KEYS)) * evk


@dataclass(frozen=True)
class KeyPlacementPlan:
    """Where each application's evaluation keys live across device groups."""

    policy: str
    groups: int
    #: app -> sorted group ids holding that app's key set.
    devices_by_app: Dict[str, Tuple[int, ...]]
    #: app -> modeled bytes of its resident key set (per full copy).
    key_bytes_by_app: Dict[str, int]

    def devices_for(self, app: str) -> Tuple[int, ...]:
        """Group ids eligible to serve `app` (holding its keys)."""
        try:
            return self.devices_by_app[app.lower()]
        except KeyError:
            raise ValueError(
                f"no key placement for application {app!r}; "
                f"placed: {', '.join(sorted(self.devices_by_app))}"
            ) from None

    def group_key_bytes(self, group: int) -> int:
        """Modeled key bytes resident on one device group."""
        return sum(
            size
            for app, size in self.key_bytes_by_app.items()
            if group in self.devices_by_app[app]
        )

    def broadcast_bytes(self) -> int:
        """One-time interconnect bytes to distribute every key copy.

        The key material originates on one source device; every additional
        resident copy crosses the interconnect once.
        """
        return sum(
            size * (len(self.devices_by_app[app]) - 1)
            for app, size in self.key_bytes_by_app.items()
        )


def plan_key_placement(
    apps: Sequence[str],
    groups: int,
    params: ParameterSet,
    policy: str = "replicate",
) -> KeyPlacementPlan:
    """Assign each application's key set to device groups.

    ``replicate`` puts every key set on every group; ``shard`` partitions
    the key sets round-robin so each group holds roughly ``1/len(apps)`` of
    the key bytes (apps get ``groups // len(apps)`` copies when groups
    outnumber apps, one copy otherwise).  Deterministic: apps are placed in
    sorted order.
    """
    if policy not in PLACEMENT_POLICIES:
        raise ValueError(
            f"unknown placement policy {policy!r}; "
            f"choose from {', '.join(PLACEMENT_POLICIES)}"
        )
    if groups < 1:
        raise ValueError("need at least one device group")
    names = sorted({a.lower() for a in apps})
    if not names:
        raise ValueError("key placement needs at least one application")
    devices: Dict[str, Tuple[int, ...]] = {}
    if policy == "replicate" or groups == 1:
        full = tuple(range(groups))
        devices = {app: full for app in names}
    else:
        copies = max(1, groups // len(names))
        for i, app in enumerate(names):
            devices[app] = tuple(
                sorted({(i * copies + j) % groups for j in range(copies)})
            )
    return KeyPlacementPlan(
        policy=policy,
        groups=groups,
        devices_by_app=devices,
        key_bytes_by_app={app: app_key_bytes(params, app) for app in names},
    )


@dataclass(frozen=True)
class AutoscalePolicy:
    """Queue-pressure autoscaling with hysteresis and cooldown.

    The planner walks fixed windows of offered demand, tracks a
    utilization proxy (demand plus carried backlog over fleet capacity),
    and only acts after `up_windows` consecutively hot or `down_windows`
    consecutively cold windows -- classic hysteresis, so one bursty
    window never flaps the fleet.  Every action starts a
    `cooldown_windows`-long hold.
    """

    min_gpus: int = 1
    max_gpus: int = 16
    window_s: float = 120.0
    scale_up_utilization: float = 0.85
    scale_down_utilization: float = 0.30
    up_windows: int = 2
    down_windows: int = 3
    cooldown_windows: int = 2
    step: int = 1

    def __post_init__(self):
        if not 1 <= self.min_gpus <= self.max_gpus:
            raise ValueError(
                f"need 1 <= min_gpus <= max_gpus, got "
                f"[{self.min_gpus}, {self.max_gpus}]"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if not 0 < self.scale_down_utilization < self.scale_up_utilization:
            raise ValueError(
                "need 0 < scale_down_utilization < scale_up_utilization, got "
                f"{self.scale_down_utilization} / {self.scale_up_utilization}"
            )
        if min(self.up_windows, self.down_windows, self.step) < 1:
            raise ValueError("up_windows, down_windows, step must be >= 1")
        if self.cooldown_windows < 0:
            raise ValueError("cooldown_windows must be >= 0")


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaling window's verdict."""

    at_s: float
    action: str  # "up" | "down" | "hold"
    gpus: int  # fleet size in force after this window's decision
    utilization: float
    reason: str


@dataclass
class AutoscaleTrace:
    """The full windowed autoscale plan for one offered-load timeline."""

    policy: AutoscalePolicy
    start_gpus: int
    decisions: List[ScaleDecision] = field(default_factory=list)

    @property
    def final_gpus(self) -> int:
        return self.decisions[-1].gpus if self.decisions else self.start_gpus

    @property
    def peak_gpus(self) -> int:
        return max(
            (d.gpus for d in self.decisions), default=self.start_gpus
        )

    @property
    def scale_ups(self) -> int:
        return sum(1 for d in self.decisions if d.action == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for d in self.decisions if d.action == "down")

    def format(self) -> str:
        rows = [
            [
                f"{d.at_s:.0f}",
                f"{100 * d.utilization:.0f}%",
                d.action,
                d.gpus,
                d.reason,
            ]
            for d in self.decisions
        ]
        header = (
            f"autoscale: {self.start_gpus} -> {self.final_gpus} GPU(s) "
            f"(peak {self.peak_gpus}; {self.scale_ups} up / "
            f"{self.scale_downs} down over {len(self.decisions)} windows)"
        )
        return header + "\n" + format_table(
            ["window start s", "util", "action", "gpus", "reason"],
            rows,
            title="scaling decisions",
        )


def plan_autoscale(
    demand_windows: Sequence[float],
    policy: AutoscalePolicy,
    start_gpus: int,
    capacity_per_gpu_s: float,
) -> AutoscaleTrace:
    """Walk windowed demand and emit hysteresis-damped scaling decisions.

    ``demand_windows[i]`` is the service-seconds of work offered in window
    `i`; each GPU retires `capacity_per_gpu_s` service-seconds per window.
    Unserved demand carries over as backlog, so a burst keeps pressure on
    until the (possibly grown) fleet works it off -- the signal a
    queue-depth autoscaler actually sees.
    """
    if capacity_per_gpu_s <= 0:
        raise ValueError(
            f"capacity_per_gpu_s must be > 0, got {capacity_per_gpu_s}"
        )
    gpus = min(max(start_gpus, policy.min_gpus), policy.max_gpus)
    trace = AutoscaleTrace(policy=policy, start_gpus=gpus)
    backlog = 0.0
    hot = cold = cooldown = 0
    for i, demand in enumerate(demand_windows):
        at_s = i * policy.window_s
        capacity = gpus * capacity_per_gpu_s
        load = demand + backlog
        utilization = load / capacity if capacity > 0 else float("inf")
        backlog = max(0.0, load - capacity)
        action, reason = "hold", "within band"
        if cooldown > 0:
            cooldown -= 1
            reason = "cooldown"
        elif utilization >= policy.scale_up_utilization:
            hot, cold = hot + 1, 0
            if hot >= policy.up_windows:
                if gpus < policy.max_gpus:
                    gpus = min(policy.max_gpus, gpus + policy.step)
                    action = "up"
                    reason = f"hot {hot} windows"
                    cooldown = policy.cooldown_windows
                    hot = 0
                else:
                    reason = "hot, at max_gpus"
            else:
                reason = f"hot {hot}/{policy.up_windows}"
        elif utilization <= policy.scale_down_utilization:
            cold, hot = cold + 1, 0
            if cold >= policy.down_windows:
                if gpus > policy.min_gpus:
                    gpus = max(policy.min_gpus, gpus - policy.step)
                    action = "down"
                    reason = f"cold {cold} windows"
                    cooldown = policy.cooldown_windows
                    cold = 0
                else:
                    reason = "cold, at min_gpus"
            else:
                reason = f"cold {cold}/{policy.down_windows}"
        else:
            hot = cold = 0
        trace.decisions.append(
            ScaleDecision(
                at_s=at_s,
                action=action,
                gpus=gpus,
                utilization=utilization,
                reason=reason,
            )
        )
    return trace


class MultiGpuServiceModel:
    """Times dynamic batches on a tensor-parallel group of modeled GPUs.

    Wraps the single-device :class:`NeoServiceModel`: each batch's trace is
    timed by :class:`~repro.gpu.multi_gpu.MultiGpuModel` (compute shards
    across the group, exchange stages pay interconnect bytes), and the
    per-kernel exchange traffic of any executed shape is exposed for the
    fleet report's interconnect accounting.
    """

    def __init__(self, base: NeoServiceModel, multi: MultiGpuModel):
        self.base = base
        self.multi = multi
        self._traces: Dict[Tuple[str, int], ExecutionTrace] = {}
        self._exchange: Dict[Tuple[str, int], Dict[str, float]] = {}
        self._models: Dict[DeviceSpec, MultiGpuModel] = {multi.device: multi}

    def _trace(self, app: str, size: int) -> ExecutionTrace:
        key = (app, size)
        trace = self._traces.get(key)
        if trace is None:
            trace = self._traces[key] = self.base.batch_trace(app, size)
        return trace

    def _model_for(self, size: int) -> MultiGpuModel:
        # Small batches under-occupy each member GPU exactly as they do a
        # single device, so the group model runs on the batch-derated spec.
        device = self.base.batch_device(size)
        model = self._models.get(device)
        if model is None:
            model = self._models[device] = MultiGpuModel(
                self.multi.gpus,
                device=device,
                interconnect=self.multi.interconnect,
                exchange=self.multi.exchange,
                overlap=self.multi.overlap,
            )
        return model

    def service_time_s(self, app: str, size: int, streams: int) -> float:
        return self._model_for(size).time_s(self._trace(app, size), streams)

    def exchange_bytes_for(self, app: str, size: int) -> Dict[str, float]:
        """Interconnect bytes per kernel class of one (app, size) batch."""
        key = (app, size)
        table = self._exchange.get(key)
        if table is None:
            table = self._exchange[key] = self.multi.exchange_bytes_by_kernel(
                self._trace(app, size)
            )
        return table

    def cache_stats(self):
        return self.base.cache_stats()

    def noise_trajectory(self, app: str):
        return self.base.noise_trajectory(app)


@dataclass
class DeviceReport:
    """One device group's slice of a fleet drain."""

    gpu: int
    report: ServingReport
    #: Busy-lane fraction over the fleet makespan (0..1).
    utilization: float
    #: Modeled evaluation-key bytes resident on each GPU of the group.
    hbm_key_bytes: int
    #: Key residency as a fraction of the GPU's HBM capacity.
    hbm_fraction: float


@dataclass
class FleetReport:
    """Everything one fleet drain produced, aggregated across devices."""

    gpus: int
    tensor_parallel: int
    interconnect: str
    placement: KeyPlacementPlan
    devices: List[DeviceReport] = field(default_factory=list)
    #: Interconnect bytes per kernel class, summed over every executed
    #: batch (all zero at ``tensor_parallel=1``: data-parallel groups
    #: never exchange shards mid-kernel).
    exchange_bytes_by_kernel: Dict[str, float] = field(default_factory=dict)
    #: One-time key-distribution traffic (placement broadcast).
    key_broadcast_bytes: int = 0
    #: Host-link traffic: every request's ciphertexts in and results out.
    ingress_bytes: float = 0.0

    # -- aggregation --------------------------------------------------------------

    @property
    def groups(self) -> int:
        return len(self.devices)

    @property
    def records(self) -> List[RequestRecord]:
        merged = [r for d in self.devices for r in d.report.records]
        merged.sort(key=lambda r: (r.finish_s, r.request.rid))
        return merged

    @property
    def batches(self):
        return [b for d in self.devices for b in d.report.batches]

    @property
    def served(self) -> int:
        return sum(d.report.served for d in self.devices)

    @property
    def makespan_s(self) -> float:
        return max((d.report.makespan_s for d in self.devices), default=0.0)

    @property
    def throughput_rps(self) -> float:
        return self.served / self.makespan_s if self.makespan_s > 0 else 0.0

    def latencies_s(self) -> List[float]:
        return [r.latency_s for d in self.devices for r in d.report.records]

    def latency_summary(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies_s())

    @property
    def slo_violations(self) -> int:
        return sum(d.report.slo_violations for d in self.devices)

    @property
    def slo_attainment(self) -> float:
        served = self.served
        return 1.0 - self.slo_violations / served if served else 1.0

    # -- overload aggregation -----------------------------------------------------

    @property
    def shed_count(self) -> int:
        return sum(d.report.shed_count for d in self.devices)

    @property
    def rejected_count(self) -> int:
        return sum(d.report.rejected_count for d in self.devices)

    @property
    def cancelled_count(self) -> int:
        return sum(d.report.cancelled_count for d in self.devices)

    @property
    def offered(self) -> int:
        return sum(d.report.offered for d in self.devices)

    @property
    def peak_pressure(self) -> float:
        return max((d.report.peak_pressure for d in self.devices), default=0.0)

    @property
    def exchange_bytes(self) -> float:
        return sum(self.exchange_bytes_by_kernel.values())

    @property
    def interconnect_bytes(self) -> float:
        """All modeled inter-GPU traffic: shard exchange + key broadcast."""
        return self.exchange_bytes + self.key_broadcast_bytes

    # -- timeline -----------------------------------------------------------------

    def timeline(self) -> List[ScheduledKernel]:
        """Merged batch timeline; streams are globally numbered per group."""
        blocks: List[ScheduledKernel] = []
        for device in self.devices:
            lanes = device.report.lanes
            for block in device.report.timeline():
                blocks.append(
                    ScheduledKernel(
                        name=f"gpu{device.gpu}:{block.name}",
                        stream=device.gpu * lanes + block.stream,
                        resource=block.resource,
                        start_s=block.start_s,
                        end_s=block.end_s,
                    )
                )
        blocks.sort(key=lambda b: (b.start_s, b.stream, b.name))
        return blocks

    def to_chrome_trace(self) -> str:
        return timeline_schedule_result(self.timeline()).to_chrome_trace()

    def fingerprint(self) -> str:
        """SHA-256 over routing + every device timeline; replay-stable."""
        digest = hashlib.sha256()
        for device in self.devices:
            rids = ",".join(
                str(r.request.rid)
                for r in sorted(
                    device.report.records, key=lambda r: r.request.rid
                )
            )
            digest.update(
                f"gpu{device.gpu}|{device.report.fingerprint()}|{rids}\n".encode()
            )
        return digest.hexdigest()

    # -- reporting ----------------------------------------------------------------

    def format(self) -> str:
        """A printable fleet report: headline, per-device, interconnect."""
        lat = self.latency_summary()
        tp = (
            f" x {self.tensor_parallel} tensor-parallel"
            if self.tensor_parallel > 1
            else ""
        )
        lines = [
            f"fleet of {self.gpus} GPU(s) ({self.groups} group(s){tp}, "
            f"{self.interconnect}, keys "
            f"{'replicated' if self.placement.policy == 'replicate' else 'sharded'}): "
            f"served {self.served} requests in {self.makespan_s:.1f} simulated s",
            f"  throughput : {self.throughput_rps:.3f} req/s",
            f"  latency    : P50 {lat['p50']:.1f} s, P95 {lat['p95']:.1f} s, "
            f"P99 {lat['p99']:.1f} s, max {lat['max']:.1f} s",
            f"  SLO        : {self.slo_violations} violations "
            f"({100 * self.slo_attainment:.1f}% attainment)",
            "",
        ]
        rows = []
        for device in self.devices:
            report = device.report
            dlat = latency_percentiles(report.latencies_s())
            rows.append(
                [
                    f"gpu{device.gpu}",
                    report.served,
                    f"{100 * device.utilization:.0f}%",
                    f"{report.mean_queue_depth:.1f}",
                    report.max_queue_depth,
                    f"{dlat['p95']:.1f}",
                    report.slo_violations,
                    f"{device.hbm_key_bytes / 2**30:.1f} "
                    f"({100 * device.hbm_fraction:.0f}%)",
                ]
            )
        lines.append(
            format_table(
                [
                    "device", "served", "util", "mean depth", "peak depth",
                    "P95 s", "SLO miss", "keys GiB (HBM)",
                ],
                rows,
                title="per-device",
            )
        )
        lines.append("")
        inter_rows = [
            [name, f"{size / 2**30:.2f}"]
            for name, size in sorted(self.exchange_bytes_by_kernel.items())
        ]
        inter_rows.append(
            ["key broadcast", f"{self.key_broadcast_bytes / 2**30:.2f}"]
        )
        inter_rows.append(["host ingress", f"{self.ingress_bytes / 2**30:.2f}"])
        lines.append(
            format_table(
                ["traffic class", "GiB"],
                inter_rows,
                title="interconnect traffic",
            )
        )
        return "\n".join(lines)


class Fleet:
    """A cluster of modeled GPU servers behind one deterministic router.

    Args:
        gpus: modeled devices in the fleet.
        params: Table 4 parameter set (or a ``ParameterSet``).
        config: per-device pipeline configuration (lanes split its streams).
        policy: admission policy per device server.
        max_batch / max_wait_s / lanes: continuous-batching knobs per device.
        placement: evaluation-key placement, ``replicate`` or ``shard``.
        device / interconnect: hardware models.
        tensor_parallel: GPUs ganged per serving group (must divide `gpus`);
            groups > 1 GPU run each batch through the multi-GPU cost model
            and shard evaluation keys limb-wise across members.
        tracer: span sink; ``None`` falls back to the active tracer.
    """

    def __init__(
        self,
        gpus: int = 4,
        params: Union[str, ParameterSet] = "C",
        config: PipelineConfig = NEO_CONFIG,
        policy: Union[str, AdmissionPolicy] = "bucketed",
        max_batch: int = 64,
        max_wait_s: float = 30.0,
        lanes: int = 2,
        placement: str = "replicate",
        device: DeviceSpec = A100,
        interconnect: Interconnect = NVLINK3,
        tensor_parallel: int = 1,
        trace_cache: Optional[TraceCache] = None,
        overload: Optional[OverloadPolicy] = None,
        tracer: Optional[Tracer] = None,
        autotune: bool = False,
    ):
        if gpus < 1:
            raise ValueError(f"need at least one GPU, got {gpus}")
        if tensor_parallel < 1:
            raise ValueError(
                f"tensor_parallel must be >= 1, got {tensor_parallel}"
            )
        if gpus % tensor_parallel:
            raise ValueError(
                f"tensor_parallel {tensor_parallel} must divide gpus {gpus}"
            )
        if placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {placement!r}; "
                f"choose from {', '.join(PLACEMENT_POLICIES)}"
            )
        self.gpus = gpus
        self.tensor_parallel = tensor_parallel
        self.groups = gpus // tensor_parallel
        self.params = get_set(params) if isinstance(params, str) else params
        self.config = config
        self.lanes = lanes
        self.placement_policy = placement
        self.device = device
        self.interconnect = interconnect
        self.overload = overload
        self.tracer = tracer

        base = NeoServiceModel(
            self.params,
            config,
            trace_cache if trace_cache is not None else TraceCache(),
            device=device,
            autotune=autotune,
        )
        if tensor_parallel > 1:
            self._multi = MultiGpuModel(
                tensor_parallel, device=device, interconnect=interconnect
            )
            self._model: object = MultiGpuServiceModel(base, self._multi)
        else:
            self._multi = None
            self._model = base
        self.servers = [
            Server(
                params=self.params,
                config=config,
                policy=policy,
                max_batch=max_batch,
                max_wait_s=max_wait_s,
                lanes=lanes,
                model=self._model,
                overload=overload,
                tracer=tracer,
            )
            for _ in range(self.groups)
        ]
        self.streams_per_lane = self.servers[0].streams_per_lane
        self._submitted: List[Request] = []
        self._last_report: Optional[FleetReport] = None

    # -- admission ----------------------------------------------------------------

    def submit(self, request: Request) -> Request:
        self._submitted.append(request)
        return request

    def submit_many(self, requests: Iterable[Request]) -> int:
        count = 0
        for request in requests:
            self.submit(request)
            count += 1
        return count

    @property
    def last_report(self) -> Optional[FleetReport]:
        return self._last_report

    # -- routing ------------------------------------------------------------------

    def _service_estimate(self, app: str, size: int) -> float:
        """Single-request service estimate used for backlog routing."""
        return self._model.service_time_s(app, size, self.streams_per_lane)

    def route(
        self, requests: Sequence[Request], placement: KeyPlacementPlan
    ) -> Dict[int, List[Request]]:
        """Assign arrival-ordered requests to groups, deterministically.

        Each request goes to the eligible group (key residency) whose
        estimated backlog clears earliest at the request's arrival --
        join-shortest-queue weighted by outstanding service time.  Ties
        break by group id, so the assignment is a pure function of the
        arrival trace.
        """
        est_free = [0.0] * self.groups
        assignment: Dict[int, List[Request]] = {g: [] for g in range(self.groups)}
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        estimates: Dict[Tuple[str, int], float] = {}
        for request in ordered:
            eligible = placement.devices_for(request.app)
            group = min(
                eligible, key=lambda g: (max(est_free[g], request.arrival_s), g)
            )
            key = (request.app, request.size)
            est = estimates.get(key)
            if est is None:
                est = estimates[key] = self._service_estimate(
                    request.app, request.size
                )
            est_free[group] = max(est_free[group], request.arrival_s) + (
                est / self.lanes
            )
            assignment[group].append(request)
        return assignment

    # -- autoscaling --------------------------------------------------------------

    def plan_autoscale(
        self, policy: Optional[AutoscalePolicy] = None
    ) -> AutoscaleTrace:
        """A hysteresis-damped scaling plan for the submitted trace.

        Offered demand is bucketed into `policy.window_s` windows of
        estimated service-seconds (the same estimates the router uses);
        each GPU contributes ``lanes * window_s`` service-seconds per
        window.  The plan is advisory -- a deterministic what-if over the
        trace, not a mid-drain topology change -- and feeds the capacity
        decision for the *next* drain.
        """
        policy = policy or AutoscalePolicy()
        horizon = max(
            (r.arrival_s for r in self._submitted), default=0.0
        )
        windows = [0.0] * (int(horizon // policy.window_s) + 1)
        estimates: Dict[Tuple[str, int], float] = {}
        for request in self._submitted:
            key = (request.app, request.size)
            est = estimates.get(key)
            if est is None:
                est = estimates[key] = self._service_estimate(
                    request.app, request.size
                )
            windows[int(request.arrival_s // policy.window_s)] += est
        return plan_autoscale(
            windows,
            policy,
            start_gpus=self.groups,
            capacity_per_gpu_s=self.lanes * policy.window_s,
        )

    # -- simulation ---------------------------------------------------------------

    def drain(self) -> FleetReport:
        """Route and replay every submitted request; return the fleet report."""
        apps = sorted({r.app for r in self._submitted}) or ["packbootstrap"]
        placement = plan_key_placement(
            apps, self.groups, self.params, self.placement_policy
        )
        assignment = self.route(self._submitted, placement)
        reports: List[ServingReport] = []
        for group, server in enumerate(self.servers):
            server.submit_many(assignment[group])
            reports.append(server.drain())

        makespan = max((r.makespan_s for r in reports), default=0.0)
        devices: List[DeviceReport] = []
        hbm_bytes = self.device.memory_gib * 2**30
        for group, report in enumerate(reports):
            busy = sum(
                span.duration_s for span in report.timeline()
            )
            util = (
                busy / (self.lanes * makespan) if makespan > 0 else 0.0
            )
            # Tensor-parallel groups shard the key set limb-wise across
            # their members: per-GPU residency divides by the group size.
            per_gpu_keys = placement.group_key_bytes(group) // self.tensor_parallel
            devices.append(
                DeviceReport(
                    gpu=group,
                    report=report,
                    utilization=min(1.0, util),
                    hbm_key_bytes=per_gpu_keys,
                    hbm_fraction=per_gpu_keys / hbm_bytes,
                )
            )

        exchange: Dict[str, float] = {}
        if self._multi is not None:
            for report in reports:
                for batch in report.batches:
                    table = self._model.exchange_bytes_for(
                        batch.app, batch.executed_size
                    )
                    for name, size in table.items():
                        exchange[name] = exchange.get(name, 0.0) + size

        ingress = sum(
            2 * r.size * ciphertext_bytes(self.params) for r in self._submitted
        )
        fleet_report = FleetReport(
            gpus=self.gpus,
            tensor_parallel=self.tensor_parallel,
            interconnect=self.interconnect.name,
            placement=placement,
            devices=devices,
            exchange_bytes_by_kernel=exchange,
            key_broadcast_bytes=placement.broadcast_bytes(),
            ingress_bytes=float(ingress),
        )
        self._last_report = fleet_report
        self._emit_telemetry(fleet_report)
        return fleet_report

    # -- telemetry ----------------------------------------------------------------

    def _emit_telemetry(self, report: FleetReport) -> None:
        tracer = self.tracer if self.tracer is not None else active_tracer()
        if tracer is not None:
            self._record_spans(tracer, report)
        registry = global_registry()
        if registry.enabled:
            self._record_metrics(registry, report)

    def _record_spans(self, tracer: Tracer, report: FleetReport) -> None:
        """One ``fleet`` trace: the drain span plus one span per group.

        Per-request spans are recorded by each device server's own drain
        (same tracer), so the queue -> batch -> kernel path stays intact;
        the fleet trace adds the routing/utilization overview on top.
        """
        root = tracer.record_span(
            "fleet", "fleet_drain", 0.0, report.makespan_s,
            category="fleet", gpus=report.gpus,
            tensor_parallel=report.tensor_parallel,
            placement=report.placement.policy, served=report.served,
        )
        for device in report.devices:
            tracer.record_span(
                "fleet", f"gpu-{device.gpu}", 0.0,
                device.report.makespan_s, parent_id=root.span_id,
                category="fleet", served=device.report.served,
                utilization=round(device.utilization, 4),
                peak_queue_depth=device.report.max_queue_depth,
            )

    def _record_metrics(
        self, registry: MetricsRegistry, report: FleetReport
    ) -> None:
        served = registry.counter(
            "fleet_requests_total", "Requests served, by device group",
            labelnames=("gpu",),
        )
        util = registry.gauge(
            "fleet_device_utilization",
            "Busy-lane fraction per device group over the fleet makespan",
            labelnames=("gpu",),
        )
        depth = registry.gauge(
            "fleet_queue_depth_peak", "Peak queue depth per device group",
            labelnames=("gpu",),
        )
        hbm = registry.gauge(
            "fleet_hbm_key_bytes",
            "Modeled evaluation-key bytes resident per GPU",
            labelnames=("gpu",),
        )
        for device in report.devices:
            gpu = str(device.gpu)
            served.labels(gpu=gpu).inc(device.report.served)
            util.labels(gpu=gpu).set(device.utilization)
            depth.labels(gpu=gpu).set(device.report.max_queue_depth)
            hbm.labels(gpu=gpu).set(device.hbm_key_bytes)
        exchange = registry.counter(
            "fleet_interconnect_bytes_total",
            "Modeled interconnect bytes, by kernel class",
            labelnames=("kernel",),
        )
        for name, size in report.exchange_bytes_by_kernel.items():
            if size:
                exchange.labels(kernel=name).inc(size)
        registry.gauge(
            "fleet_key_broadcast_bytes",
            "One-time key-distribution interconnect bytes",
        ).set(report.key_broadcast_bytes)
        registry.gauge(
            "fleet_ingress_bytes", "Host-link ciphertext ingress/egress bytes"
        ).set(report.ingress_bytes)
        registry.gauge(
            "fleet_gpus", "Modeled GPUs in the fleet"
        ).set(report.gpus)
        registry.gauge(
            "fleet_throughput_rps", "Fleet requests per simulated second"
        ).set(report.throughput_rps)
        registry.gauge(
            "fleet_slo_attainment", "Fleet-wide SLO attainment"
        ).set(report.slo_attainment)
        registry.gauge(
            "fleet_makespan_seconds", "Simulated makespan of the fleet drain"
        ).set(report.makespan_s)
