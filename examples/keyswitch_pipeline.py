"""Walk the KLSS KeySwitch pipeline step by step on real data (Fig. 5).

Builds a ciphertext product term ``d2``, runs both the Hybrid and KLSS
key-switching back-ends on it, and shows that the two agree and that both
satisfy the key-switching identity ``p0 + p1*s ~ d2 * s**2``.

Run:  python examples/keyswitch_pipeline.py
"""

import numpy as np

from repro.ckks import KeyGenerator, KlssConfig, small_test_parameters
from repro.ckks.keyswitch import hybrid, klss
from repro.math.polynomial import RnsPolynomial


def main():
    params = small_test_parameters(
        degree=64,
        max_level=5,
        wordsize=25,
        dnum=3,
        klss=KlssConfig(wordsize_t=28, alpha_tilde=2),
    )
    alpha_prime, beta, beta_tilde = params.klss_dims(params.max_level)
    print(f"parameters: {params}")
    print(
        f"KLSS dims at l={params.max_level}: alpha={params.alpha}, "
        f"alpha'={alpha_prime}, beta={beta}, beta~={beta_tilde}"
    )

    gen = KeyGenerator(params, seed=99)
    secret = gen.secret_key()
    relin = gen.relinearisation_key(secret)

    rng = np.random.default_rng(1)
    d2 = RnsPolynomial.from_int_coeffs(
        rng.integers(-(2**20), 2**20, size=params.degree).astype(object),
        params.degree,
        params.q_basis(params.max_level),
    )

    # Step through the shared stages.
    digits = hybrid.decompose_digits(d2, params)
    print(f"digit decomposition: {len(digits)} digits of {params.alpha} limbs")
    key = klss.decompose_key(relin, params, params.max_level)
    print(
        f"evk gadget-decomposed into beta~ x beta = "
        f"{key.beta_tilde} x {len(key.digit_pairs[0])} digit pairs over "
        f"R_T ({len(key.t_basis)} limbs of {params.klss.wordsize_t} bits)"
    )

    # Run both complete pipelines.
    h0, h1 = hybrid.keyswitch(d2, relin, params)
    k0, k1 = klss.keyswitch(d2, relin, params)

    basis = params.q_basis(params.max_level)
    s = secret.poly(basis)
    s_sq = s.multiply(s).from_ntt()
    want = d2.multiply(s_sq).from_ntt().to_int_coeffs()

    for name, (p0, p1) in (("hybrid", (h0, h1)), ("klss", (k0, k1))):
        got = p0.add(p1.multiply(s).from_ntt()).to_int_coeffs()
        noise = float(np.abs((got - want).astype(np.float64)).max())
        print(f"[{name:6s}] |p0 + p1*s - d2*s^2| max = {noise:.0f} (vs q0 ~ 2^30)")
        assert noise < 2**14

    cross = float(
        np.abs(
            (
                h0.add(h1.multiply(s).from_ntt()).to_int_coeffs()
                - k0.add(k1.multiply(s).from_ntt()).to_int_coeffs()
            ).astype(np.float64)
        ).max()
    )
    print(f"hybrid-vs-KLSS disagreement: {cross:.0f} (both within noise)")
    print("OK: the six-step KLSS pipeline reproduces the Hybrid key switch")


if __name__ == "__main__":
    main()
