"""Tests for the mapping policy, pipelines, ablation and NeoContext."""

import pytest

from repro.ckks.params import get_set
from repro.core import (
    ABLATION_STEPS,
    HEONGPU_CONFIG,
    IP_TCU_THRESHOLD,
    NEO_CONFIG,
    TENSORFHE_CONFIG,
    NeoContext,
    OperationPipeline,
    PipelineConfig,
    choose_ip_component,
    ip_gemm_shape,
    neo_component_map,
)
from repro.core.mapping import bconv_gemm_shape, ntt_gemm_shape
from repro.gpu.device import A100, A100_NO_TCU


class TestMappingPolicy:
    def test_fig4_cuda_only_kernels(self):
        table = neo_component_map(2**16, 128, 4, 8, 9, 8)
        for kernel in ("modadd", "modmul", "auto"):
            assert table[kernel] == "cuda"

    def test_ntt_and_bconv_always_tcu(self):
        table = neo_component_map(2**16, 128, 4, 8, 9, 8)
        assert table["ntt"] == "tcu_fp64"
        assert table["bconv"] == "tcu_fp64"

    def test_ip_dynamic_mapping_by_level(self):
        """Fig. 12: IP's valid proportion falls with l -> CUDA fallback."""
        high = ip_gemm_shape(beta=8, beta_tilde=8, batch=128, degree=2**16)
        low = ip_gemm_shape(beta=2, beta_tilde=2, batch=128, degree=2**16)
        assert choose_ip_component(high) == "tcu_fp64"
        assert choose_ip_component(low) == "cuda"

    def test_threshold_is_80_percent(self):
        assert IP_TCU_THRESHOLD == 0.8

    def test_ntt_shape_fully_valid(self):
        shape = ntt_gemm_shape(2**16, 128)
        assert shape.fp64_valid_proportion() == 1.0

    def test_bconv_shape_fig11_defaults(self):
        """alpha=4, alpha'=8: no padding on FP64 fragments (Fig. 11)."""
        shape = bconv_gemm_shape(4, 8, 128, 2**16)
        assert shape.fp64_valid_proportion() == 1.0


class TestPipelineConfigs:
    def test_neo_defaults(self):
        assert NEO_CONFIG.keyswitch == "klss"
        assert NEO_CONFIG.ntt_style == "radix16"
        assert NEO_CONFIG.ntt_component == "tcu_fp64"

    def test_tensorfhe_profile(self):
        assert TENSORFHE_CONFIG.keyswitch == "hybrid"
        assert TENSORFHE_CONFIG.ntt_component == "tcu_int8"
        assert TENSORFHE_CONFIG.bconv_style == "elementwise"

    def test_heongpu_has_no_tcu_work(self):
        """HEonGPU traces must run on a device without tensor cores."""
        ctx = NeoContext("E", device=A100_NO_TCU, config=HEONGPU_CONFIG, batch=128)
        assert ctx.operation_time_us("hmult", 35) > 0

    def test_klss_config_requires_klss_params(self):
        with pytest.raises(ValueError):
            OperationPipeline(get_set("A"), NEO_CONFIG)

    def test_with_overrides(self):
        cfg = NEO_CONFIG.with_overrides(streams=2)
        assert cfg.streams == 2 and NEO_CONFIG.streams == 8


class TestOperationPipeline:
    @pytest.fixture(scope="class")
    def neo(self):
        return NeoContext("C", config=NEO_CONFIG)

    @pytest.fixture(scope="class")
    def tfhe(self):
        return NeoContext("B", config=TENSORFHE_CONFIG)

    def test_all_operations_dispatch(self, neo):
        for op in ("hmult", "hrotate", "pmult", "hadd", "padd", "rescale",
                   "double_rescale", "keyswitch"):
            assert neo.operation_time_us(op, 10) > 0

    def test_unknown_operation(self, neo):
        with pytest.raises(ValueError):
            neo.operation_time_us("teleport", 10)

    def test_hmult_dominated_by_keyswitch(self, neo):
        hmult = neo.operation_time_us("hmult", 35)
        ks = neo.operation_time_us("keyswitch", 35)
        assert ks < hmult < 1.5 * ks

    def test_cheap_ops_are_cheap(self, neo):
        assert neo.operation_time_us("hadd", 35) < 0.15 * neo.operation_time_us("hmult", 35)

    def test_operation_cost_grows_with_level(self, neo):
        assert neo.operation_time_us("hmult", 35) > neo.operation_time_us("hmult", 10)

    def test_neo_beats_tensorfhe_on_keyswitch_ops(self, neo, tfhe):
        """Table 6 shape: 3-6x on HMULT/HROTATE, parity on element-wise."""
        for op in ("hmult", "hrotate"):
            ratio = tfhe.operation_time_us(op, 35) / neo.operation_time_us(op, 35)
            assert 2.5 < ratio < 8.0, f"{op} ratio {ratio}"
        for op in ("pmult", "hadd", "padd"):
            ratio = tfhe.operation_time_us(op, 35) / neo.operation_time_us(op, 35)
            assert 0.8 < ratio < 1.5, f"{op} ratio {ratio}"
        # Rescale carries a few NTT limbs, so the INT8 baseline pays more.
        rescale_ratio = tfhe.operation_time_us("rescale", 35) / neo.operation_time_us("rescale", 35)
        assert 0.8 < rescale_ratio < 3.0, f"rescale ratio {rescale_ratio}"

    def test_kernel_throughput_ratios_match_paper(self, tfhe):
        """Table 7 shape: BConv ~2.7x, IP ~2.6x, NTT ~3.7x."""
        neo_b = NeoContext("B", config=NEO_CONFIG.with_overrides(keyswitch="hybrid"))
        ratios = {
            k: neo_b.kernel_throughput(k) / tfhe.kernel_throughput(k)
            for k in ("bconv", "ip", "ntt")
        }
        assert 1.7 < ratios["bconv"] < 4.0
        assert 1.8 < ratios["ip"] < 4.5
        assert 2.8 < ratios["ntt"] < 5.0

    def test_unknown_kernel(self, neo):
        with pytest.raises(ValueError):
            neo.kernel_time_s("fft")

    def test_operation_table(self, neo):
        table = neo.operation_table_us()
        assert set(table) == {"hmult", "hrotate", "pmult", "hadd", "padd", "rescale"}

    def test_schedule_time(self, neo):
        small = neo.schedule_time_s({35: {"hmult": 1}})
        bigger = neo.schedule_time_s({35: {"hmult": 2, "hrotate": 1}})
        assert bigger > small > 0

    def test_repr(self, neo):
        assert "set=C" in repr(neo)


class TestAblation:
    def test_five_steps(self):
        labels = [label for label, _ in ABLATION_STEPS]
        assert labels == [
            "TensorFHE",
            "+KLSS",
            "+dataflow opted",
            "+ten-step NTT",
            "+FP64 TCU",
        ]

    def test_final_step_is_neo(self):
        assert ABLATION_STEPS[-1][1] == NEO_CONFIG

    def test_fig14_monotone_after_dataflow(self):
        """Each step from +dataflow onwards strictly improves HMULT."""
        times = []
        for label, cfg in ABLATION_STEPS:
            params = "C" if cfg.keyswitch == "klss" else "B"
            times.append(NeoContext(params, config=cfg).operation_time_us("hmult", 35))
        assert times[2] > times[3] > times[4]
        # the full stack wins by ~3-6x overall (paper: 3.28x best-vs-best)
        assert 3.0 < times[0] / times[4] < 8.0

    def test_klss_step_is_roughly_neutral_or_better(self):
        t0 = NeoContext("B", config=ABLATION_STEPS[0][1]).operation_time_us("hmult", 35)
        t1 = NeoContext("C", config=ABLATION_STEPS[1][1]).operation_time_us("hmult", 35)
        assert t1 < 1.1 * t0
