"""Observability demo: metrics, spans and noise telemetry on one serve run.

Drives a seeded Poisson arrival trace through the dynamic-batching server
with the full telemetry stack on, then shows the three signal layers the
``repro.telemetry`` package provides:

1. the process-wide metrics registry, printed as a Prometheus text
   snapshot (queue depth, batch sizes, cache hit rates, modeled noise
   budget per application and level);
2. one request's span tree -- queue wait, batch assignment, and the
   linked per-shape kernel trace that reconstructs the op -> kernel path;
3. a measured noise-budget trajectory from :class:`FheMeter` observing a
   real (small-parameter) CKKS evaluator through a multiply/rescale chain.

Run:  python examples/observability_demo.py
"""

import numpy as np

from repro.ckks import (
    CkksEncoder,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_test_parameters,
)
from repro.serving import Server, parse_workload_spec, synthesize_arrivals
from repro.telemetry import Tracer, disable_telemetry, enable_telemetry
from repro.telemetry.fhe import FheMeter

WORKLOAD = "smoke"  # 12x helr @ 1/s + 8x packbootstrap @ 0.5/s (Poisson)
SEED = 0


def serve_with_telemetry():
    """One instrumented drain; returns the tracer for span inspection."""
    registry = enable_telemetry()
    registry.reset()
    tracer = Tracer()
    requests = synthesize_arrivals(parse_workload_spec(WORKLOAD), seed=SEED)
    server = Server(
        params="C", policy="bucketed", max_batch=16, max_wait_s=20.0,
        lanes=2, tracer=tracer,
    )
    server.submit_many(requests)
    report = server.drain()
    print(f"served {report.served} requests in {report.makespan_s:.1f} "
          f"simulated s ({len(tracer)} spans recorded)")
    return registry, tracer


def show_metrics(registry):
    print("\n=== Prometheus snapshot (serving + cache + noise families) ===")
    wanted = ("serving_queue_depth_", "serving_slo_attainment",
              "cache_hit_rate", "fhe_noise_budget_bits_modeled")
    for line in registry.to_prometheus_text().splitlines():
        if line.startswith(wanted) or any(
            line.startswith("# TYPE " + w.rstrip("_")) for w in wanted
        ):
            print(line)


def show_request_trace(tracer):
    print("\n=== one request's span tree (queue -> batch -> op -> kernel) ===")
    trace_id = "req-0"
    print(tracer.format_tree(trace_id))
    links = []
    for span in tracer.spans_for(trace_id):
        link = span.attr_dict().get("kernel_trace")
        if link and link not in links:
            links.append(link)
    for link in links:
        print("\nlinked kernel trace (timestamps relative to batch start,"
              " first kernels):")
        tree = tracer.format_tree(link)
        print("\n".join(tree.splitlines()[:12]))
        print("  ...")


def show_noise_trajectory():
    print("\n=== measured noise-budget trajectory (FheMeter, small params) ===")
    params = small_test_parameters(degree=32, max_level=5, wordsize=25, dnum=3)
    gen = KeyGenerator(params, seed=42)
    secret = gen.secret_key()
    encryptor = Encryptor(params, public_key=gen.public_key(secret), seed=7)
    encoder = CkksEncoder(params)
    meter = FheMeter(params)
    evaluator = Evaluator(
        params, relin_key=gen.relinearisation_key(secret), observer=meter
    )
    slots = np.full(encoder.slots, 0.5, dtype=np.complex128)
    ct = encryptor.encrypt(encoder.encode(slots))
    meter.track(ct)
    for _ in range(3):
        ct = evaluator.rescale(evaluator.multiply(ct, ct))
    print(meter.format_trajectory(ct))
    if meter.warnings:
        print(f"\n{len(meter.warnings)} health warning(s), e.g.: "
              f"{meter.warnings[0].kind} -- {meter.warnings[0].detail}")


def main():
    try:
        registry, tracer = serve_with_telemetry()
        show_metrics(registry)
        show_request_trace(tracer)
        show_noise_trajectory()
    finally:
        disable_telemetry()


if __name__ == "__main__":
    main()
