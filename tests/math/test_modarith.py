"""Unit and property tests for the triple-backend modular arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.math import modarith

SMALL_Q = 998244353  # < 2**31 -> fast backend
BIG_Q = (1 << 36) - 187  # arbitrary 36-bit odd number -> barrett backend
HUGE_Q = (1 << 64) - 59  # above the barrett bound -> exact object backend


@pytest.mark.parametrize("q", [SMALL_Q, BIG_Q])
class TestBasicOps:
    def test_asarray_reduces(self, q):
        arr = modarith.asarray_mod([0, 1, q, q + 5, -1], q)
        assert list(arr.astype(object)) == [0, 1, 0, 5, q - 1]

    def test_add_sub_roundtrip(self, q):
        a = modarith.asarray_mod([3, q - 1, 7], q)
        b = modarith.asarray_mod([5, 2, q - 7], q)
        s = modarith.add_mod(a, b, q)
        assert list(modarith.sub_mod(s, b, q).astype(object)) == list(a.astype(object))

    def test_mul_matches_python(self, q):
        a = modarith.asarray_mod([123456, q - 2, 1], q)
        b = modarith.asarray_mod([654321, q - 3, q - 1], q)
        got = modarith.mul_mod(a, b, q).astype(object)
        want = [(int(x) * int(y)) % q for x, y in zip(a.astype(object), b.astype(object))]
        assert list(got) == want

    def test_neg(self, q):
        a = modarith.asarray_mod([0, 1, q - 1], q)
        got = modarith.neg_mod(a, q).astype(object)
        assert list(got) == [0, q - 1, 1]

    def test_zeros(self, q):
        z = modarith.zeros_mod(4, q)
        assert list(z.astype(object)) == [0, 0, 0, 0]


def test_backend_selection():
    assert modarith.uses_fast_backend(SMALL_Q)
    assert not modarith.uses_fast_backend(BIG_Q)
    assert modarith.uses_barrett_backend(BIG_Q)
    assert modarith.backend_dtype(SMALL_Q) == np.uint64
    # The paper's real word sizes (36/48/60-bit) all stay on uint64 now.
    for bits in (36, 48, 60):
        assert modarith.backend_dtype((1 << bits) - 1) == np.uint64
    assert modarith.backend_dtype(HUGE_Q) is object
    assert modarith.backend_kind(SMALL_Q) == "fast"
    assert modarith.backend_kind(BIG_Q) == "barrett"
    assert modarith.backend_kind(HUGE_Q) == "object"
    with modarith.object_backend():
        assert modarith.backend_dtype(BIG_Q) is object
        assert modarith.backend_dtype(SMALL_Q) == np.uint64
    assert modarith.backend_dtype(BIG_Q) == np.uint64


def test_bad_modulus_rejected():
    with pytest.raises(ValueError):
        modarith.asarray_mod([1], 1)


def test_scalar_helpers():
    assert modarith.pow_mod(3, 20, 1000) == pow(3, 20, 1000)
    assert modarith.inv_mod(3, 7) == 5
    with pytest.raises(ValueError):
        modarith.inv_mod(2, 4)


def test_to_signed_centres():
    q = 17
    vals = modarith.to_signed(np.array([0, 1, 8, 9, 16], dtype=object), q)
    assert list(vals) == [0, 1, 8, -8, -1]
    back = modarith.from_signed(vals, q)
    assert list(back.astype(object)) == [0, 1, 8, 9, 16]


def test_matmul_mod_exact_big():
    q = BIG_Q
    rng = np.random.default_rng(0)
    a = modarith.asarray_mod(rng.integers(0, 2**36, size=(5, 7)).astype(object), q)
    b = modarith.asarray_mod(rng.integers(0, 2**36, size=(7, 3)).astype(object), q)
    got = modarith.matmul_mod(a, b, q)
    want = (np.asarray(a, dtype=object) @ np.asarray(b, dtype=object)) % q
    assert (got == want).all()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=-(10**12), max_value=10**12), min_size=1, max_size=16),
    st.lists(st.integers(min_value=-(10**12), max_value=10**12), min_size=1, max_size=16),
    st.sampled_from([97, SMALL_Q, BIG_Q]),
)
def test_property_ring_axioms(xs, ys, q):
    """(a+b)-b == a and a*b == b*a element-wise, both backends."""
    size = min(len(xs), len(ys))
    a = modarith.asarray_mod(xs[:size], q)
    b = modarith.asarray_mod(ys[:size], q)
    assert (
        modarith.sub_mod(modarith.add_mod(a, b, q), b, q).astype(object)
        == a.astype(object)
    ).all()
    assert (
        modarith.mul_mod(a, b, q).astype(object)
        == modarith.mul_mod(b, a, q).astype(object)
    ).all()


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=2, max_value=2**60),
    st.integers(min_value=0, max_value=2**80),
    st.integers(min_value=0, max_value=2**80),
)
def test_property_scalar_mul_matches_python(q, x, y):
    a = modarith.asarray_mod([x], q)
    got = int(modarith.scalar_mul_mod(a, y, q).astype(object)[0])
    assert got == (x % q) * (y % q) % q
