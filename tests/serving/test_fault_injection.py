"""Chaos suite: the serving layer under injected faults.

Randomised :class:`~repro.serving.faults.FaultPlan` bundles -- request
bursts, slow/stalled device windows, mid-drain cancellations -- are
generated from the suite's seeded ``rng`` fixture (``pytest --seed N``
reproduces any failure) and thrown at the server.  After every chaotic
drain the same invariants must hold:

* **no deadlock** -- ``drain`` returns (the loop always advances the
  simulated clock past the next decision point);
* **no lost or duplicated requests** -- outcome buckets partition the
  offered set exactly;
* **monotone clocks** -- every record satisfies
  ``arrival <= dispatch <= start <= finish`` and lanes never run two
  batches at once;
* **determinism** -- the same plan replayed on a fresh server yields a
  bit-identical timeline fingerprint.
"""

import pytest

from repro.serving import (
    BurstFault,
    CancelFault,
    FaultPlan,
    FaultyServiceModel,
    FixedServiceModel,
    OverloadPolicy,
    SlowDeviceFault,
    Server,
)

BASE_SERVICE_S = 9.0
FLAT = FixedServiceModel(lambda app, size: BASE_SERVICE_S)

OVERLOAD = OverloadPolicy(
    queue_capacity=8, shed_threshold=0.75, shed_below_priority=1
)


def _server(**kwargs):
    defaults = dict(
        policy="priority", max_batch=4, max_wait_s=5.0, lanes=2,
        model=FixedServiceModel(lambda app, size: BASE_SERVICE_S),
        overload=OVERLOAD,
    )
    defaults.update(kwargs)
    return Server(**defaults)


def _assert_invariants(report, offered):
    """The chaos invariants every faulted drain must satisfy."""
    # Conservation: no lost, no duplicated.
    rids = (
        [r.request.rid for r in report.records]
        + [r.rid for r in report.shed]
        + [r.rid for r in report.rejected]
        + [r.rid for r in report.cancelled]
    )
    assert len(rids) == offered, "requests lost or duplicated"
    assert len(set(rids)) == offered, "request counted twice"
    # Monotone clocks.
    for record in report.records:
        assert record.request.arrival_s <= record.dispatch_s
        assert record.dispatch_s <= record.start_s <= record.finish_s
    # Lanes never overlap: batches on one lane are disjoint in time.
    by_lane = {}
    for record in report.records:
        by_lane.setdefault((record.lane, record.batch_id), record)
    lanes = {}
    for (lane, _), record in by_lane.items():
        lanes.setdefault(lane, []).append((record.start_s, record.finish_s))
    for spans in lanes.values():
        spans.sort()
        for (s0, f0), (s1, _) in zip(spans, spans[1:]):
            assert s1 >= f0, "two batches overlap on one lane"


def random_plan(rng, rid_count):
    """A seeded random fault plan over `rid_count` pre-submitted rids."""
    bursts = [
        BurstFault(
            at_s=float(rng.uniform(0.0, 120.0)),
            app=str(rng.choice(["helr", "packbootstrap"])),
            count=int(rng.integers(1, 30)),
            priority=int(rng.integers(0, 3)),
        )
        for _ in range(int(rng.integers(0, 4)))
    ]
    slowdowns = []
    for _ in range(int(rng.integers(0, 3))):
        start = float(rng.uniform(0.0, 150.0))
        slowdowns.append(
            SlowDeviceFault(
                start_s=start,
                end_s=start + float(rng.uniform(5.0, 60.0)),
                factor=float(rng.uniform(1.5, 20.0)),
            )
        )
    cancels = []
    if rid_count:
        for _ in range(int(rng.integers(0, 4))):
            rids = rng.choice(
                rid_count, size=min(rid_count, int(rng.integers(1, 6))),
                replace=False,
            )
            cancels.append(
                CancelFault(
                    at_s=float(rng.uniform(0.0, 200.0)),
                    rids=tuple(int(r) for r in rids),
                )
            )
    return FaultPlan(bursts=bursts, slowdowns=slowdowns, cancels=cancels)


class TestChaos:
    @pytest.mark.parametrize("round_", range(8))
    def test_random_fault_plans_hold_invariants(self, rng, round_):
        """Eight seeded chaos rounds; any failure replays via --seed."""
        for _ in range(round_ + 1):  # decorrelate rounds from one seed
            rng.random()
        background = int(rng.integers(5, 40))
        server = _server()
        for i in range(background):
            server.submit(
                app="helr",
                arrival_s=float(rng.uniform(0.0, 100.0)),
                priority=int(rng.integers(0, 3)),
            )
        plan = random_plan(rng, background)
        injected = plan.apply(server)
        report = server.drain()
        _assert_invariants(report, background + len(injected))

    def test_chaos_is_deterministic(self, rng):
        """The same faults on a fresh server replay bit-identically."""
        def build():
            server = _server()
            for i in range(12):
                server.submit(
                    app="helr", arrival_s=float(i) * 3.0, priority=i % 3
                )
            plan = FaultPlan(
                bursts=[BurstFault(at_s=10.0, app="helr", count=20)],
                slowdowns=[SlowDeviceFault(start_s=15.0, end_s=40.0, factor=5.0)],
                cancels=[CancelFault(at_s=20.0, rids=(3, 5, 7))],
            )
            plan.apply(server)
            return server.drain()

        assert build().fingerprint() == build().fingerprint()


class TestBursts:
    def test_burst_triggers_shedding(self):
        server = _server()
        plan = FaultPlan(
            bursts=[BurstFault(at_s=0.0, app="helr", count=100, priority=0)]
        )
        injected = plan.apply(server)
        report = server.drain()
        assert len(injected) == 100
        assert report.shed_count + report.rejected_count > 0
        assert report.max_queue_depth <= OVERLOAD.queue_capacity
        _assert_invariants(report, 100)

    def test_burst_spares_premium(self):
        server = _server()
        premium = server.submit(
            app="helr", arrival_s=0.0, priority=2, tenant="gold"
        )
        plan = FaultPlan(
            bursts=[BurstFault(at_s=0.0, app="helr", count=200, priority=0)]
        )
        plan.apply(server)
        report = server.drain()
        assert premium.rid in {r.request.rid for r in report.records}


class TestSlowDevice:
    def test_window_stretches_service_time(self):
        server = _server(overload=None, lanes=1, max_wait_s=0.0)
        server.submit(app="helr", arrival_s=0.0)  # healthy
        server.submit(app="helr", arrival_s=50.0)  # inside the window
        plan = FaultPlan(
            slowdowns=[SlowDeviceFault(start_s=40.0, end_s=70.0, factor=3.0)]
        )
        plan.apply(server)
        report = server.drain()
        assert isinstance(server.model, FaultyServiceModel)
        by_arrival = sorted(report.records, key=lambda r: r.request.arrival_s)
        assert by_arrival[0].service_s == pytest.approx(BASE_SERVICE_S)
        assert by_arrival[1].service_s == pytest.approx(3.0 * BASE_SERVICE_S)

    def test_stalled_device_does_not_deadlock(self):
        """A near-stall (1000x) still drains -- slow, not stuck."""
        server = _server(overload=None, lanes=1, max_wait_s=0.0)
        for i in range(4):
            server.submit(app="helr", arrival_s=float(i))
        FaultPlan(
            slowdowns=[
                SlowDeviceFault(start_s=0.0, end_s=1e6, factor=1000.0)
            ]
        ).apply(server)
        report = server.drain()
        assert report.served == 4
        _assert_invariants(report, 4)

    def test_stacked_windows_compound(self):
        model = FaultyServiceModel(
            FLAT,
            [
                SlowDeviceFault(start_s=0.0, end_s=100.0, factor=2.0),
                SlowDeviceFault(start_s=50.0, end_s=100.0, factor=3.0),
            ],
        )
        assert model.factor_at(10.0) == pytest.approx(2.0)
        assert model.factor_at(60.0) == pytest.approx(6.0)
        assert model.factor_at(200.0) == pytest.approx(1.0)


class TestMidDrainCancels:
    def test_cancel_storm_during_burst(self):
        server = _server(overload=None, lanes=1, max_wait_s=100.0)
        doomed = [
            server.submit(app="helr", arrival_s=0.0) for _ in range(6)
        ]
        server.submit(app="packbootstrap", arrival_s=1000.0)  # window holder
        plan = FaultPlan(
            cancels=[
                CancelFault(at_s=1.0, rids=tuple(r.rid for r in doomed[4:]))
            ]
        )
        plan.apply(server)
        report = server.drain()
        cancelled = {r.rid for r in report.cancelled}
        # Requests 4 and 5 cancel at t=1 unless their batch dispatched at
        # t=0 -- with max_batch 4 the first batch took rids 0-3, so both
        # cancels land while queued.
        assert cancelled == {doomed[4].rid, doomed[5].rid}
        _assert_invariants(report, 7)

    def test_faults_compose(self, rng):
        """All three fault kinds in one plan; invariants still hold."""
        server = _server()
        for i in range(10):
            server.submit(
                app="helr", arrival_s=float(i) * 2.0, priority=i % 3
            )
        plan = FaultPlan(
            bursts=[BurstFault(at_s=5.0, app="packbootstrap", count=40)],
            slowdowns=[SlowDeviceFault(start_s=0.0, end_s=30.0, factor=4.0)],
            cancels=[CancelFault(at_s=8.0, rids=(1, 3, 5, 44))],
        )
        injected = plan.apply(server)
        report = server.drain()
        _assert_invariants(report, 10 + len(injected))
