"""The admission queue: arrived-but-unscheduled requests plus depth metrics.

The queue itself is policy-free -- it holds requests in arrival order and
records a time-stamped depth sample at every mutation, so the server can
report time-weighted mean and peak queue depth without a separate metrics
pass.  Ordering and batching decisions live in
:mod:`repro.serving.policies` and :mod:`repro.serving.batcher`.

The queue is **bounded** when given a ``capacity``: pushing into a full
queue raises :class:`QueueFull` instead of growing without limit.  Under
sustained overload an unbounded queue is an OOM waiting to happen (and a
latency disaster long before that); the explicit rejection path is what
:mod:`repro.serving.overload` turns into load shedding, eviction, and
backpressure signals.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .request import Request


class QueueFull(Exception):
    """Raised when a push would exceed the queue's capacity bound."""

    def __init__(self, capacity: int):
        super().__init__(
            f"admission queue is at its capacity bound ({capacity} requests)"
        )
        self.capacity = capacity


class RequestQueue:
    """Pending requests with step-function depth accounting.

    Args:
        capacity: maximum pending requests; ``None`` leaves the queue
            unbounded (the pre-overload-control behaviour).
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._pending: List[Request] = []
        #: (time, depth) samples; depth holds until the next sample.
        self._samples: List[Tuple[float, int]] = []

    # -- membership ---------------------------------------------------------------

    def push(self, request: Request, now: float) -> None:
        """Append one request; raises :class:`QueueFull` at the bound."""
        if self.capacity is not None and len(self._pending) >= self.capacity:
            raise QueueFull(self.capacity)
        self._pending.append(request)
        self._sample(now)

    def remove(self, requests: Iterable[Request], now: float) -> None:
        """Drop a dispatched batch's requests (by identity of rid)."""
        gone = {r.rid for r in requests}
        self._pending = [r for r in self._pending if r.rid not in gone]
        self._sample(now)

    def pop_rid(self, rid: int, now: float) -> Optional[Request]:
        """Remove and return the queued request with `rid`, if present."""
        for i, request in enumerate(self._pending):
            if request.rid == rid:
                del self._pending[i]
                self._sample(now)
                return request
        return None

    def lowest_priority(self, below: int) -> Optional[Request]:
        """The eviction victim: lowest priority strictly below `below`.

        Among equal priorities the most recent arrival goes (it has the
        least queueing investment to waste).  ``None`` when every queued
        request is at or above `below`.
        """
        victim: Optional[Request] = None
        for request in self._pending:
            if request.priority >= below:
                continue
            if (
                victim is None
                or request.priority < victim.priority
                or (
                    request.priority == victim.priority
                    and (request.arrival_s, request.rid)
                    > (victim.arrival_s, victim.rid)
                )
            ):
                victim = request
        return victim

    def tenant_depth(self, tenant: str) -> int:
        """Currently queued requests belonging to one tenant."""
        return sum(1 for r in self._pending if r.tenant == tenant)

    @property
    def requests(self) -> Tuple[Request, ...]:
        """The pending requests in arrival (push) order."""
        return tuple(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    # -- pressure -----------------------------------------------------------------

    @property
    def pressure(self) -> float:
        """Fill fraction in [0, 1]; always 0.0 for unbounded queues."""
        if self.capacity is None:
            return 0.0
        return len(self._pending) / self.capacity

    # -- depth metrics ------------------------------------------------------------

    def _sample(self, now: float) -> None:
        self._samples.append((now, len(self._pending)))

    def max_depth(self) -> int:
        return max((depth for _, depth in self._samples), default=0)

    def mean_depth(self) -> float:
        """Time-weighted mean depth over the sampled span."""
        if len(self._samples) < 2:
            return float(self._samples[0][1]) if self._samples else 0.0
        area = 0.0
        for (t0, depth), (t1, _) in zip(self._samples, self._samples[1:]):
            area += depth * (t1 - t0)
        span = self._samples[-1][0] - self._samples[0][0]
        return area / span if span > 0 else float(self._samples[-1][1])

    def depth_samples(self) -> Tuple[Tuple[float, int], ...]:
        return tuple(self._samples)
