"""Differential suite: full Evaluator sequences, Barrett vs object oracle.

The Barrett/Shoup ``uint64`` backend is property-tested element-wise in
``tests/math/test_barrett_backend.py``; this suite extends the comparison
up the stack to whole :class:`~repro.ckks.evaluator.Evaluator` op
sequences (HADD / PADD / PMULT / HMULT / HROTATE / Rescale, with KeySwitch
inside HMULT and HROTATE), at the *boundary* moduli of the Barrett range:
32-bit primes just above ``2**31`` (where the fast backend hands over) and
61/62-bit primes just below ``2**62`` (the Barrett ceiling).

Randomness only happens once, natively: keys and input ciphertexts are
generated and serialised up front, then each drawn op sequence replays on
deserialised copies under both backends (key/encryption sampling consumes
the RNG differently per backend, so regenerating inside the oracle context
would diverge for reasons that have nothing to do with arithmetic).  The
acceptance bar is bit-identical residues on every limb.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ckks import (
    CkksEncoder,
    CkksParameters,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.ckks.serialization import (
    deserialize_ciphertext,
    deserialize_galois_keys,
    deserialize_keyswitch_key,
    serialize_ciphertext,
    serialize_galois_keys,
    serialize_keyswitch_key,
)
from repro.math import modarith


def _boundary_fixture(params, seed):
    """Keys and two input ciphertexts, frozen as serialised payloads."""
    assert all(
        modarith.backend_kind(q) == "barrett" for q in params.moduli
    ), "boundary params must live entirely on the Barrett backend"
    gen = KeyGenerator(params, seed=seed)
    secret = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(secret), seed=seed + 1)
    values = np.random.default_rng(seed + 2).uniform(-0.7, 0.7, size=(2, params.slots))
    ct_a = encryptor.encrypt(encoder.encode(values[0]))
    ct_b = encryptor.encrypt(encoder.encode(values[1]))
    return {
        "params": params,
        "other_values": values[1],
        "relin": serialize_keyswitch_key(gen.relinearisation_key(secret)),
        "galois": serialize_galois_keys(gen.rotation_keys(secret, [1, 2])),
        "ct_a": serialize_ciphertext(ct_a),
        "ct_b": serialize_ciphertext(ct_b),
    }


# Primes just above 2**31: the smallest Barrett moduli (the fast uint64
# backend stops one bit below), and 61/62-bit primes just below the 2**62
# Barrett ceiling, where the reduction headroom is tightest.
FIXTURES = {
    "just_above_2^31": _boundary_fixture(
        CkksParameters(degree=16, max_level=4, wordsize=32, dnum=2), seed=101
    ),
    "just_below_2^62": _boundary_fixture(
        CkksParameters(
            degree=16, max_level=4, wordsize=61, dnum=2, first_prime_bits=62
        ),
        seed=202,
    ),
}

OPS = st.sampled_from(["hadd", "padd", "psub", "negate", "pmult", "hmult",
                       "rotate1", "rotate2"])


def _replay(fixture, ops):
    """Run `ops` on deserialised copies under the *current* backend."""
    params = fixture["params"]
    encoder = CkksEncoder(params)
    evaluator = Evaluator(
        params,
        relin_key=deserialize_keyswitch_key(fixture["relin"], params),
        galois_keys=deserialize_galois_keys(fixture["galois"], params),
    )
    ct = deserialize_ciphertext(fixture["ct_a"], params)
    ct_other = deserialize_ciphertext(fixture["ct_b"], params)
    other = fixture["other_values"]
    multiplications = 0
    for op in ops:
        if op in ("pmult", "hmult") and multiplications >= params.max_level - 1:
            continue  # out of levels
        if op == "hadd":
            ct = evaluator.add(ct, ct)
        elif op == "padd":
            pt = encoder.encode(other, level=ct.level, scale=ct.scale)
            ct = evaluator.add_plain(ct, pt)
        elif op == "psub":
            pt = encoder.encode(other, level=ct.level, scale=ct.scale)
            ct = evaluator.sub_plain(ct, pt)
        elif op == "negate":
            ct = evaluator.negate(ct)
        elif op == "pmult":
            pt = encoder.encode(other, level=ct.level)
            ct = evaluator.rescale(evaluator.multiply_plain(ct, pt))
            multiplications += 1
        elif op == "hmult":
            rhs = evaluator.mod_switch_to_level(ct_other, ct.level)
            ct = evaluator.rescale(evaluator.multiply(ct, rhs))
            multiplications += 1
        elif op == "rotate1":
            ct = evaluator.rotate(ct, 1)
        elif op == "rotate2":
            ct = evaluator.rotate(ct, 2)
    return ct


def _limbs_as_ints(poly):
    return [np.asarray(limb).astype(object) for limb in poly.from_ntt().limbs]


def _assert_bit_identical(native, oracle, ops):
    assert native.level == oracle.level
    assert native.scale == oracle.scale
    for component, n_poly, o_poly in (
        ("c0", native.c0, oracle.c0),
        ("c1", native.c1, oracle.c1),
    ):
        for limb_index, (n_limb, o_limb) in enumerate(
            zip(_limbs_as_ints(n_poly), _limbs_as_ints(o_poly))
        ):
            assert (n_limb == o_limb).all(), (
                f"{component} limb {limb_index} diverged after {ops}"
            )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(OPS, min_size=1, max_size=6))
@pytest.mark.parametrize("boundary", sorted(FIXTURES))
def test_evaluator_sequence_bit_identical_across_backends(boundary, ops):
    fixture = FIXTURES[boundary]
    native = _replay(fixture, ops)
    assert native.c0.stack.dtype == np.uint64, "native run must stay on uint64"
    with modarith.object_backend():
        oracle = _replay(fixture, ops)
        assert oracle.c0.stack.dtype == object, "oracle run must use object dtype"
    _assert_bit_identical(native, oracle, ops)


@pytest.mark.parametrize("boundary", sorted(FIXTURES))
def test_deep_ladder_bit_identical_across_backends(boundary):
    """Deterministic companion: use every level, both keyswitch paths."""
    ops = ["hmult", "rotate1", "pmult", "padd", "hmult", "rotate2", "hadd"]
    fixture = FIXTURES[boundary]
    native = _replay(fixture, ops)
    with modarith.object_backend():
        oracle = _replay(fixture, ops)
    _assert_bit_identical(native, oracle, ops)
