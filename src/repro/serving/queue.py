"""The admission queue: arrived-but-unscheduled requests plus depth metrics.

The queue itself is policy-free -- it holds requests in arrival order and
records a time-stamped depth sample at every mutation, so the server can
report time-weighted mean and peak queue depth without a separate metrics
pass.  Ordering and batching decisions live in
:mod:`repro.serving.policies` and :mod:`repro.serving.batcher`.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from .request import Request


class RequestQueue:
    """Pending requests with step-function depth accounting."""

    def __init__(self):
        self._pending: List[Request] = []
        #: (time, depth) samples; depth holds until the next sample.
        self._samples: List[Tuple[float, int]] = []

    # -- membership ---------------------------------------------------------------

    def push(self, request: Request, now: float) -> None:
        self._pending.append(request)
        self._sample(now)

    def remove(self, requests: Iterable[Request], now: float) -> None:
        """Drop a dispatched batch's requests (by identity of rid)."""
        gone = {r.rid for r in requests}
        self._pending = [r for r in self._pending if r.rid not in gone]
        self._sample(now)

    @property
    def requests(self) -> Tuple[Request, ...]:
        """The pending requests in arrival (push) order."""
        return tuple(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    # -- depth metrics ------------------------------------------------------------

    def _sample(self, now: float) -> None:
        self._samples.append((now, len(self._pending)))

    def max_depth(self) -> int:
        return max((depth for _, depth in self._samples), default=0)

    def mean_depth(self) -> float:
        """Time-weighted mean depth over the sampled span."""
        if len(self._samples) < 2:
            return float(self._samples[0][1]) if self._samples else 0.0
        area = 0.0
        for (t0, depth), (t1, _) in zip(self._samples, self._samples[1:]):
            area += depth * (t1 - t0)
        span = self._samples[-1][0] - self._samples[0][0]
        return area / span if span > 0 else float(self._samples[-1][1])

    def depth_samples(self) -> Tuple[Tuple[float, int], ...]:
        return tuple(self._samples)
