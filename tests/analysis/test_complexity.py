"""Tests for the Table 2 complexity formulas."""

import pytest

from repro.analysis import complexity
from repro.ckks.params import get_set


class TestFormulas:
    def test_hybrid_formulas_verbatim(self):
        """Table 2 left column at symbolic values."""
        got = complexity.hybrid_complexity(level=35, alpha=4, beta=9)
        assert got["Mod Up"] == 9 * 35 * 4
        assert got["NTT"] == 9 * (35 + 4)
        assert got["Inner Product"] == 2 * 9 * (35 + 4)
        assert got["Inverse NTT"] == 2 * 9 * (35 + 4)
        assert got["Recover Limbs"] == 0
        assert got["Mod Down"] == 2 * (35 * 4 + 35)

    def test_klss_formulas_verbatim(self):
        got = complexity.klss_complexity(
            level=35, alpha=4, beta=9, alpha_prime=8, beta_tilde=8
        )
        assert got["Mod Up"] == 9 * 4 * 8
        assert got["NTT"] == 8 * 8
        assert got["Inner Product"] == 9 * 8 * 8
        assert got["Inverse NTT"] == 2 * 8 * 8
        assert got["Recover Limbs"] == 2 * 8 * (35 + 4)
        assert got["Mod Down"] == 2 * (35 * 4 + 35)

    def test_rows_constant(self):
        assert complexity.TABLE2_ROWS == (
            "Mod Up", "NTT", "Inner Product", "Inverse NTT",
            "Recover Limbs", "Mod Down",
        )


class TestTableBuilder:
    def test_set_c_has_both_columns(self):
        table = complexity.complexity_table(get_set("C"))
        assert set(table) == {"Hybrid", "KLSS"}

    def test_hybrid_only_set(self):
        table = complexity.complexity_table(get_set("A"))
        assert set(table) == {"Hybrid"}

    def test_klss_wins_at_set_c(self):
        """The paper's point: KLSS totals below Hybrid at Set C."""
        assert complexity.klss_beats_hybrid(get_set("C"))

    def test_klss_beats_hybrid_requires_config(self):
        with pytest.raises(ValueError):
            complexity.klss_beats_hybrid(get_set("A"))

    def test_mod_down_identical_between_methods(self):
        """Table 2: the Mod Down row is shared."""
        table = complexity.complexity_table(get_set("C"))
        assert table["Hybrid"]["Mod Down"] == table["KLSS"]["Mod Down"]

    def test_complexity_grows_with_level(self):
        params = get_set("C")
        low = complexity.total_complexity(
            complexity.complexity_table(params, 10)["KLSS"]
        )
        high = complexity.total_complexity(
            complexity.complexity_table(params, 35)["KLSS"]
        )
        assert high > low

    def test_klss_ip_exceeds_hybrid_ip_relatively(self):
        """Section 2.2: KLSS 'exhibits higher complexity of IP' relative to
        its other steps -- IP is the largest KLSS step besides recovery."""
        table = complexity.complexity_table(get_set("C"))
        klss = table["KLSS"]
        assert klss["Inner Product"] >= klss["NTT"]
        assert klss["Inner Product"] >= klss["Mod Up"]
