"""Continuous batching: fold queued requests into dynamic batches.

The batcher implements the decision rule of continuous-batching servers:
the head-of-queue bucket dispatches as soon as it is *full* (adding the
next compatible request would exceed ``max_batch`` ciphertexts), its
*window* expires (the oldest member has waited ``max_wait_s``), or the
server is draining and no further arrivals can top the batch up.  Until
then the batch stays open, trading a bounded wait for a larger -- and far
more device-efficient -- BatchSize (the Fig. 17 occupancy effect is what
makes this trade profitable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .policies import AdmissionPolicy
from .request import Request


@dataclass(frozen=True)
class Batch:
    """One formed dynamic batch, ready to run on a lane."""

    bid: int
    app: str
    requests: Tuple[Request, ...]
    #: BatchSize the model runs at (>= total_size; policies may pad).
    executed_size: int
    #: When the batch left the admission queue.
    formed_s: float

    @property
    def total_size(self) -> int:
        """Ciphertexts actually carried (excluding policy padding)."""
        return sum(r.size for r in self.requests)

    def __len__(self) -> int:
        return len(self.requests)


class ContinuousBatcher:
    """Stateless batch-formation rule over the pending queue."""

    def __init__(self, policy: AdmissionPolicy, max_batch: int = 64,
                 max_wait_s: float = 30.0):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.policy = policy
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s

    def candidate(
        self, pending: Sequence[Request], now: float, draining: bool
    ) -> Tuple[Optional[List[Request]], float]:
        """The batch to dispatch at `now`, or when to look again.

        Returns ``(requests, window_deadline)``.  ``requests`` is non-None
        when the head bucket should dispatch now (full, window expired, or
        draining); otherwise the batch is still filling and the server
        should re-evaluate at ``window_deadline`` or the next arrival,
        whichever comes first.  A single request larger than ``max_batch``
        dispatches alone at its own size.
        """
        if not pending:
            return None, math.inf
        ordered = sorted(pending, key=self.policy.order_key)
        bucket = self.policy.bucket(ordered[0])
        group = [r for r in ordered if self.policy.bucket(r) == bucket]
        take: List[Request] = []
        total = 0
        overflow = False
        for request in group:
            if take and total + request.size > self.max_batch:
                overflow = True
                break
            take.append(request)
            total += request.size
        full = overflow or total >= self.max_batch
        window_deadline = min(r.arrival_s for r in take) + self.max_wait_s
        if full or draining or now >= window_deadline:
            return take, window_deadline
        return None, window_deadline
