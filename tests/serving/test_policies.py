"""Admission policies: ordering, bucketing, and executed-size rules."""

import pytest

from repro.serving import (
    POLICIES,
    EarliestDeadlinePolicy,
    FifoPolicy,
    Request,
    SizeBucketedPolicy,
    get_policy,
    next_power_of_two,
)


@pytest.mark.parametrize(
    "n,expect",
    [(1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16), (64, 64), (65, 128)],
)
def test_next_power_of_two(n, expect):
    assert next_power_of_two(n) == expect


def test_next_power_of_two_rejects_zero():
    with pytest.raises(ValueError):
        next_power_of_two(0)


class TestResolution:
    def test_names_resolve(self):
        for name, cls in POLICIES.items():
            assert isinstance(get_policy(name), cls)
            assert get_policy(name).name == name

    def test_instances_pass_through(self):
        policy = FifoPolicy()
        assert get_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            get_policy("lifo")


def _req(rid, app="helr", size=1, arrival=0.0, slo=0.0):
    return Request(rid=rid, app=app, size=size, arrival_s=arrival, slo_s=slo)


class TestOrdering:
    def test_fifo_orders_by_arrival(self):
        requests = [_req(0, arrival=5.0), _req(1, arrival=1.0), _req(2, arrival=3.0)]
        ordered = sorted(requests, key=FifoPolicy().order_key)
        assert [r.rid for r in ordered] == [1, 2, 0]

    def test_edf_orders_by_deadline_not_arrival(self):
        # rid 0 arrives first but has a lax SLO; rid 1 arrives later with a
        # tight one, so its absolute deadline is earlier.
        lax = _req(0, arrival=0.0, slo=1000.0)
        tight = _req(1, arrival=10.0, slo=50.0)
        ordered = sorted([lax, tight], key=EarliestDeadlinePolicy().order_key)
        assert [r.rid for r in ordered] == [1, 0]


class TestBucketing:
    def test_apps_never_share_a_bucket(self):
        policy = FifoPolicy()
        assert policy.bucket(_req(0, app="helr")) != policy.bucket(
            _req(1, app="packbootstrap")
        )

    def test_size_buckets_split_by_power_of_two(self):
        policy = SizeBucketedPolicy()
        assert policy.bucket(_req(0, size=3)) == policy.bucket(_req(1, size=4))
        assert policy.bucket(_req(0, size=4)) != policy.bucket(_req(1, size=5))

    def test_executed_size_pads_to_power_of_two(self):
        policy = SizeBucketedPolicy()
        assert policy.executed_size(5) == 8
        assert policy.executed_size(64) == 64
        # FIFO runs at the exact carried size.
        assert FifoPolicy().executed_size(5) == 5
