"""Table 8: KeySwitch time under different (dnum, alpha~) KLSS parameters.

The paper's optimum is dnum = 9, alpha~ = 5 (other parameters from Set B).
"""

import dataclasses

from repro.analysis.paper_data import TABLE8_KEYSWITCH_MS
from repro.analysis.reporting import format_table
from repro.ckks.params import KlssConfig, get_set
from repro.core import NEO_CONFIG, NeoContext

DNUMS = (4, 6, 9, 12, 18)
ALPHA_TILDES = (4, 5, 6, 7, 8, 9, 10)


def _build_grid():
    base = get_set("B")
    grid = {}
    for alpha_tilde in ALPHA_TILDES:
        for dnum in DNUMS:
            params = dataclasses.replace(
                base,
                dnum=dnum,
                klss=KlssConfig(wordsize_t=48, alpha_tilde=alpha_tilde),
            )
            ctx = NeoContext(params, config=NEO_CONFIG)
            grid[(alpha_tilde, dnum)] = ctx.keyswitch_time_us(35) / 1e3  # ms
    return grid


def test_table8_sensitivity(benchmark):
    grid = benchmark(_build_grid)
    rows = []
    for alpha_tilde in ALPHA_TILDES:
        rows.append(
            [f"a~={alpha_tilde}"]
            + [f"{grid[(alpha_tilde, dnum)]:.3f}" for dnum in DNUMS]
        )
        if alpha_tilde in TABLE8_KEYSWITCH_MS:
            rows.append(
                ["  (paper)"]
                + [f"{TABLE8_KEYSWITCH_MS[alpha_tilde][d]:.2f}" for d in DNUMS]
            )
    print()
    print(
        format_table(
            ["alpha~ \\ dnum"] + [f"dnum={d}" for d in DNUMS],
            rows,
            title="Table 8: KeySwitch time (ms per ciphertext) vs (dnum, alpha~)",
        )
    )
    # --- Shape assertions ------------------------------------------------------
    best = min(grid, key=grid.get)
    default = grid[(5, 9)]
    # dnum shows a bowl: the extremes are worse than the middle for a~=5.
    assert grid[(5, 4)] > grid[(5, 9)]
    assert grid[(5, 18)] > grid[(5, 9)]
    # The paper's default (9, 5) is within 10% of the grid optimum.
    assert default <= grid[best] * 1.10, (
        f"default (dnum=9, a~=5) = {default:.3f} ms vs best {best} = "
        f"{grid[best]:.3f} ms"
    )
    # The optimum's dnum is in the middle of the sweep, as in the paper.
    assert best[1] in (6, 9, 12)
