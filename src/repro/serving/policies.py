"""Admission policies: how queued requests are ordered and grouped.

A policy answers three questions the batcher asks:

* :meth:`~AdmissionPolicy.order_key` -- who goes first?  FIFO orders by
  arrival; the SLO-aware policy orders by absolute deadline (earliest
  deadline first), the classic real-time discipline.
* :meth:`~AdmissionPolicy.bucket` -- who may share a dynamic batch?  Only
  requests of the same application ever batch together (they run one
  schedule); the size-bucketed policy additionally splits by
  power-of-two request size.
* :meth:`~AdmissionPolicy.executed_size` -- what BatchSize does a formed
  batch actually run at?  The size-bucketed policy pads to the next power
  of two, which bounds the number of distinct trace shapes the model ever
  builds (every shape after the first is a trace-cache hit).
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple, Type, Union

from .request import Request


def next_power_of_two(n: int) -> int:
    """The smallest power of two >= `n` (n >= 1)."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


class AdmissionPolicy:
    """Base policy: order, bucket and size dynamic batches."""

    name = "base"

    def order_key(self, request: Request) -> Tuple:
        """Sort key over the queue; lowest key dispatches first."""
        raise NotImplementedError

    def bucket(self, request: Request) -> Hashable:
        """Requests with equal buckets may share a dynamic batch."""
        return request.app

    def executed_size(self, total_size: int) -> int:
        """The BatchSize a batch of `total_size` ciphertexts runs at."""
        return total_size

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FifoPolicy(AdmissionPolicy):
    """First-in first-out: strict arrival order, batches per application."""

    name = "fifo"

    def order_key(self, request: Request) -> Tuple:
        return (request.arrival_s, request.rid)


class EarliestDeadlinePolicy(AdmissionPolicy):
    """SLO-aware: the request closest to violating its SLO goes first."""

    name = "edf"

    def order_key(self, request: Request) -> Tuple:
        return (request.deadline_s, request.rid)


class SizeBucketedPolicy(FifoPolicy):
    """FIFO within power-of-two size buckets, padded executed sizes.

    Padding wastes at most 2x model capacity but keeps the set of distinct
    (params, config, batch) trace-cache keys logarithmic in the maximum
    batch -- the serving analogue of bucketed kernel shapes in GPU serving
    stacks.
    """

    name = "bucketed"

    def bucket(self, request: Request) -> Hashable:
        return (request.app, next_power_of_two(request.size))

    def executed_size(self, total_size: int) -> int:
        return next_power_of_two(total_size)


class PriorityPolicy(SizeBucketedPolicy):
    """Tier-aware EDF on bucketed batches: priority first, deadline second.

    The overload companion policy: once the admission controller has
    decided *who enters* the queue, this policy decides *who leaves
    first* -- premium requests dispatch ahead of standard ahead of batch,
    and within one tier the earliest deadline wins.  Buckets and executed
    sizes follow :class:`SizeBucketedPolicy` (padded powers of two), so
    trace-shape reuse is unchanged.
    """

    name = "priority"

    def order_key(self, request: Request) -> Tuple:
        return (-request.priority, request.deadline_s, request.rid)


POLICIES: Dict[str, Type[AdmissionPolicy]] = {
    FifoPolicy.name: FifoPolicy,
    EarliestDeadlinePolicy.name: EarliestDeadlinePolicy,
    SizeBucketedPolicy.name: SizeBucketedPolicy,
    PriorityPolicy.name: PriorityPolicy,
}


def get_policy(policy: Union[str, AdmissionPolicy]) -> AdmissionPolicy:
    """Resolve a policy instance from a name or pass an instance through."""
    if isinstance(policy, AdmissionPolicy):
        return policy
    try:
        return POLICIES[policy.lower()]()
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(
            f"unknown admission policy {policy!r}; choose from {known}"
        ) from None
