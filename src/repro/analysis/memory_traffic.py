"""Data-transfer requirement analysis (Fig. 2 and Fig. 15).

These functions count *logical* global-memory transfers -- every re-read the
algorithm performs, with no cache forgiveness -- which is the quantity the
paper's Figs. 2 and 15 plot.  (The *time* model caps redundant re-reads at
the L2 amplification factor; see :data:`repro.gpu.kernels.CACHE_REREAD_CAP`.)

All quantities are bytes for a full batch unless stated otherwise.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ckks.params import ParameterSet
from ..gpu.kernels import word_bytes


def bconv_transfer_bytes(
    alpha: int, alpha_out: int, batch: int, degree: int, wordsize: int,
    optimized: bool,
) -> float:
    """Transfer requirement of one BConv (Algorithm 1 vs Algorithm 2)."""
    wb = word_bytes(wordsize)
    elements_in = alpha * batch * degree
    elements_out = alpha_out * batch * degree
    if optimized:
        return (elements_in + elements_out) * wb
    # Algorithm 1: each input coefficient is read once per output level.
    return (elements_in * alpha_out + elements_out) * wb


def ip_transfer_bytes(
    beta: int, beta_tilde: int, alpha_prime: int, batch: int, degree: int,
    wordsize: int, optimized: bool, pair_factor: int = 2,
) -> float:
    """Transfer requirement of one IP (Algorithm 3 vs Algorithm 4)."""
    wb = word_bytes(wordsize)
    limbs = beta * alpha_prime * batch * degree
    evk = beta_tilde * beta * alpha_prime * degree
    out = beta_tilde * alpha_prime * batch * degree
    if optimized:
        return (pair_factor * limbs + evk + pair_factor * out) * wb
    # Algorithm 3: limbs re-read beta~ times; accumulators round-trip
    # through global memory between the per-(i, j) ModMUL kernels.
    acc = 2 * max(beta - 1, 0) * out
    return (pair_factor * (limbs * beta_tilde + evk + acc + out)) * wb


def ntt_transfer_bytes(limbs: int, batch: int, degree: int, wordsize: int) -> float:
    """Transfer of `limbs` fused NTT transforms (read + write each limb)."""
    return 2 * limbs * batch * degree * word_bytes(wordsize)


def keyswitch_transfer_breakdown(
    params: ParameterSet, level: int, batch: Optional[int] = None, optimized: bool = False
) -> Dict[str, float]:
    """Per-kernel transfer of one KeySwitch (the Fig. 2 decomposition).

    Returns bytes for the ``bconv``, ``ip``, ``ntt`` and ``other`` groups.
    The method (Hybrid/KLSS) follows the parameter set.
    """
    batch = batch if batch is not None else (params.batch_size or 1)
    n = params.degree
    ws = params.wordsize
    alpha = params.alpha
    beta = params.beta(level)
    extended = level + 1 + alpha
    if params.keyswitch == "klss":
        alpha_prime, _, beta_tilde = params.klss_dims(level)
        wst = params.klss.wordsize_t
        bconv = beta * bconv_transfer_bytes(alpha, alpha_prime, batch, n, wst, optimized)
        # Recover Limbs is BConv-class traffic too.
        bconv += 2 * bconv_transfer_bytes(alpha_prime, extended, batch, n, wst, optimized)
        bconv += 2 * bconv_transfer_bytes(alpha, level + 1, batch, n, ws, optimized)
        ip = ip_transfer_bytes(beta, beta_tilde, alpha_prime, batch, n, wst, optimized)
        ntt_limbs = (level + 1) + beta * alpha_prime + 2 * beta_tilde * alpha_prime + 2 * (level + 1)
        ntt = ntt_transfer_bytes(ntt_limbs, batch, n, max(ws, wst))
    else:
        bconv = sum(
            bconv_transfer_bytes(
                min(alpha, level + 1 - j * alpha),
                extended - min(alpha, level + 1 - j * alpha),
                batch, n, ws, optimized,
            )
            for j in range(beta)
        )
        bconv += 2 * bconv_transfer_bytes(alpha, level + 1, batch, n, ws, optimized)
        ip = ip_transfer_bytes(beta, 2, extended, batch, n, ws, optimized, pair_factor=1)
        ntt_limbs = (level + 1) + beta * extended + 2 * beta * extended + 2 * (level + 1)
        ntt = ntt_transfer_bytes(ntt_limbs, batch, n, ws)
    other = 2 * (level + 1) * batch * n * word_bytes(ws) * 2  # ModDown fix-up
    return {"bconv": bconv, "ip": ip, "ntt": ntt, "other": other}


def keyswitch_transfer_shares(
    params: ParameterSet, level: int, batch: Optional[int] = None
) -> Dict[str, float]:
    """Fig. 2: each kernel's share of total KeySwitch transfer at `level`."""
    table = keyswitch_transfer_breakdown(params, level, batch)
    total = sum(table.values())
    return {kernel: value / total for kernel, value in table.items()}


def transfer_reduction(
    params: ParameterSet, level: int, kernel: str, batch: Optional[int] = None
) -> float:
    """Fig. 15: optimised / original transfer ratio for ``bconv`` or ``ip``."""
    before = keyswitch_transfer_breakdown(params, level, batch, optimized=False)
    after = keyswitch_transfer_breakdown(params, level, batch, optimized=True)
    if kernel not in ("bconv", "ip"):
        raise ValueError("Fig. 15 covers the bconv and ip kernels")
    return after[kernel] / before[kernel]
