"""Differential tests: op-plan engines against their loop baselines.

The op-plan compiler (:mod:`repro.ckks.keyswitch.plan`) promises *bit
identity* with the per-digit loop forms -- exact modular sums are
order-independent, so fusing k rotations into one GEMM must not change a
single limb.  These tests pit the plan engines against the loop engines
across both key-switch methods and the boundary levels (0, 1, max).

Every pipeline pair shares ONE key set: key generation is randomized, so
separately generated keys would (correctly) break bit identity.
"""

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    KlssConfig,
    small_test_parameters,
)
from repro.ckks.bootstrap import Bootstrapper
from repro.ckks.hoisting import hoisted_rotations
from repro.ckks.keys import conjugation_galois_power
from repro.ckks.linear_transform import LinearTransform

from .conftest import random_slots


def assert_ct_identical(a, b):
    """Every limb of both components equal, plus level and scale."""
    assert a.level == b.level
    assert a.scale == b.scale
    for pa, pb in zip((a.c0, a.c1), (b.c0, b.c1)):
        assert np.array_equal(
            pa.from_ntt().limb_stack(), pb.from_ntt().limb_stack()
        )


STEPS = [1, 2, 3, 4, 8]


class TestHoistedRotations:
    """plan-hoisted vs loop-hoisted rotations (never vs non-hoisted --
    the approximate-ModUp slack makes those differ in the noise bits)."""

    @pytest.mark.parametrize("method", ["hybrid", "klss"])
    @pytest.mark.parametrize("level", [0, 1, "max"])
    def test_plan_matches_loop(
        self, params, keyset, encoder, encryptor, evaluator, rng, method, level
    ):
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        target = params.max_level if level == "max" else level
        ct = evaluator.mod_switch_to_level(ct, target)
        plan = hoisted_rotations(
            ct, STEPS, keyset["galois"], params, method=method, engine="plan"
        )
        loop = hoisted_rotations(
            ct, STEPS, keyset["galois"], params, method=method, engine="loop"
        )
        for s in STEPS:
            assert_ct_identical(plan[s], loop[s])

    @pytest.mark.parametrize("method", ["hybrid", "klss"])
    def test_identity_steps_short_circuit_identically(
        self, params, keyset, encoder, encryptor, rng, method
    ):
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        steps = [0, params.slots, 3, -2 * params.slots]
        plan = hoisted_rotations(
            ct, steps, keyset["galois"], params, method=method, engine="plan"
        )
        loop = hoisted_rotations(
            ct, steps, keyset["galois"], params, method=method, engine="loop"
        )
        for s in steps:
            assert_ct_identical(plan[s], loop[s])

    def test_rejects_unknown_engine(self, params, keyset, encoder, encryptor, rng):
        ct = encryptor.encrypt(encoder.encode(random_slots(rng, encoder.slots)))
        with pytest.raises(ValueError):
            hoisted_rotations(ct, [1], keyset["galois"], params, engine="vectorised")


@pytest.fixture(scope="module")
def lt_setup():
    params = small_test_parameters(
        degree=32,
        max_level=6,
        wordsize=25,
        dnum=3,
        klss=KlssConfig(wordsize_t=28, alpha_tilde=2),
    )
    gen = KeyGenerator(params, seed=33)
    sk = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=4)
    decryptor = Decryptor(params, sk)
    relin = gen.relinearisation_key(sk)
    galois = gen.rotation_keys(sk, list(range(1, params.slots)))
    evaluators = {
        m: Evaluator(params, relin_key=relin, galois_keys=galois, method=m)
        for m in ("hybrid", "hybrid-loop", "klss", "klss-loop")
    }
    return params, encoder, encryptor, decryptor, evaluators


class TestLinearTransform:
    """Compiled BSGS plan vs the per-term loop applier."""

    @pytest.mark.parametrize("method", ["hybrid", "klss"])
    @pytest.mark.parametrize("level", [1, 2, "max"])
    def test_plan_matches_loop(self, lt_setup, method, level):
        params, encoder, encryptor, decryptor, evaluators = lt_setup
        rng = np.random.default_rng(17)
        n = params.slots
        m = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / n
        lt = LinearTransform(encoder, m)
        z = rng.normal(size=n) + 1j * rng.normal(size=n)
        ct = encryptor.encrypt(encoder.encode(z))
        target = params.max_level if level == "max" else level
        ct = evaluators[method].mod_switch_to_level(ct, target)
        out_plan = lt.apply(evaluators[method], ct)
        out_loop = lt.apply(evaluators[method + "-loop"], ct)
        assert_ct_identical(out_plan, out_loop)
        got = encoder.decode(decryptor.decrypt(out_plan))
        assert np.abs(got - m @ z).max() < 1e-3

    @pytest.mark.parametrize("method", ["hybrid", "klss"])
    def test_identity_transform(self, lt_setup, method):
        """Every giant/baby step is the identity automorphism."""
        params, encoder, encryptor, decryptor, evaluators = lt_setup
        rng = np.random.default_rng(18)
        lt = LinearTransform(encoder, np.eye(params.slots, dtype=np.complex128))
        z = random_slots(rng, params.slots)
        ct = encryptor.encrypt(encoder.encode(z))
        out_plan = lt.apply(evaluators[method], ct)
        out_loop = lt.apply(evaluators[method + "-loop"], ct)
        assert_ct_identical(out_plan, out_loop)
        assert np.abs(encoder.decode(decryptor.decrypt(out_plan)) - z).max() < 1e-3

    def test_single_off_diagonal(self, lt_setup):
        """One live baby, one live giant -- the smallest mixed schedule."""
        params, encoder, encryptor, decryptor, evaluators = lt_setup
        rng = np.random.default_rng(19)
        n = params.slots
        shift = np.roll(np.eye(n), 5, axis=1)  # (Mz)_i = z_{i+5}
        lt = LinearTransform(encoder, shift)
        z = random_slots(rng, n)
        ct = encryptor.encrypt(encoder.encode(z))
        out_plan = lt.apply(evaluators["hybrid"], ct)
        out_loop = lt.apply(evaluators["hybrid-loop"], ct)
        assert_ct_identical(out_plan, out_loop)
        got = encoder.decode(decryptor.decrypt(out_plan))
        assert np.abs(got - np.roll(z, -5)).max() < 1e-3

    def test_level_one_floor(self, lt_setup):
        params, encoder, encryptor, _, evaluators = lt_setup
        lt = LinearTransform(encoder, np.eye(params.slots, dtype=np.complex128))
        ct = encryptor.encrypt(encoder.encode([1.0]))
        ct = evaluators["hybrid"].mod_switch_to_level(ct, 0)
        with pytest.raises(ValueError):
            lt.apply(evaluators["hybrid"], ct)


@pytest.fixture(scope="module")
def boot_diff_setup():
    params = CkksParameters(
        degree=32, max_level=12, wordsize=25, dnum=4, first_prime_bits=27
    )
    gen = KeyGenerator(params, seed=5)
    sk = gen.secret_key(hamming_weight=1)
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=6)
    decryptor = Decryptor(params, sk)
    relin = gen.relinearisation_key(sk)
    ev_plan = Evaluator(params, relin_key=relin, method="hybrid")
    ev_loop = Evaluator(params, relin_key=relin, method="hybrid-loop")
    boot_plan = Bootstrapper(params, encoder, ev_plan, eval_degree=15,
                             overflow_bound=1.0)
    boot_loop = Bootstrapper(params, encoder, ev_loop, eval_degree=15,
                             overflow_bound=1.0)
    galois = gen.rotation_keys(sk, boot_plan.required_rotations())
    conj = conjugation_galois_power(params.degree)
    galois.add(conj, gen.galois_key(sk, conj))
    ev_plan.galois_keys = galois
    ev_loop.galois_keys = galois
    return params, encoder, encryptor, decryptor, boot_plan, boot_loop


class TestBootstrapEndToEnd:
    def test_plan_bootstrap_matches_loop_bit_for_bit(self, boot_diff_setup):
        params, encoder, encryptor, decryptor, boot_plan, boot_loop = (
            boot_diff_setup
        )
        rng = np.random.default_rng(23)
        v = np.clip(0.3 * rng.normal(size=params.slots), -0.8, 0.8)
        ct = encryptor.encrypt(encoder.encode(v, level=0))
        out_plan = boot_plan.bootstrap(ct)
        out_loop = boot_loop.bootstrap(ct)
        assert_ct_identical(out_plan, out_loop)
        got = encoder.decode(decryptor.decrypt(out_plan)).real
        assert np.abs(got - v).max() < 2e-2

    def test_stage_outputs_match(self, boot_diff_setup):
        """CtS / EvalMod / StC each stay bit-identical in isolation."""
        params, encoder, encryptor, _, boot_plan, boot_loop = boot_diff_setup
        rng = np.random.default_rng(29)
        v = 0.3 * rng.normal(size=params.slots)
        ct = encryptor.encrypt(encoder.encode(v, level=0))
        raised_p = boot_plan.mod_raise(ct)
        raised_l = boot_loop.mod_raise(ct)
        assert_ct_identical(raised_p, raised_l)
        lo_p, hi_p = boot_plan.coeff_to_slot(raised_p)
        lo_l, hi_l = boot_loop.coeff_to_slot(raised_l)
        assert_ct_identical(lo_p, lo_l)
        assert_ct_identical(hi_p, hi_l)
        w_p = boot_plan.eval_mod(lo_p)
        w_l = boot_loop.eval_mod(lo_l)
        assert_ct_identical(w_p, w_l)
        out_p = boot_plan.slot_to_coeff(w_p, boot_plan.eval_mod(hi_p))
        out_l = boot_loop.slot_to_coeff(w_l, boot_loop.eval_mod(hi_l))
        assert_ct_identical(out_p, out_l)
