"""Functional CKKS bootstrapping, end to end (the paper's PackBootstrap).

Exhausts a ciphertext's level budget with real multiplications, then runs
the four-stage bootstrap -- ModRaise, CoeffToSlot, EvalMod, SlotToCoeff --
and keeps computing on the refreshed ciphertext.

Run:  python examples/bootstrap_demo.py
"""

import numpy as np

from repro.ckks import (
    Bootstrapper,
    CkksEncoder,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    conjugation_galois_power,
)


def main():
    # q0 / scale = 4 keeps the sine-approximation error amplification low;
    # the sparse secret bounds the ModRaise overflow |I| <= 1.
    params = CkksParameters(
        degree=32, max_level=12, wordsize=25, dnum=4, first_prime_bits=27
    )
    gen = KeyGenerator(params, seed=5)
    secret = gen.secret_key(hamming_weight=1)
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(secret), seed=6)
    decryptor = Decryptor(params, secret)
    evaluator = Evaluator(params, relin_key=gen.relinearisation_key(secret))

    boot = Bootstrapper(params, encoder, evaluator, eval_degree=15)
    galois = gen.rotation_keys(secret, boot.required_rotations())
    conj = conjugation_galois_power(params.degree)
    galois.add(conj, gen.galois_key(secret, conj))
    evaluator.galois_keys = galois
    print(f"bootstrapper ready: {len(boot.required_rotations())} rotation keys, "
          f"sine approximation degree {len(boot.sine_coeffs) - 1}")

    rng = np.random.default_rng(1)
    v = 0.3 * rng.normal(size=params.slots)
    ct = encryptor.encrypt(encoder.encode(v, level=0))
    print(f"ciphertext at level {ct.level}: multiplicative budget exhausted")

    refreshed = boot.bootstrap(ct)
    got = encoder.decode(decryptor.decrypt(refreshed)).real
    err = np.abs(got - v).max()
    print(f"bootstrapped to level {refreshed.level}, message error {err:.2e}")
    assert err < 0.05

    squared = evaluator.rescale(evaluator.square(refreshed))
    got_sq = encoder.decode(decryptor.decrypt(squared)).real
    err_sq = np.abs(got_sq - v * v).max()
    print(f"squared the refreshed ciphertext (level {squared.level}): "
          f"error {err_sq:.2e}")
    assert err_sq < 0.05
    print("OK: computation continued past the original level budget")


if __name__ == "__main__":
    main()
