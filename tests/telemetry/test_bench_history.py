"""Benchmark-history recorder: append-only files, direction-aware compare."""

import json

import pytest

from repro.telemetry.bench_history import (
    BenchRecord,
    compare,
    compare_to_last,
    format_regressions,
    history_path,
    load_history,
    record_result,
)


def _record(**metrics):
    return BenchRecord(name="t", recorded_at="now", metrics=metrics)


class TestRecording:
    def test_history_path_slugs_name(self, tmp_path):
        path = history_path("serving throughput!", str(tmp_path))
        assert path.endswith("BENCH_serving-throughput-.json")

    def test_record_appends_and_loads_in_order(self, tmp_path):
        record_result("ks", {"loop_ms": 10.0}, directory=str(tmp_path))
        record_result("ks", {"loop_ms": 12.0}, meta={"degree": 65536},
                      directory=str(tmp_path))
        history = load_history("ks", str(tmp_path))
        assert [r.metrics["loop_ms"] for r in history] == [10.0, 12.0]
        assert history[-1].meta == {"degree": "65536"}

    def test_file_is_a_json_array(self, tmp_path):
        record_result("ks", {"x": 1.0}, directory=str(tmp_path))
        with open(history_path("ks", str(tmp_path))) as fh:
            assert isinstance(json.load(fh), list)

    def test_load_missing_is_empty(self, tmp_path):
        assert load_history("never", str(tmp_path)) == []

    def test_load_rejects_non_array(self, tmp_path):
        path = history_path("bad", str(tmp_path))
        with open(path, "w") as fh:
            json.dump({"not": "array"}, fh)
        with pytest.raises(ValueError, match="not a benchmark-history array"):
            load_history("bad", str(tmp_path))


class TestCompare:
    def test_timing_regression_flags_increase(self):
        regs = compare(_record(loop_ms=100.0), {"loop_ms": 120.0}, rtol=0.10)
        (reg,) = regs
        assert reg.metric == "loop_ms" and not reg.higher_is_better
        assert reg.change == pytest.approx(0.20)
        assert "rose" in reg.format()

    def test_timing_improvement_not_flagged(self):
        assert compare(_record(loop_ms=100.0), {"loop_ms": 50.0}) == []

    def test_speedup_suffix_is_higher_is_better(self):
        regs = compare(_record(gemm_speedup=4.0), {"gemm_speedup": 3.0},
                       rtol=0.10)
        (reg,) = regs
        assert reg.higher_is_better and "dropped" in reg.format()

    def test_throughput_and_attainment_suffixes(self):
        prev = _record(serve_rps=10.0, slo_attainment=1.0)
        regs = compare(prev, {"serve_rps": 5.0, "slo_attainment": 0.5})
        assert {r.metric for r in regs} == {"serve_rps", "slo_attainment"}

    def test_within_tolerance_passes(self):
        assert compare(_record(loop_ms=100.0), {"loop_ms": 105.0},
                       rtol=0.10) == []

    def test_explicit_higher_is_better_key(self):
        regs = compare(_record(score=10.0), {"score": 5.0},
                       higher_is_better=("score",))
        assert len(regs) == 1

    def test_zero_previous_never_divides(self):
        # lower-is-better metric starting at zero: any positive value is worse
        (reg,) = compare(_record(errors=0.0), {"errors": 3.0})
        assert reg.change == 1.0
        assert compare(_record(errors=0.0), {"errors": 0.0}) == []

    def test_new_and_dropped_metrics_ignored(self):
        assert compare(_record(old=1.0), {"new": 99.0}) == []


class TestCompareToLast:
    def test_first_run_has_no_baseline(self, tmp_path):
        baseline, regs = compare_to_last("fresh", {"x": 1.0},
                                         directory=str(tmp_path))
        assert baseline is None and regs == []

    def test_compares_against_most_recent(self, tmp_path):
        record_result("ks", {"loop_ms": 100.0}, directory=str(tmp_path))
        record_result("ks", {"loop_ms": 10.0}, directory=str(tmp_path))
        baseline, regs = compare_to_last("ks", {"loop_ms": 12.0},
                                         directory=str(tmp_path), rtol=0.10)
        # 12 vs the last run's 10 regresses; vs the first run's 100 it would not
        assert baseline.metrics["loop_ms"] == 10.0
        assert len(regs) == 1

    def test_format_regressions_messages(self):
        assert "no regressions" in format_regressions([])
        regs = compare(_record(loop_ms=1.0), {"loop_ms": 2.0})
        text = format_regressions(regs)
        assert "1 regression(s)" in text and "loop_ms" in text
