"""Key material and key generation for CKKS.

Keys follow the hybrid-dnum layout of Han-Ki (the paper's Table 1): a
key-switching key for ``s' -> s`` is one ``(b_j, a_j)`` pair per digit
``j < dnum`` over the extended basis ``PQ``, where::

    b_j = -a_j * s + e_j + P * W_j * s'   (mod PQ)
    W_j = (Q / Q_j) * [(Q / Q_j)^{-1}]_{Q_j}

The KLSS method (Section 2.2) consumes the *same* key material -- it is a
key *decomposition* technique -- so :class:`KeySwitchKey` is shared by both
key-switching back-ends.
"""

from __future__ import annotations

import itertools
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..math import modarith
from ..math.polynomial import RnsPolynomial
from ..math.rns import RnsBasis
from .params import CkksParameters


def sample_ternary(degree: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform ternary secret coefficients in {-1, 0, 1}."""
    return rng.integers(-1, 2, size=degree, dtype=np.int64)


def sample_sparse_ternary(
    degree: int, hamming_weight: int, rng: np.random.Generator
) -> np.ndarray:
    """Ternary secret with exactly `hamming_weight` nonzero coefficients.

    Sparse secrets bound the ``q0 * I`` overflow during bootstrapping's
    ModRaise (|I| grows with the secret's weight), which is why
    bootstrappable parameter sets use them.
    """
    if not 0 < hamming_weight <= degree:
        raise ValueError(f"hamming weight must be in (0, {degree}]")
    coeffs = np.zeros(degree, dtype=np.int64)
    positions = rng.choice(degree, size=hamming_weight, replace=False)
    signs = rng.choice([-1, 1], size=hamming_weight)
    coeffs[positions] = signs
    return coeffs


def sample_error(degree: int, std: float, rng: np.random.Generator) -> np.ndarray:
    """Rounded Gaussian error coefficients."""
    return np.round(rng.normal(0.0, std, size=degree)).astype(np.int64)


def sample_uniform(degree: int, basis: RnsBasis, rng: np.random.Generator) -> RnsPolynomial:
    """A uniformly random ring element, sampled limb-wise (CRT-uniform)."""
    limbs = [
        rng.integers(0, q, size=degree, dtype=np.uint64)
        if q < 2**63
        else np.array([int.from_bytes(rng.bytes(16), "little") % q for _ in range(degree)], dtype=object)
        for q in basis.moduli
    ]
    return RnsPolynomial(degree, basis, limbs, is_ntt=False)


class SecretKey:
    """The ternary secret ``s``, kept as integer coefficients."""

    def __init__(self, coeffs: np.ndarray, params: CkksParameters):
        self.coeffs = np.asarray(coeffs, dtype=object)
        self.params = params
        self._cache: Dict[Tuple[int, ...], RnsPolynomial] = {}

    def poly(self, basis: RnsBasis) -> RnsPolynomial:
        """The secret as a ring element over `basis` (cached)."""
        key = basis.moduli
        poly = self._cache.get(key)
        if poly is None:
            poly = RnsPolynomial.from_int_coeffs(
                self.coeffs, self.params.degree, basis
            )
            self._cache[key] = poly
        return poly


class PublicKey:
    """An encryption key ``(b, a) = (-a*s + e, a)`` over the top-level basis."""

    def __init__(self, b: RnsPolynomial, a: RnsPolynomial):
        self.b = b
        self.a = a


class KeySwitchKey:
    """Hybrid-dnum key-switching key: one ``(b_j, a_j)`` pair per digit.

    Pairs are stored in coefficient form over ``pq_basis(L)``; the
    key-switching back-ends convert to their working domains on demand.
    """

    _TOKENS = itertools.count()

    def __init__(self, pairs: Sequence[Tuple[RnsPolynomial, RnsPolynomial]]):
        if not pairs:
            raise ValueError("a key-switching key needs at least one digit")
        self.pairs: List[Tuple[RnsPolynomial, RnsPolynomial]] = list(pairs)
        #: Process-unique identity token; key-switch plan caches key on it
        #: (plus the params fingerprint) instead of stashing state on the
        #: key object itself.
        self.cache_token: int = next(KeySwitchKey._TOKENS)

    @property
    def dnum(self) -> int:
        return len(self.pairs)


class GaloisKeys:
    """Rotation/conjugation keys indexed by Galois power."""

    def __init__(self):
        self._keys: Dict[int, KeySwitchKey] = {}

    def add(self, galois_power: int, key: KeySwitchKey):
        self._keys[galois_power] = key

    def get(self, galois_power: int) -> KeySwitchKey:
        try:
            return self._keys[galois_power]
        except KeyError:
            raise KeyError(
                f"no Galois key for power {galois_power}; generate it first"
            )

    def __contains__(self, galois_power: int) -> bool:
        return galois_power in self._keys


def rotation_galois_power(steps: int, degree: int) -> int:
    """The Galois power implementing a rotation by `steps` slots."""
    two_n = 2 * degree
    return pow(5, steps % (degree // 2), two_n)


CONJUGATION_POWER_OFFSET = -1  # conjugation is X -> X**(2N - 1)


def conjugation_galois_power(degree: int) -> int:
    return 2 * degree - 1


class KeyGenerator:
    """Generates all key material from a seeded RNG (deterministic tests)."""

    def __init__(self, params: CkksParameters, seed: Optional[int] = None):
        self.params = params
        self.rng = np.random.default_rng(seed)

    # -- basic keys ---------------------------------------------------------------

    def secret_key(self, hamming_weight: Optional[int] = None) -> SecretKey:
        """Sample a secret key (sparse ternary when a weight is given)."""
        if hamming_weight is None:
            coeffs = sample_ternary(self.params.degree, self.rng)
        else:
            coeffs = sample_sparse_ternary(
                self.params.degree, hamming_weight, self.rng
            )
        return SecretKey(coeffs, self.params)

    def public_key(self, secret: SecretKey) -> PublicKey:
        params = self.params
        basis = params.q_basis(params.max_level)
        a = sample_uniform(params.degree, basis, self.rng)
        e = RnsPolynomial.from_int_coeffs(
            sample_error(params.degree, params.error_std, self.rng),
            params.degree,
            basis,
        )
        s = secret.poly(basis)
        b = a.multiply(s).from_ntt().negate().add(e)
        return PublicKey(b, a)

    # -- key-switching keys --------------------------------------------------------

    def keyswitch_key(self, source_coeffs: np.ndarray, secret: SecretKey) -> KeySwitchKey:
        """Key switching ``s' -> s`` where `source_coeffs` is ``s'``."""
        params = self.params
        level = params.max_level
        pq = params.pq_basis(level)
        s = secret.poly(pq)
        source = RnsPolynomial.from_int_coeffs(source_coeffs, params.degree, pq)
        p_product = params.special_product
        pairs = []
        # dnum may not divide the chain length; only beta(L) digits exist.
        for digit in range(params.beta(level)):
            w_factor = self._gadget_factor(digit, level)
            a_j = sample_uniform(params.degree, pq, self.rng)
            e_j = RnsPolynomial.from_int_coeffs(
                sample_error(params.degree, params.error_std, self.rng),
                params.degree,
                pq,
            )
            keyed = source.multiply_scalar(p_product * w_factor)
            b_j = a_j.multiply(s).from_ntt().negate().add(e_j).add(keyed)
            pairs.append((b_j, a_j))
        return KeySwitchKey(pairs)

    def _gadget_factor(self, digit: int, level: int) -> int:
        """``W_j = (Q/Q_j) * [(Q/Q_j)^{-1}]_{Q_j}`` for the top-level chain."""
        params = self.params
        moduli = params.moduli[: level + 1]
        start, stop = params.digit_range(digit, level)
        group = reduce(lambda a, b: a * b, moduli[start:stop], 1)
        q_total = reduce(lambda a, b: a * b, moduli, 1)
        q_hat = q_total // group
        return q_hat * modarith.inv_mod(q_hat % group, group)

    def relinearisation_key(self, secret: SecretKey) -> KeySwitchKey:
        """Key for ``s**2 -> s`` (used by HMULT)."""
        basis = self.params.q_basis(self.params.max_level)
        s = secret.poly(basis)
        s_squared = s.multiply(s).from_ntt().to_int_coeffs()
        return self.keyswitch_key(s_squared, secret)

    def galois_key(self, secret: SecretKey, galois_power: int) -> KeySwitchKey:
        """Key for ``tau_k(s) -> s`` (used by HROTATE / conjugation)."""
        # Apply the automorphism on exact integer coefficients.
        two_n = 2 * self.params.degree
        out = np.zeros(self.params.degree, dtype=object)
        for i, c in enumerate(secret.coeffs):
            exponent = (i * galois_power) % two_n
            if exponent < self.params.degree:
                out[exponent] += c
            else:
                out[exponent - self.params.degree] -= c
        return self.keyswitch_key(out, secret)

    def rotation_keys(self, secret: SecretKey, steps: Sequence[int]) -> GaloisKeys:
        """Galois keys for a set of slot rotations (plus conjugation helper)."""
        keys = GaloisKeys()
        for step in steps:
            power = rotation_galois_power(step, self.params.degree)
            if power not in keys:
                keys.add(power, self.galois_key(secret, power))
        return keys
