"""Comparator systems: TensorFHE, HEonGPU and the CPU reference."""

from .cpu import CPU_DEVICE, CPU_CONFIG, CpuModel
from .heongpu import HeonGpuModel
from .tensorfhe import TensorFheModel

__all__ = [
    "CPU_CONFIG",
    "CPU_DEVICE",
    "CpuModel",
    "HeonGpuModel",
    "TensorFheModel",
]
