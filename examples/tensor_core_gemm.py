"""The paper's core numerical trick, executed: wide modular GEMMs on FP64.

Section 3.4 of the paper argues that a 36-bit modular GEMM needs only
**3** FP64 plane products (bit-slicing B into 12-bit planes, all partial
sums below 2**53) versus **25** INT8 plane products -- and 48-bit needs
4 vs 36.  This example runs both decompositions numerically, checks them
bit-exact against integer GEMM, and then drives a radix-16 negacyclic NTT
through the FP64 tensor-core hook.

Run:  python examples/tensor_core_gemm.py
"""

import numpy as np

from repro.core.radix16_ntt import NeoNtt
from repro.gpu.tensorcore import (
    fp64_gemm_mod,
    int8_gemm_mod,
    plan_fp64_split,
    plan_int8_split,
    reference_gemm_mod,
)
from repro.math.primes import ntt_primes


def demonstrate_gemm(wordsize):
    q = ntt_primes(wordsize, 64, 1)[0]
    rng = np.random.default_rng(wordsize)
    m, n, k = 32, 16, 16
    a = rng.integers(0, int(q), size=(m, k), dtype=np.uint64).astype(object) % q
    b = rng.integers(0, int(q), size=(k, n), dtype=np.uint64).astype(object) % q

    fp64_plan = plan_fp64_split(wordsize, wordsize, k)
    int8_plan = plan_int8_split(wordsize, wordsize)
    want = reference_gemm_mod(a, b, q)
    fp64 = fp64_gemm_mod(a, b, q)
    int8 = int8_gemm_mod(a, b, q)
    assert (np.asarray(fp64, dtype=object) == np.asarray(want, dtype=object)).all()
    assert (np.asarray(int8, dtype=object) == np.asarray(want, dtype=object)).all()
    print(
        f"WordSize {wordsize}: FP64 path = {fp64_plan.products} plane products "
        f"({fp64_plan.a_planes}x{fp64_plan.b_planes}, "
        f"{fp64_plan.a_bits}/{fp64_plan.b_bits} bits), "
        f"INT8 path = {int8_plan.products} plane products -- both bit-exact"
    )


def demonstrate_ntt():
    degree = 256
    q = ntt_primes(36, degree, 1)[0]
    rng = np.random.default_rng(0)
    coeffs = rng.integers(0, int(q), size=degree, dtype=np.uint64).astype(object)
    tcu_ntt = NeoNtt(degree, q, use_tcu=True)  # GEMM stages on FP64 emulation
    ref_ntt = NeoNtt(degree, q, use_tcu=False)  # exact integer GEMM stages
    spectrum = tcu_ntt.forward(coeffs)
    assert (spectrum == ref_ntt.forward(coeffs)).all()
    assert (tcu_ntt.inverse(spectrum).astype(object) == coeffs).all()
    print(
        f"radix-16 NTT (N={degree}, 36-bit prime): factors {tcu_ntt.factors}, "
        "forward/inverse bit-exact through the FP64 tensor-core emulation"
    )


def main():
    demonstrate_gemm(36)
    demonstrate_gemm(48)
    demonstrate_ntt()
    print("OK: the FP64 tensor-core mapping is exact, as Section 3.4 claims")


if __name__ == "__main__":
    main()
