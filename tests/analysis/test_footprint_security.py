"""Tests for memory footprint sizing and the security estimator."""

import pytest

from repro.analysis import memory_footprint as mf
from repro.analysis import security as sec
from repro.ckks.params import get_set
from repro.gpu.device import A100


class TestFootprint:
    def test_ciphertext_size_set_c(self):
        """Set C at l = 35: 2 * 36 limbs * 2^16 coeffs * 8 B = 36 MiB."""
        assert mf.ciphertext_bytes(get_set("C")) == 2 * 36 * 2**16 * 8

    def test_ciphertext_shrinks_with_level(self):
        params = get_set("C")
        assert mf.ciphertext_bytes(params, 10) < mf.ciphertext_bytes(params, 35)

    def test_hybrid_evk_grows_with_dnum(self):
        assert mf.hybrid_evk_bytes(get_set("C")) > mf.hybrid_evk_bytes(get_set("B"))

    def test_klss_evk_formula(self):
        """Section 2.3: two sets of beta * beta~ * alpha' polynomial keys."""
        params = get_set("C")
        alpha_prime, beta, beta_tilde = params.klss_dims(35)
        expected = 2 * beta * beta_tilde * alpha_prime * 2**16 * 8
        assert mf.klss_evk_bytes(params) == expected

    def test_klss_requires_config(self):
        with pytest.raises(ValueError):
            mf.klss_evk_bytes(get_set("A"))

    def test_working_set_components(self):
        ws = mf.working_set_bytes(get_set("C"), batch=128)
        assert set(ws) == {"ciphertexts", "evk", "scratch"}
        assert all(v > 0 for v in ws.values())

    def test_max_batch_is_near_128(self):
        """Fig. 17: the paper stops at BatchSize 128 for memory reasons."""
        batch = mf.max_batch_size(get_set("C"), A100)
        assert 64 <= batch <= 512

    def test_max_batch_scales_with_memory(self):
        params = get_set("C")
        small = mf.max_batch_size(params, A100.with_overrides(memory_gib=10.0))
        large = mf.max_batch_size(params, A100.with_overrides(memory_gib=80.0))
        assert small < large

    def test_bootstrap_keys_are_heavy(self):
        """Dozens of Galois keys dominate the key material."""
        params = get_set("C")
        assert mf.bootstrap_key_bytes(params) > 20 * mf.hybrid_evk_bytes(params)


class TestSecurity:
    def test_table_lookup(self):
        assert sec.max_modulus_bits(16, 128) == 1772
        assert sec.max_modulus_bits(15, 128) == 881
        with pytest.raises(ValueError):
            sec.max_modulus_bits(20)

    def test_set_c_meets_128(self):
        """Table 4 claims lambda >= 128 for Set C."""
        assert sec.meets_security(get_set("C"), 128)

    def test_set_a_coarse_estimate(self):
        """Set A (dnum=1) doubles the modulus with its special primes; the
        coarse HE-standard table puts it below 128 bits even though the
        paper (via a sharper estimator) claims >= 128.  We only assert the
        ordering: A is weaker than C but far from broken."""
        a = sec.estimated_security_bits(get_set("A"))
        c = sec.estimated_security_bits(get_set("C"))
        assert 60 < a < c

    def test_set_h_is_weaker(self):
        """Table 4 marks Set H at lambda >= 98 (not 128)."""
        h = get_set("H")
        estimate = sec.estimated_security_bits(h)
        assert estimate < 128
        assert estimate > 70  # but still near the claimed 98

    def test_functional_params_supported(self):
        from repro.ckks import small_test_parameters

        params = small_test_parameters()
        bits = sec.total_modulus_bits(params)
        assert bits > 0
        # Tiny demo degree is of course insecure; the estimator says so.
        assert sec.estimated_security_bits(params) < 128

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            sec.total_modulus_bits(42)

    def test_more_modulus_less_security(self):
        import dataclasses

        c = get_set("C")
        longer = dataclasses.replace(c, max_level=44, dnum=c.dnum)
        assert sec.estimated_security_bits(longer) < sec.estimated_security_bits(c)
