"""Tests for homomorphic polynomial evaluation (Paterson-Stockmeyer)."""

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_test_parameters,
)
from repro.ckks.poly_eval import (
    PolynomialEvaluator,
    _power_plan,
    chebyshev_coefficients,
)


@pytest.fixture(scope="module")
def setup():
    params = small_test_parameters(degree=32, max_level=10, wordsize=25, dnum=5)
    gen = KeyGenerator(params, seed=77)
    sk = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=8)
    decryptor = Decryptor(params, sk)
    evaluator = Evaluator(params, relin_key=gen.relinearisation_key(sk))
    return params, encoder, encryptor, decryptor, PolynomialEvaluator(encoder, evaluator)


def _roundtrip(setup, coeffs, x):
    params, encoder, encryptor, decryptor, pe = setup
    ct = encryptor.encrypt(encoder.encode(x))
    out = pe.evaluate(ct, coeffs)
    return encoder.decode(decryptor.decrypt(out)).real, out


class TestPowerPlan:
    def test_every_power_buildable(self):
        plan = _power_plan(16)
        available = {1}
        for p in sorted(plan):
            a, b = plan[p]
            assert a in available and b in available
            assert a + b == p
            available.add(p)

    def test_power_of_two_splits_evenly(self):
        assert _power_plan(8)[8] == (4, 4)


class TestPowers:
    def test_power_values(self, setup):
        params, encoder, encryptor, decryptor, pe = setup
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=params.slots)
        table = pe.powers(encryptor.encrypt(encoder.encode(x)), 8)
        for p, ct in table.items():
            got = encoder.decode(decryptor.decrypt(ct)).real
            assert np.abs(got - x**p).max() < 1e-2, f"x^{p}"

    def test_log_depth(self, setup):
        params, encoder, encryptor, _, pe = setup
        ct = encryptor.encrypt(encoder.encode([0.5]))
        table = pe.powers(ct, 16)
        # x^16 needs only 4 levels, not 15.
        assert table[16].level >= ct.level - 4

    def test_invalid_max_power(self, setup):
        *_, pe = setup
        with pytest.raises(ValueError):
            pe.powers(None, 0)


class TestEvaluate:
    @pytest.mark.parametrize(
        "coeffs",
        [
            [1.0],  # constant
            [0.0, 1.0],  # identity
            [0.5, -1.0, 0.25],  # quadratic
            [0.3, -1.2, 0.0, 0.5, 0.25, -0.1],  # degree 5 with a zero
            np.linspace(0.2, -0.2, 9),  # degree 8
        ],
    )
    def test_matches_numpy_polyval(self, setup, coeffs):
        rng = np.random.default_rng(42)
        x = rng.uniform(-1, 1, size=16)
        got, _ = _roundtrip(setup, coeffs, x)
        want = np.polyval(np.asarray(coeffs)[::-1], x)
        assert np.abs(got - want).max() < 5e-3

    def test_degree_15(self, setup):
        rng = np.random.default_rng(3)
        coeffs = rng.uniform(-0.5, 0.5, size=16)
        x = rng.uniform(-1, 1, size=16)
        got, out = _roundtrip(setup, coeffs, x)
        want = np.polyval(coeffs[::-1], x)
        assert np.abs(got - want).max() < 2e-2
        assert out.level >= 1

    def test_trailing_zeros_trimmed(self, setup):
        x = np.full(16, 0.5)
        got, _ = _roundtrip(setup, [0.25, 0.5, 0.0, 0.0], x)
        assert np.abs(got - 0.5).max() < 1e-3

    def test_numerically_zero_becomes_constant_zero(self, setup):
        """Trailing near-zero coefficients trim down to the constant term."""
        params, encoder, encryptor, decryptor, pe = setup
        ct = encryptor.encrypt(encoder.encode(np.full(16, 0.7)))
        out = pe.evaluate(ct, [0.0, 1e-15])
        got = encoder.decode(decryptor.decrypt(out)).real
        assert np.abs(got).max() < 1e-3


class TestChebyshev:
    def test_sine_fit_accuracy(self):
        coeffs = chebyshev_coefficients(
            lambda u: np.sin(2 * np.pi * u) / (2 * np.pi), 15, 1.5
        )
        u = np.linspace(-1.5, 1.5, 101)
        fit = np.polyval(coeffs[::-1], u)
        want = np.sin(2 * np.pi * u) / (2 * np.pi)
        assert np.abs(fit - want).max() < 1e-3

    def test_polynomial_identity(self):
        """Fitting a polynomial recovers it."""
        coeffs = chebyshev_coefficients(lambda x: 1 + 2 * x + 3 * x**2, 2, 2.0)
        assert np.allclose(coeffs, [1, 2, 3], atol=1e-8)

    def test_homomorphic_sine(self, setup):
        coeffs = chebyshev_coefficients(
            lambda u: np.sin(2 * np.pi * u) / (2 * np.pi), 15, 1.5
        )
        rng = np.random.default_rng(5)
        u = rng.uniform(-1.5, 1.5, size=16)
        got, _ = _roundtrip(setup, coeffs, u)
        want = np.sin(2 * np.pi * u) / (2 * np.pi)
        assert np.abs(got - want).max() < 3e-2
