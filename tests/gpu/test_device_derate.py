"""Regression tests for batch-occupancy derating (DeviceSpec._utilization).

The saturation curve is normalised to 1.0 at BatchSize = 128; before the
clamp, batches beyond 128 pushed the utilisation *above* 1.0 and
``derated_for_batch`` boosted throughput past the calibrated attainable
fraction (batch=512 yielded cuda_efficiency ~0.2588 against the 0.22
ceiling).
"""

import pytest

from repro.baselines.cpu import CPU_DEVICE
from repro.gpu.device import A100, H100


class TestBatchDerating:
    @pytest.mark.parametrize("batch", (129, 256, 512, 1024, 4096))
    def test_large_batches_never_exceed_calibrated_fractions(self, batch):
        derated = A100.derated_for_batch(batch)
        assert derated.cuda_efficiency <= A100.cuda_efficiency
        assert derated.tcu_fp64_efficiency <= A100.tcu_fp64_efficiency
        assert derated.tcu_int8_efficiency <= A100.tcu_int8_efficiency
        assert derated.memory_efficiency <= A100.memory_efficiency

    def test_batch_512_regression(self):
        """The exact case from the bug report: batch=512 used to yield
        cuda_efficiency ~0.2588 > the 0.22 ceiling."""
        assert A100.derated_for_batch(512).cuda_efficiency == pytest.approx(0.22)

    def test_saturated_batches_return_self(self):
        assert A100.derated_for_batch(128) is A100
        assert A100.derated_for_batch(512) is A100

    def test_efficiencies_monotone_in_batch(self):
        batches = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
        for device in (A100, H100):
            effs = [device.derated_for_batch(b).cuda_efficiency for b in batches]
            mems = [device.derated_for_batch(b).memory_efficiency for b in batches]
            for lo, hi in zip(effs, effs[1:]):
                assert lo <= hi + 1e-15
            for lo, hi in zip(mems, mems[1:]):
                assert lo <= hi + 1e-15

    def test_utilization_bounded(self):
        for batch in (1, 16, 128, 200, 1000, 10**6):
            assert 0.0 < A100._utilization(batch, 32.0) <= 1.0

    def test_small_batches_still_derate(self):
        assert A100.derated_for_batch(8).cuda_efficiency < A100.cuda_efficiency

    def test_cpu_unaffected(self):
        assert CPU_DEVICE.derated_for_batch(512) is CPU_DEVICE


class TestOccupancyCorners:
    """Degenerate inputs to the saturation curve must stay well-defined."""

    def test_zero_half_disables_derating(self):
        assert A100._utilization(4, 0.0) == 1.0
        device = A100.with_overrides(
            compute_half_batch=0.0, memory_half_batch=0.0
        )
        assert device.derated_for_batch(1) is device

    def test_negative_half_disables_derating(self):
        assert A100._utilization(4, -8.0) == 1.0

    def test_nonpositive_batch_is_full_utilization(self):
        # BatchSize 0 / negative means "no batching dimension", not a
        # division by zero or a negative utilisation.
        assert A100._utilization(0, 32.0) == 1.0
        assert A100._utilization(-3, 32.0) == 1.0
        assert A100.derated_for_batch(0) is A100

    @pytest.mark.parametrize("batch", (129, 1000, 10**9))
    def test_clamp_beyond_saturation_point(self, batch):
        """The raw curve crosses 1.0 above batch=128; the clamp holds it."""
        assert A100._utilization(batch, 32.0) == 1.0
        assert A100.derated_for_batch(batch) is A100

    def test_exactly_at_saturation_point(self):
        assert A100._utilization(128, 32.0) == pytest.approx(1.0)
