"""Tests for the multi-GPU scaling extension."""

import pytest

from repro.core import NEO_CONFIG, NeoContext
from repro.gpu.multi_gpu import NVLINK3, PCIE4, Interconnect, MultiGpuModel


@pytest.fixture(scope="module")
def hmult_trace():
    return NeoContext("C", config=NEO_CONFIG).operation_trace("hmult", 35)


class TestInterconnect:
    def test_catalogue(self):
        assert NVLINK3.bandwidth_gbs > PCIE4.bandwidth_gbs
        assert NVLINK3.bytes_per_s == 600e9

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            MultiGpuModel(0)


class TestScaling:
    def test_single_gpu_matches_trace(self, hmult_trace):
        from repro.gpu.device import A100

        model = MultiGpuModel(1)
        assert model.time_s(hmult_trace) == pytest.approx(
            hmult_trace.overlapped_time_s(A100, 8)
        )

    def test_more_gpus_is_faster(self, hmult_trace):
        times = [MultiGpuModel(g).time_s(hmult_trace) for g in (1, 2, 4, 8)]
        for a, b in zip(times, times[1:]):
            assert b < a

    def test_speedup_sublinear(self, hmult_trace):
        for gpus in (2, 4, 8):
            model = MultiGpuModel(gpus)
            assert 1.0 < model.speedup(hmult_trace) <= gpus

    def test_efficiency_decays_with_gpu_count(self, hmult_trace):
        eff = [
            MultiGpuModel(g).scaling_efficiency(hmult_trace) for g in (2, 4, 8)
        ]
        assert eff[0] >= eff[1] >= eff[2]

    def test_nvlink_beats_pcie(self, hmult_trace):
        nv = MultiGpuModel(4, interconnect=NVLINK3).time_s(hmult_trace)
        pcie = MultiGpuModel(4, interconnect=PCIE4).time_s(hmult_trace)
        assert nv < pcie

    def test_he_booster_shape(self, hmult_trace):
        """HE-Booster reports high (>60%) efficiency at 4 GPUs on NVLink."""
        eff = MultiGpuModel(4, interconnect=NVLINK3).scaling_efficiency(hmult_trace)
        assert eff > 0.4

    def test_slow_interconnect_hits_a_wall(self, hmult_trace):
        dialup = Interconnect("slow", bandwidth_gbs=1.0, latency_us=100.0)
        eff = MultiGpuModel(8, interconnect=dialup).scaling_efficiency(hmult_trace)
        assert eff < 0.5
