"""Extension: GEMM-form key-switch engine benchmark.

The paper's core claim (Sections 4.2-4.4) is that BConv, the key-switch
inner product and the NTT all become GEMMs: BConv is one batched matmul
against the precomputed conversion matrix (Algorithm 2), the inner product
is a lazily-reduced einsum against the pre-stacked evk tensor (Algorithm
4's bound analysis), and the NTT factors into two small matmuls via the
four-step decomposition.  The seed code executed the same pipeline as
Python loops over per-digit ``multiply``/``add`` calls with a full Barrett
reduction per step.

Acceptance bar (ISSUE 5): at ``N = 2**14`` the GEMM-form KLSS key switch
(:func:`klss.keyswitch`) must be at least **3x** faster than the per-digit
loop form (:func:`klss.keyswitch_loop`) while producing bit-identical
limbs (measured ~3.7x on the reference machine).
"""

import time

import numpy as np
import pytest

from repro.ckks.keys import KeyGenerator
from repro.ckks.keyswitch import hybrid, klss
from repro.ckks.keyswitch import plan as ksplan
from repro.ckks.params import CkksParameters, KlssConfig

LOG_DEGREE = 14
DEGREE = 1 << LOG_DEGREE
WORDSIZE = 25
DNUM = 12
SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def workload():
    params = CkksParameters(
        degree=DEGREE,
        max_level=2 * DNUM - 1,
        wordsize=WORDSIZE,
        dnum=DNUM,
        klss=KlssConfig(wordsize_t=30, alpha_tilde=2),
    )
    gen = KeyGenerator(params, seed=0)
    secret = gen.secret_key()
    ksk = gen.relinearisation_key(secret)
    rng = np.random.default_rng(0)
    basis = params.q_basis(params.max_level)
    limbs = [rng.integers(0, q, size=DEGREE, dtype=np.uint64) for q in basis.moduli]
    from repro.math.polynomial import RnsPolynomial

    poly = RnsPolynomial(DEGREE, basis, limbs, is_ntt=False)
    ksplan.clear_keyswitch_plan_cache()
    return params, ksk, poly


def _best_time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_identical(pair_a, pair_b):
    for left, right in zip(pair_a, pair_b):
        assert left.basis == right.basis
        for la, lb in zip(left.limbs, right.limbs):
            assert np.array_equal(np.asarray(la), np.asarray(lb))


def test_klss_gemm_bit_identical_to_loop(workload):
    params, ksk, poly = workload
    _assert_identical(
        klss.keyswitch(poly, ksk, params),
        klss.keyswitch_loop(poly, ksk, params),
    )


def test_hybrid_gemm_bit_identical_to_loop(workload):
    params, ksk, poly = workload
    _assert_identical(
        hybrid.keyswitch(poly, ksk, params),
        hybrid.keyswitch_loop(poly, ksk, params),
    )


def test_klss_gemm_speedup_at_least_3x(workload):
    params, ksk, poly = workload
    klss.keyswitch(poly, ksk, params)  # warm plan + NTT caches
    klss.keyswitch_loop(poly, ksk, params)
    t_gemm = _best_time(lambda: klss.keyswitch(poly, ksk, params), repeats=3)
    t_loop = _best_time(lambda: klss.keyswitch_loop(poly, ksk, params), repeats=3)
    stats = ksplan.keyswitch_plan_cache_stats()
    speedup = t_loop / t_gemm
    print(
        f"\nKLSS N=2^{LOG_DEGREE} dnum={DNUM} w={WORDSIZE}: "
        f"loop {t_loop * 1e3:.1f} ms, gemm {t_gemm * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x "
        f"(plan cache: {stats['hits']} hits / {stats['misses']} misses)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"GEMM key switch speedup only {speedup:.2f}x "
        f"(needs >= {SPEEDUP_FLOOR}x)"
    )
