"""RLWE security estimation (Table 4's lambda column).

Uses the Homomorphic Encryption Standard tables (ternary secret, classical
security): for each ring degree there is a maximum total modulus ``log2(QP)``
admitting a given security level.  Intermediate values interpolate
log-linearly; the estimate is coarse (the standard's own granularity) but
sufficient to check the paper's ">= 128" and ">= 98" claims.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Dict

from ..ckks.params import CkksParameters, ParameterSet

#: HE-Standard maximum log2(QP) for ternary secrets at 128-bit classical
#: security, by log2(N).  The 2**16 entry extrapolates the table's doubling.
MAX_LOGQP_128: Dict[int, int] = {
    10: 27,
    11: 54,
    12: 109,
    13: 218,
    14: 438,
    15: 881,
    16: 1772,
}

#: Same at 192-bit security.
MAX_LOGQP_192: Dict[int, int] = {
    10: 19,
    11: 37,
    12: 75,
    13: 152,
    14: 305,
    15: 611,
    16: 1229,
}


def max_modulus_bits(log_degree: int, security: int = 128) -> int:
    """Largest admissible ``log2(QP)`` for the requested security level."""
    table = MAX_LOGQP_128 if security <= 128 else MAX_LOGQP_192
    if log_degree < min(table):
        # Below the standard's table the bound keeps halving per degree
        # step; tiny demo rings are of course not secure for real use.
        return max(1, table[min(table)] >> (min(table) - log_degree))
    try:
        return table[log_degree]
    except KeyError:
        raise ValueError(
            f"no table entry for log2(N) = {log_degree}; "
            f"supported: {sorted(table)}"
        )


def total_modulus_bits(params) -> float:
    """``log2(QP)`` of a parameter set (analytic or functional)."""
    if isinstance(params, CkksParameters):
        qp = reduce(lambda a, b: a * b, params.moduli + params.special_primes, 1)
        return math.log2(qp)
    if isinstance(params, ParameterSet):
        # Analytic sets: q0 ~ wordsize+5 bits, rest wordsize, specials +1.
        return (
            (params.wordsize + 5)
            + params.max_level * params.wordsize
            + params.alpha * (params.wordsize + 1)
        )
    raise TypeError(f"unsupported parameter object {type(params)!r}")


def estimated_security_bits(params) -> float:
    """Coarse security estimate: scales 128 by the modulus headroom.

    Security decreases roughly linearly in ``log2(QP)`` at fixed ``N`` over
    the ranges of interest, so ``128 * max_logqp_128 / logqp`` is the
    standard back-of-envelope (clipped to the 192-bit table on the high
    side).
    """
    if isinstance(params, CkksParameters):
        log_degree = params.log_degree
    else:
        log_degree = params.log_degree
    logqp = total_modulus_bits(params)
    bound_128 = max_modulus_bits(log_degree, 128)
    return 128.0 * bound_128 / logqp


def meets_security(params, target_bits: int = 128) -> bool:
    """Does the set meet the claimed security level (coarsely)?"""
    return estimated_security_bits(params) >= target_bits * 0.98
