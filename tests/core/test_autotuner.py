"""Tests for the KLSS parameter autotuner and the plan-space search."""

import pytest

from repro.ckks.params import get_set
from repro.core.autotuner import (
    BUDGETS,
    MODEL_VERSION,
    TunedConfig,
    TuningReport,
    TuningResult,
    TuningStore,
    best_configuration,
    clear_cost_builder_caches,
    hybrid_vs_best_klss,
    tune_app,
    tune_keyswitch,
)
from repro.gpu.device import A100, L4


@pytest.fixture(scope="module")
def results():
    return tune_keyswitch(
        get_set("B"),
        dnums=(4, 6, 9, 12),
        alpha_tildes=(4, 5, 6),
        wordsizes_t=(36, 48, 64),
    )


class TestTuner:
    def test_sorted_fastest_first(self, results):
        times = [r.keyswitch_us for r in results]
        assert times == sorted(times)

    def test_grid_coverage(self, results):
        combos = {(r.dnum, r.alpha_tilde, r.wordsize_t) for r in results}
        assert len(combos) == len(results)
        assert len(results) >= 30  # most of the 36-cell grid is admissible

    def test_best_near_paper_optimum(self, results):
        """The winner lands near the paper's (dnum=9, alpha~=5, WST=48)."""
        best = results[0]
        # The grid optimum is mid-dnum and never WordSize_T = 64 (Booth-heavy);
        # the very top cell can tie between 36 and 48 within a few percent.
        assert best.wordsize_t in (36, 48)
        assert best.dnum in (6, 9, 12)
        paper_pick = [
            r for r in results
            if (r.dnum, r.alpha_tilde, r.wordsize_t) == (9, 5, 48)
        ][0]
        assert paper_pick.keyswitch_us <= 1.15 * best.keyswitch_us

    def test_best_configuration_helper(self):
        best = best_configuration(
            get_set("B"), dnums=(6, 9), alpha_tildes=(5,), wordsizes_t=(48,)
        )
        assert isinstance(best, TuningResult)
        assert best.config().wordsize_t == 48

    def test_alpha_prime_recorded(self, results):
        for r in results:
            assert r.alpha_prime >= 2

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            tune_keyswitch(get_set("B"), dnums=(), alpha_tildes=(5,))

    def test_hybrid_vs_best_klss(self):
        hybrid_us, best = hybrid_vs_best_klss(get_set("B"))
        # The paper's central claim: well-tuned KLSS beats Hybrid.
        assert best.keyswitch_us < hybrid_us


SMALL_GRID = dict(dnums=(6, 9), alpha_tildes=(4, 5), wordsizes_t=(48,))


class TestSharedCacheSweep:
    def test_warm_sweep_reports_cache_hits(self):
        clear_cost_builder_caches()
        results = tune_keyswitch(get_set("B"), **SMALL_GRID)
        # The grid points share the plan/trace caches: after the first
        # point warms them, subsequent points hit.
        assert sum(r.cache_hits for r in results) > 0
        assert 0.0 <= results[0].cache_hit_rate <= 1.0

    def test_cold_sweep_loses_cross_point_sharing(self):
        """Cold points may still hit the memo *within* one build (a shape
        priced twice in the same trace) but never across grid points, so
        the warm sweep strictly out-hits and under-misses it."""
        warm = tune_keyswitch(get_set("B"), **SMALL_GRID)
        cold = tune_keyswitch(get_set("B"), cold_sweep=True, **SMALL_GRID)
        assert sum(r.cache_hits for r in warm) > sum(r.cache_hits for r in cold)
        assert sum(r.cache_misses for r in warm) < sum(
            r.cache_misses for r in cold
        )

    def test_cold_and_warm_agree_on_times(self):
        """Cache sharing is a speed-up, not a semantic change."""
        warm = tune_keyswitch(get_set("B"), **SMALL_GRID)
        cold = tune_keyswitch(get_set("B"), cold_sweep=True, **SMALL_GRID)
        warm_t = {(r.dnum, r.alpha_tilde): r.keyswitch_us for r in warm}
        cold_t = {(r.dnum, r.alpha_tilde): r.keyswitch_us for r in cold}
        assert warm_t.keys() == cold_t.keys()
        for key in warm_t:
            assert warm_t[key] == pytest.approx(cold_t[key])


@pytest.fixture(scope="module")
def helr_report():
    return tune_app("helr", params="C", device=A100, budget="quick")


class TestTuneApp:
    def test_report_shape(self, helr_report):
        assert isinstance(helr_report, TuningReport)
        assert helr_report.app == "helr"
        assert helr_report.device_name == A100.name
        assert helr_report.budget == "quick"
        assert len(helr_report.results) >= 1
        times = [c.time_s for c in helr_report.results]
        assert times == sorted(times)
        assert helr_report.best is helr_report.results[0]

    def test_beats_baseline(self, helr_report):
        assert helr_report.baseline_time_s is not None
        assert helr_report.best.time_s < helr_report.baseline_time_s
        assert helr_report.best.speedup > 1.0

    def test_search_counters(self, helr_report):
        assert helr_report.probed > helr_report.evaluated
        assert helr_report.pruned_dominated + helr_report.pruned_cutoff > 0
        assert helr_report.cache_hits > 0
        assert 0.0 < helr_report.cache_hit_rate <= 1.0

    def test_jsonable_round_trip(self, helr_report):
        blob = helr_report.to_jsonable()
        assert blob["app"] == "helr"
        best = TunedConfig.from_jsonable(blob["results"][0])
        assert best == helr_report.best
        assert best.label() == helr_report.best.label()

    def test_tuned_config_builds_context(self, helr_report):
        from repro.core import NeoContext

        best = helr_report.best
        params = best.parameter_set(get_set("C"))
        config = best.pipeline_config()
        ctx = NeoContext(params, device=A100.hier(), config=config)
        assert ctx.keyswitch_time_us(params.max_level) > 0

    def test_l4_drops_fp64_tensor_path(self):
        report = tune_app("helr", params="C", device=L4, budget="quick")
        # No FP64 TCUs: the paper's NEO_CONFIG baseline is infeasible and
        # every surviving config avoids the tcu_fp64 component.
        assert report.baseline_time_s is None
        for cfg in report.results:
            assert cfg.ntt_component != "tcu_fp64"
            assert cfg.bconv_component != "tcu_fp64"

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            tune_app("nosuchapp", device=A100)

    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            tune_app("helr", device=A100, budget="extreme")

    def test_budget_registry(self):
        assert set(BUDGETS) == {"quick", "full"}
        assert BUDGETS["full"].max_full_evals > BUDGETS["quick"].max_full_evals


class TestTuningStore:
    def test_get_or_tune_caches(self):
        store = TuningStore(maxsize=4)
        first = store.get_or_tune("helr", params=get_set("C"), device=A100)
        again = store.get_or_tune("helr", params=get_set("C"), device=A100)
        assert again is first
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert len(store) == 1

    def test_key_includes_device_and_budget(self):
        store = TuningStore(maxsize=8)
        a100 = store.get_or_tune("helr", params=get_set("C"), device=A100)
        l4 = store.get_or_tune("helr", params=get_set("C"), device=L4)
        assert len(store) == 2
        assert a100.best.device_name != l4.best.device_name

    def test_fifo_eviction(self):
        store = TuningStore(maxsize=1)
        store.get_or_tune("helr", params=get_set("C"), device=A100)
        store.get_or_tune("helr", params=get_set("C"), device=L4)
        assert len(store) == 1
        assert store.stats.evictions == 1

    def test_model_version_tags_keys(self):
        key = TuningStore.key(get_set("C"), "HELR", A100, "quick")
        assert key[-1] == MODEL_VERSION
        assert key[1] == "helr"
        assert key == TuningStore.key("C", "helr", A100, "quick")
