"""Extension: op-plan (GEMM-form) bootstrap benchmark.

ISSUE 6's acceptance bar: the full functional bootstrap routed through the
op-plan compiler -- hoisted baby rotations as one BConv GEMM + batched IP
einsum, BSGS transforms as compiled :class:`LinearTransformPlan` objects
with the rescale folded into the accumulation epilogue, EvalMod constants
replayed from cache -- must be at least **3x** faster than the per-digit
loop path (``method="hybrid-loop"``) while producing *bit-identical*
limbs (measured ~3.7x on the reference machine).

Timings are taken warm: the first run of each path compiles the rotation /
transform plans and encodes the diagonal plaintexts; a serving deployment
bootstraps thousands of times per compile, so the steady state is what the
gate measures.  Both pipelines share ONE key set (key generation is
randomized; separate keys would break bit identity).
"""

import time

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    CkksParameters,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.ckks.bootstrap import Bootstrapper
from repro.ckks.keys import conjugation_galois_power
from repro.ckks.keyswitch import plan as ksplan

DEGREE = 32
MAX_LEVEL = 12
WORDSIZE = 25
DNUM = 4
SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def workload():
    params = CkksParameters(
        degree=DEGREE,
        max_level=MAX_LEVEL,
        wordsize=WORDSIZE,
        dnum=DNUM,
        first_prime_bits=27,
    )
    gen = KeyGenerator(params, seed=5)
    sk = gen.secret_key(hamming_weight=1)
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=6)
    relin = gen.relinearisation_key(sk)
    ev_plan = Evaluator(params, relin_key=relin, method="hybrid")
    ev_loop = Evaluator(params, relin_key=relin, method="hybrid-loop")
    boot_plan = Bootstrapper(params, encoder, ev_plan)
    boot_loop = Bootstrapper(params, encoder, ev_loop)
    galois = gen.rotation_keys(sk, boot_plan.required_rotations())
    conj = conjugation_galois_power(params.degree)
    galois.add(conj, gen.galois_key(sk, conj))
    ev_plan.galois_keys = galois
    ev_loop.galois_keys = galois

    rng = np.random.default_rng(7)
    v = np.clip(0.3 * rng.normal(size=params.slots), -0.8, 0.8)
    ct = encryptor.encrypt(encoder.encode(v, level=0))
    ksplan.clear_keyswitch_plan_cache()
    return params, encoder, boot_plan, boot_loop, ct


def _best_time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_identical(a, b):
    assert a.level == b.level
    assert a.scale == b.scale
    for pa, pb in zip((a.c0, a.c1), (b.c0, b.c1)):
        assert np.array_equal(
            pa.from_ntt().limb_stack(), pb.from_ntt().limb_stack()
        )


def test_plan_bootstrap_bit_identical_to_loop(workload):
    _, _, boot_plan, boot_loop, ct = workload
    _assert_identical(boot_plan.bootstrap(ct), boot_loop.bootstrap(ct))


def test_second_bootstrap_reencodes_nothing(workload):
    """A warm bootstrap performs ZERO plaintext encodes: the diagonal and
    EvalMod-constant caches serve every plaintext."""
    _, encoder, boot_plan, _, ct = workload
    boot_plan.bootstrap(ct)  # warm: fills every (level, scale) cache slot
    calls = {"n": 0}
    original = encoder.encode

    def counting_encode(*args, **kwargs):
        calls["n"] += 1
        return original(*args, **kwargs)

    encoder.encode = counting_encode
    try:
        boot_plan.bootstrap(ct)
    finally:
        encoder.encode = original
    assert calls["n"] == 0, f"{calls['n']} plaintext re-encodes on a warm run"


def test_plan_bootstrap_speedup_at_least_3x(workload):
    _, _, boot_plan, boot_loop, ct = workload
    boot_plan.bootstrap(ct)  # warm plans, diagonal + constant caches
    boot_loop.bootstrap(ct)
    t_plan = _best_time(lambda: boot_plan.bootstrap(ct), repeats=3)
    t_loop = _best_time(lambda: boot_loop.bootstrap(ct), repeats=3)
    stats = ksplan.keyswitch_plan_cache_stats()
    speedup = t_loop / t_plan
    print(
        f"\nBootstrap N=2^5 dnum={DNUM} L={MAX_LEVEL}: "
        f"loop {t_loop * 1e3:.1f} ms, plan {t_plan * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x "
        f"(plan cache: {stats['hits']} hits / {stats['misses']} misses)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"op-plan bootstrap speedup only {speedup:.2f}x "
        f"(needs >= {SPEEDUP_FLOOR}x)"
    )
