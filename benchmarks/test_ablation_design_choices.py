"""Design-choice ablations beyond the paper's Fig. 14.

DESIGN.md calls out three modelling/design knobs worth isolating:
kernel fusion (Section 4.6), multi-stream overlap (Section 4.6), and the
multi-GPU extension.  Each must help (or be neutral), and the magnitudes
are recorded for EXPERIMENTS.md.
"""

from repro.analysis.reporting import format_table
from repro.core import NEO_CONFIG, NeoContext
from repro.gpu.multi_gpu import NVLINK3, MultiGpuModel


def _build_rows():
    rows = []
    base = NeoContext("C", config=NEO_CONFIG)
    base_t = base.operation_time_us("hmult", 35)
    rows.append(["Neo (full)", f"{base_t:.0f}", "1.00"])

    unfused = NeoContext("C", config=NEO_CONFIG.with_overrides(fused=False))
    t = unfused.operation_time_us("hmult", 35)
    rows.append(["- kernel fusion", f"{t:.0f}", f"{t / base_t:.2f}"])

    for streams in (1, 2, 4, 16):
        ctx = NeoContext("C", config=NEO_CONFIG.with_overrides(streams=streams))
        t = ctx.operation_time_us("hmult", 35)
        rows.append([f"streams={streams}", f"{t:.0f}", f"{t / base_t:.2f}"])
    return rows, base


def test_fusion_and_streams(benchmark):
    rows, base = benchmark(_build_rows)
    print()
    print(
        format_table(
            ["configuration", "HMULT us", "vs Neo"],
            rows,
            title="Design-choice ablation: fusion and multi-stream (Set C, l=35)",
        )
    )
    table = {row[0]: float(row[2]) for row in rows}
    assert table["- kernel fusion"] >= 1.0, "fusion must not hurt"
    assert table["streams=1"] >= table["streams=4"] >= 1.0
    assert table["streams=16"] <= table["streams=1"]


def test_multi_gpu_extension(benchmark):
    ctx = NeoContext("C", config=NEO_CONFIG)
    trace = ctx.operation_trace("hmult", 35)

    def scaling():
        return {
            g: MultiGpuModel(g, interconnect=NVLINK3).speedup(trace)
            for g in (1, 2, 4, 8)
        }

    speedups = benchmark(scaling)
    rows = [
        [g, f"{s:.2f}x", f"{s / g:.0%}"] for g, s in speedups.items()
    ]
    print()
    print(
        format_table(
            ["GPUs", "speedup", "efficiency"],
            rows,
            title="Extension: HE-Booster-style multi-GPU scaling of HMULT",
        )
    )
    assert speedups[1] == 1.0
    assert speedups[2] > 1.3
    assert speedups[8] > speedups[4] > speedups[2]
