"""Fleet scheduler: key placement, routing invariants, determinism, export."""

import pytest

from repro.ckks.params import get_set
from repro.gpu.multi_gpu import EXCHANGE_KERNELS
from repro.serving import (
    Fleet,
    KeyPlacementPlan,
    Request,
    app_key_bytes,
    parse_workload_spec,
    plan_key_placement,
    synthesize_arrivals,
)
from repro.telemetry.registry import global_registry
from repro.telemetry.tracing import Tracer

PARAMS = get_set("C")


def smoke_requests(seed=0):
    return synthesize_arrivals(parse_workload_spec("smoke"), seed=seed)


@pytest.fixture
def registry_on():
    registry = global_registry()
    was_enabled = registry.enabled
    registry.enable()
    registry.reset()
    yield registry
    registry.reset()
    if not was_enabled:
        registry.disable()


class TestKeyPlacement:
    def test_replicate_places_everywhere(self):
        plan = plan_key_placement(["helr", "packbootstrap"], 4, PARAMS)
        assert plan.devices_for("helr") == (0, 1, 2, 3)
        assert plan.devices_for("packbootstrap") == (0, 1, 2, 3)

    def test_shard_partitions_the_key_sets(self):
        plan = plan_key_placement(
            ["helr", "packbootstrap"], 4, PARAMS, policy="shard"
        )
        # 4 groups / 2 apps -> each app resident on 2 disjoint groups.
        helr = set(plan.devices_for("helr"))
        boot = set(plan.devices_for("packbootstrap"))
        assert len(helr) == len(boot) == 2
        assert helr.isdisjoint(boot)
        assert helr | boot == {0, 1, 2, 3}

    def test_shard_lighter_than_replicate_per_group(self):
        apps = ["helr", "packbootstrap"]
        rep = plan_key_placement(apps, 4, PARAMS, policy="replicate")
        shard = plan_key_placement(apps, 4, PARAMS, policy="shard")
        for group in range(4):
            assert shard.group_key_bytes(group) < rep.group_key_bytes(group)

    def test_broadcast_bytes_count_extra_copies(self):
        apps = ["helr"]
        rep = plan_key_placement(apps, 4, PARAMS, policy="replicate")
        assert rep.broadcast_bytes() == 3 * app_key_bytes(PARAMS, "helr")
        # One copy -> nothing crosses the interconnect.
        shard = plan_key_placement(apps, 4, PARAMS, policy="shard")
        assert len(shard.devices_for("helr")) == 4  # 4 groups // 1 app
        single = plan_key_placement(apps, 1, PARAMS)
        assert single.broadcast_bytes() == 0

    def test_galois_count_drives_key_bytes(self):
        assert app_key_bytes(PARAMS, "packbootstrap") > app_key_bytes(
            PARAMS, "helr"
        )

    def test_unknown_app_and_policy_rejected(self):
        plan = plan_key_placement(["helr"], 2, PARAMS)
        with pytest.raises(ValueError, match="no key placement"):
            plan.devices_for("resnet20")
        with pytest.raises(ValueError, match="placement policy"):
            plan_key_placement(["helr"], 2, PARAMS, policy="scatter")


class TestRouting:
    def test_no_request_on_a_keyless_device(self):
        """The core residency invariant: under sharded placement every
        request lands on a group that holds its evaluation keys."""
        fleet = Fleet(gpus=4, placement="shard", max_wait_s=5.0)
        fleet.submit_many(smoke_requests())
        report = fleet.drain()
        assert isinstance(report.placement, KeyPlacementPlan)
        for device in report.devices:
            for record in device.report.records:
                assert device.gpu in report.placement.devices_for(
                    record.request.app
                )

    def test_replicate_spreads_load(self):
        fleet = Fleet(gpus=4, max_wait_s=5.0)
        fleet.submit_many(smoke_requests())
        report = fleet.drain()
        served = [d.report.served for d in report.devices]
        assert sum(served) == len(smoke_requests())
        assert all(count > 0 for count in served)

    def test_routing_is_deterministic(self):
        plans = []
        for _ in range(2):
            fleet = Fleet(gpus=4, max_wait_s=5.0)
            reqs = fleet.submit_many(smoke_requests())
            assert reqs == 20
            report = fleet.drain()
            plans.append(
                [sorted(r.request.rid for r in d.report.records)
                 for d in report.devices]
            )
        assert plans[0] == plans[1]


class TestDeterministicReplay:
    @pytest.mark.parametrize("gpus", [1, 2, 4, 8])
    def test_fingerprint_stable_across_replays(self, gpus):
        prints = []
        for _ in range(2):
            fleet = Fleet(gpus=gpus, max_wait_s=5.0)
            fleet.submit_many(smoke_requests(seed=3))
            prints.append(fleet.drain().fingerprint())
        assert prints[0] == prints[1]

    def test_fingerprint_distinguishes_fleet_sizes(self):
        prints = set()
        for gpus in (1, 2, 4):
            fleet = Fleet(gpus=gpus, max_wait_s=5.0)
            fleet.submit_many(smoke_requests(seed=3))
            prints.add(fleet.drain().fingerprint())
        assert len(prints) == 3


class TestTensorParallel:
    def test_exchange_bytes_only_on_exchange_stages(self):
        fleet = Fleet(gpus=4, tensor_parallel=2, max_wait_s=5.0)
        fleet.submit_many(smoke_requests())
        report = fleet.drain()
        movers = {
            name for name, size in report.exchange_bytes_by_kernel.items()
            if size > 0
        }
        assert movers
        assert movers <= EXCHANGE_KERNELS
        assert report.exchange_bytes > 0

    def test_data_parallel_fleet_never_exchanges(self):
        fleet = Fleet(gpus=4, max_wait_s=5.0)
        fleet.submit_many(smoke_requests())
        report = fleet.drain()
        assert report.exchange_bytes == 0.0

    def test_tensor_parallel_shards_key_residency(self):
        single = Fleet(gpus=2, max_wait_s=5.0)
        single.submit_many(smoke_requests())
        ganged = Fleet(gpus=4, tensor_parallel=2, max_wait_s=5.0)
        ganged.submit_many(smoke_requests())
        per_gpu_single = single.drain().devices[0].hbm_key_bytes
        per_gpu_ganged = ganged.drain().devices[0].hbm_key_bytes
        assert per_gpu_ganged * 2 == pytest.approx(per_gpu_single, rel=1e-6)

    def test_tensor_parallel_must_divide_gpus(self):
        with pytest.raises(ValueError, match="divide"):
            Fleet(gpus=4, tensor_parallel=3)
        with pytest.raises(ValueError, match="tensor_parallel"):
            Fleet(gpus=4, tensor_parallel=0)

    def test_invalid_fleet_args(self):
        with pytest.raises(ValueError, match="GPU"):
            Fleet(gpus=0)
        with pytest.raises(ValueError, match="placement"):
            Fleet(gpus=2, placement="scatter")


class TestFleetReport:
    @pytest.fixture(scope="class")
    def report(self):
        fleet = Fleet(gpus=4, max_wait_s=5.0)
        fleet.submit_many(smoke_requests())
        return fleet.drain()

    def test_aggregates(self, report):
        assert report.served == 20
        assert report.makespan_s == max(
            d.report.makespan_s for d in report.devices
        )
        assert report.throughput_rps == pytest.approx(
            report.served / report.makespan_s
        )
        lat = report.latency_summary()
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert 0.0 <= report.slo_attainment <= 1.0

    def test_utilization_bounded(self, report):
        for device in report.devices:
            assert 0.0 < device.utilization <= 1.0
            assert 0.0 < device.hbm_fraction < 1.0

    def test_timeline_namespaces_devices(self, report):
        names = {block.name.split(":")[0] for block in report.timeline()}
        assert names == {f"gpu{d.gpu}" for d in report.devices if
                         d.report.batches}
        assert len(report.timeline()) == len(report.batches)

    def test_chrome_trace_exports(self, report):
        assert '"traceEvents"' in report.to_chrome_trace()

    def test_format_mentions_devices_and_traffic(self, report):
        text = report.format()
        assert "gpu0" in text and "gpu3" in text
        assert "key broadcast" in text
        assert "SLO" in text

    def test_ingress_accounts_every_ciphertext(self, report):
        assert report.ingress_bytes > 0
        assert report.interconnect_bytes == (
            report.exchange_bytes + report.key_broadcast_bytes
        )

    def test_records_merged_and_ordered(self, report):
        records = report.records
        assert len(records) == 20
        finishes = [r.finish_s for r in records]
        assert finishes == sorted(finishes)


class TestTelemetryExport:
    def test_metrics_families(self, registry_on):
        fleet = Fleet(gpus=2, max_wait_s=5.0)
        fleet.submit_many(smoke_requests())
        fleet.drain()
        names = set(registry_on.snapshot())
        assert {
            "fleet_requests_total",
            "fleet_device_utilization",
            "fleet_queue_depth_peak",
            "fleet_hbm_key_bytes",
            "fleet_throughput_rps",
            "fleet_slo_attainment",
            "fleet_makespan_seconds",
        } <= names

    def test_interconnect_counter_labelled_by_kernel(self, registry_on):
        fleet = Fleet(gpus=4, tensor_parallel=2, max_wait_s=5.0)
        fleet.submit_many(smoke_requests())
        fleet.drain()
        text = registry_on.to_prometheus_text()
        assert 'fleet_interconnect_bytes_total{kernel="bconv"}' in text
        assert 'kernel="modmul"' not in text

    def test_fleet_trace_spans(self):
        tracer = Tracer()
        fleet = Fleet(gpus=2, max_wait_s=5.0, tracer=tracer)
        fleet.submit_many(smoke_requests())
        fleet.drain()
        (root,) = tracer.span_tree("fleet")
        assert root.span.name == "fleet_drain"
        children = {c.span.name for c in root.children}
        assert children == {"gpu-0", "gpu-1"}
        # Per-request traces still come from the device servers.
        assert "req-0" in tracer.trace_ids()
