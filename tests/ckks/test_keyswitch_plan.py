"""The key-switch plan cache: staleness, identity, stats, thread safety.

The seed code cached KLSS decompositions in a ``_klss_cache`` dict stashed
on the key object, keyed *only by level* -- a key reused under a sibling
:class:`CkksParameters` (same chains, different ``alpha~``) silently got
the other set's decomposition.  The plan cache is keyed by the params
fingerprint plus the key's identity token instead; these tests pin that,
and the only-bookkeeping-under-lock concurrency discipline.
"""

import threading

import numpy as np
import pytest

from repro.ckks.keys import KeyGenerator, sample_uniform
from repro.ckks.keyswitch import hybrid, klss, plan
from repro.ckks.params import KlssConfig, small_test_parameters


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    plan.clear_keyswitch_plan_cache()
    yield
    plan.clear_keyswitch_plan_cache()


def _key_and_params(alpha_tilde=2):
    params = small_test_parameters(klss=KlssConfig(wordsize_t=28, alpha_tilde=alpha_tilde))
    gen = KeyGenerator(params, seed=42)
    secret = gen.secret_key()
    return params, gen.relinearisation_key(secret)


class TestStaleCacheRegression:
    def test_sibling_params_get_fresh_decomposition(self):
        """A key reused under sibling params must not see stale digits.

        ``alpha~ = 2`` vs ``3`` share the exact same q/special chains (the
        KLSS config only alters the auxiliary chain), so the same key
        object is valid under both -- but the gadget decomposition differs
        (``beta~`` digits).  The old per-key attribute cache, keyed only by
        level, returned the first params' decomposition for the second.
        """
        params1, ksk = _key_and_params(alpha_tilde=2)
        params2 = small_test_parameters(
            klss=KlssConfig(wordsize_t=28, alpha_tilde=3)
        )
        assert params1.moduli == params2.moduli
        assert params1.special_primes == params2.special_primes
        level = params1.max_level

        key1 = klss.decompose_key(ksk, params1, level)
        key2 = klss.decompose_key(ksk, params2, level)

        want1 = params1.klss_dims(level)[2]
        want2 = params2.klss_dims(level)[2]
        assert want1 != want2  # the scenario is only meaningful if they differ
        assert key1.beta_tilde == want1
        assert key2.beta_tilde == want2  # stale attribute cache returned want1

    def test_no_state_stashed_on_the_key(self):
        params, ksk = _key_and_params()
        klss.decompose_key(ksk, params, params.max_level)
        hybrid._key_pairs_at_level(ksk, params, params.max_level)
        assert not hasattr(ksk, "_klss_cache")
        assert not hasattr(ksk, "_hybrid_cache")

    def test_decompose_key_identity_cached(self):
        params, ksk = _key_and_params()
        key1 = klss.decompose_key(ksk, params, 3)
        key2 = klss.decompose_key(ksk, params, 3)
        assert key1 is key2

    def test_distinct_keys_do_not_collide(self):
        params, _ = _key_and_params()
        gen = KeyGenerator(params, seed=1)
        s = gen.secret_key()
        ksk_a = gen.relinearisation_key(s)
        ksk_b = gen.galois_key(s, 5)
        assert ksk_a.cache_token != ksk_b.cache_token
        key_a = klss.decompose_key(ksk_a, params, 2)
        key_b = klss.decompose_key(ksk_b, params, 2)
        assert key_a is not key_b


class TestCacheStats:
    def test_hit_miss_accounting(self):
        params, ksk = _key_and_params()
        rng = np.random.default_rng(0)
        poly = sample_uniform(params.degree, params.q_basis(2), rng)
        hybrid.keyswitch(poly, ksk, params)
        stats = plan.keyswitch_plan_cache_stats()
        assert stats["misses"] == 1
        hybrid.keyswitch(poly, ksk, params)
        stats = plan.keyswitch_plan_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert 0 < stats["hit_rate"] < 1
        assert plan.keyswitch_plan_cache_size() == 1

    def test_clear_resets(self):
        params, ksk = _key_and_params()
        rng = np.random.default_rng(0)
        poly = sample_uniform(params.degree, params.q_basis(1), rng)
        klss.keyswitch(poly, ksk, params)
        plan.clear_keyswitch_plan_cache()
        stats = plan.keyswitch_plan_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "evictions": 0, "hit_rate": 0.0}
        assert plan.keyswitch_plan_cache_size() == 0


class TestThreadSafety:
    def test_concurrent_lanes_share_one_plan(self):
        """Many threads key-switching at once: one plan, identical outputs.

        The cache lock is held only around the LRU bookkeeping, so
        concurrent misses may build duplicate plans -- but the first insert
        wins, every caller gets a working plan, and the outputs are
        bit-identical to the serial reference.
        """
        params, ksk = _key_and_params()
        rng = np.random.default_rng(9)
        level = params.max_level
        poly = sample_uniform(params.degree, params.q_basis(level), rng)
        ref_h = hybrid.keyswitch(poly, ksk, params)
        ref_k = klss.keyswitch(poly, ksk, params)
        plan.clear_keyswitch_plan_cache()

        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads
        errors = []

        def lane(i):
            try:
                barrier.wait()
                h = hybrid.keyswitch(poly, ksk, params)
                k = klss.keyswitch(poly, ksk, params)
                results[i] = (h, k)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=lane, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        for h, k in results:
            for got, want in zip(h, ref_h):
                assert np.array_equal(got.stack, want.stack)
            for got, want in zip(k, ref_k):
                assert np.array_equal(got.stack, want.stack)
        # Two methods at one level: exactly two live cache entries, and
        # every lookup after the winning inserts was a hit.
        assert plan.keyswitch_plan_cache_size() == 2
        stats = plan.keyswitch_plan_cache_stats()
        assert stats["hits"] + stats["misses"] == 2 * n_threads
        assert stats["hits"] >= 0  # duplicate builds allowed, losers discarded

    def test_concurrent_distinct_levels(self):
        params, ksk = _key_and_params()
        rng = np.random.default_rng(3)
        levels = [1, 2, 3, 4]
        polys = {
            lvl: sample_uniform(params.degree, params.q_basis(lvl), rng)
            for lvl in levels
        }
        refs = {lvl: hybrid.keyswitch(polys[lvl], ksk, params) for lvl in levels}
        plan.clear_keyswitch_plan_cache()

        barrier = threading.Barrier(len(levels))
        errors = []

        def lane(lvl):
            try:
                barrier.wait()
                got = hybrid.keyswitch(polys[lvl], ksk, params)
                for g, w in zip(got, refs[lvl]):
                    assert np.array_equal(g.stack, w.stack)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=lane, args=(lvl,)) for lvl in levels]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert plan.keyswitch_plan_cache_size() == len(levels)


class TestOperandTraffic:
    """The plan-level operand traffic reports feeding the memory model."""

    def test_keyswitch_operands_and_placements(self):
        from repro.gpu.device import A100

        params, ksk = _key_and_params()
        ksplan = plan.get_keyswitch_plan(
            ksk, params, params.max_level, "klss"
        )
        operands = ksplan.operand_bytes()
        assert {"evk", "modup_weights", "moddown_weights"} <= set(operands)
        assert "recover_weights" in operands  # klss-specific
        assert all(v > 0 for v in operands.values())

        report = ksplan.traffic_report(A100.hier(), batch=4)
        assert set(report) == set(operands)
        for name, row in report.items():
            assert row["placement"] in ("stream", "smem", "l2", "spill")
            assert row["hbm_bytes"] >= operands[name] or row["placement"] != "spill"
            # batch=4 means three re-reads of each shared operand
            assert row["captured_bytes"] + row["hbm_bytes"] >= row["bytes"]

    def test_batch_one_is_pure_streaming(self):
        from repro.gpu.device import A100

        params, ksk = _key_and_params()
        ksplan = plan.get_keyswitch_plan(
            ksk, params, params.max_level, "klss"
        )
        for row in ksplan.traffic_report(A100.hier(), batch=1).values():
            assert row["placement"] == "stream"
            assert row["captured_bytes"] == 0.0

    def test_hoisted_rotation_adds_gather_maps(self):
        from repro.gpu.device import A100

        params = small_test_parameters(
            klss=KlssConfig(wordsize_t=28, alpha_tilde=2)
        )
        from repro.ckks.keys import rotation_galois_power

        gen = KeyGenerator(params, seed=7)
        secret = gen.secret_key()
        galois = gen.rotation_keys(secret, [1, 2])
        powers = tuple(
            rotation_galois_power(s, params.degree) for s in (1, 2)
        )
        rplan = plan.get_hoisted_rotation_plan(
            galois, powers, params, params.max_level, "klss"
        )
        operands = rplan.operand_bytes()
        assert "gather_maps" in operands
        report = rplan.traffic_report(A100.hier(), batch=2)
        assert set(report) == set(operands)
