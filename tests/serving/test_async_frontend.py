"""Async front-end tests: backpressure, live stamping, replay equivalence.

The key property: the asyncio ingest edge changes *how* requests reach
the server, never *what* the scheduler does with them -- a replayed trace
drains to the same fingerprint whether it was submitted synchronously or
through the front end.
"""

import asyncio

import pytest

from repro.serving import (
    AsyncFrontEnd,
    FixedServiceModel,
    FrontEndClosed,
    OverloadPolicy,
    Server,
    parse_workload_spec,
    run_wall_clock,
    serve_replay,
    synthesize_arrivals,
)

FLAT = FixedServiceModel(lambda app, size: 10.0)


def _server(**kwargs):
    defaults = dict(
        policy="fifo", max_batch=4, max_wait_s=5.0, lanes=1, model=FLAT
    )
    defaults.update(kwargs)
    return Server(**defaults)


def _trace(seed=3):
    return synthesize_arrivals(parse_workload_spec("smoke"), seed=seed)


class TestReplayEquivalence:
    def test_async_replay_matches_sync_fingerprint(self):
        """Same trace, same scheduler, same timeline -- different ingest."""
        requests = _trace()
        sync_server = _server()
        sync_server.submit_many(requests)
        sync_report = sync_server.drain()

        async_report = asyncio.run(serve_replay(_server(), requests))
        assert async_report.fingerprint() == sync_report.fingerprint()
        assert async_report.served == sync_report.served

    def test_paced_replay_keeps_simulated_arrivals(self):
        """Wall pacing (tiny scale) never perturbs the simulated clock."""
        requests = _trace()
        baseline = asyncio.run(serve_replay(_server(), requests))
        paced = asyncio.run(
            serve_replay(_server(), requests, time_scale=1e-4)
        )
        assert paced.fingerprint() == baseline.fingerprint()

    def test_run_wall_clock_entry_point(self):
        requests = _trace()
        report = run_wall_clock(_server(), requests)
        assert report.served == len(requests)

    def test_overloaded_async_replay_sheds(self):
        server = _server(
            overload=OverloadPolicy(queue_capacity=3, shed_threshold=0.5)
        )
        requests = _trace()
        report = asyncio.run(serve_replay(server, requests))
        assert report.offered == len(requests)
        assert report.shed_count + report.rejected_count > 0
        assert report.max_queue_depth <= 3


class TestBackpressure:
    def test_try_submit_refuses_when_full(self):
        async def scenario():
            front = AsyncFrontEnd(
                _server(), max_pending=2, clock=lambda: 0.0
            )
            # No await between the three calls: the pump never runs, so
            # the third submission meets a full ingest buffer.
            first = front.try_submit(app="helr")
            second = front.try_submit(app="helr")
            third = front.try_submit(app="helr")
            assert first is not None and second is not None
            assert third is None
            assert front.refused == 1
            assert front.pressure == pytest.approx(1.0)
            await front.close()
            assert (await first).rid == 0
            return front

        front = asyncio.run(scenario())
        assert front.accepted == 2
        assert front.server.stats().submitted == 2

    def test_await_submit_blocks_until_pump_frees_a_slot(self):
        async def scenario():
            front = AsyncFrontEnd(
                _server(), max_pending=1, clock=lambda: 0.0
            )
            for _ in range(5):
                await front.submit(app="helr")  # blocks, never deadlocks
            report = await front.drain()
            return front, report

        front, report = asyncio.run(scenario())
        assert front.accepted == 5
        assert report.served == 5

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_pending"):
            AsyncFrontEnd(_server(), max_pending=0)


class TestLiveMode:
    def test_live_submissions_stamp_wall_arrivals(self):
        ticks = iter([0.0, 2.5, 7.0])

        async def scenario():
            front = AsyncFrontEnd(
                _server(), clock=lambda: next(ticks)
            )
            a = await front.submit(app="helr")
            b = await front.submit(app="helr")
            c = await front.submit(app="helr", arrival_s=100.0)  # explicit
            await front.close()
            return a, b, c

        a, b, c = asyncio.run(scenario())
        assert (a.arrival_s, b.arrival_s) == (0.0, 2.5)
        assert c.arrival_s == 100.0  # explicit stamps win over the clock

    def test_submit_after_close_raises(self):
        async def scenario():
            front = AsyncFrontEnd(_server())
            await front.submit(app="helr", arrival_s=0.0)
            await front.close()
            with pytest.raises(FrontEndClosed):
                await front.submit(app="helr")

        asyncio.run(scenario())

    def test_context_manager_closes(self):
        async def scenario():
            async with AsyncFrontEnd(_server()) as front:
                await front.submit(app="helr", arrival_s=0.0)
            assert front._closed
            return front

        front = asyncio.run(scenario())
        assert front.server.stats().submitted == 1

    def test_invalid_request_surfaces_to_submitter(self):
        async def scenario():
            front = AsyncFrontEnd(_server())
            with pytest.raises(ValueError, match="unknown application"):
                await front.submit(app="not-an-app", arrival_s=0.0)
            await front.close()

        asyncio.run(scenario())
