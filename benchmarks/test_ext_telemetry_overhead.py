"""Extension: telemetry overhead gate on the serving-throughput benchmark.

The observability layer (metrics registry + span tracer) must stay cheap
enough to leave on: the CI acceptance bar is **< 5% overhead** against a
telemetry-disabled drain of the same mixed workload.

Wall-clock A/B deltas of two separate drains are dominated by scheduler
noise in shared CI (the base drain itself jitters by ~10%), so the gated
number is measured *inside* one instrumented run: the time spent in
``Server._emit_telemetry`` (every span + metric the enabled path records)
as a fraction of that drain's total wall time.  Numerator and denominator
share the same CPU conditions, which makes the fraction stable run to
run.  The paired wall-clock delta is still measured and printed -- and
sanity-bounded loosely -- so a pathological slowdown of the enabled path
outside the emission hook cannot hide.
"""

import statistics
import time

import pytest

from repro.core import clear_cost_builder_caches
from repro.core.trace_cache import TraceCache
from repro.serving import Server, parse_workload_spec, synthesize_arrivals
from repro.serving.server import Server as _ServerClass
from repro.telemetry import Tracer, disable_telemetry, enable_telemetry

WORKLOAD = "mixed"
SEED = 0
MAX_EMISSION_FRACTION = 0.05
#: Sanity ceiling for the noisy paired wall-clock delta (median of pairs).
MAX_PAIRED_OVERHEAD = 0.25
PAIRS = 5


def _requests():
    return synthesize_arrivals(parse_workload_spec(WORKLOAD), seed=SEED)


def _drain_once(telemetry: bool) -> float:
    """One cold-cache drain (the ``repro serve`` process shape); wall time.

    A fresh process starts with the process-wide kernel-cost memos empty
    too, so they are cleared alongside the per-drain trace cache -- both
    telemetry arms share the same (cold) model-layer conditions.
    """
    clear_cost_builder_caches()
    tracer = Tracer() if telemetry else None
    if telemetry:
        enable_telemetry().reset()
    else:
        disable_telemetry()
    server = Server(
        params="C", policy="bucketed", max_batch=64, max_wait_s=30.0,
        lanes=2, trace_cache=TraceCache(), tracer=tracer,
    )
    server.submit_many(_requests())
    start = time.perf_counter()
    server.drain()
    return time.perf_counter() - start


@pytest.fixture(scope="module", autouse=True)
def _warm():
    """Warm code paths and the process-wide span-descriptor cache once."""
    _drain_once(False)
    _drain_once(True)
    yield
    disable_telemetry()


def test_telemetry_emission_fraction_below_5pct(capsys):
    original = _ServerClass._emit_telemetry
    emit = {"s": 0.0}

    def timed(self, report, queue):
        start = time.perf_counter()
        original(self, report, queue)
        emit["s"] += time.perf_counter() - start

    _ServerClass._emit_telemetry = timed
    try:
        fractions = []
        for _ in range(3):
            emit["s"] = 0.0
            total = _drain_once(True)
            fractions.append(emit["s"] / total)
    finally:
        _ServerClass._emit_telemetry = original
    best = min(fractions)
    with capsys.disabled():
        print(
            f"\ntelemetry emission fraction: best {100 * best:.2f}% "
            f"(all: {', '.join(f'{100 * f:.2f}%' for f in fractions)})"
        )
    assert best < MAX_EMISSION_FRACTION, (
        f"telemetry emission is {100 * best:.2f}% of the drain "
        f"(gate: {100 * MAX_EMISSION_FRACTION:.0f}%)"
    )


def test_paired_wall_clock_delta_sanity(capsys):
    bases, deltas = [], []
    for _ in range(PAIRS):
        base = _drain_once(False)
        instrumented = _drain_once(True)
        bases.append(base)
        deltas.append(instrumented - base)
    overhead = statistics.median(deltas) / statistics.median(bases)
    with capsys.disabled():
        print(
            f"\npaired wall-clock overhead (median of {PAIRS} pairs): "
            f"{100 * overhead:.2f}% on base "
            f"{1e3 * statistics.median(bases):.1f} ms"
        )
    assert overhead < MAX_PAIRED_OVERHEAD, (
        f"instrumented drain is {100 * overhead:.1f}% slower than "
        f"telemetry-disabled (sanity ceiling "
        f"{100 * MAX_PAIRED_OVERHEAD:.0f}%)"
    )


def test_disabled_telemetry_records_nothing():
    from repro.telemetry.registry import global_registry

    disable_telemetry()
    global_registry().reset()
    _drain_once(False)
    assert global_registry().names() == ()
