"""Negacyclic ring polynomials in RNS (double-CRT) representation.

Elements of ``R_Q = Z_Q[X] / (X^N + 1)`` are stored as ONE contiguous
limb-stacked array of shape ``(num_limbs, ..., N)`` -- the double-CRT
layout every GPU FHE library keeps resident in device memory.  All ring
arithmetic runs through :class:`~repro.math.modstack.ModulusStack` as a
single vectorised expression over the whole stack, and NTT conversions go
through :class:`~repro.math.ntt.NttStack`, so no Python-level per-limb
loop survives on the hot path.  ``poly.limbs`` is retained as a list of
per-limb views for callers that slice the basis (ModUp digits, level
drops, serialization).
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from . import modarith
from .modstack import ModulusStack
from .ntt import get_plan, get_stack, is_power_of_two
from .rns import RnsBasis


def negacyclic_multiply_schoolbook(a, b, degree: int, modulus: int) -> np.ndarray:
    """O(N^2) reference product in ``Z_q[X]/(X^N + 1)``."""
    a = modarith.asarray_mod(a, modulus).astype(object)
    b = modarith.asarray_mod(b, modulus).astype(object)
    out = np.zeros(degree, dtype=object)
    for i in range(degree):
        if a[i] == 0:
            continue
        for j in range(degree):
            k = i + j
            term = a[i] * b[j]
            if k < degree:
                out[k] += term
            else:
                out[k - degree] -= term
    return modarith.asarray_mod(out % modulus, modulus)


def negacyclic_multiply(a, b, degree: int, modulus: int) -> np.ndarray:
    """NTT-based product in ``Z_q[X]/(X^N + 1)``."""
    plan = get_plan(degree, modulus)
    fa = plan.forward(a)
    fb = plan.forward(b)
    return plan.inverse(modarith.mul_mod(fa, fb, modulus))


_AUTO_CACHE: dict = {}


def _automorphism_tables(galois_power: int, degree: int):
    """(destination index, sign) tables of ``X -> X**galois_power``.

    Coefficient ``i`` lands at ``dest[i]`` with sign ``sign[i]`` -- the AUTO
    kernel is a signed permutation, which is why the paper maps it to CUDA
    cores as pure data movement (Fig. 4).
    """
    key = (galois_power, degree)
    cached = _AUTO_CACHE.get(key)
    if cached is not None:
        return cached
    two_n = 2 * degree
    exponents = (np.arange(degree, dtype=np.int64) * galois_power) % two_n
    wraps = exponents >= degree
    dest = np.where(wraps, exponents - degree, exponents)
    sign = np.where(wraps, -1, 1).astype(np.int64)
    _AUTO_CACHE[key] = (dest, sign)
    return dest, sign


def automorphism_gather_maps(galois_power: int, degree: int):
    """Gather-form ``(source index, negate mask)`` of ``X -> X**galois_power``.

    The scatter tables of :func:`_automorphism_tables` say coefficient
    ``i`` lands at ``dest[i]`` with ``sign[i]``; the inverse view reads
    ``out[j] = sign[src[j]] * in[src[j]]`` with ``src[dest[i]] = i``.  A
    gather lets k automorphisms of the same limb stack run as ONE fancy
    index with a ``(k, N)`` index matrix -- the op-plan compiler's AUTO
    step -- instead of k scatters.  Bit-identical to the scatter form:
    both move the same residues to the same places with the same signs.
    """
    key = (galois_power, degree, "gather")
    cached = _AUTO_CACHE.get(key)
    if cached is not None:
        return cached
    dest, sign = _automorphism_tables(galois_power, degree)
    src = np.empty(degree, dtype=np.int64)
    src[dest] = np.arange(degree, dtype=np.int64)
    negate = sign[src] < 0
    _AUTO_CACHE[key] = (src, negate)
    return src, negate


def automorphism(coeffs: np.ndarray, galois_power: int, degree: int, modulus: int) -> np.ndarray:
    """Apply ``X -> X**galois_power`` in coefficient form (AUTO kernel).

    ``galois_power`` must be odd so the map is a ring automorphism of
    ``Z_q[X]/(X^N + 1)``.  HROTATE uses powers ``5**r mod 2N``; conjugation
    uses ``2N - 1``.  Vectorises over leading (batch) axes.
    """
    if galois_power % 2 == 0:
        raise ValueError("Galois power must be odd")
    coeffs = modarith.asarray_mod(coeffs, modulus)
    dest, sign = _automorphism_tables(galois_power, degree)
    signed = np.where(sign < 0, modarith.neg_mod(coeffs, modulus), coeffs)
    out = modarith.zeros_mod(coeffs.shape, modulus)
    out[..., dest] = signed
    return out


class RnsPolynomial:
    """A ring element held as one limb-stacked residue tensor.

    Attributes:
        degree: ring degree ``N``.
        basis: the RNS basis of the limbs.
        is_ntt: True when the limbs are in evaluation (NTT) form.

    The backing store is ``stack``, a ``(num_limbs, ..., N)`` array whose
    dtype is ``uint64`` whenever every basis modulus sits on a native
    backend (all paper word sizes) and ``object`` otherwise.  Leading axes
    between the limb axis and the coefficient axis, when present, are a
    ciphertext batch (the paper's BatchSize dimension) and every operation
    vectorises over them.  ``limbs`` exposes per-limb *views* of the stack
    for basis-surgery callers; the views alias the stack, they do not copy.
    """

    __slots__ = ("degree", "basis", "_stack", "is_ntt")

    def __init__(
        self,
        degree: int,
        basis: RnsBasis,
        limbs: Union[np.ndarray, Sequence[np.ndarray]],
        is_ntt: bool = False,
    ):
        if not is_power_of_two(degree):
            raise ValueError(f"degree must be a power of two, got {degree}")
        self.degree = degree
        self.basis = basis
        mstack = ModulusStack.for_moduli(basis.moduli)
        if isinstance(limbs, np.ndarray) and limbs.ndim >= 2:
            if limbs.shape[0] != len(basis):
                raise ValueError(
                    f"expected {len(basis)} limbs, got {limbs.shape[0]}"
                )
            stack = mstack.reduce(limbs)
        else:
            limbs = list(limbs)
            if len(limbs) != len(basis):
                raise ValueError(f"expected {len(basis)} limbs, got {len(limbs)}")
            shapes = {np.asarray(limb).shape for limb in limbs}
            if len(shapes) != 1:
                raise ValueError(f"limb shapes differ: {sorted(shapes)}")
            stack = mstack.stack_limbs(limbs)
        if stack.shape[-1] != degree:
            raise ValueError(
                f"limb shape {stack.shape[1:]} incompatible with degree {degree}"
            )
        self._stack = stack
        self.is_ntt = is_ntt

    @classmethod
    def _wrap(
        cls, degree: int, basis: RnsBasis, stack: np.ndarray, is_ntt: bool
    ) -> "RnsPolynomial":
        """Internal constructor for already-reduced stacks (no re-reduction)."""
        poly = object.__new__(cls)
        poly.degree = degree
        poly.basis = basis
        poly._stack = stack
        poly.is_ntt = is_ntt
        return poly

    @property
    def stack(self) -> np.ndarray:
        """The backing ``(num_limbs, ..., N)`` residue tensor (do not mutate)."""
        return self._stack

    @property
    def limbs(self) -> List[np.ndarray]:
        """Per-limb views of the stack (row ``i`` is the mod-``q_i`` residue)."""
        return list(self._stack)

    @property
    def batch_shape(self):
        """Leading (batch) axes of the limbs; ``()`` for a single element."""
        return self._stack.shape[1:-1]

    def _mstack(self) -> ModulusStack:
        return ModulusStack.for_moduli(self.basis.moduli)

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(
        cls,
        degree: int,
        basis: RnsBasis,
        is_ntt: bool = False,
        batch_shape: tuple = (),
    ) -> "RnsPolynomial":
        mstack = ModulusStack.for_moduli(basis.moduli)
        stack = mstack.zeros(tuple(batch_shape) + (degree,))
        return cls._wrap(degree, basis, stack, is_ntt)

    @classmethod
    def from_int_coeffs(cls, coeffs, degree: int, basis: RnsBasis) -> "RnsPolynomial":
        """Build from (possibly signed) integer coefficients."""
        arr = np.asarray(coeffs)
        if arr.shape[-1] != degree:
            raise ValueError(
                f"coefficient shape {arr.shape} incompatible with degree {degree}"
            )
        return cls(degree, basis, basis.decompose(arr), is_ntt=False)

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial._wrap(
            self.degree, self.basis, self._stack.copy(), self.is_ntt
        )

    # -- representation changes ---------------------------------------------

    def to_ntt(self) -> "RnsPolynomial":
        if self.is_ntt:
            return self
        transformed = get_stack(self.degree, self.basis.moduli).forward(self._stack)
        return RnsPolynomial._wrap(self.degree, self.basis, transformed, is_ntt=True)

    def from_ntt(self) -> "RnsPolynomial":
        if not self.is_ntt:
            return self
        transformed = get_stack(self.degree, self.basis.moduli).inverse(self._stack)
        return RnsPolynomial._wrap(self.degree, self.basis, transformed, is_ntt=False)

    def to_int_coeffs(self) -> np.ndarray:
        """CRT-recompose to centred integer coefficients (coefficient form)."""
        poly = self.from_ntt()
        return poly.basis.compose_signed(poly.limbs)

    # -- arithmetic ----------------------------------------------------------

    def _check_compatible(self, other: "RnsPolynomial"):
        if self.basis != other.basis or self.degree != other.degree:
            raise ValueError("operands live in different rings")
        if self.is_ntt != other.is_ntt:
            raise ValueError("operands are in different domains (NTT vs coeff)")

    def add(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        stack = self._mstack().add(self._stack, other._stack)
        return RnsPolynomial._wrap(self.degree, self.basis, stack, self.is_ntt)

    def sub(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        stack = self._mstack().sub(self._stack, other._stack)
        return RnsPolynomial._wrap(self.degree, self.basis, stack, self.is_ntt)

    def negate(self) -> "RnsPolynomial":
        stack = self._mstack().neg(self._stack)
        return RnsPolynomial._wrap(self.degree, self.basis, stack, self.is_ntt)

    def multiply(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Ring product; converts to NTT form if necessary (ModMUL kernel)."""
        if self.is_ntt and other.is_ntt:
            self._check_compatible(other)
            stack = self._mstack().mul(self._stack, other._stack)
            return RnsPolynomial._wrap(self.degree, self.basis, stack, True)
        return self.to_ntt().multiply(other.to_ntt())

    def multiply_scalar(self, scalar: int) -> "RnsPolynomial":
        """Multiply by a Python integer (reduced per limb)."""
        stack = self._mstack().broadcast_scalar_mul(self._stack, scalar)
        return RnsPolynomial._wrap(self.degree, self.basis, stack, self.is_ntt)

    def multiply_scalar_per_limb(self, scalars: Sequence[int]) -> "RnsPolynomial":
        """Multiply limb ``i`` by ``scalars[i]`` (used by Rescale/ModDown)."""
        stack = self._mstack().scalar_mul(self._stack, list(scalars))
        return RnsPolynomial._wrap(self.degree, self.basis, stack, self.is_ntt)

    def automorphism(self, galois_power: int) -> "RnsPolynomial":
        """Apply ``X -> X**galois_power`` (requires coefficient form).

        One signed permutation moves the whole limb stack: the (dest, sign)
        tables depend only on ``(galois_power, N)``, so every limb and batch
        row rides the same fancy-index scatter.
        """
        if galois_power % 2 == 0:
            raise ValueError("Galois power must be odd")
        poly = self.from_ntt()
        dest, sign = _automorphism_tables(galois_power, self.degree)
        source = poly._stack
        signed = np.where(sign < 0, poly._mstack().neg(source), source)
        out = np.empty_like(source)
        out[..., dest] = signed
        return RnsPolynomial._wrap(self.degree, self.basis, out, is_ntt=False)

    # -- basis surgery --------------------------------------------------------

    def keep_limbs(self, count: int) -> "RnsPolynomial":
        """Restrict to the first `count` limbs (level drop)."""
        if not 0 < count <= len(self.basis):
            raise ValueError(f"cannot keep {count} of {len(self.basis)} limbs")
        return RnsPolynomial._wrap(
            self.degree,
            self.basis.subbasis(0, count),
            self._stack[:count],
            self.is_ntt,
        )

    def limb_stack(self) -> np.ndarray:
        """The limbs as one object-dtype matrix of shape (limbs, N)."""
        return np.asarray(self._stack, dtype=object)

    def __repr__(self) -> str:
        domain = "ntt" if self.is_ntt else "coeff"
        return (
            f"RnsPolynomial(N={self.degree}, limbs={len(self.basis)}, {domain})"
        )
