"""Batched ciphertexts: many messages through one set of kernel calls.

The paper's execution model processes ``BatchSize`` ciphertexts per kernel
launch (Section 6, Fig. 17).  Functionally, the whole library vectorises
over leading limb axes, so a "batched ciphertext" is simply a
:class:`~repro.ckks.ciphertext.Ciphertext` whose limbs have shape
``(B, N)`` -- every evaluator operation (including key switching) then
processes all ``B`` messages at once.

This module provides the packing/unpacking and the batched encode/encrypt/
decrypt round trip.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..math.polynomial import RnsPolynomial
from .ciphertext import Ciphertext
from .encoder import CkksEncoder, Plaintext
from .encryptor import Decryptor, Encryptor


def _stack_polys(polys: Sequence[RnsPolynomial]) -> RnsPolynomial:
    # Insert the batch axis right after the limb axis, keeping the native
    # residue dtype: (L, N) x B -> (L, B, N) in one copy.
    first = polys[0]
    stack = np.stack([p.stack for p in polys], axis=1)
    return RnsPolynomial(first.degree, first.basis, stack, first.is_ntt)


def _unstack_poly(poly: RnsPolynomial) -> List[RnsPolynomial]:
    batch = poly.batch_shape
    if len(batch) != 1:
        raise ValueError(f"expected one batch axis, got shape {batch}")
    return [
        RnsPolynomial(poly.degree, poly.basis, poly.stack[:, i], poly.is_ntt)
        for i in range(batch[0])
    ]


def stack_ciphertexts(cts: Sequence[Ciphertext]) -> Ciphertext:
    """Combine ciphertexts (same level/scale) into one batched ciphertext."""
    if not cts:
        raise ValueError("need at least one ciphertext")
    first = cts[0]
    for ct in cts[1:]:
        if ct.level != first.level:
            raise ValueError("all ciphertexts must share a level")
        if abs(ct.scale - first.scale) > 1e-3 * first.scale:
            raise ValueError("all ciphertexts must share a scale")
        if not ct.is_relinearised or not first.is_relinearised:
            raise ValueError("stacking requires relinearised ciphertexts")
    return Ciphertext(
        _stack_polys([ct.c0 for ct in cts]),
        _stack_polys([ct.c1 for ct in cts]),
        first.scale,
        first.params,
    )


def unstack_ciphertext(ct: Ciphertext) -> List[Ciphertext]:
    """Split a batched ciphertext back into individual ciphertexts."""
    c0s = _unstack_poly(ct.c0)
    c1s = _unstack_poly(ct.c1)
    return [
        Ciphertext(c0, c1, ct.scale, ct.params)
        for c0, c1 in zip(c0s, c1s)
    ]


def encode_batch(
    encoder: CkksEncoder,
    rows: np.ndarray,
    level: Optional[int] = None,
    scale: Optional[float] = None,
) -> List[Plaintext]:
    """Encode a ``(B, slots)`` value matrix into one plaintext per row."""
    rows = np.atleast_2d(np.asarray(rows))
    return [encoder.encode(row, level=level, scale=scale) for row in rows]


def encrypt_batch(
    encryptor: Encryptor,
    encoder: CkksEncoder,
    rows: np.ndarray,
    level: Optional[int] = None,
) -> Ciphertext:
    """Encrypt a ``(B, slots)`` value matrix into one batched ciphertext.

    Each row gets independent encryption randomness before stacking.
    """
    plaintexts = encode_batch(encoder, rows, level=level)
    return stack_ciphertexts([encryptor.encrypt(pt) for pt in plaintexts])


def decrypt_batch(
    decryptor: Decryptor, encoder: CkksEncoder, ct: Ciphertext
) -> np.ndarray:
    """Decrypt a batched ciphertext to a ``(B, slots)`` complex matrix."""
    plaintext = decryptor.decrypt(ct)
    coeffs = plaintext.poly.to_int_coeffs()  # (B, N) centred integers
    if coeffs.ndim == 1:
        return encoder.project(coeffs, plaintext.scale)[None, :]
    rows = [encoder.project(row, plaintext.scale) for row in coeffs]
    return np.stack(rows)


def batch_size(ct: Ciphertext) -> int:
    """Number of messages carried by a (possibly batched) ciphertext."""
    shape = ct.c0.batch_shape
    return int(np.prod(shape)) if shape else 1
