"""Negacyclic ring polynomials in RNS (double-CRT) representation.

Elements of ``R_Q = Z_Q[X] / (X^N + 1)`` are stored as one residue array per
RNS limb ("limb" in the paper's terminology), optionally in NTT (evaluation)
form.  This is the double-CRT layout every GPU FHE library uses, and the
object the Neo kernels reorder and multiply.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from . import modarith
from .ntt import get_plan, is_power_of_two
from .rns import RnsBasis


def negacyclic_multiply_schoolbook(a, b, degree: int, modulus: int) -> np.ndarray:
    """O(N^2) reference product in ``Z_q[X]/(X^N + 1)``."""
    a = modarith.asarray_mod(a, modulus).astype(object)
    b = modarith.asarray_mod(b, modulus).astype(object)
    out = np.zeros(degree, dtype=object)
    for i in range(degree):
        if a[i] == 0:
            continue
        for j in range(degree):
            k = i + j
            term = a[i] * b[j]
            if k < degree:
                out[k] += term
            else:
                out[k - degree] -= term
    return modarith.asarray_mod(out % modulus, modulus)


def negacyclic_multiply(a, b, degree: int, modulus: int) -> np.ndarray:
    """NTT-based product in ``Z_q[X]/(X^N + 1)``."""
    plan = get_plan(degree, modulus)
    fa = plan.forward(a)
    fb = plan.forward(b)
    return plan.inverse(modarith.mul_mod(fa, fb, modulus))


_AUTO_CACHE: dict = {}


def _automorphism_tables(galois_power: int, degree: int):
    """(destination index, sign) tables of ``X -> X**galois_power``.

    Coefficient ``i`` lands at ``dest[i]`` with sign ``sign[i]`` -- the AUTO
    kernel is a signed permutation, which is why the paper maps it to CUDA
    cores as pure data movement (Fig. 4).
    """
    key = (galois_power, degree)
    cached = _AUTO_CACHE.get(key)
    if cached is not None:
        return cached
    two_n = 2 * degree
    exponents = (np.arange(degree, dtype=np.int64) * galois_power) % two_n
    wraps = exponents >= degree
    dest = np.where(wraps, exponents - degree, exponents)
    sign = np.where(wraps, -1, 1).astype(np.int64)
    _AUTO_CACHE[key] = (dest, sign)
    return dest, sign


def automorphism(coeffs: np.ndarray, galois_power: int, degree: int, modulus: int) -> np.ndarray:
    """Apply ``X -> X**galois_power`` in coefficient form (AUTO kernel).

    ``galois_power`` must be odd so the map is a ring automorphism of
    ``Z_q[X]/(X^N + 1)``.  HROTATE uses powers ``5**r mod 2N``; conjugation
    uses ``2N - 1``.  Vectorises over leading (batch) axes.
    """
    if galois_power % 2 == 0:
        raise ValueError("Galois power must be odd")
    coeffs = modarith.asarray_mod(coeffs, modulus)
    dest, sign = _automorphism_tables(galois_power, degree)
    signed = np.where(sign < 0, modarith.neg_mod(coeffs, modulus), coeffs)
    out = modarith.zeros_mod(coeffs.shape, modulus)
    out[..., dest] = signed
    return out


class RnsPolynomial:
    """A ring element held limb-wise over an :class:`RnsBasis`.

    Attributes:
        degree: ring degree ``N``.
        basis: the RNS basis of the limbs.
        limbs: list of residue arrays, one per basis modulus.  Each limb's
            *last* axis has length ``degree``; leading axes, when present,
            are a ciphertext batch (the paper's BatchSize dimension) and
            every operation vectorises over them.
        is_ntt: True when the limbs are in evaluation (NTT) form.
    """

    __slots__ = ("degree", "basis", "limbs", "is_ntt")

    def __init__(
        self,
        degree: int,
        basis: RnsBasis,
        limbs: Sequence[np.ndarray],
        is_ntt: bool = False,
    ):
        if not is_power_of_two(degree):
            raise ValueError(f"degree must be a power of two, got {degree}")
        if len(limbs) != len(basis):
            raise ValueError(
                f"expected {len(basis)} limbs, got {len(limbs)}"
            )
        self.degree = degree
        self.basis = basis
        self.limbs = [
            modarith.asarray_mod(limb, q) for limb, q in zip(limbs, basis.moduli)
        ]
        shape = self.limbs[0].shape if self.limbs else (degree,)
        for limb in self.limbs:
            if limb.shape[-1] != degree or limb.shape != shape:
                raise ValueError(
                    f"limb shape {limb.shape} incompatible with degree {degree}"
                )
        self.is_ntt = is_ntt

    @property
    def batch_shape(self):
        """Leading (batch) axes of the limbs; ``()`` for a single element."""
        return self.limbs[0].shape[:-1]

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(
        cls,
        degree: int,
        basis: RnsBasis,
        is_ntt: bool = False,
        batch_shape: tuple = (),
    ) -> "RnsPolynomial":
        shape = tuple(batch_shape) + (degree,)
        return cls(
            degree, basis, [modarith.zeros_mod(shape, q) for q in basis.moduli], is_ntt
        )

    @classmethod
    def from_int_coeffs(cls, coeffs, degree: int, basis: RnsBasis) -> "RnsPolynomial":
        """Build from (possibly signed) integer coefficients."""
        arr = np.asarray(coeffs, dtype=object)
        if arr.shape[-1] != degree:
            raise ValueError(
                f"coefficient shape {arr.shape} incompatible with degree {degree}"
            )
        return cls(degree, basis, basis.decompose(arr), is_ntt=False)

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(
            self.degree, self.basis, [limb.copy() for limb in self.limbs], self.is_ntt
        )

    # -- representation changes ---------------------------------------------

    def to_ntt(self) -> "RnsPolynomial":
        if self.is_ntt:
            return self
        limbs = [
            get_plan(self.degree, q).forward(limb)
            for limb, q in zip(self.limbs, self.basis.moduli)
        ]
        return RnsPolynomial(self.degree, self.basis, limbs, is_ntt=True)

    def from_ntt(self) -> "RnsPolynomial":
        if not self.is_ntt:
            return self
        limbs = [
            get_plan(self.degree, q).inverse(limb)
            for limb, q in zip(self.limbs, self.basis.moduli)
        ]
        return RnsPolynomial(self.degree, self.basis, limbs, is_ntt=False)

    def to_int_coeffs(self) -> np.ndarray:
        """CRT-recompose to centred integer coefficients (coefficient form)."""
        poly = self.from_ntt()
        return poly.basis.compose_signed(poly.limbs)

    # -- arithmetic ----------------------------------------------------------

    def _check_compatible(self, other: "RnsPolynomial"):
        if self.basis != other.basis or self.degree != other.degree:
            raise ValueError("operands live in different rings")
        if self.is_ntt != other.is_ntt:
            raise ValueError("operands are in different domains (NTT vs coeff)")

    def _map_limbs(
        self, other: "RnsPolynomial", op: Callable[[np.ndarray, np.ndarray, int], np.ndarray]
    ) -> "RnsPolynomial":
        self._check_compatible(other)
        limbs = [
            op(a, b, q)
            for a, b, q in zip(self.limbs, other.limbs, self.basis.moduli)
        ]
        return RnsPolynomial(self.degree, self.basis, limbs, self.is_ntt)

    def add(self, other: "RnsPolynomial") -> "RnsPolynomial":
        return self._map_limbs(other, modarith.add_mod)

    def sub(self, other: "RnsPolynomial") -> "RnsPolynomial":
        return self._map_limbs(other, modarith.sub_mod)

    def negate(self) -> "RnsPolynomial":
        limbs = [modarith.neg_mod(a, q) for a, q in zip(self.limbs, self.basis.moduli)]
        return RnsPolynomial(self.degree, self.basis, limbs, self.is_ntt)

    def multiply(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Ring product; converts to NTT form if necessary (ModMUL kernel)."""
        if self.is_ntt and other.is_ntt:
            return self._map_limbs(other, modarith.mul_mod)
        return self.to_ntt().multiply(other.to_ntt())

    def multiply_scalar(self, scalar: int) -> "RnsPolynomial":
        """Multiply by a Python integer (reduced per limb)."""
        limbs = [
            modarith.scalar_mul_mod(a, scalar, q)
            for a, q in zip(self.limbs, self.basis.moduli)
        ]
        return RnsPolynomial(self.degree, self.basis, limbs, self.is_ntt)

    def multiply_scalar_per_limb(self, scalars: Sequence[int]) -> "RnsPolynomial":
        """Multiply limb ``i`` by ``scalars[i]`` (used by Rescale/ModDown)."""
        if len(scalars) != len(self.basis):
            raise ValueError("need one scalar per limb")
        limbs = [
            modarith.scalar_mul_mod(a, s, q)
            for a, s, q in zip(self.limbs, scalars, self.basis.moduli)
        ]
        return RnsPolynomial(self.degree, self.basis, limbs, self.is_ntt)

    def automorphism(self, galois_power: int) -> "RnsPolynomial":
        """Apply ``X -> X**galois_power`` (requires coefficient form)."""
        poly = self.from_ntt()
        limbs = [
            automorphism(limb, galois_power, self.degree, q)
            for limb, q in zip(poly.limbs, poly.basis.moduli)
        ]
        return RnsPolynomial(self.degree, self.basis, limbs, is_ntt=False)

    # -- basis surgery --------------------------------------------------------

    def keep_limbs(self, count: int) -> "RnsPolynomial":
        """Restrict to the first `count` limbs (level drop)."""
        if not 0 < count <= len(self.basis):
            raise ValueError(f"cannot keep {count} of {len(self.basis)} limbs")
        return RnsPolynomial(
            self.degree,
            self.basis.subbasis(0, count),
            self.limbs[:count],
            self.is_ntt,
        )

    def limb_stack(self) -> np.ndarray:
        """The limbs as one object-dtype matrix of shape (limbs, N)."""
        return np.stack([np.asarray(l, dtype=object) for l in self.limbs])

    def __repr__(self) -> str:
        domain = "ntt" if self.is_ntt else "coeff"
        return (
            f"RnsPolynomial(N={self.degree}, limbs={len(self.basis)}, {domain})"
        )
