"""Process-wide metrics registry: counters, gauges, histograms.

The always-on signal layer the scaling roadmap items report through.  Three
instrument kinds in the Prometheus data model:

* :class:`Counter` -- monotonically increasing totals (requests served,
  cache lookups, level-exhaustion warnings).
* :class:`Gauge` -- last-write-wins point samples (queue depth, noise
  budget remaining, resident cache entries).
* :class:`Histogram` -- fixed-boundary bucket counts plus sum/count
  (latencies, batch sizes, scale drift).  Boundaries are chosen at
  creation and never change, so merged snapshots stay comparable.

Instruments are labelled: ``counter.labels(app="helr").inc()`` gives one
time series per label combination.  Everything is thread-safe (one lock
per metric family) and **near-zero cost when disabled**: every mutation
starts with a single ``enabled`` attribute test and returns immediately,
so shipping instrumented code costs one branch per site.

Two exporters cover the consumers the repo has today: ``snapshot()`` is a
plain-JSON structure (CI artifacts, the bench recorder), and
``to_prometheus_text()`` is the Prometheus text exposition format (what a
scraper would pull from a ``/metrics`` endpoint).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]

#: Default histogram boundaries, seconds-flavoured: spans simulated FHE
#: service times (tens of seconds) down to sub-millisecond kernel spans.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0,
)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(
            f"metric name must be non-empty [a-zA-Z0-9_:], got {name!r}"
        )
    return name


class _Metric:
    """Shared labelled-family machinery of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Sequence[str] = ()):
        self.registry = registry
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[LabelValues, object] = {}

    def _resolve(self, labels: Mapping[str, str]) -> LabelValues:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def labels(self, **labels: str) -> "_Metric":
        """A bound child carrying fixed label values."""
        return _BoundMetric(self, self._resolve(labels))

    # -- subclass hooks -------------------------------------------------------

    def _zero(self):
        raise NotImplementedError

    def _cell(self, key: LabelValues):
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = self._zero()
                self._series[key] = cell
            return cell

    def series(self) -> Dict[LabelValues, object]:
        """Point-in-time copy of every (labelvalues -> value) series."""
        with self._lock:
            return {k: self._copy_value(v) for k, v in self._series.items()}

    @staticmethod
    def _copy_value(value):
        return value


class _BoundMetric:
    """One labelled child: forwards mutations with its fixed label values."""

    def __init__(self, parent: _Metric, key: LabelValues):
        self._parent = parent
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._parent._inc(self._key, amount)

    def set(self, value: float) -> None:
        self._parent._set(self._key, value)

    def observe(self, value: float) -> None:
        self._parent._observe(self._key, value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._parent._observe_many(self._key, values)

    @property
    def value(self) -> float:
        return self._parent._value(self._key)


class Counter(_Metric):
    kind = "counter"

    def _zero(self):
        return [0.0]

    def inc(self, amount: float = 1.0) -> None:
        self._inc((), amount)

    def _inc(self, key: LabelValues, amount: float) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        cell = self._cell(key)
        with self._lock:
            cell[0] += amount

    @property
    def value(self) -> float:
        return self._value(())

    def _value(self, key: LabelValues) -> float:
        with self._lock:
            cell = self._series.get(key)
            return cell[0] if cell else 0.0

    @staticmethod
    def _copy_value(value):
        return value[0]


class Gauge(_Metric):
    kind = "gauge"

    def _zero(self):
        return [0.0]

    def set(self, value: float) -> None:
        self._set((), value)

    def inc(self, amount: float = 1.0) -> None:
        self._inc((), amount)

    def _set(self, key: LabelValues, value: float) -> None:
        if not self.registry.enabled:
            return
        cell = self._cell(key)
        with self._lock:
            cell[0] = float(value)

    def _inc(self, key: LabelValues, amount: float) -> None:
        if not self.registry.enabled:
            return
        cell = self._cell(key)
        with self._lock:
            cell[0] += amount

    @property
    def value(self) -> float:
        return self._value(())

    def _value(self, key: LabelValues) -> float:
        with self._lock:
            cell = self._series.get(key)
            return cell[0] if cell else 0.0

    @staticmethod
    def _copy_value(value):
        return value[0]


class HistogramValue:
    """One histogram series: bucket counts + sum + count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per ``le`` boundary (Prometheus convention)."""
        total, out = 0, []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def copy(self) -> "HistogramValue":
        dup = HistogramValue(self.buckets)
        dup.counts = list(self.counts)
        dup.sum = self.sum
        dup.count = self.count
        return dup


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, registry, name, help, labelnames=(),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name} buckets must be non-empty, sorted, unique"
            )
        self.buckets = bounds

    def _zero(self):
        return HistogramValue(self.buckets)

    def observe(self, value: float) -> None:
        self._observe((), value)

    def observe_many(self, values: Sequence[float]) -> None:
        self._observe_many((), values)

    def _observe(self, key: LabelValues, value: float) -> None:
        if not self.registry.enabled:
            return
        cell = self._cell(key)
        with self._lock:
            cell.observe(float(value))

    def _observe_many(self, key: LabelValues, values: Sequence[float]) -> None:
        """Sequential ``observe`` of every value under one lock round-trip.

        Bit-identical accumulation order to calling :meth:`observe` in a
        loop; exists because per-record observation is the serving
        telemetry hot path (one cell resolution + lock per *batch*, not
        per value).
        """
        if not self.registry.enabled or not values:
            return
        cell = self._cell(key)
        with self._lock:
            for value in values:
                cell.observe(float(value))

    @staticmethod
    def _copy_value(value):
        return value.copy()


class MetricsRegistry:
    """A named collection of metric families with snapshot/text exporters."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: "Dict[str, _Metric]" = {}
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; instruments become one-branch no-ops."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric family (tests and fresh CLI runs)."""
        with self._lock:
            self._metrics.clear()

    # -- instrument factories --------------------------------------------------

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if type(metric) is not cls or metric.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind} with labels {metric.labelnames}"
                    )
                return metric
            metric = cls(self, name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    # -- exporters -------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able dump of every family and series.

        Shape: ``{name: {type, help, labelnames, series: [{labels, ...}]}}``
        with counters/gauges carrying ``value`` and histograms carrying
        ``buckets`` / ``counts`` / ``sum`` / ``count``.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, dict] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            series = []
            for key, value in sorted(metric.series().items()):
                entry = {"labels": dict(zip(metric.labelnames, key))}
                if isinstance(value, HistogramValue):
                    entry.update(
                        buckets=list(value.buckets),
                        counts=list(value.counts),
                        sum=value.sum,
                        count=value.count,
                    )
                else:
                    entry["value"] = value
                series.append(entry)
            out[name] = {
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "series": series,
            }
        return out

    def snapshot_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = dict(self._metrics)
        lines: List[str] = []
        for name in sorted(metrics):
            metric = metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key, value in sorted(metric.series().items()):
                base = _format_labels(metric.labelnames, key)
                if isinstance(value, HistogramValue):
                    cumulative = value.cumulative()
                    for bound, count in zip(value.buckets, cumulative):
                        le = _format_labels(
                            metric.labelnames + ("le",), key + (_fmt(bound),)
                        )
                        lines.append(f"{name}_bucket{le} {count}")
                    inf = _format_labels(
                        metric.labelnames + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{inf} {cumulative[-1]}")
                    lines.append(f"{name}_sum{base} {_fmt(value.sum)}")
                    lines.append(f"{name}_count{base} {value.count}")
                else:
                    lines.append(f"{name}{base} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape(v)}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


#: The process-wide registry.  Disabled by default: plain library/benchmark
#: use pays one branch per instrumented site and records nothing; serving
#: runs, the CLI observability commands and the demo flip it on.
GLOBAL_REGISTRY = MetricsRegistry(enabled=False)


def global_registry() -> MetricsRegistry:
    return GLOBAL_REGISTRY


def telemetry_enabled() -> bool:
    return GLOBAL_REGISTRY.enabled


def enable_telemetry() -> MetricsRegistry:
    GLOBAL_REGISTRY.enable()
    return GLOBAL_REGISTRY


def disable_telemetry() -> None:
    GLOBAL_REGISTRY.disable()
