"""Tests for all NTT variants: iterative, four-step GEMM, radix-16 GEMM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.math import modarith, ntt
from repro.math.primes import ntt_primes, root_of_unity

SMALL_Q = ntt_primes(28, 256, 1)[0]
BIG_Q = ntt_primes(36, 256, 1)[0]


@pytest.mark.parametrize("q", [SMALL_Q, BIG_Q])
@pytest.mark.parametrize("degree", [8, 64, 256])
def test_forward_inverse_roundtrip(q, degree):
    rng = np.random.default_rng(degree)
    coeffs = rng.integers(0, q if q < 2**31 else 2**36, size=degree).astype(object)
    plan = ntt.get_plan(degree, q)
    back = plan.inverse(plan.forward(coeffs))
    assert list(back.astype(object)) == [int(c) % q for c in coeffs]


def test_plan_cache_returns_same_object():
    assert ntt.get_plan(64, SMALL_Q) is ntt.get_plan(64, SMALL_Q)


def test_plan_rejects_bad_degree():
    with pytest.raises(ValueError):
        ntt.NttPlan(48, SMALL_Q)


def test_plan_rejects_unfriendly_modulus():
    with pytest.raises(ValueError):
        ntt.NttPlan(256, 97)  # 97 - 1 not divisible by 512


def test_convolution_theorem():
    """Pointwise product in NTT domain == negacyclic convolution."""
    degree, q = 32, SMALL_Q
    rng = np.random.default_rng(7)
    a = rng.integers(0, q, size=degree)
    b = rng.integers(0, q, size=degree)
    plan = ntt.get_plan(degree, q)
    via_ntt = plan.inverse(modarith.mul_mod(plan.forward(a), plan.forward(b), q))
    # schoolbook negacyclic reference
    ref = np.zeros(degree, dtype=object)
    for i in range(degree):
        for j in range(degree):
            k, sign = (i + j, 1) if i + j < degree else (i + j - degree, -1)
            ref[k] += sign * int(a[i]) * int(b[j])
    ref %= q
    assert list(via_ntt.astype(object)) == list(ref)


@pytest.mark.parametrize("factors", [(16,), (4, 4), (2, 8), (2, 2, 2, 2)])
def test_multi_step_matches_dense_dft(factors):
    size, q = 16, SMALL_Q
    w = root_of_unity(size, q)
    rng = np.random.default_rng(3)
    x = rng.integers(0, q, size=size)
    dense = ntt.cyclic_dft(x, q, w)
    fast = ntt.multi_step_ntt(x, q, w, factors)
    assert list(fast.astype(object)) == list(dense.astype(object))


def test_multi_step_bad_factors():
    with pytest.raises(ValueError):
        ntt.multi_step_ntt(np.zeros(16), SMALL_Q, 3, (4, 8))


def test_four_step_default_split():
    size, q = 64, SMALL_Q
    w = root_of_unity(size, q)
    rng = np.random.default_rng(5)
    x = rng.integers(0, q, size=size)
    assert list(ntt.four_step_ntt(x, q, w).astype(object)) == list(
        ntt.cyclic_dft(x, q, w).astype(object)
    )


@pytest.mark.parametrize("q", [SMALL_Q, BIG_Q])
def test_negacyclic_gemm_matches_natural_order_reference(q):
    """Twist + GEMM DFT == dense Vandermonde negacyclic NTT (natural order)."""
    degree = 16
    rng = np.random.default_rng(11)
    coeffs = rng.integers(0, 2**30, size=degree).astype(object)
    plan = ntt.get_plan(degree, q)
    reference = ntt.natural_order_negacyclic(plan, coeffs)
    via_gemm = ntt.negacyclic_ntt_via_gemm(coeffs, q, (4, 4))
    assert list(via_gemm.astype(object)) == list(reference.astype(object))


@pytest.mark.parametrize("factors", [(16, 16), (4, 4, 4, 4), (16, 4, 4)])
def test_negacyclic_gemm_roundtrip_radix16_shapes(factors):
    """Radix-16-style decompositions invert exactly (the ten-step NTT core)."""
    degree = int(np.prod(factors))
    q = ntt_primes(28, degree, 1)[0]
    rng = np.random.default_rng(13)
    coeffs = rng.integers(0, q, size=degree)
    spectrum = ntt.negacyclic_ntt_via_gemm(coeffs, q, factors)
    back = ntt.negacyclic_intt_via_gemm(spectrum, q, factors)
    assert list(back.astype(object)) == [int(c) % q for c in coeffs]


def test_gemm_injection_is_used():
    """A custom GEMM hook must be called by the multi-step NTT."""
    calls = []

    def spy_gemm(a, b, q):
        calls.append((a.shape, b.shape))
        return modarith.matmul_mod(a, b, q)

    size, q = 16, SMALL_Q
    w = root_of_unity(size, q)
    ntt.multi_step_ntt(np.arange(size), q, w, (4, 4), gemm=spy_gemm)
    assert calls, "gemm hook was never invoked"


def test_bit_reverse_permutation_involutive():
    perm = ntt._bit_reverse_permutation(16)
    assert sorted(perm) == list(range(16))
    assert (perm[perm] == np.arange(16)).all()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**35), min_size=16, max_size=16))
def test_property_ntt_linear(coeffs):
    """NTT(a + b) == NTT(a) + NTT(b)."""
    q = BIG_Q
    plan = ntt.get_plan(16, q)
    a = np.array(coeffs, dtype=object)
    b = a[::-1].copy()
    lhs = plan.forward(modarith.add_mod(
        modarith.asarray_mod(a, q), modarith.asarray_mod(b, q), q))
    rhs = modarith.add_mod(plan.forward(a), plan.forward(b), q)
    assert (lhs == rhs).all()


class TestBatchedNtt:
    """The forward/inverse transforms vectorise over leading axes."""

    def test_batch_matches_per_row(self):
        q = SMALL_Q
        plan = ntt.get_plan(64, q)
        rng = np.random.default_rng(21)
        batch = rng.integers(0, q, size=(6, 64))
        fwd = plan.forward(batch)
        for i in range(6):
            assert (fwd[i] == plan.forward(batch[i])).all()

    def test_batch_roundtrip(self):
        q = BIG_Q
        plan = ntt.get_plan(16, q)
        rng = np.random.default_rng(22)
        batch = rng.integers(0, 2**35, size=(3, 4, 16)).astype(object)
        back = plan.inverse(plan.forward(batch))
        assert (back == batch % q).all()

    def test_batch_shape_validation(self):
        plan = ntt.get_plan(64, SMALL_Q)
        with pytest.raises(ValueError):
            plan.forward(np.zeros((4, 32)))

    def test_batch_pointwise_product(self):
        """Batched convolution theorem: per-row products all at once."""
        q = SMALL_Q
        degree = 32
        plan = ntt.get_plan(degree, q)
        rng = np.random.default_rng(23)
        a = rng.integers(0, q, size=(4, degree))
        b = rng.integers(0, q, size=(4, degree))
        prod = plan.inverse(modarith.mul_mod(plan.forward(a), plan.forward(b), q))
        from repro.math.polynomial import negacyclic_multiply

        for i in range(4):
            ref = negacyclic_multiply(a[i], b[i], degree, q)
            assert (prod[i].astype(object) == ref.astype(object)).all()
