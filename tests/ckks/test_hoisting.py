"""Tests for hoisted rotations."""

import numpy as np
import pytest

from repro.ckks.hoisting import (
    HoistedRotator,
    hoisted_rotations,
    hoisting_modup_savings,
)

from .conftest import random_slots

STEPS = [1, 2, 3, 4]


@pytest.fixture()
def encrypted(encoder, encryptor, rng):
    values = random_slots(rng, encoder.slots)
    return values, encryptor.encrypt(encoder.encode(values))


class TestHoistedRotations:
    def test_matches_plain_rotation_values(
        self, params, keyset, encoder, decryptor, encrypted
    ):
        values, ct = encrypted
        rotated = hoisted_rotations(ct, STEPS, keyset["galois"], params)
        for step, out in rotated.items():
            got = encoder.decode(decryptor.decrypt(out))
            assert np.abs(got - np.roll(values, -step)).max() < 1e-3, step

    def test_matches_evaluator_rotate(
        self, params, keyset, encoder, decryptor, evaluator, encrypted
    ):
        values, ct = encrypted
        hoisted = hoisted_rotations(ct, [2], keyset["galois"], params)[2]
        naive = evaluator.rotate(ct, 2)
        got_h = encoder.decode(decryptor.decrypt(hoisted))
        got_n = encoder.decode(decryptor.decrypt(naive))
        assert np.abs(got_h - got_n).max() < 1e-3

    def test_modup_happens_once(self, params, encrypted, keyset):
        _, ct = encrypted
        rotator = HoistedRotator(ct, params)
        raised_before = [r.limb_stack().copy() for r in rotator.raised]
        rotator.rotate_many(STEPS, keyset["galois"])
        # The shared raised digits are never mutated by rotations.
        for before, poly in zip(raised_before, rotator.raised):
            assert (before == poly.limb_stack()).all()

    def test_digit_count(self, params, encrypted):
        _, ct = encrypted
        rotator = HoistedRotator(ct, params)
        assert len(rotator.raised) == params.beta(ct.level)

    def test_rejects_unrelinearised(self, params, evaluator, encrypted):
        _, ct = encrypted
        raw = evaluator.multiply(ct, ct, relinearise=False)
        with pytest.raises(ValueError):
            HoistedRotator(raw, params)

    def test_works_at_lower_level(
        self, params, keyset, encoder, decryptor, evaluator, encrypted
    ):
        values, ct = encrypted
        low = evaluator.mod_switch_to_level(ct, 2)
        out = hoisted_rotations(low, [1], keyset["galois"], params)[1]
        got = encoder.decode(decryptor.decrypt(out))
        assert np.abs(got - np.roll(values, -1)).max() < 1e-3


class TestIdentitySteps:
    """steps = 0 (or any multiple of the slot count) is the identity
    automorphism: no key switch, no Galois key lookup, same ciphertext."""

    @pytest.mark.parametrize("engine", ["plan", "loop"])
    def test_zero_and_slot_multiples_return_input(
        self, params, keyset, encrypted, engine
    ):
        _, ct = encrypted
        steps = [0, params.slots, 2 * params.slots, -params.slots]
        out = hoisted_rotations(ct, steps, keyset["galois"], params, engine=engine)
        for s in steps:
            assert out[s] is ct, s

    @pytest.mark.parametrize("engine", ["plan", "loop"])
    def test_identity_needs_no_galois_keys(self, params, encrypted, engine):
        # No key for power 1 exists; the short circuit must never look.
        _, ct = encrypted
        out = hoisted_rotations(ct, [0], None, params, engine=engine)
        assert out[0] is ct

    def test_rotator_short_circuits(self, params, keyset, encrypted):
        _, ct = encrypted
        rotator = HoistedRotator(ct, params)
        assert rotator.rotate(0, keyset["galois"]) is ct
        assert rotator.rotate(params.slots, keyset["galois"]) is ct

    def test_mixed_live_and_identity(self, params, keyset, encoder, decryptor,
                                     encrypted):
        values, ct = encrypted
        out = hoisted_rotations(ct, [0, 1, params.slots], keyset["galois"], params)
        assert out[0] is ct and out[params.slots] is ct
        got = encoder.decode(decryptor.decrypt(out[1]))
        assert np.abs(got - np.roll(values, -1)).max() < 1e-3


class TestPlanCache:
    def test_repeat_rotations_hit_the_plan_cache(self, params, keyset, encrypted):
        from repro.ckks.keyswitch import plan as ksplan

        _, ct = encrypted
        hoisted_rotations(ct, STEPS, keyset["galois"], params)  # build
        before = ksplan.keyswitch_plan_cache_stats()
        hoisted_rotations(ct, STEPS, keyset["galois"], params)
        after = ksplan.keyswitch_plan_cache_stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]


class TestSavings:
    def test_savings_formula(self):
        assert hoisting_modup_savings(beta=3, rotations=1) == 0.0
        assert hoisting_modup_savings(beta=3, rotations=4) == pytest.approx(0.75)

    def test_invalid(self):
        with pytest.raises(ValueError):
            hoisting_modup_savings(3, 0)
