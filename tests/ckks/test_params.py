"""Tests for CKKS parameter sets, Table 4 and KLSS parameter derivation."""

import pytest

from repro.ckks import params as P


class TestTable4:
    def test_all_eight_sets_present(self):
        assert sorted(P.TABLE4) == list("ABCDEFGH")

    def test_set_lookup(self):
        assert P.get_set("c").name == "C"
        with pytest.raises(ValueError):
            P.get_set("Z")

    def test_paper_column_values(self):
        c = P.get_set("C")
        assert (c.log_degree, c.max_level, c.wordsize, c.dnum) == (16, 35, 36, 9)
        assert c.klss.wordsize_t == 48 and c.klss.alpha_tilde == 5
        g = P.get_set("G")
        assert (g.max_level, g.dnum) == (23, 6)
        h = P.get_set("H")
        assert (h.wordsize, h.dnum, h.security) == (60, 45, 98)

    def test_keyswitch_method_tagging(self):
        assert P.get_set("A").keyswitch == "hybrid"
        assert P.get_set("C").keyswitch == "klss"
        assert P.get_set("D").keyswitch == "klss"
        assert P.get_set("E").keyswitch == "hybrid"

    def test_alpha_beta_table1_formulas(self):
        c = P.get_set("C")
        assert c.alpha == P.ceil_div(36, 9) == 4
        assert c.beta(35) == P.ceil_div(36, 4) == 9
        assert c.beta(7) == 2

    def test_set_c_klss_dims_match_paper_defaults(self):
        """Fig. 11 uses alpha=4, alpha'=8 as 'default parameters'."""
        c = P.get_set("C")
        alpha_prime, beta, beta_tilde = c.klss_dims(35)
        assert c.alpha == 4
        assert alpha_prime == 8
        assert beta == 9
        assert beta_tilde == 8  # ceil((35 + 4 + 1) / 5)

    def test_klss_dims_need_config(self):
        with pytest.raises(ValueError):
            P.get_set("A").klss_dims(35)

    def test_wordsize_t_tradeoff_direction(self):
        """Larger WordSize_T -> smaller alpha' (Section 3.2)."""
        dims = {}
        for wst in (36, 48, 64):
            cfg = P.KlssConfig(wordsize_t=wst, alpha_tilde=5)
            dims[wst] = cfg.alpha_prime(35, alpha=4, wordsize=36, log_degree=16)
        assert dims[36] > dims[48] > dims[64]


class TestKlssConfig:
    def test_beta_tilde_formula(self):
        cfg = P.KlssConfig(wordsize_t=48, alpha_tilde=5)
        assert cfg.beta_tilde(35, alpha=4) == 8
        assert cfg.beta_tilde(9, alpha=4) == 3

    def test_alpha_prime_grows_with_level(self):
        cfg = P.KlssConfig(wordsize_t=48, alpha_tilde=5)
        low = cfg.alpha_prime(5, alpha=4, wordsize=36, log_degree=16)
        high = cfg.alpha_prime(35, alpha=4, wordsize=36, log_degree=16)
        assert high >= low


class TestCkksParameters:
    def test_chain_construction(self, params):
        assert len(params.moduli) == params.max_level + 1
        assert len(params.special_primes) == params.alpha
        assert len(set(params.moduli) | set(params.special_primes)) == len(
            params.moduli
        ) + len(params.special_primes)

    def test_primes_are_ntt_friendly(self, params):
        for q in params.moduli + params.special_primes + params.aux_primes:
            assert q % (2 * params.degree) == 1

    def test_bases(self, params):
        q2 = params.q_basis(2)
        assert q2.moduli == params.moduli[:3]
        pq2 = params.pq_basis(2)
        assert pq2.moduli == params.moduli[:3] + params.special_primes
        assert params.q_basis(2) is params.q_basis(2)  # cached

    def test_level_bounds_checked(self, params):
        with pytest.raises(ValueError):
            params.q_basis(params.max_level + 1)
        with pytest.raises(ValueError):
            params.q_basis(-1)

    def test_digit_ranges_cover_chain(self, params):
        level = params.max_level
        covered = []
        for j in range(params.beta(level)):
            start, stop = params.digit_range(j, level)
            covered.extend(range(start, stop))
        assert covered == list(range(level + 1))

    def test_digit_range_empty_rejected(self, params):
        with pytest.raises(ValueError):
            params.digit_range(params.beta(2), 2)

    def test_klss_dims_functional(self, params):
        alpha_prime, beta, beta_tilde = params.klss_dims(params.max_level)
        assert alpha_prime <= len(params.aux_primes)
        assert beta == params.beta(params.max_level)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            P.CkksParameters(degree=33, max_level=3, wordsize=25, dnum=1)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            P.CkksParameters(degree=32, max_level=0, wordsize=25, dnum=1)

    def test_slots(self, params):
        assert params.slots == params.degree // 2

    def test_repr_mentions_method(self, params):
        assert "klss" in repr(params)
