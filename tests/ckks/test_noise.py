"""Tests for noise measurement and the analytic noise estimator."""

import math

import numpy as np
import pytest

from repro.ckks.noise import (
    NoiseEstimator,
    exact_decrypt_poly,
    measure_noise_bits,
    remaining_budget_bits,
)

from .conftest import random_slots


@pytest.fixture()
def fresh_pair(params, encoder, encryptor, rng):
    values = random_slots(rng, encoder.slots)
    pt = encoder.encode(values)
    return values, pt, encryptor.encrypt(pt)


class TestMeasurement:
    def test_fresh_noise_is_small(self, keyset, fresh_pair):
        _, pt, ct = fresh_pair
        bits = measure_noise_bits(ct, keyset["secret"], pt)
        # sigma = 3.2, N = 32: fresh noise lives well below 2^15.
        assert bits < 15

    def test_noise_grows_with_operations(self, keyset, encoder, evaluator, fresh_pair):
        values, pt, ct = fresh_pair
        fresh_bits = measure_noise_bits(ct, keyset["secret"], pt)
        doubled = evaluator.add(ct, ct)
        pt2 = encoder.encode(2 * values)
        assert measure_noise_bits(doubled, keyset["secret"], pt2) >= fresh_bits - 1

    def test_exact_decrypt_poly_matches_plaintext(self, keyset, fresh_pair):
        _, pt, ct = fresh_pair
        got = exact_decrypt_poly(ct, keyset["secret"])
        diff = np.abs((got - pt.poly.to_int_coeffs()).astype(np.float64))
        assert diff.max() < 2**15

    def test_budget_positive_for_fresh(self, keyset, fresh_pair):
        _, pt, ct = fresh_pair
        bits = measure_noise_bits(ct, keyset["secret"], pt)
        assert remaining_budget_bits(ct, bits) > 20

    def test_budget_shrinks_with_level(self, keyset, encoder, encryptor, evaluator, rng):
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        high = remaining_budget_bits(ct, 10)
        low = remaining_budget_bits(evaluator.mod_switch_to_level(ct, 1), 10)
        assert low < high


class TestEstimator:
    def test_fresh_estimate_upper_bounds_measurement(
        self, params, keyset, fresh_pair
    ):
        _, pt, ct = fresh_pair
        estimator = NoiseEstimator(params)
        assert estimator.fresh().bits >= measure_noise_bits(
            ct, keyset["secret"], pt
        )

    def test_add_estimate_upper_bounds_measurement(
        self, params, keyset, encoder, evaluator, encryptor, rng
    ):
        estimator = NoiseEstimator(params)
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        est = estimator.fresh()
        total = ct
        acc_values = values.copy()
        for _ in range(3):
            total = evaluator.add(total, ct)
            acc_values = acc_values + values
            est = estimator.after_add(est, estimator.fresh())
        measured = measure_noise_bits(
            total, keyset["secret"], encoder.encode(acc_values)
        )
        assert est.bits >= measured

    def test_multiply_estimate_upper_bounds_measurement(
        self, params, keyset, encoder, evaluator, encryptor, rng
    ):
        estimator = NoiseEstimator(params)
        values = random_slots(rng, encoder.slots, scale=0.5)
        ct = encryptor.encrypt(encoder.encode(values))
        prod = evaluator.rescale(evaluator.multiply(ct, ct))
        est = estimator.after_rescale(
            estimator.after_keyswitch(
                estimator.after_multiply(estimator.fresh(), estimator.fresh()),
                params.max_level,
            ),
            params.moduli[params.max_level],
        )
        ref = encoder.encode(values * values, level=prod.level, scale=prod.scale)
        measured = measure_noise_bits(prod, keyset["secret"], ref)
        assert est.bits >= measured

    def test_depth_budget_positive(self, params):
        assert NoiseEstimator(params).multiplication_depth_budget() >= 1

    def test_depth_budget_bounded_by_levels(self, params):
        assert (
            NoiseEstimator(params).multiplication_depth_budget()
            <= params.max_level
        )

    def test_estimate_repr(self, params):
        assert "bits" in repr(NoiseEstimator(params).fresh())
