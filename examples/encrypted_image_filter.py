"""Encrypted image filtering: a miniature of the paper's ResNet substrate.

Packs an image into CKKS slots, applies a 3x3 blur and a Sobel edge filter
homomorphically (rotations + masked plaintext multiplications -- exactly
the multiplexed-convolution structure ResNet-20 uses at scale), and checks
the decrypted results against plaintext convolution.

Run:  python examples/encrypted_image_filter.py
"""

import numpy as np

from repro.apps.encrypted_conv import EncryptedConv2d
from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_test_parameters,
)


def make_test_image(height, width):
    """A bright square on a dark background (visible edges for Sobel)."""
    image = np.zeros((height, width))
    image[1 : height - 1, 1 : width - 1] = 0.8
    return image


def main():
    params = small_test_parameters(degree=64, max_level=4, wordsize=25, dnum=2)
    gen = KeyGenerator(params, seed=12)
    secret = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(secret), seed=3)
    decryptor = Decryptor(params, secret)
    evaluator = Evaluator(params, relin_key=gen.relinearisation_key(secret))

    height = width = 5  # 25 pixels in 32 slots
    image = make_test_image(height, width)

    filters = {
        "blur": np.ones((3, 3)) / 9,
        "sobel-x": np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]]) / 4,
    }
    convs = {
        name: EncryptedConv2d(encoder, evaluator, height, width, kernel)
        for name, kernel in filters.items()
    }
    rotations = sorted(
        {r for conv in convs.values() for r in conv.required_rotations()}
    )
    evaluator.galois_keys = gen.rotation_keys(secret, rotations)
    print(f"{height}x{width} image, {len(rotations)} rotation keys")

    ct = encryptor.encrypt(encoder.encode(convs["blur"].pack(image)))
    for name, conv in convs.items():
        filtered = conv.apply(ct)
        got = conv.unpack(encoder.decode(decryptor.decrypt(filtered)))
        want = conv.reference(image)
        err = np.abs(got - want).max()
        print(f"{name:8s}: max error {err:.2e} (level {filtered.level})")
        assert err < 1e-2
    print("OK: encrypted convolutions match plaintext filtering")


if __name__ == "__main__":
    main()
