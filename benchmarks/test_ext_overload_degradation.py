"""Overload degradation gates: graceful behaviour at 10x offered load.

The ``overload10x`` preset offers ~30 requests/s against a single C-tier
device that retires roughly 3 requests/s -- a sustained 10x overdrive.
An overload-hardened server must degrade *by policy*, not by accident:

* **low-priority traffic is shed** -- the batch tier absorbs the
  overload so paying tiers keep their latency;
* **premium stays inside its SLO** -- P95 latency within the
  application SLO and >= 95% attainment for admitted premium requests;
* **memory stays bounded** -- the admission queue never exceeds its
  configured capacity, no matter how hard the arrival process pushes;
* **nothing is lost** -- served + shed + rejected + cancelled
  partitions the offered set exactly;
* **the timeline is deterministic** -- two fresh drains of the same
  trace produce bit-identical fingerprints.

A FIFO/unbounded control run on the same traffic mix demonstrates what
the gates protect against: without admission control the premium tier
blows through its SLO as the backlog grows without bound.

Run with: PYTHONPATH=src python -m pytest benchmarks/test_ext_overload_degradation.py -v
"""

import pytest

from repro.serving import (
    OverloadPolicy,
    Server,
    parse_workload_spec,
    synthesize_arrivals,
)

WORKLOAD = "overload10x"
SEED = 0

#: Same tier mix and rates as ``overload10x`` at a fifth of the horizon:
#: the unbounded control server sorts its whole backlog per dispatch, so
#: the contrast case runs on a shorter trace with identical dynamics.
CONTRAST_SPEC = (
    "helr:120:2.0:1:0:premium,"
    "packbootstrap:180:3.0:1:0:standard,"
    "helr:1500:25.0:1:0:batch"
)

OVERLOAD = OverloadPolicy(
    queue_capacity=128,
    shed_threshold=0.5,
    shed_below_priority=1,
    evict_lower_priority=True,
)


def _controlled_server():
    return Server(
        params="C",
        policy="priority",
        max_batch=64,
        max_wait_s=20.0,
        lanes=2,
        overload=OVERLOAD,
    )


def _uncontrolled_server():
    return Server(
        params="C", policy="fifo", max_batch=64, max_wait_s=20.0, lanes=2
    )


def _drain(server, spec):
    requests = synthesize_arrivals(parse_workload_spec(spec), seed=SEED)
    server.submit_many(requests)
    return server.drain()


@pytest.fixture(scope="module")
def overload_report():
    return _drain(_controlled_server(), WORKLOAD)


@pytest.fixture(scope="module")
def contrast_reports():
    naive = _drain(_uncontrolled_server(), CONTRAST_SPEC)
    controlled = _drain(_controlled_server(), CONTRAST_SPEC)
    return naive, controlled


class TestOverloadIsGenuine:
    def test_offered_load_is_10x_overdrive(self, overload_report):
        """The preset genuinely overdrives the device ~10x."""
        report = overload_report
        assert report.offered == 9000
        dropped = report.shed_count + report.rejected_count
        assert dropped >= 0.8 * report.offered, (
            f"only {dropped}/{report.offered} dropped; the workload is "
            "not a real overload and these gates prove nothing"
        )

    def test_conservation_under_overload(self, overload_report):
        report = overload_report
        total = (
            report.served
            + report.shed_count
            + report.rejected_count
            + report.cancelled_count
        )
        assert total == report.offered, (
            f"outcome buckets sum to {total}, offered {report.offered}: "
            "requests were lost or double-counted"
        )


class TestGracefulDegradation:
    def test_batch_tier_absorbs_the_shedding(self, overload_report):
        tiers = overload_report.per_tier()
        batch = tiers["batch"]
        assert batch["shed"] > 0, "no batch-tier traffic was shed at 10x"
        offered_batch = sum(
            batch[k] for k in ("served", "shed", "rejected", "cancelled")
        )
        assert batch["shed"] / offered_batch >= 0.9, (
            "at 10x overdrive nearly all batch traffic must be shed, got "
            f"{batch['shed']}/{offered_batch}"
        )

    def test_premium_is_never_shed(self, overload_report):
        premium = overload_report.per_tier()["premium"]
        assert premium["shed"] == 0 and premium["rejected"] == 0, (
            f"premium dropped under overload: {premium}"
        )
        assert premium["served"] == 600

    def test_premium_p95_within_slo(self, overload_report):
        premium = overload_report.per_tier()["premium"]
        slo_s = 300.0  # default helr SLO
        assert premium["p95_s"] <= slo_s, (
            f"premium P95 {premium['p95_s']:.1f}s exceeds the "
            f"{slo_s:.0f}s SLO under 10x load"
        )

    def test_premium_attainment_at_least_95pct(self, overload_report):
        premium = overload_report.per_tier()["premium"]
        assert premium["slo_attainment"] >= 0.95, (
            f"admitted premium attainment {premium['slo_attainment']:.3f} "
            "< 0.95 under 10x load"
        )


class TestBoundedMemory:
    def test_queue_depth_never_exceeds_capacity(self, overload_report):
        assert (
            overload_report.max_queue_depth <= OVERLOAD.queue_capacity
        ), (
            f"queue depth {overload_report.max_queue_depth} exceeded the "
            f"{OVERLOAD.queue_capacity}-slot bound"
        )
        assert overload_report.peak_pressure == pytest.approx(1.0)

    def test_uncontrolled_backlog_is_unbounded(self, contrast_reports):
        naive, controlled = contrast_reports
        assert naive.max_queue_depth > 4 * OVERLOAD.queue_capacity, (
            "the control run no longer demonstrates unbounded growth; "
            "the contrast spec needs more overdrive"
        )
        assert controlled.max_queue_depth <= OVERLOAD.queue_capacity


class TestAdmissionControlEarnsItsKeep:
    def test_premium_collapses_without_admission_control(
        self, contrast_reports
    ):
        """Same traffic, no overload policy: premium misses its SLO."""
        naive, controlled = contrast_reports
        naive_premium = naive.per_tier()["premium"]
        ctl_premium = controlled.per_tier()["premium"]
        assert naive_premium["slo_attainment"] < 0.6, (
            "FIFO/unbounded premium attainment "
            f"{naive_premium['slo_attainment']:.3f} is too healthy; the "
            "contrast no longer demonstrates degradation"
        )
        assert ctl_premium["slo_attainment"] >= 0.95
        assert ctl_premium["p95_s"] < naive_premium["p95_s"]


class TestDeterminism:
    def test_overload_drain_is_deterministic(self, overload_report):
        again = _drain(_controlled_server(), WORKLOAD)
        assert again.fingerprint() == overload_report.fingerprint(), (
            "two drains of the same overload trace diverged"
        )
        assert again.per_tier() == overload_report.per_tier()
