"""Property test: random homomorphic circuits match plaintext evaluation.

Hypothesis draws small programs over {add, sub, pmult, hmult, rotate,
negate}; the encrypted execution must track a plaintext simulator within
CKKS noise for both key-switching back-ends.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    KlssConfig,
    small_test_parameters,
)

PARAMS = small_test_parameters(
    degree=32,
    max_level=6,
    wordsize=25,
    dnum=3,
    klss=KlssConfig(wordsize_t=28, alpha_tilde=2),
)
GEN = KeyGenerator(PARAMS, seed=2024)
SECRET = GEN.secret_key()
ENCODER = CkksEncoder(PARAMS)
ENCRYPTOR = Encryptor(PARAMS, public_key=GEN.public_key(SECRET), seed=1)
DECRYPTOR = Decryptor(PARAMS, SECRET)
GALOIS = GEN.rotation_keys(SECRET, [1, 2, 3])
RELIN = GEN.relinearisation_key(SECRET)

EVALUATORS = {
    method: Evaluator(PARAMS, relin_key=RELIN, galois_keys=GALOIS, method=method)
    for method in ("hybrid", "klss")
}

#: op = (name, argument)
OPS = st.sampled_from(
    [
        ("add", None),
        ("sub", None),
        ("negate", None),
        ("pmult", None),
        ("hmult", None),
        ("rotate", 1),
        ("rotate", 2),
        ("rotate", 3),
    ]
)


def _run_circuit(method, ops, base_values, other_values):
    ev = EVALUATORS[method]
    ct = ENCRYPTOR.encrypt(ENCODER.encode(base_values))
    expected = base_values.copy()
    multiplications = 0
    for name, arg in ops:
        if multiplications >= PARAMS.max_level - 1 and name in ("hmult", "pmult"):
            continue  # out of levels; skip deeper multiplications
        if name == "add":
            other = ENCRYPTOR.encrypt(
                ENCODER.encode(other_values, level=ct.level, scale=ct.scale)
            )
            ct = ev.add(ct, other)
            expected = expected + other_values
        elif name == "sub":
            other = ENCRYPTOR.encrypt(
                ENCODER.encode(other_values, level=ct.level, scale=ct.scale)
            )
            ct = ev.sub(ct, other)
            expected = expected - other_values
        elif name == "negate":
            ct = ev.negate(ct)
            expected = -expected
        elif name == "pmult":
            pt = ENCODER.encode(other_values, level=ct.level)
            ct = ev.rescale(ev.multiply_plain(ct, pt))
            expected = expected * other_values
            multiplications += 1
        elif name == "hmult":
            other = ENCRYPTOR.encrypt(
                ENCODER.encode(other_values, level=ct.level, scale=ct.scale)
            )
            ct = ev.rescale(ev.multiply(ct, other))
            expected = expected * other_values
            multiplications += 1
        elif name == "rotate":
            ct = ev.rotate(ct, arg)
            expected = np.roll(expected, -arg)
    return ENCODER.decode(DECRYPTOR.decrypt(ct)), expected


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(OPS, min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**16),
    method=st.sampled_from(["hybrid", "klss"]),
)
def test_property_random_circuit_matches_plaintext(ops, seed, method):
    rng = np.random.default_rng(seed)
    base = rng.uniform(-0.8, 0.8, size=PARAMS.slots)
    other = rng.uniform(-0.8, 0.8, size=PARAMS.slots)
    got, expected = _run_circuit(method, ops, base, other)
    scale = max(1.0, float(np.abs(expected).max()))
    assert np.abs(got - expected).max() < 2e-2 * scale, (
        f"circuit {ops} diverged under {method}"
    )


def test_deep_multiplication_ladder_both_methods(rng):
    """Deterministic companion: use every level with alternating methods.

    Draws from the shared ``rng`` fixture (seeded by ``--seed``), so a
    failing draw reproduces from the printed seed.
    """
    values = rng.uniform(-0.9, 0.9, size=PARAMS.slots)
    for method in ("hybrid", "klss"):
        ev = EVALUATORS[method]
        ct = ENCRYPTOR.encrypt(ENCODER.encode(values))
        expected = values.copy()
        for _ in range(PARAMS.max_level - 1):
            ct = ev.rescale(ev.square(ct))
            expected = expected * expected
        got = ENCODER.decode(DECRYPTOR.decrypt(ct)).real
        assert np.abs(got - expected).max() < 5e-2
