"""Tests for homomorphic linear transforms (BSGS diagonal method)."""

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_test_parameters,
)
from repro.ckks.linear_transform import (
    LinearTransform,
    identity_transform,
    matrix_diagonals,
    rotation_keys_for,
)


@pytest.fixture(scope="module")
def setup():
    params = small_test_parameters(degree=32, max_level=6, wordsize=25, dnum=3)
    gen = KeyGenerator(params, seed=33)
    sk = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=4)
    decryptor = Decryptor(params, sk)
    galois = gen.rotation_keys(sk, list(range(1, params.slots)))
    evaluator = Evaluator(
        params, relin_key=gen.relinearisation_key(sk), galois_keys=galois
    )
    return params, encoder, encryptor, decryptor, evaluator


class TestDiagonals:
    def test_identity_single_diagonal(self):
        diags = matrix_diagonals(np.eye(4))
        assert list(diags) == [0]
        assert (diags[0] == 1).all()

    def test_shift_matrix_single_offdiagonal(self):
        shift = np.roll(np.eye(4), 1, axis=1)  # M[i, i+1] = 1: (Mz)_i = z_{i+1}
        diags = matrix_diagonals(shift)
        assert list(diags) == [1]

    def test_generalised_diagonal_definition(self):
        m = np.arange(16).reshape(4, 4).astype(float)
        diags = matrix_diagonals(m)
        for d, diag in diags.items():
            for i in range(4):
                assert diag[i] == m[i, (i + d) % 4]

    def test_tolerance_drops_small_diagonals(self):
        m = np.eye(4) + 1e-9 * np.ones((4, 4))
        assert len(matrix_diagonals(m, tol=1e-6)) == 1

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            matrix_diagonals(np.zeros((2, 3)))


class TestApply:
    def test_identity(self, setup):
        params, encoder, encryptor, decryptor, evaluator = setup
        lt = identity_transform(encoder)
        rng = np.random.default_rng(0)
        z = rng.normal(size=params.slots) + 1j * rng.normal(size=params.slots)
        out = lt.apply(evaluator, encryptor.encrypt(encoder.encode(z)))
        assert np.abs(encoder.decode(decryptor.decrypt(out)) - z).max() < 1e-3

    def test_random_dense_matrix(self, setup):
        params, encoder, encryptor, decryptor, evaluator = setup
        rng = np.random.default_rng(1)
        n = params.slots
        m = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / n
        lt = LinearTransform(encoder, m)
        z = rng.normal(size=n) + 1j * rng.normal(size=n)
        out = lt.apply(evaluator, encryptor.encrypt(encoder.encode(z)))
        assert np.abs(encoder.decode(decryptor.decrypt(out)) - m @ z).max() < 1e-3

    def test_consumes_one_level(self, setup):
        params, encoder, encryptor, decryptor, evaluator = setup
        lt = identity_transform(encoder)
        ct = encryptor.encrypt(encoder.encode([1.0]))
        assert lt.apply(evaluator, ct).level == ct.level - 1

    def test_sparse_matrix_few_rotations(self, setup):
        """A tridiagonal-like matrix needs few rotation keys."""
        params, encoder, *_ = setup
        n = params.slots
        m = np.eye(n) + np.roll(np.eye(n), -1, axis=1) * 0.5
        lt = LinearTransform(encoder, m)
        assert len(lt.required_rotations()) <= 2

    def test_composition_matches_product(self, setup):
        params, encoder, encryptor, decryptor, evaluator = setup
        rng = np.random.default_rng(2)
        n = params.slots
        a = (rng.normal(size=(n, n))) / n
        b = (rng.normal(size=(n, n))) / n
        lt_a = LinearTransform(encoder, a)
        lt_b = LinearTransform(encoder, b)
        z = rng.normal(size=n)
        ct = encryptor.encrypt(encoder.encode(z))
        out = lt_b.apply(evaluator, lt_a.apply(evaluator, ct))
        assert np.abs(
            encoder.decode(decryptor.decrypt(out)) - b @ (a @ z)
        ).max() < 5e-3

    def test_zero_matrix_rejected(self, setup):
        _, encoder, *_ = setup
        with pytest.raises(ValueError):
            LinearTransform(encoder, np.zeros((encoder.slots, encoder.slots)))

    def test_rotation_keys_for_union(self, setup):
        _, encoder, *_ = setup
        n = encoder.slots
        a = LinearTransform(encoder, np.roll(np.eye(n), -1, axis=1))
        b = LinearTransform(encoder, np.roll(np.eye(n), -2, axis=1))
        union = rotation_keys_for([a, b])
        assert set(a.required_rotations()) | set(b.required_rotations()) == set(union)

    def test_bsgs_grouping(self, setup):
        """BSGS baby size ~ sqrt(#diagonals)."""
        _, encoder, *_ = setup
        n = encoder.slots
        lt = LinearTransform(encoder, np.ones((n, n)) / n)
        assert 2 <= lt.baby <= n
        assert len(lt.required_rotations()) < n - 1


class CountingEncoder(CkksEncoder):
    """Counts ``encode`` calls -- instruments the diagonal cache."""

    def __init__(self, params):
        super().__init__(params)
        self.encode_calls = 0

    def encode(self, values, level=None, scale=None):
        self.encode_calls += 1
        return super().encode(values, level=level, scale=scale)


class TestDiagonalCache:
    def test_second_apply_at_same_level_encodes_nothing(self, setup):
        params, _, encryptor, decryptor, evaluator = setup
        counting = CountingEncoder(params)
        rng = np.random.default_rng(7)
        n = params.slots
        m = rng.normal(size=(n, n)) / n
        lt = LinearTransform(counting, m)
        z = rng.normal(size=n)
        ct = encryptor.encrypt(counting.encode(z))
        counting.encode_calls = 0
        lt.apply(evaluator, ct)
        first = counting.encode_calls
        assert first > 0  # the diagonals were encoded on the cold call
        counting.encode_calls = 0
        out = lt.apply(evaluator, ct)
        assert counting.encode_calls == 0  # the warm call replays the cache
        got = counting.decode(decryptor.decrypt(out))
        assert np.abs(got - m @ z).max() < 1e-3

    def test_loop_path_shares_the_cache(self, setup):
        from repro.ckks import Evaluator

        params, _, encryptor, _, evaluator = setup
        counting = CountingEncoder(params)
        rng = np.random.default_rng(8)
        n = params.slots
        lt = LinearTransform(counting, rng.normal(size=(n, n)) / n)
        ct = encryptor.encrypt(counting.encode(rng.normal(size=n)))
        counting.encode_calls = 0
        lt.apply(evaluator, ct)
        loop_evaluator = Evaluator(
            params,
            relin_key=evaluator.relin_key,
            galois_keys=evaluator.galois_keys,
            method="hybrid-loop",
        )
        counting.encode_calls = 0
        lt.apply(loop_evaluator, ct)
        assert counting.encode_calls == 0

    def test_different_level_encodes_again(self, setup):
        params, _, encryptor, _, evaluator = setup
        counting = CountingEncoder(params)
        rng = np.random.default_rng(9)
        n = params.slots
        lt = LinearTransform(counting, rng.normal(size=(n, n)) / n)
        ct = encryptor.encrypt(counting.encode(rng.normal(size=n)))
        counting.encode_calls = 0
        lt.apply(evaluator, ct)
        lower = evaluator.mod_switch_to_level(ct, ct.level - 1)
        counting.encode_calls = 0
        lt.apply(evaluator, lower)
        assert counting.encode_calls > 0


class TestTrafficReport:
    def test_plan_operand_traffic(self, setup):
        from repro.gpu.device import A100

        params, encoder, _, _, evaluator = setup
        rng = np.random.default_rng(5)
        lt = LinearTransform(encoder, rng.normal(size=(params.slots,) * 2))
        plan = lt._compiled(evaluator, level=2)
        operands = plan.operand_bytes()
        assert "pt_tensor" in operands
        assert any(k.startswith("hoist.") for k in operands)
        report = plan.traffic_report(A100.hier(), batch=4)
        assert set(report) == set(operands)
        for row in report.values():
            assert row["placement"] in ("stream", "smem", "l2", "spill")
