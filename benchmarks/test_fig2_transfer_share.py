"""Fig. 2: BConv/IP/NTT shares of KeySwitch data transfer vs level.

The paper quotes 43.4% (BConv) and 41.8% (IP) at l = 35 in the KLSS
method; BConv + IP must dominate total transfer at high levels.
"""

from repro.analysis.memory_traffic import (
    keyswitch_transfer_breakdown,
    keyswitch_transfer_shares,
)
from repro.analysis.reporting import format_table
from repro.ckks.params import get_set

LEVELS = (5, 10, 15, 20, 25, 30, 35)


def _build_rows():
    hybrid = get_set("B")
    klss = get_set("C")
    rows = []
    for level in LEVELS:
        for name, params in (("Hybrid(B)", hybrid), ("KLSS(C)", klss)):
            shares = keyswitch_transfer_shares(params, level)
            total_gb = sum(
                keyswitch_transfer_breakdown(params, level).values()
            ) / 1e9
            rows.append(
                [
                    level,
                    name,
                    f"{shares['bconv']:.1%}",
                    f"{shares['ip']:.1%}",
                    f"{shares['ntt']:.1%}",
                    f"{total_gb:.1f} GB",
                ]
            )
    return rows


def test_fig2_transfer_share(benchmark):
    rows = benchmark(_build_rows)
    print()
    print(
        format_table(
            ["l", "method", "BConv", "IP", "NTT", "total"],
            rows,
            title="Fig. 2: share of KeySwitch data transfer per kernel "
            "(paper: BConv 43.4%, IP 41.8% at l=35, KLSS)",
        )
    )
    klss = get_set("C")
    shares = keyswitch_transfer_shares(klss, 35)
    # Shape: BConv and IP together dominate at l = 35 under KLSS.
    assert shares["bconv"] + shares["ip"] > 0.5
    assert shares["bconv"] > 0.15 and shares["ip"] > 0.15
    # Transfer demand grows with level.
    low = sum(keyswitch_transfer_breakdown(klss, 5).values())
    high = sum(keyswitch_transfer_breakdown(klss, 35).values())
    assert high > low
