"""Fig. 15: BConv/IP data-transfer requirement, original vs optimised.

The algorithm + data-layout optimisation collapses the per-kernel transfer
requirement: each datum makes a single trip through global memory.
"""

from repro.analysis.memory_traffic import (
    keyswitch_transfer_breakdown,
    transfer_reduction,
)
from repro.analysis.reporting import format_table
from repro.ckks.params import get_set

LEVELS = (5, 15, 25, 35)


def _build_rows():
    params = get_set("C")
    rows = []
    for level in LEVELS:
        before = keyswitch_transfer_breakdown(params, level, optimized=False)
        after = keyswitch_transfer_breakdown(params, level, optimized=True)
        for kernel in ("bconv", "ip"):
            rows.append(
                [
                    level,
                    kernel,
                    f"{before[kernel] / 1e9:.2f}",
                    f"{after[kernel] / 1e9:.2f}",
                    f"{before[kernel] / after[kernel]:.2f}x",
                ]
            )
    return rows


def test_fig15_transfer_reduction(benchmark):
    rows = benchmark(_build_rows)
    print()
    print(
        format_table(
            ["l", "kernel", "original GB", "optimised GB", "reduction"],
            rows,
            title="Fig. 15: per-KeySwitch data transfer, Set C (per batch)",
        )
    )
    params = get_set("C")
    for level in LEVELS:
        for kernel in ("bconv", "ip"):
            ratio = transfer_reduction(params, level, kernel)
            assert ratio < 0.8, (
                f"{kernel} at l={level}: optimised transfer must drop "
                f"substantially, got {ratio:.2f}"
            )
    # The reduction grows with level for BConv (alpha' grows with l).
    assert transfer_reduction(params, 35, "bconv") <= transfer_reduction(
        params, 5, "bconv"
    ) + 1e-9
