"""NeoContext: the front door of the performance model.

Ties together a parameter set (Table 4), a device model (A100), and a
pipeline configuration, and answers the questions the evaluation section
asks: how long does an operation take, what is a kernel's throughput, how
long does an application run, and how does each optimisation step move the
needle.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..ckks.params import ParameterSet, get_set
from ..gpu.device import A100, DeviceSpec
from ..gpu.kernels import KernelCost
from ..gpu.trace import ExecutionTrace
from .bconv_matmul import bconv_cost
from .ip_matmul import ip_cost
from .pipeline import NEO_CONFIG, OperationPipeline, PipelineConfig
from .radix16_ntt import ntt_cost
from .trace_cache import CacheStats, TraceCache

#: Operation mix of one generic application "level step" -- used by the
#: app schedules in :mod:`repro.apps` (they provide their own mixes too).
DEFAULT_OPERATIONS = ("hmult", "hrotate", "pmult", "hadd", "padd", "rescale")


class NeoContext:
    """Performance context for one (parameter set, device, config) triple."""

    def __init__(
        self,
        params: ParameterSet | str,
        device: DeviceSpec = A100,
        config: PipelineConfig = NEO_CONFIG,
        batch: Optional[int] = None,
        trace_cache: Optional[TraceCache] = None,
    ):
        self.params = get_set(params) if isinstance(params, str) else params
        self.config = config
        self.pipeline = OperationPipeline(
            self.params, config, batch=batch, cache=trace_cache
        )
        self.batch = self.pipeline.batch
        #: The device as handed in, before batch derating (siblings re-derate).
        self.base_device = device
        # Small batches leave the GPU under-occupied (Fig. 17): the context
        # sees a derated device.
        self.device = device.derated_for_batch(self.batch)

    def with_batch(self, batch: int) -> "NeoContext":
        """A sibling context at a different BatchSize, sharing the trace cache.

        The serving layer sizes dynamic batches at admission time; siblings
        share one keyed cache, so a batch shape that has been timed before
        costs nothing to time again.
        """
        if batch == self.batch:
            return self
        return NeoContext(
            self.params,
            device=self.base_device,
            config=self.config,
            batch=batch,
            trace_cache=self.pipeline.cache,
        )

    # -- operations ---------------------------------------------------------------

    def operation_trace(self, name: str, level: Optional[int] = None) -> ExecutionTrace:
        level = self.params.max_level if level is None else level
        return self.pipeline.operation_trace(name, level)

    def operation_time_us(
        self, name: str, level: Optional[int] = None, per_ciphertext: bool = True
    ) -> float:
        """Wall time of one operation, microseconds.

        With ``per_ciphertext=True`` (the paper's Table 6 convention) the
        batched kernel time is amortised over the ``BatchSize`` ciphertexts
        it processes.
        """
        trace = self.operation_trace(name, level)
        time = trace.overlapped_time_s(self.device, self.config.streams) * 1e6
        return time / self.batch if per_ciphertext else time

    def keyswitch_time_us(self, level: Optional[int] = None) -> float:
        return self.operation_time_us("keyswitch", level)

    def operation_table_us(self, level: Optional[int] = None) -> Dict[str, float]:
        """Table-6-style row: time of each primitive operation."""
        return {
            op: self.operation_time_us(op, level) for op in DEFAULT_OPERATIONS
        }

    # -- kernels -------------------------------------------------------------------

    def kernel_time_s(self, kernel: str, level: Optional[int] = None) -> float:
        """Time of one standalone kernel invocation at `level`.

        The kernel *definition* is fixed by the parameter set (so that
        throughput ratios across implementations are apples-to-apples,
        as in Table 7): NTT transforms one batch of one limb; BConv raises
        one digit (``alpha -> l + 1`` limbs, the Hybrid Mod Up conversion);
        IP performs one Hybrid external product.  Only the *implementation*
        (element-wise vs GEMM, component mapping) comes from the config.
        """
        level = self.params.max_level if level is None else level
        p = self.params
        cfg = self.config
        if kernel == "ntt":
            cost = ntt_cost(
                p.degree,
                batch_limbs=self.batch,
                wordsize=p.wordsize,
                style=cfg.ntt_style,
                component=cfg.ntt_component,
            )
        elif kernel == "bconv":
            cost = bconv_cost(
                p.alpha,
                level + 1,
                self.batch,
                p.degree,
                p.wordsize,
                style=cfg.bconv_style,
                component=cfg.bconv_component,
                fused=cfg.fused,
            )
        elif kernel == "ip":
            beta = p.beta(level)
            extended = level + 1 + p.alpha
            cost = ip_cost(
                beta,
                2,
                extended,
                self.batch,
                p.degree,
                p.wordsize,
                style=cfg.ip_style,
                component="cuda",  # Hybrid IP: K too small for the TCU
                fused=cfg.fused,
                pair_factor=1,
            )
        else:
            raise ValueError(f"unknown kernel {kernel!r}")
        return ExecutionTrace().add(cost).overlapped_time_s(
            self.device, self.config.streams
        )

    def kernel_throughput(self, kernel: str, level: Optional[int] = None) -> float:
        """Invocations per second (Table 7 units)."""
        return 1.0 / self.kernel_time_s(kernel, level)

    # -- applications --------------------------------------------------------------

    def schedule_trace(self, schedule: Mapping[str, Mapping[str, int]]) -> ExecutionTrace:
        """Assemble an application schedule into one trace, cache-aware.

        Per-op traces come from the trace cache (built at most once per
        (op, level)) and the combined trace is assembled in a single pass --
        no quadratic re-merging of event lists.
        """
        events: List[KernelCost] = []
        for level, ops in schedule.items():
            level = int(level)
            for op, count in ops.items():
                if count <= 0:
                    continue
                events.extend(
                    self.pipeline.scaled_operation_trace(op, level, count).events
                )
        return ExecutionTrace(events)

    def schedule_time_s(self, schedule: Mapping[str, Mapping[str, int]]) -> float:
        """Run an application schedule: ``{level: {operation: count}}``.

        Levels may be strings or ints; counts are numbers of batched
        operations at that level.
        """
        return self.schedule_trace(schedule).overlapped_time_s(
            self.device, self.config.streams
        )

    def application_trace(self, app) -> ExecutionTrace:
        """The full trace of one application (anything with ``.schedule``)."""
        return self.schedule_trace(app.schedule(self.params))

    def application_time(self, app, per_ciphertext: bool = True) -> float:
        """End-to-end application time, seconds.

        With ``per_ciphertext=True`` (the Table 5 convention, matching the
        apps' own ``time_s``) the batched time is amortised over the
        ``BatchSize`` ciphertexts processed together.
        """
        time = self.schedule_time_s(app.schedule(self.params))
        return time / self.batch if per_ciphertext else time

    # -- observability -------------------------------------------------------------

    @property
    def trace_cache(self) -> TraceCache:
        """The trace cache backing this context's pipeline."""
        return self.pipeline.cache

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the backing trace cache."""
        return self.pipeline.cache.stats

    def __repr__(self) -> str:
        return (
            f"NeoContext(set={self.params.name}, device={self.device.name!r}, "
            f"ks={self.config.keyswitch}, batch={self.batch})"
        )
