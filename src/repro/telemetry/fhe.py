"""FHE-semantic instrumentation: is this ciphertext about to go bad?

Performance telemetry says where the time went; this module tracks the
*correctness budget* flowing alongside it.  CKKS ciphertexts die in three
ways -- the noise eats the message, the level chain runs out, or the scale
drifts off the encoder's expectations -- and all three are observable
without any key material via the conservative analytic bounds of
:class:`~repro.ckks.noise.NoiseEstimator`.

Two consumers:

* :class:`FheMeter` -- an :class:`~repro.ckks.evaluator.Evaluator` observer
  (set ``evaluator.observer = meter``).  Every operation updates the
  output ciphertext's noise estimate, emits noise-budget-remaining and
  level gauges plus a scale-drift histogram into the metrics registry,
  records a per-ciphertext trajectory (for post-mortems and the demo), and
  counts level-exhaustion / budget-exhaustion warnings.
* :func:`modeled_noise_trajectory` -- the serving layer's analytic mirror:
  walks an application's ``{level: {op: count}}`` schedule through the
  same estimator (Table 4 sets carry no functional moduli, so a shim
  derives them from the wordsize), giving the noise-budget-remaining
  series a pure ``repro serve`` run can report per application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ckks.noise import NoiseEstimate, NoiseEstimator
from .registry import MetricsRegistry, global_registry

#: Histogram boundaries for scale drift, bits: rescale by ``q_i ~ Delta``
#: drifts fractions of a bit per level; whole bits signal encoder mismatch.
SCALE_DRIFT_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class TrajectoryPoint:
    """One observed step of a ciphertext's noise-budget trajectory."""

    op: str
    level: int
    scale_bits: float
    noise_bits: float
    budget_bits: float


@dataclass
class FheWarning:
    """One emitted health warning (also counted in the registry)."""

    kind: str
    op: str
    level: int
    detail: str


class FheMeter:
    """Evaluator observer tracking noise, level and scale health.

    Estimates are keyed by ciphertext identity; the meter holds strong
    references (so ids stay unique) and is meant to live for one request /
    circuit -- call :meth:`reset` between workloads.

    Args:
        params: the functional :class:`~repro.ckks.params.CkksParameters`.
        registry: metrics registry (defaults to the process-wide one).
        warn_level: warn when an output ciphertext lands at or below this
            level (the chain is nearly exhausted).
        warn_budget_bits: warn when the remaining noise budget drops below
            this many bits.
    """

    def __init__(
        self,
        params,
        registry: Optional[MetricsRegistry] = None,
        warn_level: int = 1,
        warn_budget_bits: float = 10.0,
    ):
        self.params = params
        self.estimator = NoiseEstimator(params)
        self.registry = registry if registry is not None else global_registry()
        self.warn_level = warn_level
        self.warn_budget_bits = warn_budget_bits
        self.warnings: List[FheWarning] = []
        self._estimates: Dict[int, Tuple[object, NoiseEstimate]] = {}
        self._history: Dict[int, List[TrajectoryPoint]] = {}
        self._budget_gauge = self.registry.gauge(
            "fhe_noise_budget_bits",
            "Remaining noise budget of the last ciphertext through each op",
            labelnames=("op",),
        )
        self._level_gauge = self.registry.gauge(
            "fhe_ciphertext_level",
            "Level of the last ciphertext produced by each op",
            labelnames=("op",),
        )
        self._drift_hist = self.registry.histogram(
            "fhe_scale_drift_bits",
            "Absolute drift of log2(scale) from the encoder default",
            buckets=SCALE_DRIFT_BUCKETS,
        )
        self._warn_counter = self.registry.counter(
            "fhe_health_warnings_total",
            "Level/budget exhaustion warnings",
            labelnames=("kind",),
        )

    # -- estimate bookkeeping --------------------------------------------------

    def track(self, ct, estimate: Optional[NoiseEstimate] = None) -> NoiseEstimate:
        """Start tracking `ct` (fresh-encryption bound unless given)."""
        estimate = estimate if estimate is not None else self.estimator.fresh()
        self._estimates[id(ct)] = (ct, estimate)
        self._history[id(ct)] = [
            self._point("fresh", ct, estimate)
        ]
        return estimate

    def estimate(self, ct) -> NoiseEstimate:
        """The current noise bound for `ct` (fresh bound if untracked)."""
        entry = self._estimates.get(id(ct))
        return entry[1] if entry is not None else self.estimator.fresh()

    def budget_bits(self, ct) -> float:
        """Bits of modulus headroom above ``max(scale, noise)`` for `ct`."""
        return self._budget(ct, self.estimate(ct).bits)

    def trajectory(self, ct) -> List[TrajectoryPoint]:
        """The recorded noise-budget trajectory that produced `ct`."""
        return list(self._history.get(id(ct), ()))

    def reset(self) -> None:
        self._estimates.clear()
        self._history.clear()
        self.warnings.clear()

    # -- the observer hook -----------------------------------------------------

    def after_op(self, op: str, inputs: Sequence[object], output) -> None:
        """Called by the evaluator after each operation (ct in, ct out)."""
        estimate = self._propagate(op, inputs, output)
        self._estimates[id(output)] = (output, estimate)
        point = self._point(op, output, estimate)
        lineage: List[TrajectoryPoint] = []
        for ct in inputs:
            history = self._history.get(id(ct))
            if history:
                lineage = history
                break
        self._history[id(output)] = lineage + [point]
        self._emit(op, output, point)

    def _propagate(self, op: str, inputs, output) -> NoiseEstimate:
        est = self.estimator
        bounds = [self.estimate(ct) for ct in inputs]
        a = bounds[0] if bounds else est.fresh()
        if op in ("add", "sub"):
            return est.after_add(a, bounds[1] if len(bounds) > 1 else a)
        if op in ("add_plain", "sub_plain", "negate", "mod_switch"):
            return a
        if op == "multiply_plain":
            return est.after_multiply_plain(a, 1.0)
        if op in ("multiply", "square"):
            b = bounds[1] if len(bounds) > 1 else a
            product = est.after_multiply(a, b)
            # Relinearisation (when it ran) adds key-switch noise.
            if getattr(output, "is_relinearised", True):
                product = est.after_keyswitch(product, output.level)
            return product
        if op in ("rotate", "conjugate", "relinearise", "keyswitch"):
            return est.after_keyswitch(a, output.level)
        if op in ("rescale", "double_rescale"):
            dropped = self._dropped_product(inputs[0], output)
            return est.after_rescale(a, dropped)
        # Unknown ops keep the bound (conservative enough for gauges).
        return a

    @staticmethod
    def _dropped_product(before, after) -> int:
        product = 1
        for q in before.c0.basis.moduli[after.level + 1: before.level + 1]:
            product *= int(q)
        return max(product, 2)

    def _budget(self, ct, noise_bits: float) -> float:
        modulus_bits = math.log2(ct.c0.basis.product)
        used = max(math.log2(ct.scale), noise_bits)
        return modulus_bits - used

    def _point(self, op: str, ct, estimate: NoiseEstimate) -> TrajectoryPoint:
        return TrajectoryPoint(
            op=op,
            level=ct.level,
            scale_bits=math.log2(ct.scale),
            noise_bits=estimate.bits,
            budget_bits=self._budget(ct, estimate.bits),
        )

    def _emit(self, op: str, output, point: TrajectoryPoint) -> None:
        self._budget_gauge.labels(op=op).set(point.budget_bits)
        self._level_gauge.labels(op=op).set(point.level)
        drift = abs(point.scale_bits - math.log2(self.params.scale))
        self._drift_hist.observe(drift)
        if point.level <= self.warn_level:
            self._warn("level_exhaustion", op, point.level,
                       f"level {point.level} <= warn threshold {self.warn_level}")
        if point.budget_bits < self.warn_budget_bits:
            self._warn("budget_exhaustion", op, point.level,
                       f"{point.budget_bits:.1f} budget bits "
                       f"< {self.warn_budget_bits}")

    def _warn(self, kind: str, op: str, level: int, detail: str) -> None:
        self.warnings.append(FheWarning(kind, op, level, detail))
        self._warn_counter.labels(kind=kind).inc()

    def format_trajectory(self, ct) -> str:
        """A printable noise-budget trajectory table for `ct`."""
        lines = ["op              level  scale bits  noise bits  budget bits"]
        for p in self.trajectory(ct):
            lines.append(
                f"{p.op:<15s} {p.level:>5d}  {p.scale_bits:>10.1f}  "
                f"{p.noise_bits:>10.1f}  {p.budget_bits:>11.1f}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Analytic (Table 4) noise trajectories for the serving layer
# ---------------------------------------------------------------------------


class _AnalyticParams:
    """Duck-typed :class:`CkksParameters` surface over a Table 4 set.

    The analytic sets carry no concrete moduli; every prime is modelled as
    exactly ``2**wordsize`` (the calibration the cost model itself uses),
    which is all the estimator's bounds consume.
    """

    def __init__(self, params):
        self.degree = params.degree
        self.error_std = 3.2
        self.wordsize = params.wordsize
        self.scale = 2.0 ** params.wordsize
        self.alpha = params.alpha
        self.special_product = 2 ** (params.wordsize * params.alpha)
        self.max_level = params.max_level
        self.moduli = tuple(
            2 ** params.wordsize for _ in range(params.max_level + 1)
        )
        self._beta = params.beta

    def beta(self, level: int) -> int:
        return self._beta(level)


@dataclass(frozen=True)
class ModeledNoisePoint:
    """Modeled noise state after finishing one schedule level."""

    level: int
    noise_bits: float
    budget_bits: float


def modeled_noise_trajectory(
    params, schedule: Mapping[int, Mapping[str, int]]
) -> List[ModeledNoisePoint]:
    """Walk an app schedule through the analytic noise estimator.

    `params` is a Table 4 :class:`~repro.ckks.params.ParameterSet`.  Levels
    run top-down (as applications consume them).  Within one schedule level
    the op counts are *breadth* -- independent ciphertexts processed side
    by side -- so each primitive kind contributes **once** to the depth
    path per level (multiplicative depth per level is one; that is why the
    schedule steps down a level at all).  The returned budget series is
    what the serving layer registers as ``fhe_noise_budget_bits_modeled``
    gauges per application.
    """
    shim = _AnalyticParams(params)
    est = NoiseEstimator(shim)
    noise = est.fresh()
    points: List[ModeledNoisePoint] = []
    levels = sorted((int(l) for l in schedule), reverse=True)
    for level in levels:
        ops = schedule[level] if level in schedule else schedule[str(level)]
        counts = {op: n for op, n in ops.items() if n > 0}
        if counts.get("hmult"):
            noise = est.after_multiply(noise, noise)
            noise = est.after_keyswitch(noise, level)
        if counts.get("pmult"):
            noise = est.after_multiply_plain(noise, 1.0)
        if counts.get("hrotate") or counts.get("keyswitch"):
            noise = est.after_keyswitch(noise, level)
        if counts.get("hadd") or counts.get("padd"):
            noise = est.after_add(noise, noise)
        if counts.get("double_rescale"):
            noise = est.after_rescale(noise, shim.moduli[level] ** 2)
        elif counts.get("rescale") or counts.get("hmult") or counts.get("pmult"):
            noise = est.after_rescale(noise, shim.moduli[level])
        modulus_bits = params.wordsize * (level + 1)
        # Saturate at the modulus: a dead ciphertext (budget 0) stays dead,
        # the bound does not keep compounding past physical meaning.
        noise = NoiseEstimate(min(noise.bits, float(modulus_bits)))
        budget = modulus_bits - max(params.wordsize, noise.bits)
        points.append(ModeledNoisePoint(level, noise.bits, budget))
    return points
