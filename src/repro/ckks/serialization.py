"""Serialization of parameters, keys and ciphertexts (JSON-based).

A deployment needs to ship evaluation keys to the server and ciphertexts
back and forth.  Everything serialises to JSON-compatible dictionaries
(Python's ``json`` handles arbitrary-precision integers natively); byte
helpers wrap ``json.dumps`` for convenience.

Parameters serialise as their constructor arguments -- prime-chain
generation is deterministic, so reconstruction yields bit-identical
moduli (verified on load).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

import numpy as np

from .ciphertext import Ciphertext
from .keys import GaloisKeys, KeySwitchKey, PublicKey, SecretKey
from .params import CkksParameters, KlssConfig
from ..math.polynomial import RnsPolynomial

FORMAT_VERSION = 1


class DeserializationError(ValueError):
    """Raised when a payload is malformed or inconsistent."""


# -- polynomials ----------------------------------------------------------------


def _poly_to_dict(poly: RnsPolynomial) -> dict:
    poly = poly.from_ntt()
    return {
        "limbs": [[int(c) for c in limb] for limb in poly.limbs],
        "moduli": [int(q) for q in poly.basis.moduli],
    }


def _poly_from_dict(payload: dict, params: CkksParameters) -> RnsPolynomial:
    from ..math.rns import RnsBasis

    try:
        moduli = tuple(payload["moduli"])
        limbs = [np.array(limb, dtype=object) for limb in payload["limbs"]]
    except (KeyError, TypeError) as exc:
        raise DeserializationError(f"malformed polynomial payload: {exc}")
    return RnsPolynomial(params.degree, RnsBasis(moduli), limbs, is_ntt=False)


# -- parameters -----------------------------------------------------------------


def serialize_parameters(params: CkksParameters) -> dict:
    payload = {
        "version": FORMAT_VERSION,
        "degree": params.degree,
        "max_level": params.max_level,
        "wordsize": params.wordsize,
        "dnum": params.dnum,
        "first_prime_bits": params.moduli[0].bit_length(),
        "scale_bits": params.scale_bits,
        "error_std": params.error_std,
        "moduli_checksum": sum(params.moduli) % (1 << 61),
    }
    if params.klss is not None:
        payload["klss"] = {
            "wordsize_t": params.klss.wordsize_t,
            "alpha_tilde": params.klss.alpha_tilde,
        }
    return payload


def deserialize_parameters(payload: dict) -> CkksParameters:
    if payload.get("version") != FORMAT_VERSION:
        raise DeserializationError(
            f"unsupported format version {payload.get('version')!r}"
        )
    klss = None
    if "klss" in payload:
        klss = KlssConfig(
            wordsize_t=payload["klss"]["wordsize_t"],
            alpha_tilde=payload["klss"]["alpha_tilde"],
        )
    try:
        params = CkksParameters(
            degree=payload["degree"],
            max_level=payload["max_level"],
            wordsize=payload["wordsize"],
            dnum=payload["dnum"],
            first_prime_bits=payload["first_prime_bits"],
            scale_bits=payload["scale_bits"],
            klss=klss,
            error_std=payload["error_std"],
        )
    except KeyError as exc:
        raise DeserializationError(f"missing parameter field: {exc}")
    checksum = sum(params.moduli) % (1 << 61)
    if checksum != payload["moduli_checksum"]:
        raise DeserializationError(
            "prime-chain mismatch: payload was created by an incompatible build"
        )
    return params


# -- ciphertexts ------------------------------------------------------------------


def serialize_ciphertext(ct: Ciphertext) -> dict:
    payload = {
        "version": FORMAT_VERSION,
        "scale": ct.scale,
        "c0": _poly_to_dict(ct.c0),
        "c1": _poly_to_dict(ct.c1),
    }
    if ct.c2 is not None:
        payload["c2"] = _poly_to_dict(ct.c2)
    return payload


def deserialize_ciphertext(payload: dict, params: CkksParameters) -> Ciphertext:
    try:
        c0 = _poly_from_dict(payload["c0"], params)
        c1 = _poly_from_dict(payload["c1"], params)
        scale = float(payload["scale"])
    except KeyError as exc:
        raise DeserializationError(f"missing ciphertext field: {exc}")
    c2 = _poly_from_dict(payload["c2"], params) if "c2" in payload else None
    return Ciphertext(c0, c1, scale, params, c2=c2)


# -- keys --------------------------------------------------------------------------


def serialize_secret_key(secret: SecretKey) -> dict:
    return {
        "version": FORMAT_VERSION,
        "coeffs": [int(c) for c in secret.coeffs],
    }


def deserialize_secret_key(payload: dict, params: CkksParameters) -> SecretKey:
    try:
        coeffs = np.array(payload["coeffs"], dtype=object)
    except KeyError as exc:
        raise DeserializationError(f"missing secret field: {exc}")
    if coeffs.shape != (params.degree,):
        raise DeserializationError("secret key length does not match parameters")
    return SecretKey(coeffs, params)


def serialize_public_key(public: PublicKey) -> dict:
    return {
        "version": FORMAT_VERSION,
        "b": _poly_to_dict(public.b),
        "a": _poly_to_dict(public.a),
    }


def deserialize_public_key(payload: dict, params: CkksParameters) -> PublicKey:
    return PublicKey(
        _poly_from_dict(payload["b"], params),
        _poly_from_dict(payload["a"], params),
    )


def serialize_keyswitch_key(ksk: KeySwitchKey) -> dict:
    return {
        "version": FORMAT_VERSION,
        "pairs": [
            {"b": _poly_to_dict(b), "a": _poly_to_dict(a)} for b, a in ksk.pairs
        ],
    }


def deserialize_keyswitch_key(payload: dict, params: CkksParameters) -> KeySwitchKey:
    try:
        pairs = [
            (
                _poly_from_dict(pair["b"], params),
                _poly_from_dict(pair["a"], params),
            )
            for pair in payload["pairs"]
        ]
    except KeyError as exc:
        raise DeserializationError(f"missing key-switch field: {exc}")
    return KeySwitchKey(pairs)


def serialize_galois_keys(galois: GaloisKeys) -> dict:
    return {
        "version": FORMAT_VERSION,
        "keys": {
            str(power): serialize_keyswitch_key(key)
            for power, key in galois._keys.items()
        },
    }


def deserialize_galois_keys(payload: dict, params: CkksParameters) -> GaloisKeys:
    galois = GaloisKeys()
    for power, key_payload in payload.get("keys", {}).items():
        galois.add(int(power), deserialize_keyswitch_key(key_payload, params))
    return galois


# -- byte helpers -------------------------------------------------------------------


def to_bytes(payload: dict) -> bytes:
    """Compact JSON encoding of any payload from this module."""
    return json.dumps(payload, separators=(",", ":")).encode()


def from_bytes(blob: bytes) -> dict:
    try:
        return json.loads(blob.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DeserializationError(f"not a valid payload: {exc}")
