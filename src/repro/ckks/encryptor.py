"""Encryption and decryption."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..math.polynomial import RnsPolynomial
from .ciphertext import Ciphertext
from .encoder import Plaintext
from .keys import PublicKey, SecretKey, sample_error, sample_ternary
from .params import CkksParameters


class Encryptor:
    """Public-key (or symmetric) encryption of plaintexts."""

    def __init__(
        self,
        params: CkksParameters,
        public_key: Optional[PublicKey] = None,
        secret_key: Optional[SecretKey] = None,
        seed: Optional[int] = None,
    ):
        if public_key is None and secret_key is None:
            raise ValueError("need a public or secret key to encrypt")
        self.params = params
        self.public_key = public_key
        self.secret_key = secret_key
        self.rng = np.random.default_rng(seed)

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Encrypt at the plaintext's level."""
        if self.public_key is not None:
            return self._encrypt_public(plaintext)
        return self._encrypt_symmetric(plaintext)

    def _encrypt_public(self, plaintext: Plaintext) -> Ciphertext:
        params = self.params
        level = plaintext.level
        basis = params.q_basis(level)
        degree = params.degree
        # v: ternary ephemeral key; e0, e1: fresh errors.
        v = RnsPolynomial.from_int_coeffs(
            sample_ternary(degree, self.rng), degree, basis
        )
        e0 = RnsPolynomial.from_int_coeffs(
            sample_error(degree, params.error_std, self.rng), degree, basis
        )
        e1 = RnsPolynomial.from_int_coeffs(
            sample_error(degree, params.error_std, self.rng), degree, basis
        )
        b = self.public_key.b.keep_limbs(level + 1)
        a = self.public_key.a.keep_limbs(level + 1)
        c0 = v.multiply(b).from_ntt().add(e0).add(plaintext.poly)
        c1 = v.multiply(a).from_ntt().add(e1)
        return Ciphertext(c0, c1, plaintext.scale, params)

    def _encrypt_symmetric(self, plaintext: Plaintext) -> Ciphertext:
        from .keys import sample_uniform  # local import to avoid cycle noise

        params = self.params
        level = plaintext.level
        basis = params.q_basis(level)
        a = sample_uniform(params.degree, basis, self.rng)
        e = RnsPolynomial.from_int_coeffs(
            sample_error(params.degree, params.error_std, self.rng),
            params.degree,
            basis,
        )
        s = self.secret_key.poly(basis)
        c0 = a.multiply(s).from_ntt().negate().add(e).add(plaintext.poly)
        return Ciphertext(c0, a.from_ntt(), plaintext.scale, params)


class Decryptor:
    """Decryption: ``m ~ c0 + c1*s (+ c2*s**2)``."""

    def __init__(self, params: CkksParameters, secret_key: SecretKey):
        self.params = params
        self.secret_key = secret_key

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        basis = ciphertext.c0.basis
        s = self.secret_key.poly(basis)
        message = ciphertext.c0.add(ciphertext.c1.multiply(s).from_ntt())
        if ciphertext.c2 is not None:
            s_sq = s.multiply(s).from_ntt()
            message = message.add(ciphertext.c2.multiply(s_sq).from_ntt())
        from .encoder import Plaintext

        return Plaintext(message, ciphertext.scale)
