"""Request-scoped span tracing: one trace per request, spans per stage.

A :class:`Span` is a named, timed interval with a parent -- the classic
distributed-tracing shape, here spanning the *simulated* serving clock and
the *wall* clock with the same record type:

* The serving layer mints one trace id per :class:`~repro.serving.request.
  Request` and emits spans with **explicit** simulated timestamps
  (``record_span``): queue wait, batch assignment, batch execution, and --
  once per batch shape, linked via the batch span's ``kernel_trace``
  attribute -- the per-op / per-kernel sub-spans reconstructed from the
  batch's execution trace.  One request's full path -- queue -> batch ->
  op -> kernel -- is reconstructable from its trace id plus that link.
* Functional code (key-switch plans, bootstrap stages) uses the
  **wall-clock** context-manager form (``with span("bootstrap.eval_mod")``)
  which nests through a thread-local stack.  When no tracer is active the
  helper returns a shared null context manager: one global read per site.

Exports: Chrome ``chrome://tracing`` JSON (``to_chrome_trace``) and a
structured JSONL event log (``to_jsonl`` / ``from_jsonl``) that round-trips
every span, so traces can be archived and re-inspected offline.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple


class Span(NamedTuple):
    """One named, timed interval inside a trace.

    A ``NamedTuple`` rather than a dataclass: span construction is the
    tracing hot path (one per recorded interval), and tuple construction
    skips the per-field ``object.__setattr__`` cost of frozen dataclasses.
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_s: float
    end_s: float
    #: Attribute values are stored as recorded (int, bool, str, ...) and
    #: stringified lazily at export -- recording is the hot path, exports
    #: are not.  Spans parsed back from JSONL therefore carry str values.
    attrs: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def attr_dict(self) -> Dict[str, str]:
        return {k: str(v) for k, v in self.attrs}

    def to_jsonable(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": {k: str(v) for k, v in self.attrs},
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "Span":
        return cls(
            trace_id=data["trace_id"],
            span_id=int(data["span_id"]),
            parent_id=None if data.get("parent_id") is None
            else int(data["parent_id"]),
            name=data["name"],
            category=data.get("category", ""),
            start_s=float(data["start_s"]),
            end_s=float(data["end_s"]),
            attrs=tuple(sorted(
                (str(k), str(v)) for k, v in data.get("attrs", {}).items()
            )),
        )


def _freeze_attrs(attrs: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    if not attrs:
        return ()
    return tuple(sorted(attrs.items()))


class _LiveSpan:
    """Context manager for one wall-clock span on the thread-local stack."""

    __slots__ = ("tracer", "name", "category", "attrs", "trace_id",
                 "parent_id", "span_id", "start")

    def __init__(self, tracer, name, category, attrs, trace_id):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self.trace_id = trace_id
        self.parent_id: Optional[int] = None
        self.span_id = 0
        self.start = 0.0

    def __enter__(self):
        stack = self.tracer._stack()
        if stack:
            parent_trace, parent_id = stack[-1]
            self.trace_id = self.trace_id or parent_trace
            self.parent_id = parent_id
        self.trace_id = self.trace_id or self.tracer.new_trace_id()
        self.span_id = self.tracer._next_id()
        stack.append((self.trace_id, self.span_id))
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        end = time.perf_counter()
        self.tracer._stack().pop()
        self.tracer._append(Span(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            category=self.category,
            start_s=self.start,
            end_s=end,
            attrs=_freeze_attrs(self.attrs),
        ))
        return False


class _NullSpan:
    """Shared no-op context manager used when tracing is inactive."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; mints trace/span ids; exports timelines."""

    def __init__(self):
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- id minting ------------------------------------------------------------

    def new_trace_id(self, hint: str = "trace") -> str:
        return f"{hint}-{next(self._trace_ids)}"

    # ``itertools.count.__next__`` and ``list.append`` are atomic under the
    # GIL, so the per-span hot path (record_span) takes no locks at all;
    # the lock only guards whole-list reads/clears.

    def _next_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, span: Span) -> None:
        self._spans.append(span)

    # -- recording -------------------------------------------------------------

    def record_span(
        self,
        trace_id: str,
        name: str,
        start_s: float,
        end_s: float,
        parent_id: Optional[int] = None,
        category: str = "",
        **attrs: object,
    ) -> Span:
        """Record a span with explicit (e.g. simulated-clock) timestamps."""
        # Positional construction: this is the per-span hot path, and
        # NamedTuple keyword construction costs measurably more.
        span = Span(
            trace_id,
            self._next_id(),
            parent_id,
            name,
            category,
            float(start_s),
            float(end_s),
            _freeze_attrs(attrs),
        )
        self._append(span)
        return span

    def span(self, name: str, category: str = "",
             trace_id: Optional[str] = None, **attrs: object) -> _LiveSpan:
        """Wall-clock context manager; nests via the thread-local stack."""
        return _LiveSpan(self, name, category, attrs, trace_id)

    # -- queries ---------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_for(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def span_tree(self, trace_id: str) -> List["SpanNode"]:
        """The trace's spans as parent->children forest, start-ordered."""
        spans = sorted(self.spans_for(trace_id),
                       key=lambda s: (s.start_s, s.span_id))
        nodes = {s.span_id: SpanNode(s) for s in spans}
        roots: List[SpanNode] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent.children.append(node)
            else:
                roots.append(node)
        return roots

    def format_tree(self, trace_id: str) -> str:
        """A printable indented span tree with durations and attributes."""
        lines = [f"trace {trace_id}"]

        def walk(node: "SpanNode", depth: int):
            s = node.span
            attrs = ", ".join(f"{k}={v}" for k, v in s.attrs)
            suffix = f"  [{attrs}]" if attrs else ""
            lines.append(
                f"{'  ' * depth}- {s.name} "
                f"({s.start_s:.3f}s -> {s.end_s:.3f}s, "
                f"{s.duration_s * 1e3:.3f} ms){suffix}"
            )
            for child in node.children:
                walk(child, depth + 1)

        for root in self.span_tree(trace_id):
            walk(root, 1)
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- exporters -------------------------------------------------------------

    def to_chrome_trace(self, trace_id: Optional[str] = None) -> str:
        """Chrome ``chrome://tracing`` JSON; one tid per trace id."""
        spans = self.spans if trace_id is None else self.spans_for(trace_id)
        tids: Dict[str, int] = {}
        events = []
        for span in spans:
            tid = tids.setdefault(span.trace_id, len(tids))
            events.append({
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": 0,
                "tid": tid,
                "args": dict(span.attrs),
            })
        return json.dumps({"traceEvents": events})

    def to_jsonl(self, trace_id: Optional[str] = None) -> str:
        """One JSON object per span, newline-delimited (archival log)."""
        spans = self.spans if trace_id is None else self.spans_for(trace_id)
        return "\n".join(json.dumps(s.to_jsonable(), sort_keys=True)
                         for s in spans)

    @classmethod
    def from_jsonl(cls, text: str) -> "Tracer":
        """Rebuild a tracer (read-only use) from a JSONL export."""
        tracer = cls()
        max_id = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            span = Span.from_jsonable(json.loads(line))
            tracer._append(span)
            max_id = max(max_id, span.span_id)
        tracer._ids = itertools.count(max_id + 1)
        return tracer


@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)


#: The process-wide active tracer; ``None`` keeps every ``span(...)`` call
#: site at one global read + identity test.
_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


def activate_tracer(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def deactivate_tracer() -> None:
    global _ACTIVE
    _ACTIVE = None


def span(name: str, category: str = "", **attrs: object):
    """Wall-clock span on the active tracer; shared no-op when inactive."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **attrs)
