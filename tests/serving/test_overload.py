"""Overload-control unit tests: bounded queue, shedding, eviction, cancels.

The bounded queue is a regression guard for the latent unbounded
``RequestQueue``: before overload control every submitted request queued,
so a sustained overload grew the queue (and latency) without limit.  These
tests pin the explicit rejection path, the admission controller's
three-outcome accounting, priority eviction, tenant quotas, mid-drain
cancellation, and the report/telemetry surfaces they feed.
"""

import pytest

from repro.serving import (
    AdmissionController,
    FixedServiceModel,
    OverloadPolicy,
    PriorityPolicy,
    QueueFull,
    Request,
    RequestQueue,
    Server,
    tier_name,
    tier_priority,
)
from repro.serving.overload import (
    ADMITTED,
    REASON_EVICTED,
    REASON_PRESSURE,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUOTA,
    REJECTED,
    SHED,
)
from repro.telemetry import disable_telemetry, enable_telemetry

FLAT = FixedServiceModel(lambda app, size: 10.0)


def _server(**kwargs):
    defaults = dict(
        policy="fifo", max_batch=4, max_wait_s=5.0, lanes=1, model=FLAT
    )
    defaults.update(kwargs)
    return Server(**defaults)


class TestBoundedQueue:
    def test_unbounded_by_default(self):
        queue = RequestQueue()
        for i in range(1000):
            queue.push(Request(rid=i, app="helr"), 0.0)
        assert len(queue) == 1000 and queue.pressure == 0.0

    def test_capacity_bound_raises_queue_full(self):
        """The latent-unbounded-queue regression: pushes stop at the cap."""
        queue = RequestQueue(capacity=2)
        queue.push(Request(rid=0, app="helr"), 0.0)
        queue.push(Request(rid=1, app="helr"), 0.0)
        with pytest.raises(QueueFull) as excinfo:
            queue.push(Request(rid=2, app="helr"), 0.0)
        assert excinfo.value.capacity == 2
        assert len(queue) == 2  # the failed push mutated nothing

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RequestQueue(capacity=0)

    def test_pressure_is_fill_fraction(self):
        queue = RequestQueue(capacity=4)
        assert queue.pressure == 0.0
        queue.push(Request(rid=0, app="helr"), 0.0)
        assert queue.pressure == 0.25
        for i in range(1, 4):
            queue.push(Request(rid=i, app="helr"), 0.0)
        assert queue.pressure == 1.0

    def test_pop_rid(self):
        queue = RequestQueue()
        queue.push(Request(rid=7, app="helr"), 0.0)
        assert queue.pop_rid(7, 1.0).rid == 7
        assert queue.pop_rid(7, 1.0) is None
        assert len(queue) == 0

    def test_lowest_priority_victim_selection(self):
        queue = RequestQueue()
        queue.push(Request(rid=0, app="helr", priority=0, arrival_s=0.0), 0.0)
        queue.push(Request(rid=1, app="helr", priority=0, arrival_s=5.0), 5.0)
        queue.push(Request(rid=2, app="helr", priority=1, arrival_s=1.0), 1.0)
        # Lowest priority below 2; ties break to the most recent arrival.
        assert queue.lowest_priority(below=2).rid == 1
        # No victim at or above the bar.
        assert queue.lowest_priority(below=0) is None

    def test_tenant_depth(self):
        queue = RequestQueue()
        queue.push(Request(rid=0, app="helr", tenant="a"), 0.0)
        queue.push(Request(rid=1, app="helr", tenant="a"), 0.0)
        queue.push(Request(rid=2, app="helr", tenant="b"), 0.0)
        assert queue.tenant_depth("a") == 2
        assert queue.tenant_depth("b") == 1
        assert queue.tenant_depth("nobody") == 0


class TestTiers:
    def test_tier_round_trip(self):
        assert tier_priority("premium") == 2
        assert tier_name(tier_priority("batch")) == "batch"
        assert tier_name(99) == "premium"

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="unknown service tier"):
            tier_priority("vip")

    def test_request_tier_property(self):
        assert Request(rid=0, app="helr", priority=0).tier == "batch"
        assert Request(rid=1, app="helr", priority=2).tier == "premium"


class TestAdmissionController:
    def test_pressure_shedding_below_priority(self):
        controller = AdmissionController(
            OverloadPolicy(queue_capacity=4, shed_threshold=0.5)
        )
        queue = RequestQueue(capacity=4)
        queue.push(Request(rid=0, app="helr", priority=1), 0.0)
        queue.push(Request(rid=1, app="helr", priority=1), 0.0)
        # Pressure now 0.5: batch-tier arrivals shed, standard admitted.
        shed = controller.admit(
            Request(rid=2, app="helr", priority=0), queue, 0.0
        )
        kept = controller.admit(
            Request(rid=3, app="helr", priority=1), queue, 0.0
        )
        assert (shed.outcome, shed.reason) == (SHED, REASON_PRESSURE)
        assert kept.outcome == ADMITTED
        assert len(queue) == 3

    def test_queue_full_rejection_without_victim(self):
        controller = AdmissionController(
            OverloadPolicy(queue_capacity=1, shed_threshold=1.0)
        )
        queue = RequestQueue(capacity=1)
        controller.admit(Request(rid=0, app="helr", priority=1), queue, 0.0)
        decision = controller.admit(
            Request(rid=1, app="helr", priority=1), queue, 0.0
        )
        assert (decision.outcome, decision.reason) == (
            REJECTED, REASON_QUEUE_FULL,
        )

    def test_priority_eviction(self):
        controller = AdmissionController(
            OverloadPolicy(queue_capacity=1, shed_threshold=1.0)
        )
        queue = RequestQueue(capacity=1)
        controller.admit(Request(rid=0, app="helr", priority=0), queue, 0.0)
        decision = controller.admit(
            Request(rid=1, app="helr", priority=2), queue, 0.0
        )
        assert decision.outcome == ADMITTED
        assert decision.reason == REASON_EVICTED
        assert decision.victim.rid == 0
        assert [r.rid for r in queue.requests] == [1]
        ledger = controller.ledger.as_dict()
        assert ledger["offered"] == 2
        assert ledger["admitted"] == 1 and ledger["shed"] == 1
        assert ledger[f"{SHED}:{REASON_EVICTED}"] == 1

    def test_eviction_disabled_rejects(self):
        controller = AdmissionController(
            OverloadPolicy(
                queue_capacity=1, shed_threshold=1.0,
                evict_lower_priority=False,
            )
        )
        queue = RequestQueue(capacity=1)
        controller.admit(Request(rid=0, app="helr", priority=0), queue, 0.0)
        decision = controller.admit(
            Request(rid=1, app="helr", priority=2), queue, 0.0
        )
        assert decision.outcome == REJECTED

    def test_tenant_quota(self):
        controller = AdmissionController(
            OverloadPolicy(queue_capacity=8, tenant_quota=1)
        )
        queue = RequestQueue(capacity=8)
        first = controller.admit(
            Request(rid=0, app="helr", tenant="a"), queue, 0.0
        )
        second = controller.admit(
            Request(rid=1, app="helr", tenant="a"), queue, 0.0
        )
        other = controller.admit(
            Request(rid=2, app="helr", tenant="b"), queue, 0.0
        )
        assert first.outcome == ADMITTED
        assert (second.outcome, second.reason) == (
            REJECTED, REASON_TENANT_QUOTA,
        )
        assert other.outcome == ADMITTED

    def test_ledger_conservation(self):
        controller = AdmissionController(
            OverloadPolicy(queue_capacity=2, shed_threshold=0.5)
        )
        queue = RequestQueue(capacity=2)
        for i in range(10):
            controller.admit(
                Request(rid=i, app="helr", priority=i % 3), queue, 0.0
            )
        ledger = controller.ledger
        assert ledger.offered == 10
        assert ledger.admitted + ledger.shed + ledger.rejected == 10

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            OverloadPolicy(queue_capacity=0)
        with pytest.raises(ValueError, match="shed_threshold"):
            OverloadPolicy(shed_threshold=0.0)
        with pytest.raises(ValueError, match="tenant_quota"):
            OverloadPolicy(tenant_quota=0)

    def test_policy_json_round_trip(self):
        policy = OverloadPolicy(
            queue_capacity=32, shed_threshold=0.6, tenant_quota=4
        )
        assert OverloadPolicy.from_jsonable(policy.to_jsonable()) == policy


class TestPriorityPolicy:
    def test_orders_by_tier_then_deadline(self):
        policy = PriorityPolicy()
        premium = Request(rid=0, app="helr", priority=2, arrival_s=5.0)
        batch = Request(rid=1, app="helr", priority=0, arrival_s=0.0)
        assert policy.order_key(premium) < policy.order_key(batch)

    def test_registered(self):
        from repro.serving import get_policy

        assert isinstance(get_policy("priority"), PriorityPolicy)

    def test_premium_dispatches_first_under_load(self):
        server = _server(policy="priority", max_batch=1, max_wait_s=0.0)
        server.submit(app="helr", arrival_s=0.0, priority=0)
        server.submit(app="helr", arrival_s=0.0, priority=2)
        report = server.drain()
        first = min(report.records, key=lambda r: r.start_s)
        assert first.request.priority == 2


class TestServerOverload:
    def test_no_policy_keeps_legacy_behaviour(self):
        server = _server()
        for i in range(50):
            server.submit(app="helr", arrival_s=0.0)
        report = server.drain()
        assert report.served == 50
        assert report.offered == 50
        assert report.queue_capacity is None
        assert report.admission == {}

    def test_report_conservation_under_overload(self):
        server = _server(
            overload=OverloadPolicy(queue_capacity=4, shed_threshold=0.5)
        )
        for i in range(40):
            server.submit(app="helr", arrival_s=float(i) * 0.1, priority=i % 3)
        report = server.drain()
        assert report.offered == 40
        assert (
            report.served + report.shed_count + report.rejected_count
            + report.cancelled_count
        ) == 40
        assert report.shed_count > 0 or report.rejected_count > 0
        assert report.queue_capacity == 4
        assert 0.0 < report.peak_pressure <= 1.0
        ledger = report.admission
        assert ledger["offered"] == 40
        assert (
            ledger["admitted"] + ledger["shed"] + ledger["rejected"] == 40
        )

    def test_max_queue_depth_never_exceeds_capacity(self):
        server = _server(overload=OverloadPolicy(queue_capacity=3))
        for i in range(30):
            server.submit(app="helr", arrival_s=0.0)
        report = server.drain()
        assert report.max_queue_depth <= 3

    def test_premium_evicts_queued_batch_request(self):
        server = _server(
            policy="priority",
            overload=OverloadPolicy(queue_capacity=2, shed_threshold=1.0),
        )
        server.submit(app="helr", arrival_s=0.0, priority=0)
        server.submit(app="helr", arrival_s=0.0, priority=0)
        premium = server.submit(app="helr", arrival_s=0.0, priority=2)
        report = server.drain()
        assert premium.rid in {r.request.rid for r in report.records}
        assert report.shed_count == 1
        assert report.shed[0].priority == 0

    def test_format_reports_overload_line(self):
        server = _server(
            overload=OverloadPolicy(queue_capacity=2, shed_threshold=0.5)
        )
        for i in range(10):
            server.submit(app="helr", arrival_s=0.0, priority=i % 3)
        text = server.drain().format()
        assert "overload   :" in text
        assert "capacity 2" in text
        assert "per-tier outcomes" in text

    def test_per_tier_outcomes(self):
        server = _server(
            policy="priority",
            overload=OverloadPolicy(queue_capacity=2, shed_threshold=0.5),
        )
        for i in range(12):
            server.submit(app="helr", arrival_s=0.0, priority=i % 3)
        tiers = server.drain().per_tier()
        assert set(tiers) <= {"batch", "standard", "premium"}
        total = sum(
            entry["served"] + entry["shed"] + entry["rejected"]
            + entry["cancelled"]
            for entry in tiers.values()
        )
        assert total == 12


class TestCancellation:
    def test_cancel_before_arrival_never_queues(self):
        server = _server()
        request = server.submit(app="helr", arrival_s=10.0)
        server.cancel(request.rid, at_s=5.0)
        report = server.drain()
        assert report.cancelled_count == 1
        assert report.served == 0

    def test_cancel_while_queued(self):
        server = _server(max_wait_s=50.0)
        served = server.submit(app="helr", arrival_s=0.0)
        doomed = server.submit(app="helr", arrival_s=0.0)
        # Far-future arrival keeps the window open past the cancel time.
        server.submit(app="packbootstrap", arrival_s=1000.0)
        server.cancel(doomed.rid, at_s=10.0)
        report = server.drain()
        cancelled = {r.rid for r in report.cancelled}
        assert cancelled == {doomed.rid}
        assert served.rid in {r.request.rid for r in report.records}

    def test_late_cancel_is_noop(self):
        server = _server(max_wait_s=0.0)
        request = server.submit(app="helr", arrival_s=0.0)
        server.cancel(request.rid, at_s=100.0)  # batch dispatched at t=0
        report = server.drain()
        assert report.served == 1
        assert report.cancelled_count == 0

    def test_earliest_cancel_wins(self):
        server = _server()
        request = server.submit(app="helr", arrival_s=10.0)
        server.cancel(request.rid, at_s=50.0)
        server.cancel(request.rid, at_s=5.0)
        assert server.drain().cancelled_count == 1

    def test_negative_cancel_time_rejected(self):
        with pytest.raises(ValueError, match="cancel time"):
            _server().cancel(0, at_s=-1.0)


class TestOverloadTelemetry:
    def test_shed_and_pressure_metrics(self):
        registry = enable_telemetry()
        registry.reset()
        try:
            server = _server(
                overload=OverloadPolicy(queue_capacity=2, shed_threshold=0.5)
            )
            for i in range(10):
                server.submit(app="helr", arrival_s=0.0, priority=i % 2)
            report = server.drain()
            snapshot = registry.snapshot()
            assert "serving_queue_pressure_peak" in snapshot
            dropped = sum(
                entry["value"]
                for name in (
                    "serving_requests_shed_total",
                    "serving_requests_rejected_total",
                    "serving_requests_cancelled_total",
                )
                for entry in snapshot.get(name, {}).get("series", [])
            )
            assert dropped == report.offered - report.served
        finally:
            disable_telemetry()
