"""PackBootstrap: the CKKS bootstrapping workload (Table 5, column 1).

Bootstrapping refreshes a ciphertext's multiplicative budget through four
phases -- ModRaise, CoeffToSlot (homomorphic DFT via BSGS linear
transforms), EvalMod (polynomial approximation of the modular reduction)
and SlotToCoeff.  The paper evaluates it with Double Rescale integrated
(small WordSize needs DS for precision, Section 2.1).

This module builds the *operation schedule* -- how many of each primitive
operation run at which level -- from the standard BSGS/Chebyshev structure.
The schedule drives the performance model; absolute times are synthetic,
but every implementation (Neo / TensorFHE / HEonGPU / CPU) runs the same
schedule, so the cross-system ratios are meaningful.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict

from ..ckks.params import ParameterSet
from ..core.neo_context import NeoContext

Schedule = Dict[int, Dict[str, int]]


class PackBootstrap:
    """Schedule builder for one (batched) bootstrapping.

    Args:
        cts_stages: matrices in the CoeffToSlot DFT factorisation (default 3,
            as in 100x/ARK).
        stc_stages: matrices in SlotToCoeff.
        evalmod_degree: degree of the Chebyshev approximation of the scaled
            sine (31 is typical for 128-bit parameters with DS).
        use_double_rescale: use DS after EvalMod multiplications (the paper's
            default for WordSize <= 36).
    """

    name = "packbootstrap"

    def __init__(
        self,
        cts_stages: int = 3,
        stc_stages: int = 3,
        evalmod_degree: int = 63,
        double_angle_steps: int = 3,
        use_double_rescale: bool = True,
    ):
        self.cts_stages = cts_stages
        self.stc_stages = stc_stages
        self.evalmod_degree = evalmod_degree
        self.double_angle_steps = double_angle_steps
        self.use_double_rescale = use_double_rescale

    def schedule(self, params: ParameterSet) -> Schedule:
        """The level -> {operation: count} map of one bootstrapping."""
        table: Schedule = defaultdict(lambda: defaultdict(int))
        level = params.max_level
        slots = params.degree // 2

        # --- CoeffToSlot: `cts_stages` BSGS linear transforms ----------------
        # Each stage multiplies by a sparse DFT factor with radix
        # slots**(1/stages); BSGS needs ~2*sqrt(2*radix) hoisted rotations
        # plus giant-step combination rotations, and `2*radix` diagonal
        # plaintext multiplications (the factor matrices have 2r diagonals
        # after multiplexing, as in 100x/ARK).
        radix = max(2, round(slots ** (1.0 / self.cts_stages)))
        baby_giant = 2 * max(1, round(math.sqrt(2 * radix))) + radix // 2
        for _ in range(self.cts_stages):
            table[level]["hrotate"] += baby_giant
            table[level]["pmult"] += 2 * radix
            table[level]["hadd"] += 2 * radix
            table[level]["rescale"] += 1
            level -= 1

        # --- EvalMod: Chebyshev evaluation of the scaled sine -----------------
        # Paterson-Stockmeyer: ~2*sqrt(d) non-scalar multiplications, each
        # followed by a rescale (or a DS every other step at small WordSize).
        nonscalar = 2 * max(1, round(math.sqrt(self.evalmod_degree)))
        depth = max(2, math.ceil(math.log2(self.evalmod_degree + 1)))
        per_level = max(1, math.ceil(nonscalar / depth)) + 2
        for _ in range(depth):
            table[level]["hmult"] += per_level
            table[level]["padd"] += per_level
            if self.use_double_rescale:
                table[level]["double_rescale"] += max(1, per_level // 2)
                level -= 2
            else:
                table[level]["rescale"] += per_level
                level -= 1
            if level < self.stc_stages + self.double_angle_steps + 1:
                break

        # --- Double-angle recovery of the sine argument ------------------------
        # cos(2x) = 2cos(x)^2 - 1 applied `double_angle_steps` times, one
        # squaring and one level each.
        for _ in range(self.double_angle_steps):
            level = max(level, self.stc_stages + 1)
            table[level]["hmult"] += 1
            table[level]["padd"] += 1
            table[level]["rescale"] += 1
            level -= 1

        # --- SlotToCoeff ------------------------------------------------------
        for _ in range(self.stc_stages):
            level = max(level, 1)
            table[level]["hrotate"] += baby_giant
            table[level]["pmult"] += 2 * radix
            table[level]["hadd"] += 2 * radix
            table[level]["rescale"] += 1
            level -= 1

        # ModRaise + conjugation clean-up.
        top = params.max_level
        table[top]["padd"] += 2
        table[top]["hrotate"] += 1  # conjugation for imaginary-part removal
        return {lvl: dict(ops) for lvl, ops in table.items()}

    def time_s(self, ctx: NeoContext) -> float:
        """Per-ciphertext (batch-amortised) time of one bootstrapping."""
        return ctx.schedule_time_s(self.schedule(ctx.params)) / ctx.batch

    def operation_totals(self, params: ParameterSet) -> Dict[str, int]:
        """Total operation counts across all levels (for reporting)."""
        totals: Dict[str, int] = defaultdict(int)
        for ops in self.schedule(params).values():
            for op, count in ops.items():
                totals[op] += count
        return dict(totals)
