"""Regenerate the paper's headline performance results in one report.

Prints the Table 5 application matrix, the Table 6 operation row for Neo,
the Table 7 kernel speedups and the Fig. 14 ablation -- everything the
abstract claims -- from the performance model.

Run:  python examples/performance_report.py
"""

from repro.analysis.paper_data import HEADLINES, TABLE7_SPEEDUPS
from repro.analysis.reporting import format_table
from repro.apps import standard_applications
from repro.baselines import CpuModel, HeonGpuModel, TensorFheModel
from repro.core import ABLATION_STEPS, NEO_CONFIG, NeoContext


def application_matrix():
    systems = [
        ("CPU(H)", CpuModel("H")),
        ("TensorFHE(A)", TensorFheModel("A")),
        ("TensorFHE(B)", TensorFheModel("B")),
        ("HEonGPU(E)", HeonGpuModel("E")),
        ("Neo(C)", NeoContext("C", config=NEO_CONFIG)),
        ("Neo(D)", NeoContext("D", config=NEO_CONFIG)),
    ]
    apps = standard_applications()
    rows = []
    for label, ctx in systems:
        rows.append([label] + [f"{app.time_s(ctx):.2f}" for app in apps])
    print(format_table(
        ["system"] + [app.name for app in apps],
        rows,
        title="Application execution time (seconds, per ciphertext batch)",
    ))
    neo = {app.name: app.time_s(systems[4][1]) for app in apps}
    best_tfhe = {
        app.name: min(app.time_s(systems[1][1]), app.time_s(systems[2][1]))
        for app in apps
    }
    speedups = [best_tfhe[n] / neo[n] for n in neo]
    print(
        f"\nmean speedup over TensorFHE (best params): "
        f"{sum(speedups) / len(speedups):.2f}x "
        f"(paper: {HEADLINES['speedup_vs_tensorfhe_best_params']}x)\n"
    )


def operation_row():
    neo = NeoContext("C", config=NEO_CONFIG)
    ops = ("hmult", "hrotate", "pmult", "hadd", "padd", "rescale")
    rows = [["Neo(C)"] + [f"{neo.operation_time_us(op, 35):.1f}" for op in ops],
            ["paper"] + ["3472.5", "3422.1", "81.7", "46.1", "46.4", "114.3"]]
    print(format_table(
        ["system"] + [o.upper() for o in ops], rows,
        title="Operation time at l = 35 (microseconds per ciphertext)",
    ))
    print()


def kernel_speedups():
    neo = NeoContext("B", config=NEO_CONFIG.with_overrides(keyswitch="hybrid"))
    tfhe = TensorFheModel("B")
    rows = []
    for kernel in ("bconv", "ip", "ntt"):
        ratio = neo.kernel_throughput(kernel) / tfhe.kernel_throughput(kernel)
        rows.append([kernel, f"{ratio:.2f}x", f"{TABLE7_SPEEDUPS[kernel]}x"])
    print(format_table(
        ["kernel", "measured speedup", "paper speedup"], rows,
        title="Kernel throughput, Neo vs TensorFHE (Set B)",
    ))
    print()


def ablation():
    rows = []
    base = None
    for label, config in ABLATION_STEPS:
        ctx = NeoContext("C" if config.keyswitch == "klss" else "B", config=config)
        t = ctx.operation_time_us("hmult", 35)
        base = base or t
        rows.append([label, f"{t:.0f}", f"{t / base:.3f}"])
    print(format_table(
        ["optimisation step", "HMULT us", "normalised"], rows,
        title="Fig. 14 ablation on HMULT (l = 35)",
    ))


def main():
    application_matrix()
    operation_row()
    kernel_speedups()
    ablation()


if __name__ == "__main__":
    main()
