"""Noise measurement and budget estimation.

CKKS correctness is a budget question: the invariant noise must stay well
below the scale, and the scaled message below the remaining modulus.  This
module provides

* :func:`measure_noise_bits` -- the *ground truth*: decrypt with the secret
  key and compare against a reference plaintext (test/diagnostic use only).
* :func:`remaining_budget_bits` -- how many bits of modulus stand between
  the scaled message and overflow.
* :class:`NoiseEstimator` -- conservative analytic propagation of noise
  bounds through the evaluator's operations, usable without any key.  The
  test-suite checks the estimate upper-bounds the measurement on random
  circuits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .ciphertext import Ciphertext
from .encoder import CkksEncoder, Plaintext
from .keys import SecretKey
from .params import CkksParameters


def exact_decrypt_poly(ct: Ciphertext, secret: SecretKey):
    """The raw decryption polynomial ``c0 + c1*s (+ c2*s^2)``, centred."""
    s = secret.poly(ct.c0.basis)
    message = ct.c0.add(ct.c1.multiply(s).from_ntt())
    if ct.c2 is not None:
        s_sq = s.multiply(s).from_ntt()
        message = message.add(ct.c2.multiply(s_sq).from_ntt())
    return message.to_int_coeffs()


def measure_noise_bits(
    ct: Ciphertext, secret: SecretKey, reference: Plaintext
) -> float:
    """log2 of the largest coefficient error versus `reference`.

    `reference` must be encoded at the ciphertext's level and scale (the
    exact plaintext the ciphertext is supposed to carry).
    """
    got = exact_decrypt_poly(ct, secret)
    want = reference.poly.to_int_coeffs()
    diff = np.abs((got - want).astype(object))
    worst = max((int(d) for d in diff), default=0)
    return math.log2(worst) if worst else 0.0


def remaining_budget_bits(ct: Ciphertext, noise_bits: float) -> float:
    """Bits of modulus headroom above ``scale * message + noise``.

    When this reaches zero the ciphertext wraps and decryption fails.
    """
    modulus_bits = math.log2(ct.c0.basis.product)
    used = max(math.log2(ct.scale), noise_bits)
    return modulus_bits - used


@dataclass
class NoiseEstimate:
    """An upper bound on the coefficient noise, in bits."""

    bits: float

    def __repr__(self) -> str:
        return f"NoiseEstimate({self.bits:.1f} bits)"


class NoiseEstimator:
    """Conservative analytic noise propagation (no key material needed).

    Bounds follow the usual CKKS heuristics with a safety margin: fresh
    encryption noise ~ ``sigma * (2*sqrt(N) + N)``; addition sums bounds;
    plaintext multiplication scales by the plaintext's canonical norm;
    ciphertext multiplication cross-multiplies message and noise; rescale
    divides by the dropped prime and adds a rounding term ~ ``sqrt(N)``;
    key switching adds a term governed by the special modulus.
    """

    #: extra safety margin (bits) applied to every bound.
    MARGIN_BITS = 2.0

    def __init__(self, params: CkksParameters):
        self.params = params
        self.degree = params.degree
        self.sigma = params.error_std

    def _wrap(self, value: float) -> NoiseEstimate:
        return NoiseEstimate(math.log2(max(value, 1.0)) + self.MARGIN_BITS)

    def fresh(self) -> NoiseEstimate:
        n = self.degree
        bound = self.sigma * (2 * math.sqrt(n) + n)
        return self._wrap(bound)

    def after_add(self, a: NoiseEstimate, b: NoiseEstimate) -> NoiseEstimate:
        return NoiseEstimate(max(a.bits, b.bits) + 1.0)

    def after_multiply_plain(
        self, noise: NoiseEstimate, plaintext_magnitude: float
    ) -> NoiseEstimate:
        """`plaintext_magnitude`: max slot magnitude of the plaintext."""
        pt_norm = abs(plaintext_magnitude) * self.params.scale
        # Log-domain: ``2**noise.bits`` overflows floats past ~1024 bits,
        # which deep (or already-dead) circuits legitimately reach.
        factor = pt_norm * math.sqrt(self.degree)
        if factor <= 0.0:
            return NoiseEstimate(self.MARGIN_BITS)
        return NoiseEstimate(
            max(noise.bits + math.log2(factor), 0.0) + self.MARGIN_BITS
        )

    def after_multiply(
        self,
        a: NoiseEstimate,
        b: NoiseEstimate,
        message_scale_bits: Optional[float] = None,
    ) -> NoiseEstimate:
        """Noise of a ciphertext-ciphertext product (before key switching)."""
        msg = (
            math.log2(self.params.scale)
            if message_scale_bits is None
            else message_scale_bits
        )
        # noise_a * msg_b + noise_b * msg_a + noise_a * noise_b
        term = max(a.bits + msg, b.bits + msg, a.bits + b.bits)
        return NoiseEstimate(term + 0.5 * math.log2(self.degree) + 1.0)

    def after_keyswitch(self, noise: NoiseEstimate, level: int) -> NoiseEstimate:
        """Key-switch noise: digit sums scaled down by the special modulus."""
        beta = self.params.beta(level)
        digit_bits = self.params.wordsize * self.params.alpha
        added = (
            digit_bits
            + math.log2(beta * self.degree * self.sigma * 8)
            - math.log2(self.params.special_product)
        )
        return NoiseEstimate(max(noise.bits, added, 0.0) + 1.0)

    def after_rescale(self, noise: NoiseEstimate, dropped_prime: int) -> NoiseEstimate:
        rounded_bits = max(noise.bits - math.log2(dropped_prime), 0.0)
        rounding_term = math.sqrt(self.degree) * (self.params.alpha + 2)
        # log2(2**a + r) computed without leaving the log domain, so noise
        # bounds beyond float range (deep circuits) stay finite.
        term_bits = math.log2(rounding_term)
        hi = max(rounded_bits, term_bits)
        lo = min(rounded_bits, term_bits)
        combined = hi + math.log2(1.0 + 2.0 ** (lo - hi))
        return NoiseEstimate(max(combined, 0.0) + self.MARGIN_BITS)

    def multiplication_depth_budget(self) -> int:
        """How many multiply+rescale steps fit before the noise eats the
        message at the last level (a coarse planning aid)."""
        level = self.params.max_level
        noise = self.fresh()
        depth = 0
        while level > 0:
            noise = self.after_multiply(noise, noise)
            noise = self.after_keyswitch(noise, level)
            noise = self.after_rescale(noise, self.params.moduli[level])
            level -= 1
            if noise.bits >= math.log2(self.params.scale):
                break
            depth += 1
        return depth
