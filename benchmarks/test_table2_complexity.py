"""Table 2: kernel complexity of the Hybrid and KLSS KeySwitch methods."""

from repro.analysis.complexity import (
    TABLE2_ROWS,
    complexity_table,
    total_complexity,
)
from repro.analysis.reporting import format_table
from repro.ckks.params import get_set


def _build_table():
    params = get_set("C")
    return complexity_table(params, level=params.max_level)


def test_table2_complexity(benchmark):
    table = benchmark(_build_table)
    rows = [
        [step, table["Hybrid"][step], table["KLSS"][step]] for step in TABLE2_ROWS
    ]
    rows.append(
        ["TOTAL", total_complexity(table["Hybrid"]), total_complexity(table["KLSS"])]
    )
    print()
    print(
        format_table(
            ["Breakdown", "Hybrid", "KLSS"],
            rows,
            title="Table 2: KeySwitch kernel complexity at Set C, l = 35 "
            "(limb-operations)",
        )
    )
    # Shape assertions: the reason the paper adopts KLSS.
    assert table["KLSS"]["Mod Up"] < table["Hybrid"]["Mod Up"]
    assert table["KLSS"]["NTT"] < table["Hybrid"]["NTT"]
    assert table["KLSS"]["Inner Product"] > 0
    assert total_complexity(table["KLSS"]) < total_complexity(table["Hybrid"])
