"""Hoisted rotations: share one ModUp across many rotations.

Rotating the same ciphertext by several steps -- the inner loop of every
BSGS linear transform -- naively repeats the full KeySwitch per step.  The
hoisting trick (Halevi-Shoup) exploits that digit decomposition and ModUp
act coefficient-wise, hence commute with the Galois automorphism::

    digits(tau_k(c1)) = tau_k(digits(c1))

so the expensive decompose + ModUp runs **once**, and each rotation only
pays the automorphism permutation, the inner product against its own key,
and ModDown.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .ciphertext import Ciphertext
from .keys import GaloisKeys, rotation_galois_power
from .keyswitch import hybrid
from .params import CkksParameters


class HoistedRotator:
    """Precomputes the raised digits of one ciphertext for many rotations."""

    def __init__(self, ct: Ciphertext, params: CkksParameters):
        if ct.c2 is not None:
            raise ValueError("hoisting requires a relinearised ciphertext")
        self.ct = ct
        self.params = params
        self.level = ct.level
        digits = hybrid.decompose_digits(ct.c1, params)
        #: ModUp'd digits of c1, shared by every rotation (the hoisted part).
        self.raised = [
            hybrid.mod_up(digit, j, params, self.level)
            for j, digit in enumerate(digits)
        ]

    def rotate(self, steps: int, galois_keys: GaloisKeys) -> Ciphertext:
        """One rotation using the shared raised digits."""
        params = self.params
        power = rotation_galois_power(steps, params.degree)
        key = galois_keys.get(power)
        pairs = hybrid._key_pairs_at_level(key, params, self.level)
        pq = params.pq_basis(self.level)
        from ..math.polynomial import RnsPolynomial

        acc_b = RnsPolynomial.zero(self.ct.degree, pq, is_ntt=True)
        acc_a = RnsPolynomial.zero(self.ct.degree, pq, is_ntt=True)
        for j, raised in enumerate(self.raised):
            rotated = raised.automorphism(power).to_ntt()
            b_j, a_j = pairs[j]
            acc_b = acc_b.add(rotated.multiply(b_j))
            acc_a = acc_a.add(rotated.multiply(a_j))
        p0 = hybrid.mod_down(acc_b.from_ntt(), params, self.level)
        p1 = hybrid.mod_down(acc_a.from_ntt(), params, self.level)
        rotated_c0 = self.ct.c0.automorphism(power)
        return Ciphertext(
            rotated_c0.add(p0), p1, self.ct.scale, params
        )

    def rotate_many(
        self, steps: Sequence[int], galois_keys: GaloisKeys
    ) -> Dict[int, Ciphertext]:
        """All requested rotations off the single hoisted ModUp."""
        return {s: self.rotate(s, galois_keys) for s in steps}


def hoisted_rotations(
    ct: Ciphertext,
    steps: Sequence[int],
    galois_keys: GaloisKeys,
    params: CkksParameters,
) -> Dict[int, Ciphertext]:
    """Convenience wrapper: rotate `ct` by every step with one ModUp."""
    return HoistedRotator(ct, params).rotate_many(steps, galois_keys)


def hoisting_modup_savings(beta: int, rotations: int) -> float:
    """Fraction of ModUp work saved versus naive per-rotation KeySwitch.

    Naive: ``rotations * beta`` digit conversions; hoisted: ``beta``.
    """
    if rotations < 1:
        raise ValueError("need at least one rotation")
    return 1.0 - 1.0 / rotations
