"""Configuration autotuning: search the plan space instead of hand-picking it.

Two layers:

* :func:`tune_keyswitch` -- the paper's Table 8 / Fig. 16 sweep: rank the
  KLSS ``(dnum, alpha~, WordSize_T)`` grid by KeySwitch time.  The sweep
  shares one :class:`~repro.core.trace_cache.TraceCache` and the memoised
  kernel-cost builders across all grid points and reports the cache hit
  rates per result; ``cold_sweep=True`` restores the old
  rebuild-everything-per-point behaviour as a baseline.

* :func:`tune_app` -- the multi-dimensional search the ROADMAP asks for:
  WordSize_T, dnum/alpha~, the key-switch method, the NTT engine
  (four-step GEMM vs radix-16 vs butterfly) and its execution unit, the
  BConv unit, fusion, batch-tile and NTT-chunk shapes, and the bootstrap
  BSGS split -- minimised per (params, app, device) under the hierarchical
  memory model (:mod:`repro.gpu.memory_model`).  Pruning keeps the Table 5
  sweep inside CI time: dominated KLSS grid points are eliminated on
  two-level KeySwitch probes, and engine candidates are only evaluated on
  the full application when their cheap KeySwitch probe is within a cutoff
  of the incumbent's.

Results are cached in a :class:`TuningStore` keyed by (params, app,
device, model version), surfaced through the telemetry cache directory so
``ServingReport.caches`` picks it up.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ckks.params import KlssConfig, ParameterSet, get_set
from ..gpu.device import A100, DeviceSpec
from ..telemetry.stats import CacheStats, register_cache
from .bconv_matmul import bconv_cost
from .ip_matmul import ip_cost
from .neo_context import NeoContext
from .pipeline import NEO_CONFIG, PipelineConfig
from .radix16_ntt import ntt_cost
from .trace_cache import TraceCache

#: Version of the traffic/pricing model; part of every tuning-store key so
#: stored optima are invalidated when the model changes shape.
MODEL_VERSION = 1

#: An engine candidate's KeySwitch probe must be within this factor of the
#: incumbent's probe to earn a full-application evaluation.
PROBE_CUTOFF = 1.3

_COST_BUILDERS = (ntt_cost, bconv_cost, ip_cost)


def _builder_cache_counts() -> Tuple[int, int]:
    """(hits, misses) summed over the memoised kernel-cost builders."""
    hits = misses = 0
    for builder in _COST_BUILDERS:
        info = builder.cache_info()
        hits += info.hits
        misses += info.misses
    return hits, misses


def clear_cost_builder_caches() -> None:
    """Drop the kernel-cost builder memos (the cold-sweep baseline)."""
    for builder in _COST_BUILDERS:
        builder.cache_clear()


# ---------------------------------------------------------------------------
# KLSS grid sweep (Table 8 / Fig. 16)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TuningResult:
    """One evaluated configuration of the KLSS grid."""

    dnum: int
    alpha_tilde: int
    wordsize_t: int
    keyswitch_us: float
    alpha_prime: int
    #: Kernel-cost/trace cache hits and misses this grid point incurred
    #: (shared-cache sweeps hit on every shape a previous point priced).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def config(self) -> KlssConfig:
        return KlssConfig(wordsize_t=self.wordsize_t, alpha_tilde=self.alpha_tilde)


def tune_keyswitch(
    base: ParameterSet,
    level: Optional[int] = None,
    dnums: Sequence[int] = (3, 4, 6, 9, 12, 18),
    alpha_tildes: Sequence[int] = (3, 4, 5, 6, 7, 8),
    wordsizes_t: Sequence[int] = (36, 48, 64),
    device: DeviceSpec = A100,
    config: PipelineConfig = NEO_CONFIG,
    cold_sweep: bool = False,
    trace_cache: Optional[TraceCache] = None,
) -> List[TuningResult]:
    """Exhaustively evaluate the KLSS hyper-parameter grid.

    Returns results sorted fastest-first.  Configurations whose auxiliary
    basis would be degenerate (``alpha' < 2``) are skipped.

    One :class:`TraceCache` (and the process-wide kernel-cost memos) are
    shared across the whole sweep, so a kernel shape two grid points have
    in common -- e.g. the final ModDown/NTT over the unchanged Q basis --
    is priced once; each result reports the hits/misses its point saw.
    ``cold_sweep=True`` keeps the old behaviour as a measurable baseline:
    every point gets a fresh empty cache and cleared builder memos.
    """
    level = base.max_level if level is None else level
    cache = trace_cache if trace_cache is not None else TraceCache()
    results: List[TuningResult] = []
    for dnum in dnums:
        for alpha_tilde in alpha_tildes:
            for wordsize_t in wordsizes_t:
                params = dataclasses.replace(
                    base,
                    dnum=dnum,
                    klss=KlssConfig(
                        wordsize_t=wordsize_t, alpha_tilde=alpha_tilde
                    ),
                )
                try:
                    alpha_prime, _, _ = params.klss_dims(level)
                except ValueError:
                    continue
                if alpha_prime < 2:
                    continue
                if cold_sweep:
                    clear_cost_builder_caches()
                    point_cache = TraceCache(maxsize=0)
                else:
                    point_cache = cache
                hits0, misses0 = _builder_cache_counts()
                trace0 = point_cache.stats.snapshot()
                ctx = NeoContext(
                    params, device=device, config=config, trace_cache=point_cache
                )
                keyswitch_us = ctx.keyswitch_time_us(level)
                hits1, misses1 = _builder_cache_counts()
                trace1 = point_cache.stats.snapshot()
                results.append(
                    TuningResult(
                        dnum=dnum,
                        alpha_tilde=alpha_tilde,
                        wordsize_t=wordsize_t,
                        keyswitch_us=keyswitch_us,
                        alpha_prime=alpha_prime,
                        cache_hits=(hits1 - hits0) + (trace1.hits - trace0.hits),
                        cache_misses=(misses1 - misses0)
                        + (trace1.misses - trace0.misses),
                    )
                )
    if not results:
        raise ValueError("no admissible configuration in the search grid")
    return sorted(results, key=lambda r: r.keyswitch_us)


def best_configuration(
    base: ParameterSet, level: Optional[int] = None, **kwargs
) -> TuningResult:
    """The fastest configuration of :func:`tune_keyswitch`'s grid."""
    return tune_keyswitch(base, level=level, **kwargs)[0]


def hybrid_vs_best_klss(
    base: ParameterSet,
    level: Optional[int] = None,
    device: DeviceSpec = A100,
    config: PipelineConfig = NEO_CONFIG,
) -> Tuple[float, TuningResult]:
    """(Hybrid KeySwitch time, best KLSS result) for a base set."""
    level = base.max_level if level is None else level
    hybrid_ctx = NeoContext(
        base, device=device, config=config.with_overrides(keyswitch="hybrid")
    )
    return hybrid_ctx.keyswitch_time_us(level), best_configuration(
        base, level=level, device=device, config=config
    )


# ---------------------------------------------------------------------------
# Multi-dimensional application search
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SearchBudget:
    """Grid extents of one :func:`tune_app` profile."""

    dnums: Tuple[int, ...]
    alpha_tildes: Tuple[int, ...]
    wordsizes_t: Tuple[int, ...]
    #: Non-dominated KeySwitch candidates carried into the engine stage.
    ks_keep: int
    ntt_tiles: Tuple[Optional[int], ...]
    batch_tiles: Tuple[Optional[int], ...]
    fused: Tuple[bool, ...]
    #: Bootstrap CtS/StC stage counts to try (the BSGS split axis).
    bsgs_stages: Tuple[int, ...]
    #: Hard cap on full-application evaluations.
    max_full_evals: int


BUDGETS: Dict[str, SearchBudget] = {
    # CI smoke / serving-time tuning: seconds, still covers every axis.
    "quick": SearchBudget(
        dnums=(6, 9),
        alpha_tildes=(4, 5, 6),
        wordsizes_t=(48,),
        ks_keep=2,
        ntt_tiles=(None, 32),
        batch_tiles=(None, 16),
        fused=(True,),
        bsgs_stages=(3,),
        max_full_evals=16,
    ),
    # The real search (Table 8-scale grids on every axis).
    "full": SearchBudget(
        dnums=(3, 4, 6, 9, 12, 18),
        alpha_tildes=(3, 4, 5, 6, 7, 8),
        wordsizes_t=(36, 48, 64),
        ks_keep=4,
        ntt_tiles=(None, 16, 32, 64),
        batch_tiles=(None, 8, 16, 32),
        fused=(True, False),
        bsgs_stages=(2, 3, 4),
        max_full_evals=48,
    ),
}


@dataclass(frozen=True)
class TunedConfig:
    """One fully evaluated point of the application search space."""

    params_name: str
    app: str
    device_name: str
    keyswitch: str
    dnum: int
    alpha_tilde: Optional[int]
    wordsize_t: Optional[int]
    ntt_style: str
    ntt_component: str
    bconv_component: str
    ip_component: str
    fused: bool
    ntt_tile: Optional[int]
    batch_tile: Optional[int]
    bsgs_stages: Optional[int]
    #: Modeled per-ciphertext application time under the hierarchical model.
    time_s: float
    #: Same app under NEO_CONFIG on the base params (``None`` when the
    #: fixed config is infeasible on the device, e.g. FP64 TCU on an L4).
    baseline_time_s: Optional[float]

    # -- reconstruction ---------------------------------------------------------

    def pipeline_config(self, base: PipelineConfig = NEO_CONFIG) -> PipelineConfig:
        """The :class:`PipelineConfig` this point describes."""
        return base.with_overrides(
            keyswitch=self.keyswitch,
            ntt_style=self.ntt_style,
            ntt_component=self.ntt_component,
            bconv_component=self.bconv_component,
            ip_component=self.ip_component,
            fused=self.fused,
            ntt_tile=self.ntt_tile,
            batch_tile=self.batch_tile,
        )

    def parameter_set(self, base: ParameterSet) -> ParameterSet:
        """The :class:`ParameterSet` this point describes, derived from `base`."""
        klss = base.klss
        if self.keyswitch == "klss":
            klss = KlssConfig(
                wordsize_t=self.wordsize_t, alpha_tilde=self.alpha_tilde
            )
        return dataclasses.replace(base, dnum=self.dnum, klss=klss)

    @property
    def speedup(self) -> Optional[float]:
        """Modeled gain over the fixed NEO_CONFIG (``None`` if infeasible)."""
        if self.baseline_time_s is None or self.time_s <= 0:
            return None
        return self.baseline_time_s / self.time_s

    def axes(self) -> Dict[str, object]:
        """The searched axes as a flat dict (what differs between devices)."""
        return {
            "keyswitch": self.keyswitch,
            "dnum": self.dnum,
            "alpha_tilde": self.alpha_tilde,
            "wordsize_t": self.wordsize_t,
            "ntt_style": self.ntt_style,
            "ntt_component": self.ntt_component,
            "bconv_component": self.bconv_component,
            "ip_component": self.ip_component,
            "fused": self.fused,
            "ntt_tile": self.ntt_tile,
            "batch_tile": self.batch_tile,
            "bsgs_stages": self.bsgs_stages,
        }

    def label(self) -> str:
        """Compact human-readable descriptor for reports and telemetry."""
        ks = self.keyswitch
        if ks == "klss":
            ks = f"klss(d{self.dnum},a{self.alpha_tilde},T{self.wordsize_t})"
        else:
            ks = f"hybrid(d{self.dnum})"
        tiles = f"ntt_tile={self.ntt_tile},batch_tile={self.batch_tile}"
        return (
            f"{ks} {self.ntt_style}/{self.ntt_component} "
            f"bconv={self.bconv_component} {tiles}"
        )

    def to_jsonable(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_jsonable(payload: Dict[str, object]) -> "TunedConfig":
        return TunedConfig(**payload)


@dataclass(frozen=True)
class TuningReport:
    """Everything one :func:`tune_app` run produced."""

    app: str
    params_name: str
    device_name: str
    budget: str
    #: Fully evaluated points, fastest first (the ranked frontier).
    results: Tuple[TunedConfig, ...]
    baseline_time_s: Optional[float]
    #: Cheap KeySwitch probes performed (grid + engine candidates).
    probed: int
    #: Full-application evaluations performed.
    evaluated: int
    #: KLSS grid points eliminated by two-level probe domination.
    pruned_dominated: int
    #: Engine candidates dropped by the probe cutoff / evaluation cap.
    pruned_cutoff: int
    cache_hits: int
    cache_misses: int

    @property
    def best(self) -> TunedConfig:
        return self.results[0]

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def to_jsonable(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["cache_hit_rate"] = self.cache_hit_rate
        return payload


@dataclass(frozen=True)
class _KsCandidate:
    """A KeySwitch-stage candidate: method + parameter overrides.

    ``probe_times`` holds KeySwitch times at (level, engine-family) probe
    points -- a grid point survives if no other point beats it *everywhere*
    (a point may lose badly under GEMM NTTs yet win under butterfly, and
    the best full configuration for it is not known yet).
    """

    keyswitch: str
    dnum: int
    alpha_tilde: Optional[int]
    wordsize_t: Optional[int]
    params: ParameterSet
    probe_times: Tuple[float, ...] = ()

    def dominates(self, other: "_KsCandidate") -> bool:
        """Probe-domination: at least as fast everywhere, faster somewhere."""
        if len(self.probe_times) != len(other.probe_times):
            return False
        le = all(a <= b for a, b in zip(self.probe_times, other.probe_times))
        lt = any(a < b for a, b in zip(self.probe_times, other.probe_times))
        return le and lt

    def rank_key(self, engines: int, levels: int) -> float:
        """Best engine family's probe-time sum (what stage B would pick)."""
        sums = [
            sum(self.probe_times[e * levels : (e + 1) * levels])
            for e in range(engines)
        ]
        return min(sums)


def _feasible_components(device: DeviceSpec) -> List[str]:
    """GEMM execution units `device` can actually run."""
    units = []
    if device.tcu_fp64_tflops > 0:
        units.append("tcu_fp64")
    if device.tcu_int8_tops > 0:
        units.append("tcu_int8")
    units.append("cuda")
    return units


def _engine_candidates(device: DeviceSpec) -> List[Tuple[str, str]]:
    """(ntt_style, ntt_component) pairs feasible on `device`."""
    pairs: List[Tuple[str, str]] = []
    for component in _feasible_components(device):
        pairs.append(("radix16", component))
        pairs.append(("four_step", component))
    pairs.append(("butterfly", "cuda"))
    return pairs


def _app_variants(app_name: str, budget: SearchBudget):
    """(bsgs_stages, app instance) variants of one application.

    Bootstrap-style apps expose their CtS/StC stage split; more stages mean
    a finer radix and a different baby-step/giant-step rotation budget --
    the BSGS axis of the search.  Apps without the knob get one variant.
    """
    from ..apps import get_application

    if app_name.lower() in ("packbootstrap", "bootstrap"):
        from ..apps.bootstrap_app import PackBootstrap

        return [
            (stages, PackBootstrap(cts_stages=stages, stc_stages=stages))
            for stages in budget.bsgs_stages
        ]
    return [(None, get_application(app_name))]


def tune_app(
    app: str,
    params: ParameterSet | str = "C",
    device: DeviceSpec = A100,
    budget: str = "quick",
    top: int = 8,
    config: PipelineConfig = NEO_CONFIG,
    trace_cache: Optional[TraceCache] = None,
) -> TuningReport:
    """Search the configuration space for one (params, app, device) triple.

    Always prices under the hierarchical memory model (``device.hier()``)
    -- on a flat device the batch-tile and NTT-chunk axes would be
    invisible.  Returns the ranked frontier of fully evaluated points.
    """
    base = get_set(params) if isinstance(params, str) else params
    try:
        spec = BUDGETS[budget]
    except KeyError:
        known = ", ".join(sorted(BUDGETS))
        raise ValueError(f"unknown budget {budget!r}; choose from {known}") from None
    device = device.hier()
    cache = trace_cache if trace_cache is not None else TraceCache()
    variants = _app_variants(app, spec)  # validates the app name up front
    hits0, misses0 = _builder_cache_counts()

    level = base.max_level
    probe_levels = (level, max(1, level // 2))
    probed = 0
    pruned_dominated = 0
    pruned_cutoff = 0

    def keyswitch_probe(p: ParameterSet, cfg: PipelineConfig) -> Optional[float]:
        nonlocal probed
        probed += 1
        try:
            ctx = NeoContext(p, device=device, config=cfg, trace_cache=cache)
            return ctx.keyswitch_time_us(probe_levels[0])
        except ValueError:
            return None

    # -- stage A: KeySwitch candidates (method + KLSS grid) -------------------
    # Probe every grid point under BOTH engine families the device offers --
    # the GEMM decomposition on its best tensor unit and the butterfly on
    # CUDA cores.  The grid ranking flips between families (large-T points
    # lose on GEMM MACs but win on butterfly memory traffic), so judging
    # the grid under a single engine silently discards the joint optimum.
    ip_component = "auto" if device.tcu_fp64_tflops > 0 else "cuda"
    probe_unit = _feasible_components(device)[0]
    probe_families = (
        config.with_overrides(
            ntt_component=probe_unit,
            bconv_component=probe_unit,
            ip_component=ip_component,
        ),
        config.with_overrides(
            ntt_style="butterfly",
            ntt_component="cuda",
            bconv_component=probe_unit,
            ip_component=ip_component,
        ),
    )
    candidates: List[_KsCandidate] = []
    seen_params = set()

    def add_candidate(keyswitch, dnum, alpha_tilde, wordsize_t, p):
        key = (keyswitch, dnum, alpha_tilde, wordsize_t)
        if key in seen_params:
            return
        seen_params.add(key)
        times = []
        try:
            for family in probe_families:
                cfg = family.with_overrides(keyswitch=keyswitch)
                ctx = NeoContext(p, device=device, config=cfg, trace_cache=cache)
                for lv in probe_levels:
                    times.append(ctx.keyswitch_time_us(lv))
        except ValueError:
            return
        candidates.append(
            _KsCandidate(
                keyswitch, dnum, alpha_tilde, wordsize_t, p, tuple(times)
            )
        )

    for dnum in spec.dnums:
        # Hybrid competes on the same dnum axis (alpha = ceil(L+1 / dnum)).
        add_candidate("hybrid", dnum, None, None, dataclasses.replace(base, dnum=dnum))
        for alpha_tilde in spec.alpha_tildes:
            for wordsize_t in spec.wordsizes_t:
                p = dataclasses.replace(
                    base,
                    dnum=dnum,
                    klss=KlssConfig(wordsize_t=wordsize_t, alpha_tilde=alpha_tilde),
                )
                try:
                    alpha_prime, _, _ = p.klss_dims(level)
                except ValueError:
                    continue
                if alpha_prime < 2:
                    continue
                add_candidate("klss", dnum, alpha_tilde, wordsize_t, p)
    probed += len(probe_families) * len(probe_levels) * len(candidates)
    if not candidates:
        raise ValueError(
            f"no feasible KeySwitch candidate for set {base.name} on {device.name}"
        )

    # The baseline point (the paper's hand-picked configuration) is always
    # carried forward, so the searched optimum can never lose to it.
    def is_baseline(c: _KsCandidate) -> bool:
        if base.klss is not None:
            return (
                c.keyswitch == "klss"
                and c.dnum == base.dnum
                and c.alpha_tilde == base.klss.alpha_tilde
                and c.wordsize_t == base.klss.wordsize_t
            )
        return c.keyswitch == "hybrid" and c.dnum == base.dnum

    non_dominated = [
        c for c in candidates
        if not any(o.dominates(c) for o in candidates)
    ]
    pruned_dominated = len(candidates) - len(non_dominated)
    non_dominated.sort(
        key=lambda c: c.rank_key(len(probe_families), len(probe_levels))
    )
    survivors = non_dominated[: spec.ks_keep]
    for c in candidates:
        if is_baseline(c) and c not in survivors:
            survivors.append(c)

    # -- stage B: engine axes, probe-ordered with early cutoff ----------------
    engine_probe: List[Tuple[float, _KsCandidate, PipelineConfig]] = []
    for ks in survivors:
        for ntt_style, ntt_component in _engine_candidates(device):
            for bconv_component in _feasible_components(device):
                for fused in spec.fused:
                    cfg = config.with_overrides(
                        keyswitch=ks.keyswitch,
                        ntt_style=ntt_style,
                        ntt_component=ntt_component,
                        bconv_component=bconv_component,
                        ip_component=ip_component,
                        fused=fused,
                    )
                    probe = keyswitch_probe(ks.params, cfg)
                    if probe is None:
                        continue
                    engine_probe.append((probe, ks, cfg))
    engine_probe.sort(key=lambda item: item[0])

    evaluated_points: List[TunedConfig] = []
    evaluated = 0
    first_stage = variants[0][0]
    app_obj = variants[0][1]

    def full_eval(ks: _KsCandidate, cfg: PipelineConfig, the_app) -> Optional[float]:
        nonlocal evaluated
        if evaluated >= spec.max_full_evals:
            return None
        evaluated += 1
        try:
            ctx = NeoContext(ks.params, device=device, config=cfg, trace_cache=cache)
            return ctx.application_time(the_app)
        except ValueError:
            return None

    def record(ks: _KsCandidate, cfg: PipelineConfig, bsgs, time_s: float) -> None:
        evaluated_points.append(
            TunedConfig(
                params_name=base.name,
                app=app.lower(),
                device_name=device.name,
                keyswitch=ks.keyswitch,
                dnum=ks.dnum,
                alpha_tilde=ks.alpha_tilde,
                wordsize_t=ks.wordsize_t,
                ntt_style=cfg.ntt_style,
                ntt_component=cfg.ntt_component,
                bconv_component=cfg.bconv_component,
                ip_component=ip_component,
                fused=cfg.fused,
                ntt_tile=cfg.ntt_tile,
                batch_tile=cfg.batch_tile,
                bsgs_stages=bsgs,
                time_s=time_s,
                baseline_time_s=None,  # filled below
            )
        )

    # Engines are judged untiled; tile refinement below keeps the full-eval
    # budget on distinct engines instead of 16 tile shapes of the same one.
    tile_combos = [
        (nt, bt)
        for nt in spec.ntt_tiles
        for bt in spec.batch_tiles
        if (nt, bt) != (None, None)
    ]
    refine_reserve = len(tile_combos) + (len(variants) - 1)
    engine_eval_cap = max(4, spec.max_full_evals - refine_reserve)
    best_probe = None
    engine_results: List[Tuple[float, _KsCandidate, PipelineConfig]] = []
    for probe, ks, cfg in engine_probe:
        if best_probe is not None and probe > best_probe * PROBE_CUTOFF:
            pruned_cutoff += 1
            continue
        if evaluated >= engine_eval_cap:
            pruned_cutoff += 1
            continue
        time_s = full_eval(ks, cfg, app_obj)
        if time_s is None:
            continue
        record(ks, cfg, first_stage, time_s)
        engine_results.append((time_s, ks, cfg))
        if best_probe is None:
            # Probes arrive sorted ascending: the first feasible one anchors
            # the cutoff window for everything after it.
            best_probe = probe

    if not evaluated_points:
        raise ValueError(
            f"search evaluated no feasible configuration for {app!r} on {device.name}"
        )
    evaluated_points.sort(key=lambda r: r.time_s)

    # -- stage B2: tile refinement on the winning engine ----------------------
    engine_results.sort(key=lambda item: item[0])
    _, win_ks, win_cfg = engine_results[0]
    for ntt_tile, batch_tile in tile_combos:
        tiled = win_cfg.with_overrides(ntt_tile=ntt_tile, batch_tile=batch_tile)
        time_s = full_eval(win_ks, tiled, app_obj)
        if time_s is None:
            continue
        record(win_ks, tiled, first_stage, time_s)
    evaluated_points.sort(key=lambda r: r.time_s)

    # -- stage C: BSGS split refinement on the winning configuration ----------
    if len(variants) > 1:
        winner = evaluated_points[0]
        ks = next(
            c for c in survivors + candidates
            if (c.keyswitch, c.dnum, c.alpha_tilde, c.wordsize_t)
            == (winner.keyswitch, winner.dnum, winner.alpha_tilde, winner.wordsize_t)
        )
        cfg = winner.pipeline_config(config)
        for stages, variant_app in variants[1:]:
            time_s = full_eval(ks, cfg, variant_app)
            if time_s is None:
                continue
            evaluated_points.append(
                dataclasses.replace(winner, bsgs_stages=stages, time_s=time_s)
            )
        evaluated_points.sort(key=lambda r: r.time_s)

    # -- baseline: the fixed NEO_CONFIG on the base params --------------------
    try:
        baseline_ctx = NeoContext(
            base, device=device, config=config, trace_cache=cache
        )
        baseline_time = baseline_ctx.application_time(app_obj)
    except ValueError:
        baseline_time = None
    evaluated_points = [
        dataclasses.replace(r, baseline_time_s=baseline_time)
        for r in evaluated_points
    ]

    hits1, misses1 = _builder_cache_counts()
    trace_stats = cache.stats
    return TuningReport(
        app=app.lower(),
        params_name=base.name,
        device_name=device.name,
        budget=budget,
        results=tuple(evaluated_points[: max(1, top)]),
        baseline_time_s=baseline_time,
        probed=probed,
        evaluated=evaluated,
        pruned_dominated=pruned_dominated,
        pruned_cutoff=pruned_cutoff,
        cache_hits=(hits1 - hits0) + trace_stats.hits,
        cache_misses=(misses1 - misses0) + trace_stats.misses,
    )


# ---------------------------------------------------------------------------
# Tuning-result store
# ---------------------------------------------------------------------------


class TuningStore:
    """Keyed, thread-safe store of :class:`TuningReport` results.

    Key: (params, app, device name, memory-model mode, model version) --
    a stored optimum never leaks across devices or model revisions.
    Registered with the telemetry cache directory, so serving reports and
    ``repro metrics`` surface its hit rates alongside the trace caches.
    """

    def __init__(self, maxsize: int = 64):
        self.maxsize = maxsize
        self._entries: Dict[tuple, TuningReport] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    @staticmethod
    def key(params, app: str, device: DeviceSpec, budget: str) -> tuple:
        name = params if isinstance(params, str) else params.name
        return (name, app.lower(), device.name, budget, MODEL_VERSION)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> Optional[TuningReport]:
        with self._lock:
            report = self._entries.get(key)
            if report is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return report

    def put(self, key: tuple, report: TuningReport) -> None:
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.maxsize:
                self._entries.pop(next(iter(self._entries)))
                self.stats.evictions += 1
            self._entries[key] = report

    def get_or_tune(
        self,
        app: str,
        params: ParameterSet | str = "C",
        device: DeviceSpec = A100,
        budget: str = "quick",
        **kwargs,
    ) -> TuningReport:
        """Cached :func:`tune_app` (tunes on first miss, stores the report)."""
        key = self.key(params, app, device, budget)
        report = self.get(key)
        if report is None:
            report = tune_app(app, params=params, device=device, budget=budget, **kwargs)
            self.put(key, report)
        return report

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Process-wide store the serving layer and CLI share.
DEFAULT_TUNING_STORE = TuningStore()

register_cache(
    "autotune_store",
    lambda: DEFAULT_TUNING_STORE.stats.snapshot(),
    lambda: len(DEFAULT_TUNING_STORE),
)


def default_tuning_store() -> TuningStore:
    return DEFAULT_TUNING_STORE
