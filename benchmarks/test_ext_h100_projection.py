"""Extension: projecting Neo onto an H100 (what-if study).

The paper's methodology (architecture-aware mapping, fixed attainment
fractions) transfers directly to newer hardware.  Hopper more than triples
FP64 tensor-core throughput and doubles HBM bandwidth, so Neo's
TCU-resident kernels should gain more than the CUDA-only baseline does.
"""

from repro.analysis.reporting import format_table
from repro.apps import PackBootstrap, ResNetApp
from repro.baselines import HeonGpuModel
from repro.core import NEO_CONFIG, NeoContext, tune_app
from repro.gpu.device import A100, H100, L4

APPS = (PackBootstrap(), ResNetApp(20))


def _build_rows():
    rows = []
    for device in (A100, H100):
        neo = NeoContext("C", device=device, config=NEO_CONFIG)
        heon = HeonGpuModel("E", device=device)
        rows.append(
            [device.name, "Neo(C)"]
            + [f"{app.time_s(neo):.2f}" for app in APPS]
            + [f"{neo.operation_time_us('hmult', 35):.0f}"]
        )
        rows.append(
            [device.name, "HEonGPU(E)"]
            + [f"{app.time_s(heon):.2f}" for app in APPS]
            + [f"{heon.operation_time_us('hmult', 35):.0f}"]
        )
    return rows


def test_h100_projection(benchmark):
    rows = benchmark(_build_rows)
    print()
    print(
        format_table(
            ["device", "system"] + [a.name for a in APPS] + ["HMULT us"],
            rows,
            title="Extension: A100 -> H100 projection",
        )
    )
    table = {(r[0], r[1]): [float(x) for x in r[2:]] for r in rows}
    neo_a = table[(A100.name, "Neo(C)")]
    neo_h = table[(H100.name, "Neo(C)")]
    heon_a = table[(A100.name, "HEonGPU(E)")]
    heon_h = table[(H100.name, "HEonGPU(E)")]
    # Everyone gets faster on H100.
    for a, h in zip(neo_a + heon_a, neo_h + heon_h):
        assert h < a
    # Neo keeps (indeed grows) its advantage on the TCU-richer part:
    # HMULT speedup of Neo across devices exceeds HEonGPU's.
    neo_gain = neo_a[-1] / neo_h[-1]
    heon_gain = heon_a[-1] / heon_h[-1]
    assert 1.5 < neo_gain < 5.0
    assert neo_gain > heon_gain * 0.9


def _tuned_sensitivity_rows():
    """Per-device tuned optimum for one app: the device-sensitivity table.

    NEO_CONFIG is *infeasible* on the L4 (no FP64 tensor cores), so the
    consumer-class row can only be produced by the autotuner; each device
    row carries the config the search picked for it.
    """
    rows = []
    for device in (A100, H100, L4):
        report = tune_app("packbootstrap", params="C", device=device,
                          budget="quick")
        best = report.best
        rows.append([
            device.name,
            f"{best.time_s * 1e3:.1f}",
            "n/a" if report.baseline_time_s is None
            else f"{report.baseline_time_s * 1e3:.1f}",
            best.label(),
        ])
    return rows


def test_device_sensitivity_tuned(benchmark):
    rows = benchmark(_tuned_sensitivity_rows)
    print()
    print(
        format_table(
            ["device", "tuned ms", "NEO_CONFIG ms", "tuned configuration"],
            rows,
            title="Extension: tuned PackBootstrap across device classes",
        )
    )
    by_device = {r[0]: r for r in rows}
    a100, h100, l4 = by_device[A100.name], by_device[H100.name], by_device[L4.name]
    # Device ordering survives tuning: H100 fastest, the consumer part
    # (a fifth of the DRAM bandwidth, no FP64 TCUs) slowest.
    assert float(h100[1]) < float(a100[1]) < float(l4[1])
    # The paper's hand-picked config cannot run on the L4 at all.
    assert l4[2] == "n/a"
    # And the L4's tuned plan is genuinely different from the A100's.
    assert l4[3] != a100[3]
