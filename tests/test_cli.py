"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_params_all(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    for name in "ABCDEFGH":
        assert f"\n{name} " in out


def test_params_single(capsys):
    assert main(["params", "c"]) == 0
    out = capsys.readouterr().out
    assert "C" in out and "T=48" in out


def test_params_unknown(capsys):
    assert main(["params", "Z"]) == 2


@pytest.mark.parametrize("number", ["2", "6", "7", "8"])
def test_tables(capsys, number):
    assert main(["table", number]) == 0
    assert capsys.readouterr().out.strip()


def test_table_unknown(capsys):
    assert main(["table", "99"]) == 2


@pytest.mark.parametrize("number", ["3", "14", "16"])
def test_figs(capsys, number):
    assert main(["fig", number]) == 0
    assert capsys.readouterr().out.strip()


def test_fig_unknown(capsys):
    assert main(["fig", "99"]) == 2


def test_fig16_shape(capsys):
    main(["fig", "16"])
    out = capsys.readouterr().out
    assert "KLSS-48" in out and "Hybrid" in out


def test_no_command_exits():
    with pytest.raises(SystemExit):
        main([])


class TestProfileCommand:
    def test_profile_default_system(self, capsys):
        assert main(["profile", "packbootstrap"]) == 0
        out = capsys.readouterr().out
        assert "per-operation" in out
        assert "per-kernel" in out
        assert "trace cache" in out

    @pytest.mark.parametrize("system", ["tensorfhe", "heongpu", "cpu"])
    def test_profile_baseline_systems(self, capsys, system):
        assert main(["profile", "helr", "--system", system]) == 0
        assert "per-operation" in capsys.readouterr().out

    def test_profile_with_set_and_batch(self, capsys):
        assert main(["profile", "resnet20", "--set", "D", "--batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "set D" in out and "batch 64" in out

    def test_profile_chrome_trace_output(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(["profile", "packbootstrap", "--chrome-trace", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert "chrome trace" in capsys.readouterr().out

    def test_profile_unknown_app(self, capsys):
        assert main(["profile", "nosuchapp"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_profile_unknown_system(self, capsys):
        assert main(["profile", "helr", "--system", "tpu"]) == 2
        assert "unknown system" in capsys.readouterr().err


class TestServeCommand:
    SMOKE = ["serve", "--workload", "smoke", "--max-batch", "16"]

    def test_serve_smoke_report(self, capsys):
        assert main(self.SMOKE) == 0
        out = capsys.readouterr().out
        assert "workload 'smoke'" in out
        assert "throughput" in out and "P95" in out and "SLO" in out
        assert "helr" in out and "packbootstrap" in out

    def test_serve_explicit_spec_and_policy(self, capsys):
        assert main(["serve", "--workload", "helr:5:1.0", "--policy", "edf",
                     "--lanes", "1", "--seed", "3"]) == 0
        assert "5x helr" in capsys.readouterr().out

    def test_serve_chrome_trace_output(self, capsys, tmp_path):
        import json

        path = tmp_path / "serving.json"
        assert main(self.SMOKE + ["--chrome-trace", str(path)]) == 0
        assert json.loads(path.read_text())["traceEvents"]
        assert "serving timeline" in capsys.readouterr().out

    def test_serve_same_seed_same_report(self, capsys):
        assert main(self.SMOKE + ["--seed", "11"]) == 0
        first = capsys.readouterr().out
        assert main(self.SMOKE + ["--seed", "11"]) == 0
        assert capsys.readouterr().out == first

    def test_serve_unknown_policy(self, capsys):
        assert main(["serve", "--policy", "lifo"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_serve_unknown_workload(self, capsys):
        assert main(["serve", "--workload", "nosuchapp:5:1.0"]) == 2
        assert "unknown application" in capsys.readouterr().err


class TestBenchCommand:
    SMOKE = ["bench", "keyswitch", "--degree", "512", "--dnum", "2",
             "--repeats", "1"]

    def test_bench_keyswitch_smoke(self, capsys):
        assert main(self.SMOKE) == 0
        out = capsys.readouterr().out
        assert "KeySwitch loop vs GEMM" in out
        assert "hybrid" in out and "klss" in out
        assert "speedup" in out
        assert "plan cache:" in out and "hit rate" in out

    def test_bench_bootstrap_smoke(self, capsys):
        assert main(["bench", "bootstrap", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "Bootstrap loop vs GEMM plan" in out
        assert "speedup" in out and "bit-identical" in out
        assert "True" in out
        assert "plan cache:" in out

    def test_bench_unknown_kernel(self, capsys):
        assert main(["bench", "ntt"]) == 2
        assert "unknown bench kernel" in capsys.readouterr().err

    def test_bench_rejects_bad_degree(self, capsys):
        assert main(["bench", "keyswitch", "--degree", "100"]) == 2
        assert "power of two" in capsys.readouterr().err

    def test_bench_rejects_bad_counts(self, capsys):
        assert main(["bench", "keyswitch", "--repeats", "0"]) == 2
        assert ">= 1" in capsys.readouterr().err


class TestMetricsCommand:
    def test_prometheus_output(self, capsys):
        assert main(["metrics", "--workload", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE serving_requests_total counter" in out
        assert "# TYPE serving_latency_seconds histogram" in out
        assert 'cache_hit_rate{cache="trace_cache"}' in out
        assert "fhe_noise_budget_bits_modeled" in out

    def test_json_output(self, capsys):
        import json

        assert main(["metrics", "--workload", "smoke", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["serving_requests_total"]["type"] == "counter"

    def test_unknown_workload(self, capsys):
        assert main(["metrics", "--workload", "nope"]) == 2


class TestTraceCommand:
    def test_trace_tree_covers_request_path(self, capsys):
        assert main(["trace", "req-0", "--workload", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "trace req-0" in out
        assert "- request" in out
        assert "- queue_wait" in out
        assert "- batch" in out
        # kernel spans live in the linked per-shape trace, spliced in
        assert "linked kernel trace" in out
        assert "batch_kernels" in out

    def test_trace_accepts_bare_rid(self, capsys):
        assert main(["trace", "0", "--workload", "smoke"]) == 0
        assert "trace req-0" in capsys.readouterr().out

    def test_trace_unknown_request_lists_known(self, capsys):
        assert main(["trace", "req-99999", "--workload", "smoke"]) == 2
        assert "request ids:" in capsys.readouterr().err

    def test_trace_jsonl_export_round_trips(self, capsys, tmp_path):
        from repro.telemetry.tracing import Tracer

        path = tmp_path / "trace.jsonl"
        assert main(["trace", "req-0", "--workload", "smoke",
                     "--jsonl", str(path)]) == 0
        clone = Tracer.from_jsonl(path.read_text())
        names = {s.name for s in clone.spans}
        assert {"request", "queue_wait", "batch"} <= names
        # the linked kernel trace ships in the same export
        assert any(tid.startswith("shape-") for tid in clone.trace_ids())


class TestServeTelemetryOutputs:
    def test_serve_writes_metrics_and_trace_files(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        assert main(["serve", "--workload", "smoke",
                     "--metrics", str(metrics_path),
                     "--trace-jsonl", str(trace_path)]) == 0
        data = json.loads(metrics_path.read_text())
        assert "serving_requests_total" in data
        assert trace_path.read_text().strip()


class TestBenchRecord:
    SMOKE = ["bench", "keyswitch", "--degree", "512", "--dnum", "2",
             "--repeats", "1"]

    def test_record_creates_history(self, capsys, tmp_path):
        from repro.telemetry.bench_history import load_history

        assert main(self.SMOKE + ["--record", "--bench-dir",
                                  str(tmp_path)]) == 0
        (record,) = load_history("keyswitch", str(tmp_path))
        assert any(m.endswith("_speedup") for m in record.metrics)
        assert "recorded to" in capsys.readouterr().out

    def test_fail_on_regress_passes_on_stable_rerun(self, capsys, tmp_path):
        # wide rtol: this asserts the record -> compare -> exit-0 workflow,
        # not timing stability (single-repeat ms jitter under suite load);
        # detection is proven by the doctored-baseline test below
        args = self.SMOKE + ["--record", "--bench-dir", str(tmp_path),
                             "--fail-on-regress", "--rtol", "100"]
        assert main(args) == 0
        assert main(args) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_fail_on_regress_flags_doctored_baseline(self, capsys, tmp_path):
        import json

        from repro.telemetry.bench_history import history_path

        assert main(self.SMOKE + ["--record", "--bench-dir",
                                  str(tmp_path)]) == 0
        path = history_path("keyswitch", str(tmp_path))
        history = json.loads(open(path).read())
        # forge an impossibly fast baseline: the rerun must regress
        for metric in history[-1]["metrics"]:
            if metric.endswith("_ms"):
                history[-1]["metrics"][metric] = 1e-9
        with open(path, "w") as fh:
            json.dump(history, fh)
        assert main(self.SMOKE + ["--bench-dir", str(tmp_path),
                                  "--fail-on-regress"]) == 1
        assert "regression(s)" in capsys.readouterr().out

    def test_bootstrap_record(self, capsys, tmp_path):
        from repro.telemetry.bench_history import load_history

        assert main(["bench", "bootstrap", "--repeats", "1", "--record",
                     "--bench-dir", str(tmp_path)]) == 0
        (record,) = load_history("bootstrap", str(tmp_path))
        assert "speedup" in record.metrics


class TestFleetServeCommand:
    SMOKE = ["serve", "--gpus", "4", "--workload", "smoke",
             "--max-batch", "16"]

    def test_serve_gpus_fleet_report(self, capsys):
        assert main(self.SMOKE) == 0
        out = capsys.readouterr().out
        assert "fleet of 4 GPU(s)" in out
        assert "per-device" in out and "gpu0" in out and "gpu3" in out
        assert "interconnect traffic" in out and "key broadcast" in out

    def test_serve_gpus_replays_deterministically(self, capsys):
        assert main(self.SMOKE + ["--seed", "11"]) == 0
        first = capsys.readouterr().out
        assert main(self.SMOKE + ["--seed", "11"]) == 0
        assert capsys.readouterr().out == first

    def test_serve_gpus_shard_tensor_parallel(self, capsys):
        assert main(self.SMOKE + ["--placement", "shard",
                                  "--tensor-parallel", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 group(s) x 2 tensor-parallel" in out
        assert "keys sharded" in out
        assert "bconv" in out  # exchange stages priced per kernel class

    def test_serve_gpus_rejects_bad_tensor_parallel(self, capsys):
        assert main(self.SMOKE + ["--tensor-parallel", "3"]) == 2
        assert "divide" in capsys.readouterr().err

    def test_serve_gpus_chrome_trace(self, capsys, tmp_path):
        import json

        path = tmp_path / "fleet.json"
        assert main(self.SMOKE + ["--chrome-trace", str(path)]) == 0
        assert json.loads(path.read_text())["traceEvents"]

    def test_serve_gpus_metrics_export(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(self.SMOKE + ["--metrics", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["fleet_requests_total"]["type"] == "counter"
        assert data["fleet_device_utilization"]["type"] == "gauge"


class TestFleetMetricsCommand:
    def test_metrics_gpus_adds_fleet_families(self, capsys):
        assert main(["metrics", "--workload", "smoke", "--gpus", "2"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE fleet_requests_total counter" in out
        assert "# TYPE fleet_device_utilization gauge" in out
        assert 'fleet_requests_total{gpu="1"}' in out
        # the per-device servers still emit the serving families
        assert "# TYPE serving_requests_total counter" in out


class TestServingBenchCommand:
    SMOKE = ["bench", "serving", "--workload", "smoke"]

    def test_bench_serving_smoke(self, capsys):
        assert main(self.SMOKE) == 0
        out = capsys.readouterr().out
        assert "Serving throughput" in out
        assert "serial" in out and "continuous" in out
        assert "batching speedup" in out

    def test_bench_serving_record(self, capsys, tmp_path):
        from repro.telemetry.bench_history import load_history

        assert main(self.SMOKE + ["--record", "--bench-dir",
                                  str(tmp_path)]) == 0
        (record,) = load_history("serving", str(tmp_path))
        assert "batching_speedup" in record.metrics
        assert "continuous_rps" in record.metrics

    def test_bench_serving_rejects_bad_workload(self, capsys):
        assert main(["bench", "serving", "--workload", "nope:1"]) == 2


class TestFleetBenchCommand:
    SMOKE = ["bench", "fleet", "--workload", "smoke", "--gpus", "2"]

    def test_bench_fleet_smoke(self, capsys):
        assert main(self.SMOKE) == 0
        out = capsys.readouterr().out
        assert "Fleet scaling" in out
        assert "fleet speedup" in out and "scaling efficiency" in out

    def test_bench_fleet_record_and_stable_rerun(self, capsys, tmp_path):
        from repro.telemetry.bench_history import load_history

        args = self.SMOKE + ["--record", "--bench-dir", str(tmp_path),
                             "--fail-on-regress"]
        # simulated-clock metrics are deterministic: the rerun compares
        # clean against its own baseline even at default rtol
        assert main(args) == 0
        assert main(args) == 0
        records = load_history("fleet", str(tmp_path))
        assert len(records) == 2
        assert records[0].metrics == records[1].metrics
        assert "fleet_speedup" in records[0].metrics

    def test_bench_fleet_rejects_bad_gpus(self, capsys):
        assert main(["bench", "fleet", "--gpus", "0"]) == 2
        assert "--gpus" in capsys.readouterr().err


class TestServeOverloadCommand:
    SMOKE = ["serve", "--workload", "smoke", "--policy", "priority"]

    def test_serve_with_overload_control(self, capsys):
        assert main(self.SMOKE + ["--queue-capacity", "4",
                                  "--shed-threshold", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "overload   :" in out and "capacity 4" in out

    def test_serve_wall_clock_matches_simulated(self, capsys):
        assert main(self.SMOKE) == 0
        simulated = capsys.readouterr().out
        assert main(self.SMOKE + ["--wall-clock"]) == 0
        assert capsys.readouterr().out == simulated

    def test_serve_snapshot_then_replay(self, capsys, tmp_path):
        path = tmp_path / "timeline.jsonl"
        assert main(self.SMOKE + ["--queue-capacity", "6",
                                  "--snapshot", str(path)]) == 0
        assert "timeline snapshot" in capsys.readouterr().out
        assert path.exists()
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fingerprint verified" in out
        assert "throughput" in out

    def test_replay_missing_snapshot(self, capsys):
        assert main(["replay", "/nonexistent/snap.jsonl"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_replay_detects_tampering(self, capsys, tmp_path):
        path = tmp_path / "timeline.jsonl"
        assert main(self.SMOKE + ["--snapshot", str(path)]) == 0
        capsys.readouterr()
        tampered = path.read_text().replace(
            '"fingerprint":"', '"fingerprint":"beef'
        )
        path.write_text(tampered)
        assert main(["replay", str(path)]) == 1
        assert "fingerprint mismatch" in capsys.readouterr().err

    def test_wall_clock_rejects_fleet(self, capsys):
        assert main(self.SMOKE + ["--gpus", "2", "--wall-clock"]) == 2
        assert "--wall-clock" in capsys.readouterr().err

    def test_serve_fleet_autoscale_plan(self, capsys):
        assert main(["serve", "--workload", "smoke", "--gpus", "2",
                     "--autoscale"]) == 0
        out = capsys.readouterr().out
        assert "autoscale:" in out and "scaling decisions" in out

    def test_serve_tiered_spec(self, capsys):
        assert main(["serve", "--workload",
                     "helr:4:1.0:1:0:premium,helr:8:2.0:1:0:batch",
                     "--queue-capacity", "3", "--shed-threshold", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "per-tier outcomes" in out


class TestTuneCommand:
    def test_tune_frontier_table(self, capsys):
        assert main(["tune", "helr"]) == 0
        out = capsys.readouterr().out
        assert "Tuned frontier: helr" in out
        assert "baseline:" in out
        assert "plan-cache hit rate" in out

    def test_tune_json_output(self, capsys):
        import json

        assert main(["tune", "helr", "--json", "--top", "3"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["app"] == "helr"
        assert blob["device_name"].startswith("NVIDIA A100")
        assert 1 <= len(blob["results"]) <= 3
        assert blob["results"][0]["time_s"] > 0

    def test_tune_l4_reports_infeasible_baseline(self, capsys):
        assert main(["tune", "helr", "--device", "l4"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA L4" in out
        assert "infeasible on this device" in out

    def test_tune_unknown_app(self, capsys):
        assert main(["tune", "nosuchapp"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_tune_unknown_device(self, capsys):
        assert main(["tune", "helr", "--device", "t4"]) == 2
        assert "unknown device" in capsys.readouterr().err

    def test_tune_unknown_budget(self, capsys):
        assert main(["tune", "helr", "--budget", "huge"]) == 2
        assert "unknown budget" in capsys.readouterr().err


class TestServeAutotune:
    def test_serve_autotune_reports_tuned_configs(self, capsys):
        assert main(["serve", "--workload", "smoke", "--autotune"]) == 0
        out = capsys.readouterr().out
        assert "autotuned configurations" in out
        assert "klss(" in out
        assert "autotune_store" in out

    def test_serve_without_autotune_omits_section(self, capsys):
        assert main(["serve", "--workload", "smoke"]) == 0
        assert "autotuned configurations" not in capsys.readouterr().out

    def test_serve_unknown_device(self, capsys):
        assert main(["serve", "--device", "t4"]) == 2
        assert "unknown device" in capsys.readouterr().err


class TestAutotuneBenchCommand:
    def test_bench_autotune_record_and_stable_rerun(self, capsys, tmp_path):
        from repro.telemetry.bench_history import load_history

        args = ["bench", "autotune", "--record", "--bench-dir", str(tmp_path),
                "--fail-on-regress"]
        # modeled-time metrics are deterministic: the rerun compares clean
        assert main(args) == 0
        assert main(args) == 0
        records = load_history("autotune", str(tmp_path))
        assert len(records) == 2
        assert "helr_tuned_ms" in records[0].metrics
        assert "helr_speedup" in records[0].metrics
        a, b = records[0].metrics, records[1].metrics
        assert all(a[k] == b[k] for k in a if not k.endswith("wall_s"))
        out = capsys.readouterr().out
        assert "Autotuned plans on NVIDIA A100" in out

    def test_bench_autotune_unknown_device(self, capsys):
        assert main(["bench", "autotune", "--device", "t4"]) == 2
        assert "unknown device" in capsys.readouterr().err
