"""Functional CKKS: encoder, keys, encryption, evaluator, key switching."""

from . import batched, serialization
from .bootstrap import Bootstrapper
from .ciphertext import Ciphertext
from .encoder import CkksEncoder, Plaintext
from .encryptor import Decryptor, Encryptor
from .evaluator import Evaluator
from .hoisting import HoistedRotator, hoisted_rotations
from .linear_transform import LinearTransform, identity_transform, rotation_keys_for
from .noise import NoiseEstimator, measure_noise_bits, remaining_budget_bits
from .poly_eval import PolynomialEvaluator, chebyshev_coefficients
from .keys import (
    GaloisKeys,
    KeyGenerator,
    KeySwitchKey,
    PublicKey,
    SecretKey,
    conjugation_galois_power,
    rotation_galois_power,
)
from .params import (
    TABLE4,
    CkksParameters,
    KlssConfig,
    ParameterSet,
    get_set,
    small_test_parameters,
)

__all__ = [
    "Bootstrapper",
    "Ciphertext",
    "CkksEncoder",
    "CkksParameters",
    "Decryptor",
    "Encryptor",
    "Evaluator",
    "GaloisKeys",
    "HoistedRotator",
    "KeyGenerator",
    "KeySwitchKey",
    "KlssConfig",
    "LinearTransform",
    "NoiseEstimator",
    "ParameterSet",
    "Plaintext",
    "PolynomialEvaluator",
    "PublicKey",
    "SecretKey",
    "TABLE4",
    "chebyshev_coefficients",
    "conjugation_galois_power",
    "get_set",
    "hoisted_rotations",
    "identity_transform",
    "measure_noise_bits",
    "remaining_budget_bits",
    "batched",
    "serialization",
    "rotation_galois_power",
    "rotation_keys_for",
    "small_test_parameters",
]
