"""Vectorised modular arithmetic with three interchangeable backends.

FHE word sizes in the Neo paper are 36-60 bits, whose products overflow
``numpy.uint64``.  Three backends are selected per modulus:

* **fast** -- ``numpy.uint64`` arrays for moduli below ``2**31``: every
  product of two reduced residues fits in 64 bits, so plain ``%`` works.
* **barrett** -- ``numpy.uint64`` arrays for moduli in ``[2**31, 2**62)``:
  the 128-bit products are formed with 32-bit limb splitting
  (``mulhi``/``mullo`` decomposition) and reduced branchlessly with Barrett
  reduction; multiplications by precomputed constants (NTT twiddles,
  ``q_hat_inv`` factors) use Shoup's trick instead.  This covers every
  NTT-friendly word size the paper uses (36/48/60-bit limbs, 61-bit
  special primes) without ever touching ``dtype=object``.
* **exact** -- ``dtype=object`` arrays of Python integers, valid for any
  modulus.  Kept as the reference oracle for moduli at or above ``2**62``
  and for the property tests that pin the Barrett backend bit-for-bit.

All functions accept and return numpy arrays and never mutate their inputs.
The :func:`object_backend` context manager forces moduli at or above the
fast bound onto the exact backend -- used by the benchmarks to time the
Barrett backend against the oracle on identical inputs.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Tuple

import numpy as np

#: Largest modulus for which the plain ``uint64`` path is safe: residues are
#: below ``2**31`` so products stay below ``2**62`` and sums below ``2**63``.
FAST_MODULUS_BOUND = 1 << 31

#: Largest modulus the Barrett ``uint64`` backend accepts: residues below
#: ``2**62`` keep ``4q`` inside 64 bits (chunked accumulation) and the
#: Barrett correction ``r < 3q`` representable.
BARRETT_MODULUS_BOUND = 1 << 62

#: When False, moduli >= ``FAST_MODULUS_BOUND`` fall back to the object
#: backend (see :func:`object_backend`).
_BARRETT_ENABLED = True

_U64 = np.uint64
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------


def uses_fast_backend(modulus: int) -> bool:
    """True when `modulus` qualifies for the plain ``uint64`` backend."""
    return 1 < modulus < FAST_MODULUS_BOUND


def uses_barrett_backend(modulus: int) -> bool:
    """True when `modulus` is served by the Barrett ``uint64`` backend."""
    return (
        _BARRETT_ENABLED
        and FAST_MODULUS_BOUND <= modulus < BARRETT_MODULUS_BOUND
    )


def uses_native_backend(modulus: int) -> bool:
    """True when residues mod `modulus` are stored as ``uint64`` (not object)."""
    return uses_fast_backend(modulus) or uses_barrett_backend(modulus)


def backend_kind(modulus: int) -> str:
    """``"fast"``, ``"barrett"`` or ``"object"`` for `modulus`."""
    if uses_fast_backend(modulus):
        return "fast"
    if uses_barrett_backend(modulus):
        return "barrett"
    return "object"


def backend_dtype(modulus: int):
    """Return the numpy dtype used to store residues modulo `modulus`."""
    return np.uint64 if uses_native_backend(modulus) else object


@contextlib.contextmanager
def object_backend():
    """Force every modulus >= ``2**31`` onto the exact object backend.

    Only the benchmarks and oracle-comparison tests should use this; plans
    and arrays built inside the context keep their object representation
    after it exits (:func:`backend_kind` is consulted at build time).
    """
    global _BARRETT_ENABLED
    previous = _BARRETT_ENABLED
    _BARRETT_ENABLED = False
    try:
        yield
    finally:
        _BARRETT_ENABLED = previous


# ---------------------------------------------------------------------------
# 64x64 -> 128-bit products via 32-bit limb splitting
# ---------------------------------------------------------------------------


def mul128(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Full 128-bit product of ``uint64`` arrays as ``(hi, lo)`` words.

    This is the numpy spelling of the ``mulhi``/``mullo`` pair every GPU
    modular-arithmetic kernel is built from: each operand splits into two
    32-bit limbs and the four partial products recombine with carries.
    """
    a_lo = a & _MASK32
    a_hi = a >> _SHIFT32
    b_lo = b & _MASK32
    b_hi = b >> _SHIFT32
    ll = a_lo * b_lo
    lh = a_lo * b_hi
    hl = a_hi * b_lo
    hh = a_hi * b_hi
    # Carry column: bits 32..63 of the true product (fits: < 3 * 2**32).
    mid = (ll >> _SHIFT32) + (lh & _MASK32) + (hl & _MASK32)
    lo = (ll & _MASK32) | ((mid & _MASK32) << _SHIFT32)
    hi = hh + (lh >> _SHIFT32) + (hl >> _SHIFT32) + (mid >> _SHIFT32)
    return hi, lo


def mulhi(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """High 64 bits of the 128-bit product (``mulhi.u64``)."""
    return mul128(a, b)[0]


def mulhi_op32(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """High 64 bits of ``a * b`` when ``a < 2**32`` (``b`` unrestricted).

    With one 32-bit operand the 128-bit product is ``a*b_hi * 2**32 +
    a*b_lo`` with both partials fitting ``uint64``, so the high word needs
    two multiplies instead of four -- the inner-loop win for fast-backend
    moduli (every residue is below ``2**31``).
    """
    lo = (b & _MASK32) * a
    return ((b >> _SHIFT32) * a + (lo >> _SHIFT32)) >> _SHIFT32


# ---------------------------------------------------------------------------
# Barrett reduction (per-modulus constants)
# ---------------------------------------------------------------------------

#: modulus -> (q, k-1, 64-(k-1), k+1, 64-(k+1), mu) as uint64 scalars, where
#: ``k = q.bit_length()`` and ``mu = floor(2**(2k) / q)``.
_BARRETT_CACHE: Dict[int, Tuple[np.uint64, ...]] = {}


def _barrett_constants(modulus: int) -> Tuple[np.uint64, ...]:
    consts = _BARRETT_CACHE.get(modulus)
    if consts is None:
        k = int(modulus).bit_length()
        mu = (1 << (2 * k)) // modulus
        consts = (
            np.uint64(modulus),
            np.uint64(k - 1),
            np.uint64(64 - (k - 1)),
            np.uint64(k + 1),
            np.uint64(64 - (k + 1)),
            np.uint64(mu),
        )
        _BARRETT_CACHE[modulus] = consts
    return consts


def barrett_mul_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """``(a * b) mod modulus`` for reduced ``uint64`` inputs, ``q < 2**62``.

    Classic Barrett reduction (HAC 14.42 with ``b = 2``): the quotient
    estimate is off by at most 2, so two conditional subtractions finish
    the reduction -- branchless on a GPU and two ``np.where`` here.
    """
    q, s_lo, s_lo_c, s_hi, s_hi_c, mu = _barrett_constants(modulus)
    hi, lo = mul128(a, b)
    approx = (hi << s_lo_c) | (lo >> s_lo)  # x >> (k-1), fits 64 bits
    q2_hi, q2_lo = mul128(approx, mu)
    quot = (q2_hi << s_hi_c) | (q2_lo >> s_hi)  # estimate of x // q
    r = lo - quot * q  # mod 2**64; true remainder < 3q < 2**64
    r = np.where(r >= q, r - q, r)
    return np.where(r >= q, r - q, r)


def shoup_precompute(w: int, modulus: int) -> int:
    """Shoup constant ``floor(w * 2**64 / q)`` for a fixed multiplicand."""
    return (int(w) << 64) // int(modulus)


def shoup_mul_mod(a: np.ndarray, w, w_shoup, q, operand32: bool = False) -> np.ndarray:
    """``(a * w) mod q`` with per-twiddle precomputation (Shoup's trick).

    ``w`` must be reduced mod ``q`` and ``w_shoup = floor(w * 2**64 / q)``;
    both may be scalars or arrays broadcastable against ``a`` (the NTT
    passes whole twiddle columns).  One ``mulhi`` + two ``mullo`` + one
    conditional subtraction -- cheaper than full Barrett when the
    multiplicand is known in advance.  Pass ``operand32=True`` when every
    element of `a` is below ``2**32`` (fast-backend residues) to use the
    two-multiply :func:`mulhi_op32`.
    """
    quot = mulhi_op32(a, w_shoup) if operand32 else mulhi(a, w_shoup)
    r = a * w - quot * q  # mod 2**64; true remainder < 2q
    return np.where(r >= q, r - q, r)


# ---------------------------------------------------------------------------
# Coercion helpers
# ---------------------------------------------------------------------------


def asarray_mod(values, modulus: int) -> np.ndarray:
    """Coerce `values` into a reduced residue array for `modulus`.

    Negative inputs are mapped into ``[0, modulus)``.  Integer numpy arrays
    headed for a ``uint64`` backend reduce natively -- no round trip through
    ``dtype=object`` on the hot coercion path.
    """
    if modulus <= 1:
        raise ValueError(f"modulus must be > 1, got {modulus}")
    arr = np.asarray(values)
    if uses_native_backend(modulus) and arr.dtype != object:
        if arr.dtype == np.uint64:
            return arr % np.uint64(modulus)
        if np.issubdtype(arr.dtype, np.signedinteger):
            # q < 2**62 fits int64; numpy's % returns non-negative residues.
            return (arr.astype(np.int64, copy=False) % np.int64(modulus)).astype(
                np.uint64
            )
        if np.issubdtype(arr.dtype, np.unsignedinteger) or arr.dtype == np.bool_:
            return arr.astype(np.uint64) % np.uint64(modulus)
    arr = np.asarray(values, dtype=object)
    reduced = np.mod(arr, modulus)
    if uses_native_backend(modulus):
        return reduced.astype(np.uint64)
    return reduced


def zeros_mod(shape, modulus: int) -> np.ndarray:
    """Return an all-zero residue array of the backend dtype for `modulus`."""
    if uses_native_backend(modulus):
        return np.zeros(shape, dtype=np.uint64)
    zero_filled = np.empty(shape, dtype=object)
    zero_filled[...] = 0
    return zero_filled


def _native_operand(a) -> np.ndarray:
    """View an already-reduced operand as ``uint64`` without copying."""
    arr = np.asarray(a)
    if arr.dtype == np.uint64:
        return arr
    if arr.dtype == object:
        return arr.astype(np.uint64)
    return arr.astype(np.uint64, copy=False)


# ---------------------------------------------------------------------------
# Element-wise ring operations
# ---------------------------------------------------------------------------


def add_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(a + b) mod modulus`` for reduced inputs."""
    if uses_native_backend(modulus):
        q = np.uint64(modulus)
        s = _native_operand(a) + _native_operand(b)  # < 2**63, no overflow
        return np.where(s >= q, s - q, s)
    return (a + b) % modulus


def sub_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(a - b) mod modulus`` for reduced inputs."""
    if uses_native_backend(modulus):
        q = np.uint64(modulus)
        s = _native_operand(a) + (q - _native_operand(b))
        return np.where(s >= q, s - q, s)
    return (a - b) % modulus


def neg_mod(a: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(-a) mod modulus`` for reduced inputs."""
    if uses_native_backend(modulus):
        a = _native_operand(a)
        return np.where(a == 0, a, np.uint64(modulus) - a)
    return (-a) % modulus


def mul_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(a * b) mod modulus`` for reduced inputs."""
    if uses_fast_backend(modulus):
        return (_native_operand(a) * _native_operand(b)) % np.uint64(modulus)
    if uses_barrett_backend(modulus):
        return barrett_mul_mod(_native_operand(a), _native_operand(b), modulus)
    return (a * b) % modulus


def scalar_mul_mod(a: np.ndarray, scalar: int, modulus: int) -> np.ndarray:
    """Element-wise ``(a * scalar) mod modulus`` with a Python-int scalar."""
    scalar = int(scalar) % modulus
    if uses_fast_backend(modulus):
        return (_native_operand(a) * np.uint64(scalar)) % np.uint64(modulus)
    if uses_barrett_backend(modulus):
        return shoup_mul_mod(
            _native_operand(a),
            np.uint64(scalar),
            np.uint64(shoup_precompute(scalar, modulus)),
            np.uint64(modulus),
        )
    return (a * scalar) % modulus


# ---------------------------------------------------------------------------
# Modular GEMM / GEMV
# ---------------------------------------------------------------------------

#: How many reduced products can join a ``< q`` accumulator without
#: overflowing 64 bits: ``q + 3 * q <= 4 * (2**62 - 1) < 2**64``.
_ACC_CHUNK = 3


def _native_matmul_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Stacked modular matmul over ``uint64`` without bignum round trips.

    ``a`` is ``(..., m, k)`` and ``b`` ``(..., k, n)`` with broadcastable
    leading axes.  Partial products are reduced (Barrett for wide moduli),
    then accumulated three at a time before folding back under ``q`` --
    the numpy analogue of register-blocked modular accumulation.
    """
    a = _native_operand(a)
    b = _native_operand(b)
    if a.ndim == 1 and b.ndim == 1:
        return _native_matmul_mod(a[None, :], b[:, None], modulus)[0, 0]
    if a.ndim == 1:
        return _native_matmul_mod(a[None, :], b, modulus)[..., 0, :]
    if b.ndim == 1:
        return _native_matmul_mod(a, b[:, None], modulus)[..., 0]
    k_dim = a.shape[-1]
    if b.shape[-2] != k_dim:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b.shape}")
    q = np.uint64(modulus)
    small = modulus < FAST_MODULUS_BOUND
    batch = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    out = np.zeros(batch + (a.shape[-2], b.shape[-1]), dtype=np.uint64)
    for start in range(0, k_dim, _ACC_CHUNK):
        stop = min(start + _ACC_CHUNK, k_dim)
        blk_a = a[..., :, start:stop, None]  # (..., m, c, 1)
        blk_b = b[..., None, start:stop, :]  # (..., 1, c, n)
        if small:
            part = blk_a * blk_b  # < 2**62 each
        else:
            part = barrett_mul_mod(blk_a, blk_b, modulus)
        out = (out + part.sum(axis=-2, dtype=np.uint64)) % q
    return out


def dot_mod(matrix: np.ndarray, vector: np.ndarray, modulus: int) -> np.ndarray:
    """Matrix-vector product modulo `modulus` (exact in every backend)."""
    if uses_native_backend(modulus):
        m = np.asarray(matrix)
        v = np.asarray(vector)
        if m.dtype != object and v.dtype != object:
            return _native_matmul_mod(m, v[..., None], modulus)[..., 0]
    return (
        np.asarray(matrix, dtype=object) @ np.asarray(vector, dtype=object)
    ) % modulus


def matmul_mod(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Matrix product ``(a @ b) mod modulus`` computed exactly.

    Wide moduli below ``2**62`` run through the Barrett GEMM; anything
    larger (or object-dtype input) accumulates with exact Python integers.
    Either way the result is exact -- this is the *reference* GEMM against
    which the tensor-core emulations are checked.
    """
    if uses_native_backend(modulus):
        a_arr = np.asarray(a)
        b_arr = np.asarray(b)
        if a_arr.dtype != object and b_arr.dtype != object:
            return _native_matmul_mod(a_arr, b_arr, modulus)
    product = np.asarray(a, dtype=object) @ np.asarray(b, dtype=object)
    reduced = product % modulus
    if uses_native_backend(modulus):
        return reduced.astype(np.uint64)
    return reduced


# ---------------------------------------------------------------------------
# Scalar helpers
# ---------------------------------------------------------------------------


def pow_mod(base: int, exponent: int, modulus: int) -> int:
    """Scalar modular exponentiation (thin wrapper over ``pow``)."""
    return pow(int(base), int(exponent), int(modulus))


def inv_mod(value: int, modulus: int) -> int:
    """Scalar modular inverse; raises ``ValueError`` if not invertible."""
    try:
        return pow(int(value), -1, int(modulus))
    except ValueError as exc:
        raise ValueError(f"{value} has no inverse modulo {modulus}") from exc


def to_signed(values: np.ndarray, modulus: int) -> np.ndarray:
    """Map residues into the centred interval ``(-modulus/2, modulus/2]``."""
    arr = np.asarray(values, dtype=object)
    half = modulus // 2
    return np.where(arr > half, arr - modulus, arr)


def from_signed(values, modulus: int) -> np.ndarray:
    """Inverse of :func:`to_signed`: map centred values back to residues."""
    return asarray_mod(values, modulus)
