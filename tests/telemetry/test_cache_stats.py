"""The unified cache-stats directory every cache surface registers with."""

from repro.telemetry.stats import (
    CacheStats,
    all_cache_sizes,
    all_cache_stats,
    cache_stats,
    register_cache,
    registered_caches,
)


class TestCacheStats:
    def test_hit_rate_math(self):
        stats = CacheStats(hits=3, misses=1, evictions=2)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75

    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_snapshot_is_independent(self):
        stats = CacheStats(hits=1)
        snap = stats.snapshot()
        stats.hits = 99
        assert snap.hits == 1

    def test_as_dict_shape(self):
        d = CacheStats(hits=1, misses=1).as_dict()
        assert d == {"hits": 1, "misses": 1, "evictions": 0, "hit_rate": 0.5}


class TestDirectory:
    def test_register_and_read_back(self):
        live = CacheStats(hits=5)
        register_cache("test_surface", lambda: live.snapshot(), lambda: 7)
        try:
            assert "test_surface" in registered_caches()
            assert cache_stats("test_surface").hits == 5
            assert all_cache_stats()["test_surface"].hits == 5
            assert all_cache_sizes()["test_surface"] == 7
        finally:
            # re-register with a dead provider so later reads stay harmless
            register_cache("test_surface", CacheStats, lambda: 0)

    def test_reregistration_replaces_provider(self):
        register_cache("test_replace", lambda: CacheStats(hits=1))
        register_cache("test_replace", lambda: CacheStats(hits=2))
        assert cache_stats("test_replace").hits == 2

    def test_process_surfaces_register_on_import(self):
        # importing the owning modules is enough -- no explicit wiring
        import repro.ckks.keyswitch.plan  # noqa: F401  (op_plans)
        import repro.core.trace_cache  # noqa: F401  (trace_cache)
        import repro.math.ntt  # noqa: F401  (ntt_plans, ntt_stacks)

        names = registered_caches()
        for expected in ("ntt_plans", "ntt_stacks", "op_plans", "trace_cache"):
            assert expected in names
