"""Extension: trace-cache micro-benchmark.

Repeated ``NeoContext.application_time`` queries used to rebuild every
operation trace from scratch; with the keyed trace cache the second and
later calls assemble the application from frozen cached traces.  This
benchmark demonstrates the acceptance bar: >= 5x speedup on the
second-call path (measured 25-40x on the reference machine) with
byte-identical timing results versus uncached construction.
"""

import time

import pytest

from repro.apps import get_application
from repro.core import (
    NEO_CONFIG,
    NeoContext,
    TraceCache,
    clear_cost_builder_caches,
)

APPS = ("packbootstrap", "resnet56")


def _mean_time(fn, repeats=5):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def _contexts():
    cached = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache())
    uncached = NeoContext("C", config=NEO_CONFIG, trace_cache=TraceCache(maxsize=0))
    return cached, uncached


@pytest.mark.parametrize("app_name", APPS)
def test_cached_path_is_byte_identical(app_name):
    app = get_application(app_name)
    cached, uncached = _contexts()
    reference = uncached.application_time(app)
    # First call (cold cache) and every later call (warm cache) agree bit
    # for bit with the uncached construction.
    assert cached.application_time(app) == reference
    assert cached.application_time(app) == reference
    stats = cached.cache_stats()
    assert stats.hits > 0, "second application_time call must hit the cache"


@pytest.mark.parametrize("app_name", APPS)
def test_second_call_speedup_at_least_5x(app_name):
    app = get_application(app_name)
    cached, uncached = _contexts()
    cached.application_time(app)  # warm the cache
    warm = _mean_time(lambda: cached.application_time(app))

    def fully_cold():
        # The uncached arm models a fresh process: the process-wide
        # kernel-cost memos (which the cached path subsumes) must not
        # carry warm state between repeats.
        clear_cost_builder_caches()
        uncached.application_time(app)

    cold = _mean_time(fully_cold)
    speedup = cold / warm
    print(f"\n{app_name}: cold {cold * 1e3:.2f} ms, warm {warm * 1e3:.2f} ms, "
          f"speedup {speedup:.1f}x")
    assert speedup >= 5.0, f"trace cache speedup only {speedup:.1f}x"


def test_benchmark_warm_application_time(benchmark):
    """pytest-benchmark series for the warm-cache application_time path."""
    app = get_application("packbootstrap")
    cached, _ = _contexts()
    cached.application_time(app)
    result = benchmark(lambda: cached.application_time(app))
    assert result > 0
