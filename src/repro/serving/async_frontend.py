"""Wall-clock asyncio ingest in front of the simulated-clock server.

The :class:`~repro.serving.server.Server` is a pure simulated-clock
machine: it replays a submitted trace deterministically.  The
:class:`AsyncFrontEnd` is the live edge in front of it -- an asyncio
ingest queue that accepts requests concurrently, applies **backpressure**
(a bounded ``asyncio.Queue``: ``await submit`` blocks once the ingest
buffer is full; ``try_submit`` refuses instead of blocking), stamps
arrival times, and hands the accumulated trace to the *same* scheduling
code (`drain`) that the simulated path runs.  One scheduler, two clocks:

* **live mode** -- ``await frontend.submit(app=...)`` stamps arrivals
  from a wall clock (injectable for tests), so interactive traffic maps
  onto the simulated timeline as it arrives.
* **replay mode** -- ``await frontend.replay(requests)`` feeds a recorded
  trace preserving its original simulated ``arrival_s`` values
  (optionally paced in wall time by ``time_scale``), so the drained
  report is fingerprint-identical to submitting the same trace
  synchronously -- the equivalence :mod:`tests.serving.test_async_frontend`
  asserts.

The ingest bound composes with, but is distinct from, the server's
admission queue: the front end bounds *unprocessed submissions*
(transport backpressure), the :class:`~repro.serving.overload.OverloadPolicy`
bounds *admitted work* (load shedding).
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Iterable, List, Optional

from .request import Request
from .server import Server, ServingReport

#: Sentinel closing the ingest queue.
_CLOSE = object()


class FrontEndClosed(RuntimeError):
    """Submission after ``close`` (the ingest queue no longer accepts)."""


class AsyncFrontEnd:
    """Bounded asyncio ingest feeding one server.

    Args:
        server: the simulated-clock server the trace accumulates into.
        max_pending: ingest-buffer bound; ``await submit`` blocks (and
            ``try_submit`` refuses) once this many submissions are
            unprocessed.  This is the backpressure surface.
        clock: wall-clock arrival stamper for live submissions, returning
            seconds since the front end started; defaults to
            ``time.monotonic`` anchored at first use.  Inject a fake for
            deterministic tests.
    """

    def __init__(
        self,
        server: Server,
        max_pending: int = 256,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.server = server
        self.max_pending = max_pending
        self._clock = clock
        self._epoch: Optional[float] = None
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_pending)
        self._pump_task: Optional[asyncio.Task] = None
        self._closed = False
        #: Submissions accepted into the ingest buffer.
        self.accepted = 0
        #: ``try_submit`` calls refused by backpressure.
        self.refused = 0

    # -- clocks -------------------------------------------------------------------

    def _now(self) -> float:
        """Seconds since the front end first stamped an arrival."""
        if self._clock is not None:
            return max(0.0, self._clock())
        if self._epoch is None:
            self._epoch = time.monotonic()
        return time.monotonic() - self._epoch

    @property
    def pressure(self) -> float:
        """Ingest-buffer fill fraction in [0, 1] -- the backpressure signal."""
        return self._queue.qsize() / self.max_pending

    # -- pump ---------------------------------------------------------------------

    def _ensure_pump(self) -> None:
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump()
            )

    async def _pump(self) -> None:
        """Drain the ingest buffer into the server, in submission order."""
        while True:
            item = await self._queue.get()
            if item is _CLOSE:
                return
            request, fields, future = item
            try:
                if request is not None:
                    accepted = self.server.submit(request)
                else:
                    accepted = self.server.submit(**fields)
            except Exception as exc:  # surface to the submitter
                if not future.done():
                    future.set_exception(exc)
            else:
                if not future.done():
                    future.set_result(accepted)

    def _package(self, request: Optional[Request], fields: dict):
        if self._closed:
            raise FrontEndClosed("front end is closed to new submissions")
        if request is None and fields.get("arrival_s") is None:
            fields["arrival_s"] = self._now()
        future = asyncio.get_running_loop().create_future()
        return (request, dict(fields), future)

    # -- submission ---------------------------------------------------------------

    async def submit(
        self, request: Optional[Request] = None, **fields
    ) -> Request:
        """Accept one request; blocks under backpressure.

        Passing a :class:`Request` preserves its fields (replay);
        keyword fields build a fresh one, stamping ``arrival_s`` from the
        wall clock unless given.  Returns the accepted request once the
        pump has handed it to the server.
        """
        self._ensure_pump()
        item = self._package(request, fields)
        await self._queue.put(item)
        self.accepted += 1
        return await item[2]

    def try_submit(
        self, request: Optional[Request] = None, **fields
    ) -> Optional["asyncio.Future"]:
        """Non-blocking accept: ``None`` when backpressure refuses.

        Returns the future resolving to the accepted request, or ``None``
        when the ingest buffer is full (the caller's cue to back off).
        """
        self._ensure_pump()
        item = self._package(request, fields)
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.refused += 1
            return None
        self.accepted += 1
        return item[2]

    async def replay(
        self,
        requests: Iterable[Request],
        time_scale: float = 0.0,
    ) -> List[Request]:
        """Feed a recorded trace, preserving simulated arrival times.

        ``time_scale`` > 0 paces the feed in wall time (wall seconds per
        simulated second) so live dashboards see realistic ingest;
        0 feeds as fast as backpressure allows.  Either way the stamped
        trace -- and therefore the drained fingerprint -- is identical to
        submitting the requests synchronously.
        """
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.rid))
        accepted: List[Request] = []
        previous: Optional[float] = None
        for request in ordered:
            if time_scale > 0 and previous is not None:
                gap = (request.arrival_s - previous) * time_scale
                if gap > 0:
                    await asyncio.sleep(gap)
            previous = request.arrival_s
            accepted.append(await self.submit(request))
        return accepted

    # -- shutdown -----------------------------------------------------------------

    async def close(self) -> None:
        """Stop accepting and wait for the ingest buffer to empty."""
        if not self._closed:
            self._closed = True
            if self._pump_task is not None:
                await self._queue.put(_CLOSE)
                await self._pump_task

    async def drain(self) -> ServingReport:
        """Close ingest and run the server's deterministic drain."""
        await self.close()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.server.drain)

    async def __aenter__(self) -> "AsyncFrontEnd":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()


async def serve_replay(
    server: Server,
    requests: Iterable[Request],
    time_scale: float = 0.0,
    max_pending: int = 256,
) -> ServingReport:
    """Replay a trace through an async front end and drain the server."""
    front = AsyncFrontEnd(server, max_pending=max_pending)
    await front.replay(requests, time_scale=time_scale)
    return await front.drain()


def run_wall_clock(
    server: Server,
    requests: Iterable[Request],
    time_scale: float = 0.0,
    max_pending: int = 256,
) -> ServingReport:
    """Synchronous entry point for the CLI's ``serve --wall-clock`` path."""
    return asyncio.run(
        serve_replay(
            server, requests, time_scale=time_scale, max_pending=max_pending
        )
    )
