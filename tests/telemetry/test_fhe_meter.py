"""FHE-semantic telemetry: the evaluator observer and the analytic mirror."""

import math

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_test_parameters,
)
from repro.ckks.params import get_set
from repro.telemetry.fhe import FheMeter, modeled_noise_trajectory
from repro.telemetry.registry import MetricsRegistry


@pytest.fixture(scope="module")
def params():
    return small_test_parameters(degree=32, max_level=5, wordsize=25, dnum=3)


@pytest.fixture(scope="module")
def setup(params):
    gen = KeyGenerator(params, seed=42)
    secret = gen.secret_key()
    encryptor = Encryptor(params, public_key=gen.public_key(secret), seed=7)
    evaluator = Evaluator(
        params,
        relin_key=gen.relinearisation_key(secret),
        galois_keys=gen.rotation_keys(secret, [1]),
        method="hybrid",
    )
    encoder = CkksEncoder(params)
    return encoder, encryptor, evaluator


def _fresh_ct(encoder, encryptor, value=0.5):
    slots = np.full(encoder.slots, value, dtype=np.complex128)
    return encryptor.encrypt(encoder.encode(slots))


class TestFheMeter:
    def test_multiply_consumes_budget_and_emits_gauges(self, params, setup):
        encoder, encryptor, evaluator = setup
        registry = MetricsRegistry(enabled=True)
        meter = FheMeter(params, registry=registry)
        evaluator.observer = meter
        try:
            a = _fresh_ct(encoder, encryptor)
            b = _fresh_ct(encoder, encryptor)
            meter.track(a)
            meter.track(b)
            fresh_budget = meter.budget_bits(a)
            product = evaluator.multiply(a, b)
            out = evaluator.rescale(product)
            assert meter.budget_bits(out) < fresh_budget
            gauge = registry.get("fhe_noise_budget_bits")
            assert gauge is not None
            series = gauge.series()
            assert ("rescale",) in series
            # level gauge tracks the rescaled output's level
            assert registry.get("fhe_ciphertext_level").series()[
                ("rescale",)
            ] == out.level
        finally:
            evaluator.observer = None

    def test_trajectory_covers_lineage(self, params, setup):
        encoder, encryptor, evaluator = setup
        meter = FheMeter(params, registry=MetricsRegistry(enabled=True))
        evaluator.observer = meter
        try:
            a = _fresh_ct(encoder, encryptor)
            meter.track(a)
            out = evaluator.rescale(evaluator.multiply(a, a))
            ops = [p.op for p in meter.trajectory(out)]
            assert ops[0] == "fresh"
            assert "multiply" in ops and "rescale" in ops
            text = meter.format_trajectory(out)
            assert "budget bits" in text and "rescale" in text
        finally:
            evaluator.observer = None

    def test_exhaustion_warnings_count(self, params, setup):
        encoder, encryptor, evaluator = setup
        registry = MetricsRegistry(enabled=True)
        # warn thresholds high enough that any op trips both warnings
        meter = FheMeter(params, registry=registry, warn_level=params.max_level,
                         warn_budget_bits=1e9)
        evaluator.observer = meter
        try:
            a = _fresh_ct(encoder, encryptor)
            meter.track(a)
            evaluator.add(a, a)
            kinds = {w.kind for w in meter.warnings}
            assert kinds == {"level_exhaustion", "budget_exhaustion"}
            counter = registry.get("fhe_health_warnings_total")
            assert counter.series()[("level_exhaustion",)] >= 1
        finally:
            evaluator.observer = None

    def test_estimate_defaults_to_fresh_for_untracked(self, params):
        meter = FheMeter(params, registry=MetricsRegistry(enabled=True))
        assert meter.estimate(object()).bits == meter.estimator.fresh().bits

    def test_reset_clears_state(self, params, setup):
        encoder, encryptor, _ = setup
        meter = FheMeter(params, registry=MetricsRegistry(enabled=True))
        ct = _fresh_ct(encoder, encryptor)
        meter.track(ct)
        meter.reset()
        assert meter.trajectory(ct) == []


class TestModeledTrajectory:
    @pytest.mark.parametrize("app_name", ["helr", "resnet20", "packbootstrap"])
    def test_all_apps_yield_finite_series(self, app_name):
        from repro.apps import get_application

        params = get_set("C")
        schedule = get_application(app_name).schedule(params)
        points = modeled_noise_trajectory(params, schedule)
        assert points, "every app schedule has at least one level"
        for point in points:
            assert math.isfinite(point.noise_bits)
            assert math.isfinite(point.budget_bits)
            # saturation: noise never exceeds the level's modulus
            assert point.noise_bits <= params.wordsize * (point.level + 1)

    def test_levels_walk_top_down(self):
        from repro.apps import get_application

        params = get_set("C")
        schedule = get_application("helr").schedule(params)
        points = modeled_noise_trajectory(params, schedule)
        levels = [p.level for p in points]
        assert levels == sorted(levels, reverse=True)

    def test_budget_never_negative_below_saturation(self):
        params = get_set("A")
        # one multiply per level at the top two levels
        schedule = {params.max_level: {"hmult": 4},
                    params.max_level - 1: {"hmult": 2}}
        for point in modeled_noise_trajectory(params, schedule):
            assert point.budget_bits >= 0.0
