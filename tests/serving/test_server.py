"""End-to-end Server tests: scheduling, metrics, determinism, lanes.

Most tests drive the simulated clock through :class:`FixedServiceModel`
(analytic timings would only add noise to scheduling assertions); one
smoke test runs the real :class:`NeoServiceModel` end to end.
"""

import json

import pytest

from repro.serving import (
    FixedServiceModel,
    Request,
    Server,
    parse_workload_spec,
    synthesize_arrivals,
)

#: Batch service time grows sub-linearly in BatchSize -- the Fig. 17 shape
#: that makes batching profitable (batch 4 costs 2x batch 1, not 4x).
SUBLINEAR = FixedServiceModel(lambda app, size: 10.0 * size**0.5)
FLAT = FixedServiceModel(lambda app, size: 10.0)


def _server(**kwargs):
    defaults = dict(policy="fifo", max_batch=4, max_wait_s=5.0, lanes=1, model=FLAT)
    defaults.update(kwargs)
    return Server(**defaults)


class TestAdmission:
    def test_submit_kwargs_autoassigns_rids(self):
        server = _server()
        first = server.submit(app="helr")
        second = server.submit(app="helr")
        assert (first.rid, second.rid) == (0, 1)
        assert server.stats().submitted == 2

    def test_submit_requires_app_or_request(self):
        with pytest.raises(ValueError, match="needs a Request or an app"):
            _server().submit()

    def test_rejects_zero_lanes(self):
        with pytest.raises(ValueError, match="at least one lane"):
            _server(lanes=0)

    def test_stats_update_after_drain(self):
        server = _server()
        server.submit_many(Request(rid=i, app="helr") for i in range(3))
        assert server.stats().served == 0
        report = server.drain()
        stats = server.stats()
        assert stats.served == 3 and stats.pending == 0
        assert stats.batches == len(report.batches)
        assert server.last_report is report


class TestScheduling:
    def test_simultaneous_arrivals_form_one_batch(self):
        server = _server()
        for i in range(4):
            server.submit(Request(rid=i, app="helr", arrival_s=0.0))
        report = server.drain()
        assert len(report.batches) == 1
        assert report.batches[0].total_size == 4
        assert report.makespan_s == 10.0

    def test_latency_accounting(self):
        """latency = queue wait + service, against the arrival clock."""
        server = _server(max_wait_s=5.0)
        server.submit(Request(rid=0, app="helr", arrival_s=2.0))
        # A far-future arrival keeps the server from drain-flushing rid 0,
        # so its batch waits out the full continuous-batching window.
        server.submit(Request(rid=1, app="packbootstrap", arrival_s=100.0))
        record = server.drain().records[0]
        # Window expires at 2 + 5 = 7, runs 10s to 17.
        assert record.start_s == 7.0
        assert record.queue_wait_s == 5.0
        assert record.service_s == 10.0
        assert record.latency_s == 15.0

    def test_last_requests_flush_on_drain(self):
        """With no arrivals left, the tail batch skips the wait window."""
        server = _server(max_wait_s=5.0)
        server.submit(Request(rid=0, app="helr", arrival_s=2.0))
        record = server.drain().records[0]
        assert record.start_s == 2.0
        assert record.queue_wait_s == 0.0

    def test_fifo_serves_in_arrival_order(self):
        server = _server(max_batch=1, max_wait_s=0.0)
        for i, arrival in enumerate([3.0, 1.0, 2.0]):
            server.submit(Request(rid=i, app="helr", arrival_s=arrival))
        records = sorted(server.drain().records, key=lambda r: r.start_s)
        assert [r.request.rid for r in records] == [1, 2, 0]

    def test_batches_respect_max_batch(self):
        server = _server(max_batch=4)
        for i in range(10):
            server.submit(Request(rid=i, app="helr", arrival_s=0.0))
        report = server.drain()
        assert all(b.total_size <= 4 for b in report.batches)
        assert report.served == 10

    def test_apps_never_mix_within_a_batch(self):
        server = _server(max_batch=8)
        for i in range(3):
            server.submit(Request(rid=i, app="helr", arrival_s=0.0))
            server.submit(Request(rid=100 + i, app="packbootstrap", arrival_s=0.0))
        for batch in server.drain().batches:
            assert len({r.app for r in batch.requests}) == 1

    def test_two_lanes_overlap_batches(self):
        """Independent batches on two lanes finish in half the serial time."""

        def build(lanes):
            server = _server(lanes=lanes, max_wait_s=0.0, max_batch=4)
            for i in range(4):
                server.submit(Request(rid=i, app="helr", arrival_s=0.0))
                server.submit(
                    Request(rid=100 + i, app="packbootstrap", arrival_s=0.0)
                )
            return server.drain()

        serial, overlapped = build(1), build(2)
        assert serial.makespan_s == 20.0  # two 10s batches back to back
        assert overlapped.makespan_s == 10.0  # one per lane, concurrent
        assert {r.lane for r in overlapped.records} == {0, 1}

    def test_edf_prioritises_tight_deadline(self):
        """A late tight-SLO request overtakes an early lax one under EDF."""

        def finish_time(policy):
            server = _server(policy=policy, max_batch=1, max_wait_s=0.0)
            server.submit(Request(rid=0, app="helr", arrival_s=0.0, slo_s=1000.0))
            server.submit(Request(rid=1, app="helr", arrival_s=0.0, slo_s=20.0))
            report = server.drain()
            return {r.request.rid: r.finish_s for r in report.records}

        fifo, edf = finish_time("fifo"), finish_time("edf")
        assert fifo[0] < fifo[1]  # FIFO: arrival order
        assert edf[1] < edf[0]  # EDF: deadline order
        assert edf[1] == 10.0  # tight request meets its 20s SLO...
        assert fifo[1] == 20.0  # ...which FIFO misses by serving it second

    def test_bucketed_policy_pads_executed_size(self):
        server = _server(policy="bucketed", max_batch=8, model=SUBLINEAR)
        for i in range(5):
            server.submit(Request(rid=i, app="helr", arrival_s=0.0))
        report = server.drain()
        assert [b.executed_size for b in report.batches] == [8]
        assert report.batches[0].total_size == 5
        assert report.batch_size_histogram() == {8: 1}


class TestReport:
    def _mixed_report(self):
        server = _server(lanes=2, max_wait_s=2.0)
        phases = parse_workload_spec("helr:6:1.0,packbootstrap:4:0.5")
        server.submit_many(synthesize_arrivals(phases, seed=3))
        return server.drain()

    def test_headline_metrics_consistent(self):
        report = self._mixed_report()
        assert report.served == 10
        assert report.throughput_rps == pytest.approx(10 / report.makespan_s)
        lat = report.latency_summary()
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert 0.0 <= report.slo_attainment <= 1.0
        assert report.max_queue_depth >= 1
        assert report.mean_queue_depth > 0.0

    def test_timeline_and_chrome_trace(self):
        report = self._mixed_report()
        timeline = report.timeline()
        assert len(timeline) == len(report.batches)
        assert all(block.end_s > block.start_s for block in timeline)
        events = json.loads(report.to_chrome_trace())["traceEvents"]
        assert len(events) == len(report.batches)
        assert {e["ph"] for e in events} == {"X"}

    def test_format_mentions_the_essentials(self):
        text = self._mixed_report().format()
        for token in ("throughput", "P95", "SLO", "helr", "packbootstrap"):
            assert token in text

    def test_fingerprint_replays_bit_identical(self):
        first, second = self._mixed_report(), self._mixed_report()
        assert first.fingerprint() == second.fingerprint()

    def test_fingerprint_sensitive_to_schedule(self):
        base = self._mixed_report()
        other_server = _server(lanes=2, max_wait_s=2.0)
        phases = parse_workload_spec("helr:6:1.0,packbootstrap:4:0.5")
        other_server.submit_many(synthesize_arrivals(phases, seed=4))
        assert base.fingerprint() != other_server.drain().fingerprint()


class TestRealModel:
    def test_smoke_workload_on_the_neo_model(self):
        """Full stack: smoke workload on the analytic A100, shared cache."""
        server = Server(
            params="C", policy="bucketed", max_batch=16, max_wait_s=20.0, lanes=2
        )
        server.submit_many(
            synthesize_arrivals(parse_workload_spec("smoke"), seed=0)
        )
        report = server.drain()
        assert report.served == 20
        assert report.throughput_rps > 0.0
        assert all(r.finish_s > r.start_s >= r.request.arrival_s for r in report.records)
        # Replaying the same trace reuses every batch shape from the cache
        # and reproduces the schedule bit for bit.
        replay = server.drain()
        assert replay.cache.hits > report.cache.hits, (
            "replayed batch shapes must hit the shared trace cache"
        )
        assert replay.fingerprint() == report.fingerprint()
