"""KLSS parameter auto-tuning (automating the paper's Table 8 / Fig. 16).

The paper hand-sweeps ``(dnum, alpha~)`` and ``WordSize_T`` to find the
KeySwitch optimum (dnum = 9, alpha~ = 5, WordSize_T = 48 at Set B/C scale).
:func:`tune_keyswitch` runs that search on the cost model for any base
parameter set and device, returning the ranked configurations -- the tool a
deployment would actually use when levels, word sizes or hardware change.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..ckks.params import KlssConfig, ParameterSet
from ..gpu.device import A100, DeviceSpec
from .neo_context import NeoContext
from .pipeline import NEO_CONFIG, PipelineConfig


@dataclass(frozen=True)
class TuningResult:
    """One evaluated configuration."""

    dnum: int
    alpha_tilde: int
    wordsize_t: int
    keyswitch_us: float
    alpha_prime: int

    def config(self) -> KlssConfig:
        return KlssConfig(wordsize_t=self.wordsize_t, alpha_tilde=self.alpha_tilde)


def tune_keyswitch(
    base: ParameterSet,
    level: Optional[int] = None,
    dnums: Sequence[int] = (3, 4, 6, 9, 12, 18),
    alpha_tildes: Sequence[int] = (3, 4, 5, 6, 7, 8),
    wordsizes_t: Sequence[int] = (36, 48, 64),
    device: DeviceSpec = A100,
    config: PipelineConfig = NEO_CONFIG,
) -> List[TuningResult]:
    """Exhaustively evaluate the KLSS hyper-parameter grid.

    Returns results sorted fastest-first.  Configurations whose auxiliary
    basis would be degenerate (``alpha' < 2``) are skipped.
    """
    level = base.max_level if level is None else level
    results: List[TuningResult] = []
    for dnum in dnums:
        for alpha_tilde in alpha_tildes:
            for wordsize_t in wordsizes_t:
                params = dataclasses.replace(
                    base,
                    dnum=dnum,
                    klss=KlssConfig(
                        wordsize_t=wordsize_t, alpha_tilde=alpha_tilde
                    ),
                )
                try:
                    alpha_prime, _, _ = params.klss_dims(level)
                except ValueError:
                    continue
                if alpha_prime < 2:
                    continue
                ctx = NeoContext(params, device=device, config=config)
                results.append(
                    TuningResult(
                        dnum=dnum,
                        alpha_tilde=alpha_tilde,
                        wordsize_t=wordsize_t,
                        keyswitch_us=ctx.keyswitch_time_us(level),
                        alpha_prime=alpha_prime,
                    )
                )
    if not results:
        raise ValueError("no admissible configuration in the search grid")
    return sorted(results, key=lambda r: r.keyswitch_us)


def best_configuration(
    base: ParameterSet, level: Optional[int] = None, **kwargs
) -> TuningResult:
    """The fastest configuration of :func:`tune_keyswitch`'s grid."""
    return tune_keyswitch(base, level=level, **kwargs)[0]


def hybrid_vs_best_klss(
    base: ParameterSet,
    level: Optional[int] = None,
    device: DeviceSpec = A100,
    config: PipelineConfig = NEO_CONFIG,
) -> Tuple[float, TuningResult]:
    """(Hybrid KeySwitch time, best KLSS result) for a base set."""
    level = base.max_level if level is None else level
    hybrid_ctx = NeoContext(
        base, device=device, config=config.with_overrides(keyswitch="hybrid")
    )
    return hybrid_ctx.keyswitch_time_us(level), best_configuration(
        base, level=level, device=device, config=config
    )
