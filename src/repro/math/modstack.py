"""Limb-stacked modular arithmetic over a whole RNS basis at once.

The double-CRT layout stores one residue array per RNS limb; GPU FHE
libraries keep those limbs contiguous in a single ``(num_limbs, N)`` tensor
and run every element-wise kernel across the whole stack in one launch.
:class:`ModulusStack` is the numpy mirror of that idea: per-limb moduli,
Barrett constants and bit-width shifts are materialised as broadcastable
columns so that ``add/sub/neg/mul/scalar_mul`` over an ``(L, ..., N)``
stack are single vectorised expressions -- no Python-level per-limb loop.

When every modulus fits the native ``uint64`` backends the stack dtype is
``uint64``; a single limb at or above ``2**62`` demotes the whole stack to
the exact object backend (the reference oracle path).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from . import modarith

_U64 = np.uint64


class ModulusStack:
    """Vectorised mod-arithmetic context for an ordered tuple of moduli.

    Arrays handled by a stack have shape ``(L, ..., N)``: leading limb axis,
    then optional batch axes, then the coefficient axis.  All per-limb
    constants broadcast from column vectors ``(L, 1, ..., 1)``.
    """

    _CACHE: Dict[Tuple[Tuple[int, ...], bool], "ModulusStack"] = {}

    def __init__(self, moduli: Sequence[int]):
        self.moduli: Tuple[int, ...] = tuple(int(q) for q in moduli)
        if not self.moduli:
            raise ValueError("a modulus stack needs at least one modulus")
        if any(q <= 1 for q in self.moduli):
            raise ValueError("all moduli must be > 1")
        self.native = all(modarith.uses_native_backend(q) for q in self.moduli)
        #: Residues below ``2**31`` admit the two-multiply ``mulhi_op32``.
        self._op32 = self.native and all(q < 2**31 for q in self.moduli)
        if self.native:
            self._q = np.array(self.moduli, dtype=_U64)
            bits = [q.bit_length() for q in self.moduli]
            self._s_lo = np.array([k - 1 for k in bits], dtype=_U64)
            self._s_lo_c = np.array([64 - (k - 1) for k in bits], dtype=_U64)
            self._s_hi = np.array([k + 1 for k in bits], dtype=_U64)
            self._s_hi_c = np.array([64 - (k + 1) for k in bits], dtype=_U64)
            self._mu = np.array(
                [(1 << (2 * k)) // q for k, q in zip(bits, self.moduli)],
                dtype=_U64,
            )
            # Lazy-reduction constants: R = 2**64 mod q_i (with its Shoup
            # companion) folds the high word of a 128-bit accumulator.
            r64 = [(1 << 64) % q for q in self.moduli]
            self._r64 = np.array(r64, dtype=_U64)
            self._r64_shoup = np.array(
                [modarith.shoup_precompute(r, q) for r, q in zip(r64, self.moduli)],
                dtype=_U64,
            )
        else:
            self._q = np.array(self.moduli, dtype=object)

    @classmethod
    def for_moduli(cls, moduli: Sequence[int]) -> "ModulusStack":
        """The cached stack for `moduli` under the current backend policy."""
        key = (tuple(int(q) for q in moduli), modarith._BARRETT_ENABLED)
        stack = cls._CACHE.get(key)
        if stack is None:
            stack = cls(key[0])
            cls._CACHE[key] = stack
        return stack

    @property
    def dtype(self):
        return np.uint64 if self.native else object

    def __len__(self) -> int:
        return len(self.moduli)

    # -- shaping ------------------------------------------------------------

    def _col(self, arr: np.ndarray, ndim: int) -> np.ndarray:
        """Reshape a per-limb ``(L,)`` constant to broadcast over `ndim` axes."""
        return arr.reshape((len(self.moduli),) + (1,) * (ndim - 1))

    @staticmethod
    def _align(a: np.ndarray, b: np.ndarray):
        """Insert batch axes after the limb axis so two stacks broadcast.

        Stacks are ``(L, batch..., N)``; numpy aligns trailing axes, so a
        rank difference means missing *batch* dims, which belong between
        the limb and coefficient axes rather than in front.
        """
        while a.ndim < b.ndim:
            a = np.expand_dims(a, 1)
        while b.ndim < a.ndim:
            b = np.expand_dims(b, 1)
        return a, b

    def q_col(self, ndim: int) -> np.ndarray:
        return self._col(self._q, ndim)

    # -- coercion -----------------------------------------------------------

    def stack_limbs(self, limbs: Sequence[np.ndarray]) -> np.ndarray:
        """Stack per-limb residue arrays into one reduced ``(L, ..., N)`` array."""
        if len(limbs) != len(self.moduli):
            raise ValueError(
                f"expected {len(self.moduli)} limb arrays, got {len(limbs)}"
            )
        reduced = [
            modarith.asarray_mod(limb, q) for limb, q in zip(limbs, self.moduli)
        ]
        if self.native:
            return np.stack(reduced)
        return np.stack([np.asarray(limb, dtype=object) for limb in reduced])

    def reduce(self, stack: np.ndarray) -> np.ndarray:
        """Reduce an integer stack limb-wise into ``[0, q_i)``."""
        stack = np.asarray(stack)
        if self.native and stack.dtype != object:
            if np.issubdtype(stack.dtype, np.signedinteger):
                q = self._col(self._q.astype(np.int64), stack.ndim)
                return (stack.astype(np.int64, copy=False) % q).astype(_U64)
            return stack.astype(_U64, copy=False) % self.q_col(stack.ndim)
        stack = np.asarray(stack, dtype=object)
        reduced = stack % self._col(self._q, stack.ndim)
        if self.native:
            return reduced.astype(_U64)
        return reduced

    def zeros(self, shape) -> np.ndarray:
        shape = (len(self.moduli),) + tuple(shape)
        if self.native:
            return np.zeros(shape, dtype=_U64)
        out = np.empty(shape, dtype=object)
        out[...] = 0
        return out

    # -- element-wise ring operations ---------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = self._align(a, b)
        q = self._col(self._q, a.ndim)
        if self.native:
            s = a + b
            return np.where(s >= q, s - q, s)
        return (a + b) % q

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = self._align(a, b)
        q = self._col(self._q, a.ndim)
        if self.native:
            s = a + (q - b)
            return np.where(s >= q, s - q, s)
        return (a - b) % q

    def neg(self, a: np.ndarray) -> np.ndarray:
        q = self._col(self._q, a.ndim)
        if self.native:
            return np.where(a == 0, a, q - a)
        return (-a) % q

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise product of two reduced stacks (Barrett per limb)."""
        a, b = self._align(a, b)
        if not self.native:
            return (a * b) % self._col(self._q, a.ndim)
        ndim = max(a.ndim, b.ndim)
        hi, lo = modarith.mul128(a, b)
        approx = (hi << self._col(self._s_lo_c, ndim)) | (
            lo >> self._col(self._s_lo, ndim)
        )
        q2_hi, q2_lo = modarith.mul128(approx, self._col(self._mu, ndim))
        quot = (q2_hi << self._col(self._s_hi_c, ndim)) | (
            q2_lo >> self._col(self._s_hi, ndim)
        )
        q = self._col(self._q, ndim)
        r = lo - quot * q
        r = np.where(r >= q, r - q, r)
        return np.where(r >= q, r - q, r)

    def shoup_mul(
        self, a: np.ndarray, w: np.ndarray, w_shoup: np.ndarray
    ) -> np.ndarray:
        """Shoup product against per-limb constant stacks (native only)."""
        a, w = self._align(a, w)
        a, w_shoup = self._align(a, w_shoup)
        return modarith.shoup_mul_mod(
            a, w, w_shoup, self._col(self._q, a.ndim), operand32=self._op32
        )

    def scalar_mul(self, a: np.ndarray, scalars: Sequence[int]) -> np.ndarray:
        """Multiply limb ``i`` by Python-int ``scalars[i]``."""
        if len(scalars) != len(self.moduli):
            raise ValueError("need one scalar per limb")
        reduced = [int(s) % q for s, q in zip(scalars, self.moduli)]
        if not self.native:
            w = self._col(np.array(reduced, dtype=object), a.ndim)
            return (a * w) % self._col(self._q, a.ndim)
        w = self._col(np.array(reduced, dtype=_U64), a.ndim)
        w_shoup = self._col(
            np.array(
                [modarith.shoup_precompute(s, q) for s, q in zip(reduced, self.moduli)],
                dtype=_U64,
            ),
            a.ndim,
        )
        return modarith.shoup_mul_mod(
            a, w, w_shoup, self._col(self._q, a.ndim), operand32=self._op32
        )

    def broadcast_scalar_mul(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply every limb by the same Python integer (reduced per limb)."""
        return self.scalar_mul(a, [scalar] * len(self.moduli))

    # -- lazy-reduction GEMM kernels (Neo Algorithms 2 and 4) -----------------

    def lazy_max_terms(self, operand_bound: int = 0) -> int:
        """How many 128-bit products one lazy accumulator can absorb.

        Each term contributes at most ``hi_max + 1`` to the high word (its
        own high word plus a possible carry out of the low word), so the
        accumulator stays below ``2**64`` for
        ``floor((2**64 - 1) / (hi_max + 1))`` terms -- the slack-bit bound
        that plays the role of Algorithm 4's "valid proportion": it tells
        how far reduction can be deferred before the accumulator would
        wrap.  ``operand_bound`` (exclusive) bounds the *other* factor when
        it is not reduced by this stack's own moduli (BConv inputs arrive
        reduced by the source basis).
        """
        q_max = max(self.moduli)
        other = max(int(operand_bound), q_max)
        hi_max = ((q_max - 1) * (other - 1)) >> 64
        terms = ((1 << 64) - 1) // (hi_max + 1)
        if terms < 1:
            raise ValueError(
                f"no slack bits left for lazy accumulation (q_max={q_max}, "
                f"operand_bound={other}); reduce eagerly instead"
            )
        return terms

    def lazy_slack_bits(self, operand_bound: int = 0) -> int:
        """Bits of headroom per accumulated term (``log2`` of the term cap)."""
        return self.lazy_max_terms(operand_bound).bit_length() - 1

    def reduce128(self, hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
        """Reduce ``hi * 2**64 + lo`` limb-wise into ``[0, q_i)``.

        The single reduction that lazy accumulation defers to: fold the high
        word through ``R = 2**64 mod q`` (Shoup), add the reduced low word,
        one conditional subtraction.
        """
        ndim = max(hi.ndim, lo.ndim)
        q = self._col(self._q, ndim)
        term = modarith.shoup_mul_mod(
            hi % q, self._col(self._r64, ndim), self._col(self._r64_shoup, ndim), q
        )
        s = term + lo % q
        return np.where(s >= q, s - q, s)

    def lazy_mul_sum(
        self, a: np.ndarray, b: np.ndarray, axis: int, operand_bound: int = 0
    ) -> np.ndarray:
        """``sum_k a[.., k, ..] * b[.., k, ..] mod q_i`` with lazy reduction.

        The multiply-accumulate at the heart of the paper's GEMM kernels
        (Algorithm 4): full 128-bit products from the 32-bit limb splitting
        accumulate as ``(hi, lo)`` word pairs with carry tracking, and each
        accumulator is reduced *once* per :meth:`lazy_max_terms`-sized chunk
        instead of once per term.  `a` and `b` broadcast together as
        ``(L, ..., N)`` stacks; `axis` (>= 1, never the limb axis) is folded.
        The result is bit-identical to eager per-term reduction -- the sum
        is computed exactly modulo each limb.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if axis == 0:
            raise ValueError("cannot fold the limb axis")
        if not self.native or a.dtype == object or b.dtype == object:
            a = np.asarray(a, dtype=object)
            b = np.asarray(b, dtype=object)
            total = (a * b).sum(axis=axis)
            reduced = total % self._col(self._q, total.ndim)
            return reduced.astype(_U64) if self.native else reduced
        shape = np.broadcast_shapes(a.shape, b.shape)
        if shape[0] != len(self.moduli):
            raise ValueError(
                f"expected limb axis of {len(self.moduli)}, got shape {shape}"
            )
        a = np.broadcast_to(a, shape)
        b = np.broadcast_to(b, shape)
        n_terms = shape[axis]
        out_shape = shape[:axis] + shape[axis + 1 :]
        q_max = max(self.moduli)
        other = max(int(operand_bound), q_max)
        prod_max = (q_max - 1) * (other - 1)
        if prod_max <= ((1 << 64) - 1) >> 2:
            # Fast-backend moduli: whole products fit one uint64 word, so
            # the accumulator is a plain sum -- one multiply and one add per
            # term, one ``%`` per chunk (at least 4 terms deep by the bound
            # above).  Bit-identical to the (hi, lo) path: both compute the
            # exact sum modulo each limb.
            chunk = ((1 << 64) - 1) // max(prod_max, 1)
            q = self._col(self._q, len(out_shape))
            out = None
            for start in range(0, n_terms, chunk):
                stop = min(start + chunk, n_terms)
                acc = np.zeros(out_shape, dtype=_U64)
                for k in range(start, stop):
                    idx = (slice(None),) * axis + (k,)
                    acc += a[idx] * b[idx]
                part = acc % q
                out = part if out is None else self.add(out, part)
            if out is None:
                return np.zeros(out_shape, dtype=_U64)
            return out
        chunk = self.lazy_max_terms(operand_bound)
        out = None
        for start in range(0, n_terms, chunk):
            stop = min(start + chunk, n_terms)
            hi_acc = np.zeros(out_shape, dtype=_U64)
            lo_acc = np.zeros(out_shape, dtype=_U64)
            for k in range(start, stop):
                idx = (slice(None),) * axis + (k,)
                hi, lo = modarith.mul128(a[idx], b[idx])
                lo_acc = lo_acc + lo  # wraps mod 2**64
                carry = (lo_acc < lo).astype(_U64)
                hi_acc = hi_acc + hi + carry
            part = self.reduce128(hi_acc, lo_acc)
            out = part if out is None else self.add(out, part)
        if out is None:
            return np.zeros(out_shape, dtype=_U64)
        return out

    def divide_exact_drop(
        self, keep: np.ndarray, tail: np.ndarray, drop_modulus: int
    ) -> np.ndarray:
        """Round-divide by one dropped limb: ``(x - [x]_{q_drop}) / q_drop``.

        The Rescale epilogue over this stack's (kept) moduli: broadcast the
        dropped limb's residues into every kept limb, subtract, multiply by
        the cached inverse of the dropped modulus.  This is exactly the
        stack arithmetic of the evaluator's single-limb Rescale, exposed so
        fused GEMM epilogues (the op-plan compiler's folded rescale) stay
        bit-identical to the standalone operation.
        """
        correction = self.reduce(np.asarray(tail)[None, ...])
        diff = self.sub(keep, correction)
        inverses = [
            modarith.inv_mod(int(drop_modulus) % q, q) for q in self.moduli
        ]
        return self.scalar_mul(diff, inverses)

    def bconv_matmul(
        self, scaled: np.ndarray, weights: np.ndarray, operand_bound: int = 0
    ) -> np.ndarray:
        """Base conversion as one batched matmul (the paper's Algorithm 2).

        ``scaled`` holds the per-source-limb scaled residues
        ``y_i = [x_i * q_hat_inv_i]_{q_i}`` laid out as ``(*G, K, *B, N)``
        (optional group axes ``G`` such as the digit index, folded source
        axis ``K``, batch axes ``B``); ``weights`` is the conversion matrix
        ``(L, *G, K)`` with ``W[j, .., i] = q_hat_i mod p_j`` over this
        stack's target moduli.  Returns the ``(L, *G, *B, N)`` output stack
        -- every target limb of every group in one lazy-reduced GEMM.
        """
        w = np.asarray(weights)
        scaled = np.asarray(scaled)
        n_group = w.ndim - 2
        trailing = scaled.ndim - n_group - 1
        if trailing < 1:
            raise ValueError(
                f"scaled shape {scaled.shape} too small for weights {w.shape}"
            )
        w_col = w.reshape(w.shape + (1,) * trailing)
        return self.lazy_mul_sum(
            w_col, scaled[None, ...], axis=1 + n_group, operand_bound=operand_bound
        )
