"""Tests for the reuse-distance memory-hierarchy traffic model."""

import pytest

from repro.gpu.device import A100, DEVICES, H100, L4, DeviceSpec, get_device
from repro.gpu.kernels import KernelCost
from repro.gpu.memory_model import (
    L2_RESIDENT_FRACTION,
    TrafficProfile,
    bconv_traffic,
    classify_traffic,
    hier_memory_time_s,
    ip_traffic,
    kernel_traffic_split,
    ntt_traffic,
)

MIB = float(1 << 20)


class TestTrafficProfile:
    def test_scaled_scales_traffic_not_footprints(self):
        p = TrafficProfile(
            reuse_bytes=100.0, working_set_bytes=50.0,
            smem_tile_bytes=10.0, tile_launches=4.0,
        )
        s = p.scaled(3.0)
        assert s.reuse_bytes == 300.0
        assert s.tile_launches == 12.0
        assert s.working_set_bytes == 50.0
        assert s.smem_tile_bytes == 10.0

    def test_merged_adds_traffic_maxes_footprints(self):
        a = TrafficProfile(100.0, 50.0, 10.0, 2.0)
        b = TrafficProfile(40.0, 80.0, 5.0, 1.0)
        m = a.merged(b)
        assert m.reuse_bytes == 140.0
        assert m.working_set_bytes == 80.0
        assert m.smem_tile_bytes == 10.0
        assert m.tile_launches == 3.0

    def test_merged_none_is_identity(self):
        a = TrafficProfile(100.0, 50.0, 10.0, 2.0)
        assert a.merged(None) is a


class TestClassifyTraffic:
    def test_zero_reuse_streaming_kernel(self):
        """A pure streaming kernel: flat and hier agree exactly."""
        split = classify_traffic(1e9, None, A100.hier())
        assert split.placement == "stream"
        assert split.hbm_bytes == 1e9
        assert split.captured_bytes == 0.0
        assert hier_memory_time_s(1e9, None, A100.hier()) == pytest.approx(
            1e9 / A100.memory_bytes_per_s
        )

    def test_smem_resident_tile(self):
        """Tile fits shared memory: reuse captured on-chip, HBM unchanged."""
        traffic = TrafficProfile(
            reuse_bytes=1e9,
            working_set_bytes=100 * MIB,
            smem_tile_bytes=A100.smem_bytes_per_sm / 2,
        )
        split = classify_traffic(1e6, traffic, A100.hier())
        assert split.placement == "smem"
        assert split.hbm_bytes == 1e6
        assert split.l2_bytes == 1e6
        assert split.captured_bytes == 1e9

    def test_l2_resident_working_set(self):
        traffic = TrafficProfile(
            reuse_bytes=1e9,
            working_set_bytes=A100.l2_capacity_bytes * L2_RESIDENT_FRACTION / 2,
        )
        split = classify_traffic(1e6, traffic, A100.hier())
        assert split.placement == "l2"
        assert split.hbm_bytes == 1e6
        assert split.l2_bytes == 1e6 + 1e9
        assert split.captured_bytes == 1e9

    def test_operand_larger_than_l2_spills(self):
        traffic = TrafficProfile(
            reuse_bytes=1e9,
            working_set_bytes=2 * A100.l2_capacity_bytes,
        )
        split = classify_traffic(1e6, traffic, A100.hier())
        assert split.placement == "spill"
        assert split.hbm_bytes == 1e6 + 1e9
        assert split.captured_bytes == 0.0

    def test_l2_boundary_is_fractional_not_full(self):
        """Residency is decided against L2_RESIDENT_FRACTION of L2, not
        the nameplate capacity."""
        ws = A100.l2_capacity_bytes * (L2_RESIDENT_FRACTION + 0.05)
        split = classify_traffic(1e6, TrafficProfile(1e9, ws), A100.hier())
        assert split.placement == "spill"

    def test_disabled_l2_spills(self):
        no_l2 = A100.with_overrides(l2_mib=0.0)
        split = classify_traffic(1e6, TrafficProfile(1e9, 1.0), no_l2)
        assert split.placement == "spill"


class TestHierMonotone:
    @pytest.mark.parametrize("placement_ws", (1.0, 100 * MIB, 10e9))
    def test_hier_never_below_flat(self, placement_ws):
        """The regression gate: hierarchy adds penalties, never bandwidth."""
        traffic = TrafficProfile(reuse_bytes=5e8, working_set_bytes=placement_ws)
        compulsory = 2e9
        flat = compulsory / A100.memory_bytes_per_s
        assert hier_memory_time_s(compulsory, traffic, A100.hier()) >= flat

    def test_kernel_cost_dispatch(self):
        """KernelCost.memory_time_s routes through the hierarchy only on
        hier devices; flat devices keep the legacy price bit-identical."""
        traffic = TrafficProfile(reuse_bytes=5e8, working_set_bytes=10e9)
        cost = KernelCost(
            name="spilly", bytes_read=1e9, bytes_written=1e9, traffic=traffic
        )
        flat_t = cost.memory_time_s(A100)
        hier_t = cost.memory_time_s(A100.hier())
        assert flat_t == pytest.approx(2e9 / A100.memory_bytes_per_s)
        assert hier_t > flat_t

    def test_kernel_traffic_split_helper(self):
        cost = KernelCost(name="stream", bytes_read=3.0, bytes_written=1.0)
        split = kernel_traffic_split(cost, A100.hier())
        assert split.placement == "stream"
        assert split.hbm_bytes == 4.0


class TestProfileBuilders:
    def test_single_stage_ntt_has_no_reuse(self):
        assert ntt_traffic(1e6, 8, stages=1, degree=4096, polys=8).reuse_bytes == 0.0

    def test_staged_ntt_reuse_scales_with_stages(self):
        two = ntt_traffic(1e6, 8, stages=2, degree=4096, polys=8)
        four = ntt_traffic(1e6, 8, stages=4, degree=4096, polys=8)
        assert four.reuse_bytes == pytest.approx(3 * two.reuse_bytes)

    def test_ntt_tiling_shrinks_working_set_adds_launches(self):
        full = ntt_traffic(1e6, 8, stages=2, degree=4096, polys=64)
        tiled = ntt_traffic(1e6, 8, stages=2, degree=4096, polys=64, tile_polys=8)
        assert tiled.working_set_bytes < full.working_set_bytes
        assert tiled.tile_launches > full.tile_launches
        assert tiled.reuse_bytes == full.reuse_bytes

    def test_bconv_uncounted_rereads_become_reuse(self):
        p = bconv_traffic(
            1e6, logical_rereads=10.0, counted_rereads=2.0,
            word_bytes=8, batch=4,
        )
        assert p.reuse_bytes == pytest.approx(8.0 * 1e6 * 8)

    def test_ip_batch_tiling_restreams_the_key(self):
        whole = ip_traffic(1e8, 1e6, 4.0, 4.0, batch=32)
        tiled = ip_traffic(1e8, 1e6, 4.0, 4.0, batch=32, batch_tile=8)
        assert whole.reuse_bytes == 0.0
        assert tiled.reuse_bytes == pytest.approx(3 * 1e8)
        assert tiled.working_set_bytes == 1e8


class TestDeviceRegistry:
    def test_known_devices(self):
        assert get_device("a100") is A100
        assert get_device("H100") is H100
        assert get_device("l4") is L4
        assert get_device(L4) is L4
        assert set(DEVICES) == {"a100", "h100", "l4", "a100-no-tcu"}

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("t4")

    def test_memory_model_validated(self):
        with pytest.raises(ValueError, match="unknown memory model"):
            A100.with_overrides(memory_model="magic")

    def test_hier_flat_round_trip(self):
        hier = A100.hier()
        assert hier.memory_model == "hier"
        assert hier.hier() is hier
        assert hier.flat().memory_model == "flat"
        assert A100.flat() is A100

    def test_l4_has_no_fp64_tensor_cores(self):
        assert L4.tcu_fp64_tflops == 0.0
        assert L4.tcu_int8_tops > 0.0
        assert L4.l2_mib > A100.l2_mib
        assert L4.hbm_bandwidth_gbs < A100.hbm_bandwidth_gbs
