"""Functional CKKS bootstrapping: ModRaise -> CtS -> EvalMod -> StC.

A working (reduced-parameter) implementation of the PackBootstrap pipeline
the paper benchmarks:

1. **ModRaise** -- reinterpret a level-0 ciphertext over the full chain;
   it now decrypts to ``m + q0 * I`` for a small integer polynomial ``I``
   (bounded by the secret's Hamming weight).
2. **CoeffToSlot** -- homomorphic inverse embedding: four linear
   transforms + conjugations move the *coefficients* (divided by ``q0``)
   into the slots of two ciphertexts.
3. **EvalMod** -- a Chebyshev approximation of ``sin(2*pi*u)/(2*pi)``
   removes the integer part ``I`` slot-wise.
4. **SlotToCoeff** -- the forward embedding returns the cleaned
   coefficients to coefficient positions, recovering an encryption of the
   original message at a *higher* level.

The implementation is exact CKKS (no shortcuts through the secret key);
precision at demo parameters is limited by the degree-``eval_degree``
sine approximation, which is why bootstrappable deployments use sparse
secrets (`KeyGenerator.secret_key(hamming_weight=...)`) -- they keep
``|I|`` small so a modest polynomial degree suffices.

Every stage rides the evaluator's key-switch method: with a GEMM-form
evaluator (``"hybrid"`` / ``"klss"``), CoeffToSlot and SlotToCoeff run
through compiled :class:`~repro.ckks.linear_transform.LinearTransformPlan`
objects (hoisted baby rotations, batched giant steps, rescale folded into
the accumulation epilogue) and EvalMod's Paterson-Stockmeyer chunks replay
cached constants; with a ``*-loop`` evaluator the whole pipeline runs the
per-digit reference forms.  The two are bit-identical end to end.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from .ciphertext import Ciphertext
from .encoder import CkksEncoder
from .evaluator import Evaluator
from .linear_transform import LinearTransform
from .params import CkksParameters
from .poly_eval import PolynomialEvaluator, chebyshev_coefficients
from ..math.polynomial import RnsPolynomial
from ..telemetry.tracing import span as _span


class Bootstrapper:
    """Precomputed transforms and polynomials for bootstrapping.

    Args:
        params: parameter set; ``q0 / scale`` should be a small factor
            (it multiplies the final error).
        encoder: the CKKS encoder.
        evaluator: must carry a relinearisation key and Galois keys for
            :meth:`required_rotations` plus conjugation.
        eval_degree: degree of the sine approximation.
        overflow_bound: bound on ``|I|`` (defaults to Hamming weight + 1
            worth of margin; pass ``hamming_weight + 1`` of the secret).
    """

    def __init__(
        self,
        params: CkksParameters,
        encoder: CkksEncoder,
        evaluator: Evaluator,
        eval_degree: int = 15,
        overflow_bound: float = 1.0,
    ):
        self.params = params
        self.encoder = encoder
        self.evaluator = evaluator
        self.poly_eval = PolynomialEvaluator(encoder, evaluator)
        self.q0 = params.moduli[0]
        self.message_ratio = params.scale / self.q0  # |m|-part of u
        self.domain = overflow_bound + 2 * self.message_ratio + 0.25
        self.sine_coeffs = chebyshev_coefficients(
            lambda u: math.sin(2 * math.pi * u) / (2 * math.pi),
            eval_degree,
            self.domain,
        )
        self._build_transforms()

    # -- precomputation ---------------------------------------------------------

    def _build_transforms(self):
        """Embedding matrices split into lo/hi coefficient halves."""
        n = self.params.degree
        slots = self.params.slots
        encoder = self.encoder
        slot_bins, _ = encoder._slot_bins()
        two_n = 2 * n
        # Root of slot j: zeta**e_j with e_j = 2*bin + 1.
        roots = np.exp(1j * np.pi * (2 * slot_bins + 1) / n)
        powers = roots[:, None] ** np.arange(n)[None, :]
        e0, e1 = powers[:, :slots], powers[:, slots:]
        # [z; conj(z)] = M [c_lo; c_hi]  =>  [c_lo; c_hi] = inv(M) [z; conj z]
        m = np.block([[e0, e1], [np.conj(e0), np.conj(e1)]])
        p = np.linalg.inv(m)
        f = self.params.scale / self.q0  # Delta / q0
        self._cts = [
            # (matrix on ct, matrix on conj(ct)) for c_lo and c_hi slots
            (
                LinearTransform(encoder, f * p[:slots, :slots]),
                LinearTransform(encoder, f * p[:slots, slots:]),
            ),
            (
                LinearTransform(encoder, f * p[slots:, :slots]),
                LinearTransform(encoder, f * p[slots:, slots:]),
            ),
        ]
        g = self.q0 / self.params.scale  # q0 / Delta
        self._stc = (
            LinearTransform(encoder, g * e0),
            LinearTransform(encoder, g * e1),
        )

    def required_rotations(self) -> List[int]:
        """Rotation steps the Galois keys must cover (plus conjugation)."""
        steps = set()
        for pair in self._cts:
            for lt in pair:
                steps.update(lt.required_rotations())
        for lt in self._stc:
            steps.update(lt.required_rotations())
        return sorted(steps)

    # -- pipeline stages -----------------------------------------------------------

    def mod_raise(
        self, ct: Ciphertext, target_level: Optional[int] = None
    ) -> Ciphertext:
        """Reinterpret a level-0 ciphertext over the level-`target` chain."""
        if ct.level != 0:
            raise ValueError("ModRaise expects a level-0 ciphertext")
        target_level = self.params.max_level if target_level is None else target_level
        if not 1 <= target_level <= self.params.max_level:
            raise ValueError(
                f"target_level must be in [1, {self.params.max_level}], "
                f"got {target_level}"
            )
        basis = self.params.q_basis(target_level)

        def raise_poly(poly: RnsPolynomial) -> RnsPolynomial:
            centered = poly.from_ntt().basis.compose_signed(poly.from_ntt().limbs)
            return RnsPolynomial.from_int_coeffs(centered, poly.degree, basis)

        return Ciphertext(
            raise_poly(ct.c0), raise_poly(ct.c1), ct.scale, self.params
        )

    def coeff_to_slot(self, ct: Ciphertext):
        """Slots of the two outputs hold ``(c_i + q0*I_i) / q0``."""
        ev = self.evaluator
        conj = ev.conjugate(ct)
        outputs = []
        for lt_z, lt_conj in self._cts:
            part = ev.add(lt_z.apply(ev, ct), lt_conj.apply(ev, conj))
            outputs.append(part)
        return outputs[0], outputs[1]

    def eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """Remove the integer part: ``u -> sin(2 pi u) / (2 pi) ~ u - I``."""
        return self.poly_eval.evaluate(ct, self.sine_coeffs)

    def slot_to_coeff(self, ct_lo: Ciphertext, ct_hi: Ciphertext) -> Ciphertext:
        """Return cleaned coefficients to coefficient positions."""
        ev = self.evaluator
        level = min(ct_lo.level, ct_hi.level)
        ct_lo = ev.mod_switch_to_level(ct_lo, level)
        ct_hi = ev.mod_switch_to_level(ct_hi, level)
        return ev.add(
            self._stc[0].apply(ev, ct_lo), self._stc[1].apply(ev, ct_hi)
        )

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """The full pipeline: a level-0 ciphertext comes back refreshed."""
        with _span("bootstrap", category="bootstrap", method=self.evaluator.method):
            with _span("bootstrap.mod_raise", category="bootstrap"):
                raised = self.mod_raise(ct)
            with _span("bootstrap.coeff_to_slot", category="bootstrap"):
                u_lo, u_hi = self.coeff_to_slot(raised)
            with _span("bootstrap.eval_mod", category="bootstrap"):
                w_lo = self.eval_mod(u_lo)
                w_hi = self.eval_mod(u_hi)
            with _span("bootstrap.slot_to_coeff", category="bootstrap"):
                refreshed = self.slot_to_coeff(w_lo, w_hi)
        if refreshed.level <= 0:
            raise ValueError(
                "bootstrapping consumed the whole chain; raise max_level"
            )
        return refreshed
