"""Inner Product (IP) as matrix multiplication (Algorithm 4 + Figs. 7/8).

The KLSS inner product multiply-accumulates ``beta`` ciphertext digit limbs
against ``beta~ x beta`` evaluation-key limbs, per auxiliary prime and per
coefficient.  The original formulation re-reads each ciphertext coefficient
``beta~`` times; Neo reorders both tensors so the work becomes ``N * alpha'``
independent ``BS x beta x beta~`` GEMMs with full data reuse.

When the valid proportion of the padded FP64 fragments falls below 80% the
GEMM runs on CUDA cores instead (Section 4.5.3) -- :mod:`repro.core.mapping`
implements that policy; here both cost variants are exposed.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Optional, Sequence

import numpy as np

from ..gpu.memory_model import ip_traffic
from ..gpu.kernels import (
    CACHE_REREAD_CAP,
    ELEMENTWISE_FLOPS,
    KernelCost,
    elementwise_cost,
    gemm_cost_cuda,
    gemm_cost_tcu_fp64,
    gemm_cost_tcu_int8,
    word_bytes,
)
from ..math import modarith
from . import layout


class NeoInnerProduct:
    """The GEMM-form IP kernel over the auxiliary basis ``T``."""

    def __init__(self, t_moduli: Sequence[int], gemm: Optional[Callable] = None):
        """Args:
            t_moduli: the ``alpha'`` auxiliary primes, indexing axis 1 of the
                input tensors.
            gemm: optional ``gemm(a, b, q) -> reduced matrix`` hook (e.g.
                :func:`repro.gpu.tensorcore.fp64_gemm_mod` partially applied);
                defaults to exact integer GEMM with reduction.
        """
        self.t_moduli = tuple(int(t) for t in t_moduli)
        self._gemm = gemm if gemm is not None else modarith.matmul_mod

    def run(self, limbs: np.ndarray, evk: np.ndarray) -> np.ndarray:
        """Compute the inner product.

        Args:
            limbs: ``(beta, alpha', BS, N)`` ciphertext digit limbs.
            evk: ``(beta~, beta, alpha', N)`` evaluation-key limbs.

        Returns:
            ``(beta~, alpha', BS, N)`` accumulated limbs, reduced mod ``t_k``.
        """
        beta, alpha_p, batch, n = self._check(limbs, evk)
        beta_tilde = evk.shape[0]
        c_re = layout.ip_limbs_forward(limbs)  # (N, alpha', BS, beta)
        k_re = layout.ip_evk_forward(evk)  # (N, alpha', beta, beta~)
        native = (
            limbs.dtype != object
            and evk.dtype != object
            and self._gemm is modarith.matmul_mod
            and all(modarith.uses_native_backend(t) for t in self.t_moduli)
        )
        out = np.empty(
            (n, alpha_p, batch, beta_tilde),
            dtype=np.uint64 if native else object,
        )
        for k, t in enumerate(self.t_moduli):
            if native:
                # All N per-coefficient GEMMs for this auxiliary prime run
                # as one stacked (N, BS, beta) @ (N, beta, beta~) Barrett
                # GEMM -- a single launch in the paper's execution model.
                out[:, k] = modarith.matmul_mod(c_re[:, k], k_re[:, k], t)
                continue
            # One (N*BS) x beta~ x beta GEMM per auxiliary prime.
            a = c_re[:, k].reshape(n * batch, beta)
            b_blocks = k_re[:, k]  # (N, beta, beta~)
            for l in range(n):
                block = self._gemm(
                    a[l * batch : (l + 1) * batch], b_blocks[l], t
                )
                out[l, k] = np.asarray(block, dtype=out.dtype)
        return layout.ip_limbs_backward(out)

    def _check(self, limbs: np.ndarray, evk: np.ndarray):
        if limbs.ndim != 4 or evk.ndim != 4:
            raise ValueError("limbs must be rank-4 (beta, alpha', BS, N); evk rank-4")
        beta, alpha_p, batch, n = limbs.shape
        beta_tilde, beta_e, alpha_e, n_e = evk.shape
        if (beta_e, alpha_e, n_e) != (beta, alpha_p, n):
            raise ValueError(
                f"evk shape {evk.shape} inconsistent with limbs {limbs.shape}"
            )
        if alpha_p != len(self.t_moduli):
            raise ValueError(
                f"tensor has {alpha_p} aux limbs, kernel built for {len(self.t_moduli)}"
            )
        return beta, alpha_p, batch, n


def reference_inner_product(
    limbs: np.ndarray, evk: np.ndarray, t_moduli: Sequence[int]
) -> np.ndarray:
    """Algorithm 3: the original element-wise multiply-accumulate IP."""
    beta, alpha_p, batch, n = limbs.shape
    beta_tilde = evk.shape[0]
    out = np.zeros((beta_tilde, alpha_p, batch, n), dtype=object)
    for i in range(beta_tilde):
        for j in range(beta):
            for k in range(alpha_p):
                t = int(t_moduli[k])
                for b in range(batch):
                    out[i, k, b] = (
                        out[i, k, b] + limbs[j, k, b].astype(object) * evk[i, j, k]
                    ) % t
    return out


# ---------------------------------------------------------------------------
# Analytic cost
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4096)
def ip_cost(
    beta: int,
    beta_tilde: int,
    alpha_prime: int,
    batch: int,
    n: int,
    wordsize: int,
    style: str = "gemm",
    component: str = "tcu_fp64",
    fused: bool = True,
    pair_factor: int = 2,
    batch_tile: Optional[int] = None,
) -> KernelCost:
    """Cost of one full IP over a batch.

    Pure function of its scalar arguments, memoised process-wide (frozen
    result, safe to share; the autotuner sweeps hit the same shapes often).

    Args:
        pair_factor: 2 for the KLSS IP (the ``(b, a)`` evk pairs double the
            work); 1 when ``beta_tilde`` itself already enumerates the output
            components (the Hybrid external product uses ``beta_tilde = 2``).
        batch_tile: ciphertexts per kernel tile.  Tiling re-streams the
            evaluation key once per tile (the hierarchy model charges it to
            L2 or DRAM depending on the key's footprint); ``None`` reads
            the key once.
    """
    wb = word_bytes(wordsize)
    limb_elements = beta * alpha_prime * batch * n
    evk_elements = beta_tilde * beta * alpha_prime * n
    out_elements = beta_tilde * alpha_prime * batch * n
    if style == "elementwise":
        # Algorithm 3: the IP is "constructed using the ModMUL kernel" --
        # one kernel launch per (i, j) evk pair, so each ciphertext
        # coefficient is re-read beta~ times (capped by cache) and the
        # accumulators round-trip through global memory between launches
        # (the overhead kernel fusion removes, Section 4.6).
        limb_reread = min(beta_tilde, CACHE_REREAD_CAP)
        acc_roundtrips = max(beta - 1, 0)  # re-read + re-write per extra step
        return KernelCost(
            name="ip",
            cuda_flops=pair_factor * limb_elements * beta_tilde * 8.0,
            bytes_read=pair_factor
            * (limb_elements * limb_reread + evk_elements + acc_roundtrips * out_elements)
            * wb,
            bytes_written=pair_factor
            * (1 + acc_roundtrips)
            * out_elements
            * wb,
            launches=beta_tilde * beta,
            # Hierarchy view: the uncapped tail of the per-pair limb
            # re-reads, resident only if the limb tensor fits.
            traffic=ip_traffic(
                0.0,
                pair_factor * limb_elements * wb,
                beta_tilde,
                limb_reread,
                batch,
                batch_tile=None,
            ),
        )
    if style != "gemm":
        raise ValueError(f"unknown IP style {style!r}")
    m, n_dim, k_dim = batch * n * alpha_prime, beta_tilde, beta
    builders = {
        "cuda": gemm_cost_cuda,
        "tcu_fp64": gemm_cost_tcu_fp64,
        "tcu_int8": gemm_cost_tcu_int8,
    }
    try:
        gemm = builders[component]("ip", m, n_dim, k_dim, wordsize, include_io=False)
    except KeyError:
        raise ValueError(f"unknown component {component!r}")
    gemm = gemm.scaled(pair_factor, name="ip")
    reorder = elementwise_cost(
        "ip",
        pair_factor * (limb_elements + out_elements) + evk_elements,
        wordsize,
        flops_per_element=ELEMENTWISE_FLOPS,
        reads_per_element=1.0,
        writes_per_element=1.0,
    )
    staged = gemm.merged(reorder, name="ip")
    traffic = ip_traffic(
        evk_elements * wb, limb_elements * wb, 0.0, 0.0, batch, batch_tile
    )
    if fused:
        return KernelCost(
            name="ip",
            cuda_flops=staged.cuda_flops,
            tcu_fp64_flops=staged.tcu_fp64_flops,
            tcu_int8_ops=staged.tcu_int8_ops,
            bytes_read=(pair_factor * limb_elements + evk_elements) * wb,
            bytes_written=pair_factor * out_elements * wb,
            launches=1,
            traffic=traffic,
        )
    return staged
