"""Functional equivalence of the GEMM-form kernels with Algorithms 1 and 3."""

import numpy as np
import pytest

from repro.core.bconv_matmul import NeoBConv, bconv_cost, reference_bconv
from repro.core.ip_matmul import NeoInnerProduct, ip_cost, reference_inner_product
from repro.gpu.tensorcore import fp64_gemm_mod
from repro.math.primes import disjoint_prime_chains
from repro.math.rns import RnsBasis

CHAIN_Q, CHAIN_P, CHAIN_T = disjoint_prime_chains([26, 27, 28], 16, [3, 4, 3])
BASIS_Q = RnsBasis(CHAIN_Q)
BASIS_P = RnsBasis(CHAIN_P)


def random_limb_tensor(basis, batch, n, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack(
        [
            rng.integers(0, q, size=(batch, n)).astype(object)
            for q in basis.moduli
        ]
    )


class TestNeoBConv:
    def test_matches_algorithm1(self):
        """Algorithm 2 (GEMM form) == Algorithm 1 (element-wise) exactly."""
        tensor = random_limb_tensor(BASIS_Q, batch=3, n=16, seed=1)
        neo = NeoBConv(BASIS_Q, BASIS_P).run(tensor)
        ref = reference_bconv(tensor, BASIS_Q, BASIS_P)
        assert (neo == ref).all()

    def test_with_fp64_tcu_gemm(self):
        """The GEMM step can run through the FP64 tensor-core emulation."""

        def tcu_exact_gemm(a, b):
            # plane-split exact GEMM: use a modulus far above any entry
            bound = 1 << 62
            return np.asarray(
                fp64_gemm_mod(a % bound, b % bound, bound), dtype=object
            )

        tensor = random_limb_tensor(BASIS_Q, batch=2, n=16, seed=2)
        neo = NeoBConv(BASIS_Q, BASIS_P, gemm=tcu_exact_gemm).run(tensor)
        ref = reference_bconv(tensor, BASIS_Q, BASIS_P)
        assert (neo == ref).all()

    def test_input_validation(self):
        kernel = NeoBConv(BASIS_Q, BASIS_P)
        with pytest.raises(ValueError):
            kernel.run(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            kernel.run(np.zeros((99, 3, 16), dtype=object))


class TestNeoInnerProduct:
    BETA, ALPHA_P, BATCH, N = 3, 3, 2, 8

    def _tensors(self, seed=3):
        rng = np.random.default_rng(seed)
        t_moduli = CHAIN_T[: self.ALPHA_P]
        limbs = np.empty((self.BETA, self.ALPHA_P, self.BATCH, self.N), dtype=object)
        evk = np.empty((2, self.BETA, self.ALPHA_P, self.N), dtype=object)
        for k, t in enumerate(t_moduli):
            limbs[:, k] = rng.integers(0, t, size=(self.BETA, self.BATCH, self.N))
            evk[:, :, k] = rng.integers(0, t, size=(2, self.BETA, self.N))
        return limbs, evk, t_moduli

    def test_matches_algorithm3(self):
        limbs, evk, t_moduli = self._tensors()
        neo = NeoInnerProduct(t_moduli).run(limbs, evk)
        ref = reference_inner_product(limbs, evk, t_moduli)
        assert (neo == ref).all()

    def test_with_fp64_tcu_gemm(self):
        limbs, evk, t_moduli = self._tensors(seed=4)
        neo = NeoInnerProduct(t_moduli, gemm=fp64_gemm_mod).run(limbs, evk)
        ref = reference_inner_product(limbs, evk, t_moduli)
        assert (neo == ref).all()

    def test_shape_validation(self):
        limbs, evk, t_moduli = self._tensors()
        kernel = NeoInnerProduct(t_moduli)
        with pytest.raises(ValueError):
            kernel.run(limbs[:, :2], evk)
        with pytest.raises(ValueError):
            kernel.run(limbs[0], evk)


class TestCostBuilders:
    def test_bconv_gemm_reduces_traffic(self):
        """The data-layout optimisation reduces global traffic (Fig. 15)."""
        orig = bconv_cost(4, 8, 128, 2**16, 36, style="elementwise")
        opt = bconv_cost(4, 8, 128, 2**16, 36, style="gemm")
        assert opt.bytes_read + opt.bytes_written < orig.bytes_read + orig.bytes_written

    def test_ip_gemm_reduces_traffic(self):
        orig = ip_cost(9, 8, 8, 128, 2**16, 48, style="elementwise")
        opt = ip_cost(9, 8, 8, 128, 2**16, 48, style="gemm")
        assert opt.bytes_read + opt.bytes_written < orig.bytes_read + orig.bytes_written

    def test_ip_elementwise_launches_per_modmul(self):
        """Algorithm 3 is built from separate ModMUL kernel launches."""
        cost = ip_cost(9, 8, 8, 128, 2**16, 48, style="elementwise")
        assert cost.launches == 9 * 8

    def test_fused_single_launch(self):
        cost = bconv_cost(4, 8, 128, 2**16, 36, style="gemm", fused=True)
        assert cost.launches == 1
        staged = bconv_cost(4, 8, 128, 2**16, 36, style="gemm", fused=False)
        assert staged.launches > 1

    def test_unknown_styles_rejected(self):
        with pytest.raises(ValueError):
            bconv_cost(4, 8, 1, 16, 36, style="magic")
        with pytest.raises(ValueError):
            ip_cost(2, 2, 2, 1, 16, 36, style="magic")
        with pytest.raises(ValueError):
            bconv_cost(4, 8, 1, 16, 36, component="npu")
        with pytest.raises(ValueError):
            ip_cost(2, 2, 2, 1, 16, 36, component="npu")

    def test_pair_factor(self):
        two = ip_cost(3, 4, 2, 8, 16, 36, style="gemm", pair_factor=2)
        one = ip_cost(3, 4, 2, 8, 16, 36, style="gemm", pair_factor=1)
        assert two.tcu_fp64_flops == pytest.approx(2 * one.tcu_fp64_flops)
