"""Extension: dynamic-batching serving throughput.

The Fig. 17 occupancy effect says a batch-1 ciphertext costs ~20x more
device time than its share of a batch-64 run; the serving layer converts
that into request throughput by folding a live arrival stream into dynamic
batches.  This benchmark demonstrates the acceptance bar on the mixed
HELR + PackBootstrap trace:

* continuous batching sustains >= 3x the throughput of serial batch-1
  admission (measured ~19x on the analytic A100 model),
* its P95 latency stays within every application's SLO, and
* the whole schedule is deterministic -- two fresh servers fed the same
  seeded trace produce bit-identical serving timelines.
"""

import pytest

from repro.serving import (
    Server,
    parse_workload_spec,
    synthesize_arrivals,
)
from repro.core.profiling import percentile

WORKLOAD = "mixed"  # 120x helr @ 1.2/s + 80x packbootstrap @ 0.8/s
SEED = 0


def _requests():
    return synthesize_arrivals(parse_workload_spec(WORKLOAD), seed=SEED)


def _continuous_server():
    return Server(
        params="C", policy="bucketed", max_batch=64, max_wait_s=30.0, lanes=2
    )


def _serial_server():
    """The no-batching baseline: one request at a time, one lane."""
    return Server(params="C", policy="fifo", max_batch=1, max_wait_s=0.0, lanes=1)


def _drain(server):
    server.submit_many(_requests())
    return server.drain()


@pytest.fixture(scope="module")
def continuous_report():
    return _drain(_continuous_server())


@pytest.fixture(scope="module")
def serial_report():
    return _drain(_serial_server())


def test_continuous_batching_beats_serial_admission_3x(
    continuous_report, serial_report
):
    assert continuous_report.served == serial_report.served == 200
    ratio = continuous_report.throughput_rps / serial_report.throughput_rps
    assert ratio >= 3.0, (
        f"continuous batching {continuous_report.throughput_rps:.3f} req/s is "
        f"only {ratio:.1f}x serial {serial_report.throughput_rps:.3f} req/s"
    )


def test_p95_latency_within_slo_per_application(continuous_report):
    per_app = {}
    for record in continuous_report.records:
        per_app.setdefault(record.request.app, []).append(record)
    assert per_app, "no records served"
    for app, records in sorted(per_app.items()):
        p95 = percentile([r.latency_s for r in records], 95)
        slo = records[0].request.slo_s
        assert p95 <= slo, f"{app}: P95 {p95:.1f}s exceeds its {slo:.0f}s SLO"


def test_serving_trace_is_deterministic():
    """Same seed, two fresh servers: bit-identical serving timelines."""
    first = _drain(_continuous_server())
    second = _drain(_continuous_server())
    assert first.fingerprint() == second.fingerprint()
    assert first.latency_summary() == second.latency_summary()
    assert [b.executed_size for b in first.batches] == [
        b.executed_size for b in second.batches
    ]


def test_dynamic_batches_actually_form(continuous_report):
    """Sanity: the win comes from large batches, not an accounting slip."""
    assert continuous_report.mean_batch_size() > 4.0
    assert max(b.total_size for b in continuous_report.batches) >= 16
    assert all(
        b.total_size <= 64 for b in continuous_report.batches
    )
