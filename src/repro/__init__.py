"""Neo: CKKS FHE acceleration via tensor-core-style GEMM kernels.

A reproduction of *"Neo: Towards Efficient Fully Homomorphic Encryption
Acceleration using Tensor Core"* (ISCA 2025) as a pure-Python library:

* :mod:`repro.math` -- modular arithmetic, NTTs, RNS, ring polynomials.
* :mod:`repro.ckks` -- a functional CKKS implementation (encode, encrypt,
  evaluate) with both Hybrid and KLSS key switching.
* :mod:`repro.gpu` -- an A100 device model plus bit-exact numerical
  emulations of the FP64/INT8 tensor-core GEMM decompositions.
* :mod:`repro.core` -- Neo's contribution: BConv/IP as GEMMs, the radix-16
  NTT, the kernel-mapping policy, and the end-to-end performance model.
* :mod:`repro.baselines` -- TensorFHE, HEonGPU and CPU comparators.
* :mod:`repro.apps` -- PackBootstrap, HELR and ResNet-20/32/56 workloads.
* :mod:`repro.analysis` -- the paper's analytic tables and figures.

Quickstart::

    import numpy as np
    from repro import ckks

    params = ckks.small_test_parameters()
    gen = ckks.KeyGenerator(params, seed=0)
    sk = gen.secret_key()
    encoder = ckks.CkksEncoder(params)
    enc = ckks.Encryptor(params, public_key=gen.public_key(sk))
    dec = ckks.Decryptor(params, sk)
    ev = ckks.Evaluator(params, relin_key=gen.relinearisation_key(sk))
    ct = enc.encrypt(encoder.encode(np.arange(4) / 4))
    product = ev.rescale(ev.multiply(ct, ct))
    print(encoder.decode(dec.decrypt(product)).real.round(3)[:4])
"""

from . import analysis, apps, baselines, ckks, core, gpu, math

from .ckks import (
    CkksEncoder,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    KlssConfig,
    get_set,
    small_test_parameters,
)
from .core import (
    HEONGPU_CONFIG,
    NEO_CONFIG,
    TENSORFHE_CONFIG,
    NeoContext,
    PipelineConfig,
    TraceCache,
    profile_application,
)
from .gpu import A100, DeviceSpec

__version__ = "1.0.0"

__all__ = [
    "A100",
    "CkksEncoder",
    "CkksParameters",
    "Decryptor",
    "DeviceSpec",
    "Encryptor",
    "Evaluator",
    "HEONGPU_CONFIG",
    "KeyGenerator",
    "KlssConfig",
    "NEO_CONFIG",
    "NeoContext",
    "PipelineConfig",
    "TENSORFHE_CONFIG",
    "TraceCache",
    "analysis",
    "apps",
    "baselines",
    "ckks",
    "core",
    "get_set",
    "gpu",
    "math",
    "profile_application",
    "small_test_parameters",
]
