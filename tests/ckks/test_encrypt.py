"""Tests for key generation, encryption and decryption."""

import numpy as np
import pytest

from repro.ckks import Encryptor
from repro.ckks.keys import rotation_galois_power

from .conftest import random_slots

TOL = 1e-3


class TestKeyGeneration:
    def test_secret_is_ternary(self, keyset):
        coeffs = keyset["secret"].coeffs
        assert set(int(c) for c in coeffs) <= {-1, 0, 1}

    def test_public_key_residual_is_small(self, params, keyset):
        """b + a*s must equal the small error e."""
        basis = params.q_basis(params.max_level)
        s = keyset["secret"].poly(basis)
        pk = keyset["public"]
        residual = pk.b.add(pk.a.multiply(s).from_ntt()).to_int_coeffs()
        assert max(abs(int(c)) for c in residual) < 8 * params.error_std * 10

    def test_relin_key_digit_count(self, params, keyset):
        assert keyset["relin"].dnum == params.dnum

    def test_galois_keys_membership(self, params, keyset):
        power = rotation_galois_power(1, params.degree)
        assert power in keyset["galois"]
        with pytest.raises(KeyError):
            keyset["galois"].get(9999)

    def test_keyswitch_key_identity(self, params, keyset):
        """b_j + a_j*s ~ P * W_j * s'  (small error) for every digit."""
        from repro.math import modarith

        pq = params.pq_basis(params.max_level)
        s = keyset["secret"].poly(pq)
        s_sq_coeffs = s.multiply(s).from_ntt().to_int_coeffs()
        for j, (b_j, a_j) in enumerate(keyset["relin"].pairs):
            residual = b_j.add(a_j.multiply(s).from_ntt())
            # subtract P * W_j * s^2
            from repro.ckks.keys import KeyGenerator
            from repro.math.polynomial import RnsPolynomial

            gen = KeyGenerator(params, seed=0)
            w = gen._gadget_factor(j, params.max_level)
            expected = RnsPolynomial.from_int_coeffs(
                s_sq_coeffs, params.degree, pq
            ).multiply_scalar(params.special_product * w)
            error = residual.sub(expected).to_int_coeffs()
            assert max(abs(int(c)) for c in error) < 8 * params.error_std * 10


class TestEncryptDecrypt:
    def test_public_roundtrip(self, encoder, encryptor, decryptor, rng):
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        assert np.abs(encoder.decode(decryptor.decrypt(ct)) - values).max() < TOL

    def test_symmetric_roundtrip(self, params, keyset, encoder, decryptor, rng):
        sym = Encryptor(params, secret_key=keyset["secret"], seed=3)
        values = random_slots(rng, encoder.slots)
        ct = sym.encrypt(encoder.encode(values))
        assert np.abs(encoder.decode(decryptor.decrypt(ct)) - values).max() < TOL

    def test_encrypt_at_lower_level(self, encoder, encryptor, decryptor, rng):
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values, level=2))
        assert ct.level == 2
        assert np.abs(encoder.decode(decryptor.decrypt(ct)) - values).max() < TOL

    def test_fresh_ciphertexts_differ(self, encoder, encryptor):
        pt = encoder.encode([1.0])
        ct1 = encryptor.encrypt(pt)
        ct2 = encryptor.encrypt(pt)
        assert (ct1.c1.limbs[0] != ct2.c1.limbs[0]).any()

    def test_encryptor_requires_a_key(self, params):
        with pytest.raises(ValueError):
            Encryptor(params)

    def test_ciphertext_metadata(self, params, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        assert ct.level == params.max_level
        assert ct.degree == params.degree
        assert ct.is_relinearised
        assert "Ciphertext" in repr(ct)

    def test_copy_is_deep(self, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([1.0]))
        dup = ct.copy()
        dup.c0.limbs[0][0] = (int(dup.c0.limbs[0][0]) + 1) % int(
            dup.c0.basis.moduli[0]
        )
        assert int(dup.c0.limbs[0][0]) != int(ct.c0.limbs[0][0])

    def test_mismatched_component_bases_rejected(self, params, encoder, encryptor):
        from repro.ckks.ciphertext import Ciphertext

        ct = encryptor.encrypt(encoder.encode([1.0]))
        with pytest.raises(ValueError):
            Ciphertext(ct.c0, ct.c1.keep_limbs(2), ct.scale, params)

    def test_wrong_key_fails_to_decrypt(self, params, encoder, encryptor, rng):
        from repro.ckks import Decryptor, KeyGenerator

        other = KeyGenerator(params, seed=999).secret_key()
        wrong = Decryptor(params, other)
        values = random_slots(rng, encoder.slots)
        ct = encryptor.encrypt(encoder.encode(values))
        garbage = encoder.decode(wrong.decrypt(ct))
        assert np.abs(garbage - values).max() > 1.0
