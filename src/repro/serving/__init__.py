"""Dynamic-batching request serving over the Neo device model.

Turns "one application, one batch" into "a stream of concurrent requests":
jobs are admitted with per-request batch sizes and latency SLOs, folded
into dynamic batches by continuous batching with a bounded wait window,
and scheduled onto multi-stream lanes of the analytic A100 model.  The
overload layer (:mod:`repro.serving.overload`) bounds the admission queue
and sheds load by service tier; :mod:`repro.serving.replay` captures and
byte-identically replays traffic timelines; and
:mod:`repro.serving.async_frontend` puts a wall-clock asyncio ingest with
backpressure in front of the same scheduler.  See
``python -m repro serve --workload mixed`` for the CLI front end.
"""

from .async_frontend import AsyncFrontEnd, FrontEndClosed, run_wall_clock, serve_replay
from .batcher import Batch, ContinuousBatcher
from .faults import (
    BurstFault,
    CancelFault,
    FaultPlan,
    FaultyServiceModel,
    SlowDeviceFault,
)
from .fleet import (
    GALOIS_KEY_COUNTS,
    PLACEMENT_POLICIES,
    AutoscalePolicy,
    AutoscaleTrace,
    DeviceReport,
    Fleet,
    FleetReport,
    KeyPlacementPlan,
    MultiGpuServiceModel,
    ScaleDecision,
    app_key_bytes,
    plan_autoscale,
    plan_key_placement,
)
from .overload import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionController,
    AdmissionDecision,
    AdmissionLedger,
    OverloadPolicy,
)
from .policies import (
    POLICIES,
    AdmissionPolicy,
    EarliestDeadlinePolicy,
    FifoPolicy,
    PriorityPolicy,
    SizeBucketedPolicy,
    get_policy,
    next_power_of_two,
)
from .queue import QueueFull, RequestQueue
from .replay import (
    SnapshotError,
    TimelineSnapshot,
    capture_timeline,
    replay_timeline,
)
from .request import (
    DEFAULT_SLO_S,
    TIER_PRIORITIES,
    Request,
    RequestRecord,
    default_slo_s,
    tier_name,
    tier_priority,
)
from .server import (
    FixedServiceModel,
    NeoServiceModel,
    Server,
    ServerStats,
    ServingReport,
)
from .workload import (
    WORKLOAD_PRESETS,
    WorkloadPhase,
    parse_workload_spec,
    synthesize_arrivals,
)

__all__ = [
    "ADMITTED",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionLedger",
    "AdmissionPolicy",
    "AsyncFrontEnd",
    "AutoscalePolicy",
    "AutoscaleTrace",
    "Batch",
    "BurstFault",
    "CancelFault",
    "ContinuousBatcher",
    "DEFAULT_SLO_S",
    "DeviceReport",
    "EarliestDeadlinePolicy",
    "FaultPlan",
    "FaultyServiceModel",
    "FifoPolicy",
    "FixedServiceModel",
    "Fleet",
    "FleetReport",
    "FrontEndClosed",
    "GALOIS_KEY_COUNTS",
    "KeyPlacementPlan",
    "MultiGpuServiceModel",
    "NeoServiceModel",
    "OverloadPolicy",
    "PLACEMENT_POLICIES",
    "POLICIES",
    "PriorityPolicy",
    "QueueFull",
    "REJECTED",
    "Request",
    "RequestQueue",
    "RequestRecord",
    "SHED",
    "ScaleDecision",
    "Server",
    "ServerStats",
    "ServingReport",
    "SizeBucketedPolicy",
    "SlowDeviceFault",
    "SnapshotError",
    "TIER_PRIORITIES",
    "TimelineSnapshot",
    "WORKLOAD_PRESETS",
    "WorkloadPhase",
    "app_key_bytes",
    "capture_timeline",
    "default_slo_s",
    "get_policy",
    "next_power_of_two",
    "parse_workload_spec",
    "plan_autoscale",
    "plan_key_placement",
    "replay_timeline",
    "run_wall_clock",
    "serve_replay",
    "synthesize_arrivals",
    "tier_name",
    "tier_priority",
]
