"""Multi-GPU scaling model (extension beyond the paper).

The paper's related work cites HE-Booster's multi-GPU parallelisation with
fine-grained data partitioning.  This module extends the single-device
cost model to ``G`` devices: compute divides across GPUs while the
partitioned NTT/BConv stages exchange polynomial shards over the
interconnect, so scaling efficiency decays with GPU count -- the classic
compute-vs-communication trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import A100, DeviceSpec
from .trace import ExecutionTrace


@dataclass(frozen=True)
class Interconnect:
    """GPU-to-GPU link (per-GPU aggregate bandwidth)."""

    name: str
    bandwidth_gbs: float
    latency_us: float

    @property
    def bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9


#: Third-generation NVLink, as on A100 systems (600 GB/s aggregate).
NVLINK3 = Interconnect(name="NVLink3", bandwidth_gbs=600.0, latency_us=5.0)

#: PCIe 4.0 x16 fallback.
PCIE4 = Interconnect(name="PCIe4 x16", bandwidth_gbs=32.0, latency_us=15.0)


class MultiGpuModel:
    """Time a trace across `gpus` devices with shard-exchange overheads.

    Model: compute (and local memory traffic) divides evenly across GPUs;
    every kernel that reads data redistributes ``(G-1)/G`` of its input
    across the interconnect (fine-grained polynomial partitioning needs an
    all-to-all at each transpose-like stage), plus a fixed synchronisation
    latency per kernel.
    """

    def __init__(
        self,
        gpus: int,
        device: DeviceSpec = A100,
        interconnect: Interconnect = NVLINK3,
    ):
        if gpus < 1:
            raise ValueError("need at least one GPU")
        self.gpus = gpus
        self.device = device
        self.interconnect = interconnect

    def time_s(self, trace: ExecutionTrace, streams: int = 8) -> float:
        """Wall time of `trace` on the multi-GPU system."""
        if self.gpus == 1:
            return trace.overlapped_time_s(self.device, streams)
        shard = trace.scaled(1.0 / self.gpus)
        compute = shard.overlapped_time_s(self.device, streams)
        exchange_bytes = (
            sum(e.bytes_read for e in trace.events)
            * (self.gpus - 1)
            / self.gpus
            / self.gpus  # each GPU sends/receives its shard's share
        )
        comm = (
            exchange_bytes / self.interconnect.bytes_per_s
            + sum(e.launches for e in trace.events)
            * self.interconnect.latency_us
            * 1e-6
        )
        # Communication overlaps with compute only partially (conservative:
        # the longer of the two plus half the shorter).
        longer, shorter = max(compute, comm), min(compute, comm)
        return longer + 0.5 * shorter

    def speedup(self, trace: ExecutionTrace, streams: int = 8) -> float:
        """Speedup of `gpus` devices over one."""
        single = MultiGpuModel(1, self.device, self.interconnect)
        return single.time_s(trace, streams) / self.time_s(trace, streams)

    def scaling_efficiency(self, trace: ExecutionTrace, streams: int = 8) -> float:
        """``speedup / gpus`` -- 1.0 is perfect linear scaling."""
        return self.speedup(trace, streams) / self.gpus
