"""Overload demo: load shedding, backpressure, and timeline replay.

Offers the ``overload10x`` traffic mix -- ~30 requests/s of premium,
standard, and batch-tier work against a single C-tier device that
retires roughly 3 requests/s -- to two servers:

* an **unprotected** FIFO server with an unbounded queue, whose premium
  tier blows through its SLO as the backlog grows; and
* an **overload-hardened** server (bounded queue, pressure shedding of
  the batch tier, premium eviction rights) that degrades by policy:
  batch traffic is shed, premium latency stays flat.

The hardened run is then captured to a JSONL timeline snapshot and
replayed; the replay must reproduce the original SHA-256 timeline
fingerprint bit for bit.

Run:  python examples/overload_demo.py
"""

import tempfile
from pathlib import Path

from repro.serving import (
    OverloadPolicy,
    Server,
    capture_timeline,
    parse_workload_spec,
    replay_timeline,
    synthesize_arrivals,
)

#: Scaled to a fifth of the full preset so the unprotected server (which
#: keeps every request queued) still drains in interactive time.
SPEC = (
    "helr:120:2.0:1:0:premium,"
    "packbootstrap:180:3.0:1:0:standard,"
    "helr:1500:25.0:1:0:batch"
)
SEED = 0

OVERLOAD = OverloadPolicy(
    queue_capacity=128,
    shed_threshold=0.5,
    shed_below_priority=1,
    evict_lower_priority=True,
)


def tier_table(report):
    rows = ["    tier      served   shed  rejected    P95(s)  SLO-attain"]
    for tier, row in report.per_tier().items():
        rows.append(
            f"    {tier:<9} {row['served']:>6} {row['shed']:>6} "
            f"{row['rejected']:>9} {row['p95_s']:>9.1f} "
            f"{row['slo_attainment']:>10.2%}"
        )
    return "\n".join(rows)


def main():
    requests = synthesize_arrivals(parse_workload_spec(SPEC), seed=SEED)
    print(
        f"offering {len(requests)} requests (~10x a single device's "
        "capacity) to two servers\n"
    )

    naive = Server(
        params="C", policy="fifo", max_batch=64, max_wait_s=20.0, lanes=2
    )
    naive.submit_many(requests)
    naive_report = naive.drain()
    print("=== unprotected: FIFO, unbounded queue ===")
    print(f"  peak queue depth : {naive_report.max_queue_depth} (unbounded)")
    print(tier_table(naive_report))

    hardened = Server(
        params="C",
        policy="priority",
        max_batch=64,
        max_wait_s=20.0,
        lanes=2,
        overload=OVERLOAD,
    )
    hardened.submit_many(requests)
    report = hardened.drain()
    print("\n=== hardened: priority admission + overload policy ===")
    print(
        f"  peak queue depth : {report.max_queue_depth} "
        f"(capacity {OVERLOAD.queue_capacity})"
    )
    print(
        f"  outcomes         : {report.served} served, "
        f"{report.shed_count} shed, {report.rejected_count} rejected"
    )
    print(tier_table(report))

    naive_premium = naive_report.per_tier()["premium"]
    premium = report.per_tier()["premium"]
    print(
        f"\npremium P95 {naive_premium['p95_s']:.0f}s -> "
        f"{premium['p95_s']:.0f}s; attainment "
        f"{naive_premium['slo_attainment']:.0%} -> "
        f"{premium['slo_attainment']:.0%}: the batch tier absorbed the "
        "overload."
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = capture_timeline(
            hardened, Path(tmp) / "overload_timeline.jsonl", report
        )
        replayed = replay_timeline(path)  # verifies the fingerprint
        assert replayed.fingerprint() == report.fingerprint()
        print(
            f"\ncaptured + replayed {path.name}: fingerprint "
            f"{report.fingerprint()[:16]}... verified bit-identical"
        )


if __name__ == "__main__":
    main()
