"""Tests for batched ciphertext execution (the BatchSize axis)."""

import numpy as np
import pytest

from repro.ckks import batched

from .conftest import random_slots

B = 4  # batch size under test


@pytest.fixture()
def value_rows(encoder, rng):
    return np.stack([random_slots(rng, encoder.slots) for _ in range(B)])


@pytest.fixture()
def batched_ct(encoder, encryptor, value_rows):
    return batched.encrypt_batch(encryptor, encoder, value_rows)


class TestPacking:
    def test_roundtrip(self, encoder, decryptor, value_rows, batched_ct):
        got = batched.decrypt_batch(decryptor, encoder, batched_ct)
        assert got.shape == value_rows.shape
        assert np.abs(got - value_rows).max() < 1e-3

    def test_batch_size(self, batched_ct, encoder, encryptor):
        assert batched.batch_size(batched_ct) == B
        single = encryptor.encrypt(encoder.encode([1.0]))
        assert batched.batch_size(single) == 1

    def test_stack_unstack(self, encoder, encryptor, decryptor, value_rows):
        singles = [
            encryptor.encrypt(encoder.encode(row)) for row in value_rows
        ]
        stacked = batched.stack_ciphertexts(singles)
        unstacked = batched.unstack_ciphertext(stacked)
        assert len(unstacked) == B
        for ct, row in zip(unstacked, value_rows):
            got = encoder.decode(decryptor.decrypt(ct))
            assert np.abs(got - row).max() < 1e-3

    def test_stack_validates_levels(self, encoder, encryptor):
        a = encryptor.encrypt(encoder.encode([1.0]))
        b = encryptor.encrypt(encoder.encode([1.0], level=2))
        with pytest.raises(ValueError):
            batched.stack_ciphertexts([a, b])

    def test_stack_empty(self):
        with pytest.raises(ValueError):
            batched.stack_ciphertexts([])

    def test_independent_randomness(self, batched_ct):
        """Rows must not share encryption randomness."""
        c1 = batched_ct.c1.limbs[0]
        assert (np.asarray(c1[0]) != np.asarray(c1[1])).any()


class TestBatchedOperations:
    def test_add(self, encoder, encryptor, decryptor, evaluator, value_rows):
        ct = batched.encrypt_batch(encryptor, encoder, value_rows)
        total = evaluator.add(ct, ct)
        got = batched.decrypt_batch(decryptor, encoder, total)
        assert np.abs(got - 2 * value_rows).max() < 1e-3

    def test_multiply_whole_batch_in_one_call(
        self, encoder, encryptor, decryptor, evaluator, value_rows
    ):
        """One HMULT (and one KeySwitch) processes all B messages."""
        ct = batched.encrypt_batch(encryptor, encoder, value_rows)
        prod = evaluator.rescale(evaluator.multiply(ct, ct))
        got = batched.decrypt_batch(decryptor, encoder, prod)
        assert np.abs(got - value_rows**2).max() < 1e-2

    def test_multiply_klss_backend(
        self, encoder, encryptor, decryptor, klss_evaluator, value_rows
    ):
        ct = batched.encrypt_batch(encryptor, encoder, value_rows)
        prod = klss_evaluator.rescale(klss_evaluator.multiply(ct, ct))
        got = batched.decrypt_batch(decryptor, encoder, prod)
        assert np.abs(got - value_rows**2).max() < 1e-2

    def test_rotate_batch(self, encoder, encryptor, decryptor, evaluator, value_rows):
        ct = batched.encrypt_batch(encryptor, encoder, value_rows)
        rotated = evaluator.rotate(ct, 1)
        got = batched.decrypt_batch(decryptor, encoder, rotated)
        assert np.abs(got - np.roll(value_rows, -1, axis=1)).max() < 1e-3

    def test_multiply_plain_broadcasts(
        self, encoder, encryptor, decryptor, evaluator, value_rows, rng
    ):
        """A single plaintext multiplies every batched message."""
        weights = random_slots(rng, encoder.slots)
        ct = batched.encrypt_batch(encryptor, encoder, value_rows)
        out = evaluator.rescale(
            evaluator.multiply_plain(ct, encoder.encode(weights))
        )
        got = batched.decrypt_batch(decryptor, encoder, out)
        assert np.abs(got - value_rows * weights[None, :]).max() < 1e-2

    def test_batched_matches_per_ciphertext(
        self, encoder, encryptor, decryptor, evaluator, value_rows
    ):
        """Batched execution decrypts identically to per-ct execution."""
        singles = [encryptor.encrypt(encoder.encode(row)) for row in value_rows]
        stacked = batched.stack_ciphertexts(singles)
        batched_out = evaluator.rescale(evaluator.multiply(stacked, stacked))
        for i, single in enumerate(singles):
            single_out = evaluator.rescale(evaluator.multiply(single, single))
            got_single = encoder.decode(decryptor.decrypt(single_out))
            got_batched = batched.decrypt_batch(decryptor, encoder, batched_out)[i]
            assert np.abs(got_single - got_batched).max() < 1e-3
