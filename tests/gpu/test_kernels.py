"""Tests for the device model, kernel costs and execution traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import (
    A100,
    A100_NO_TCU,
    ExecutionTrace,
    KernelCost,
    elementwise_cost,
    gemm_cost_cuda,
    gemm_cost_tcu_fp64,
    gemm_cost_tcu_int8,
    word_bytes,
    zero_cost,
)


class TestDevice:
    def test_a100_whitepaper_numbers(self):
        assert A100.cuda_fp64_tflops == 9.7
        assert A100.tcu_fp64_tflops == 19.5
        assert A100.tcu_int8_tops == 624.0
        assert A100.hbm_bandwidth_gbs == 1555.0

    def test_tcu_fp64_is_about_2x_cuda(self):
        assert 1.8 < A100.tcu_fp64_tflops / A100.cuda_fp64_tflops < 2.2

    def test_effective_rates_below_peak(self):
        assert A100.cuda_fp64_flops < A100.cuda_fp64_tflops * 1e12
        assert A100.memory_bytes_per_s < A100.hbm_bandwidth_gbs * 1e9

    def test_with_overrides(self):
        slow = A100.with_overrides(hbm_bandwidth_gbs=100.0)
        assert slow.hbm_bandwidth_gbs == 100.0
        assert slow.cuda_fp64_tflops == A100.cuda_fp64_tflops

    def test_no_tcu_device_raises_on_tcu_work(self):
        cost = KernelCost("x", tcu_fp64_flops=1e9)
        with pytest.raises(ValueError):
            cost.time_s(A100_NO_TCU)


class TestWordBytes:
    def test_small_words_pack_in_4_bytes(self):
        assert word_bytes(28) == 4
        assert word_bytes(32) == 4

    def test_wide_words_need_8_bytes(self):
        assert word_bytes(36) == 8
        assert word_bytes(60) == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            word_bytes(0)


class TestKernelCost:
    def test_roofline_compute_bound(self):
        cost = KernelCost("k", cuda_flops=1e12, bytes_read=8)
        t = cost.time_s(A100)
        assert t == pytest.approx(
            A100.kernel_launch_us * 1e-6 + 1e12 / A100.cuda_fp64_flops
        )

    def test_roofline_memory_bound(self):
        cost = KernelCost("k", cuda_flops=1.0, bytes_read=1e9, bytes_written=1e9)
        t = cost.time_s(A100)
        assert t == pytest.approx(
            A100.kernel_launch_us * 1e-6 + 2e9 / A100.memory_bytes_per_s
        )

    def test_scaled(self):
        cost = KernelCost("k", cuda_flops=10, bytes_read=4, launches=2)
        double = cost.scaled(2)
        assert double.cuda_flops == 20 and double.bytes_read == 8
        assert double.launches == 4

    def test_merged_adds_launches(self):
        a = KernelCost("a", cuda_flops=1, launches=1)
        b = KernelCost("b", cuda_flops=2, launches=1)
        m = a.merged(b)
        assert m.cuda_flops == 3 and m.launches == 2

    def test_fusion_saves_traffic_and_launches(self):
        a = KernelCost("a", bytes_written=100, launches=1)
        b = KernelCost("b", bytes_read=100, launches=1)
        fused = a.fused_with(b, saved_bytes=200)
        assert fused.launches == 1
        assert fused.bytes_read + fused.bytes_written == 0

    def test_fusion_cannot_go_negative(self):
        a = KernelCost("a", bytes_written=10)
        b = KernelCost("b", bytes_read=10)
        fused = a.fused_with(b, saved_bytes=10**9)
        assert fused.bytes_read >= 0 and fused.bytes_written >= 0

    def test_zero_cost(self):
        assert zero_cost("nop").time_s(A100) == 0.0

    def test_scaled_preserves_zero_launches(self):
        """Regression: .scaled() used to floor launches at 1, giving a
        zero-cost placeholder a phantom kernel launch."""
        scaled = zero_cost("nop").scaled(5)
        assert scaled.launches == 0
        assert scaled.time_s(A100) == 0.0

    def test_scaled_composes_exactly(self):
        cost = KernelCost("k", cuda_flops=10, bytes_read=4, launches=3)
        assert cost.scaled(0.5).scaled(2) == cost.scaled(1.0)
        assert cost.scaled(0.25).scaled(8) == cost.scaled(2.0)
        assert cost.scaled(0.5).launches == pytest.approx(1.5)

    def test_fractional_scaling_amortises_launch_overhead(self):
        cost = KernelCost("k", cuda_flops=1e9, launches=2)
        half = cost.scaled(0.5)
        assert half.launches == 1
        assert 2 * half.time_s(A100) == pytest.approx(cost.time_s(A100))


class TestGemmCosts:
    M, N, K, WS = 4096, 8, 4, 36

    def test_tcu_fp64_beats_cuda_on_bconv_shape(self):
        """The core claim: FP64-TCU GEMM needs less compute time than CUDA.

        (At this small problem size both roofline times are memory-bound and
        equal, so the comparison is on the compute side.)
        """
        cuda = gemm_cost_cuda("g", self.M, self.N, self.K, self.WS)
        tcu = gemm_cost_tcu_fp64("g", self.M, self.N, self.K, self.WS)
        assert tcu.compute_time_s(A100) < cuda.compute_time_s(A100)

    def test_fp64_beats_int8_at_36_and_48_bits(self):
        """Fig. 3: FP64 wins at WordSize 36 and 48 despite lower peak rate."""
        for ws in (36, 48):
            m, n, k = 2**19, 16, 16
            fp64 = gemm_cost_tcu_fp64("g", m, n, k, ws)
            int8 = gemm_cost_tcu_int8("g", m, n, k, ws)
            assert fp64.time_s(A100) < int8.time_s(A100)

    def test_io_toggle(self):
        with_io = gemm_cost_cuda("g", 8, 8, 8, 36, include_io=True)
        without = gemm_cost_cuda("g", 8, 8, 8, 36, include_io=False)
        assert with_io.bytes_read > 0 and without.bytes_read == 0

    def test_elementwise_cost_traffic(self):
        cost = elementwise_cost("modmul", 1000, 36)
        assert cost.bytes_read == 2 * 1000 * 8
        assert cost.bytes_written == 1000 * 8


class TestTrace:
    def test_serial_is_sum(self):
        t = ExecutionTrace()
        t.add(KernelCost("a", cuda_flops=1e9))
        t.add(KernelCost("b", cuda_flops=1e9))
        assert t.serial_time_s(A100) == pytest.approx(
            2 * KernelCost("x", cuda_flops=1e9).time_s(A100)
        )

    def test_overlap_bounded_by_busiest_resource(self):
        t = ExecutionTrace()
        t.add(KernelCost("cuda", cuda_flops=1e12))
        t.add(KernelCost("tcu", tcu_fp64_flops=1e12))
        serial = t.serial_time_s(A100)
        overlapped = t.overlapped_time_s(A100, streams=8)
        assert overlapped < serial
        busiest = max(1e12 / A100.cuda_fp64_flops, 1e12 / A100.tcu_fp64_flops)
        assert overlapped >= busiest

    def test_overlap_with_one_stream_is_serial(self):
        t = ExecutionTrace().add(KernelCost("a", cuda_flops=1e10))
        assert t.overlapped_time_s(A100, streams=1) == t.serial_time_s(A100)

    def test_breakdown_and_bytes(self):
        t = ExecutionTrace()
        t.add(KernelCost("ntt", cuda_flops=1e9, bytes_read=100))
        t.add(KernelCost("ntt", cuda_flops=1e9, bytes_written=50))
        t.add(KernelCost("bconv", cuda_flops=1e9))
        assert set(t.breakdown_s(A100)) == {"ntt", "bconv"}
        assert t.total_bytes() == 150
        assert t.bytes_by_kernel()["ntt"] == 150

    def test_scaled_and_merged(self):
        t = ExecutionTrace().add(KernelCost("a", cuda_flops=10))
        t2 = t.scaled(3).merged(t)
        assert len(t2) == 2
        assert t2.events[0].cuda_flops == 30


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=0, max_value=1e13),
    st.floats(min_value=0, max_value=1e10),
    st.integers(min_value=2, max_value=32),
)
def test_property_overlap_never_beats_physics(flops, traffic, streams):
    t = ExecutionTrace()
    t.add(KernelCost("a", cuda_flops=flops, bytes_read=traffic))
    t.add(KernelCost("b", tcu_fp64_flops=flops, bytes_written=traffic))
    serial = t.serial_time_s(A100)
    over = t.overlapped_time_s(A100, streams=streams)
    assert over <= serial + 1e-12
    assert over >= serial / streams - 1e-12
