"""Fig. 16: KeySwitch vs level -- Hybrid vs KLSS at WordSize_T 36/48/64.

Paper: WordSize_T = 48 is the sweet spot.  36 inflates alpha' (algorithmic
complexity); 64 inflates the Booth/plane complexity of the TCU GEMMs.
"""

import dataclasses

from repro.analysis.reporting import format_table
from repro.ckks.params import KlssConfig, get_set
from repro.core import NEO_CONFIG, NeoContext

LEVELS = (11, 17, 23, 29, 35)
WORDSIZES_T = (36, 48, 64)


def _build_table():
    base = get_set("B")
    hybrid_ctx = NeoContext(base, config=NEO_CONFIG.with_overrides(keyswitch="hybrid"))
    table = {"Hybrid": {l: hybrid_ctx.keyswitch_time_us(l) for l in LEVELS}}
    for wst in WORDSIZES_T:
        params = dataclasses.replace(
            base, dnum=9, klss=KlssConfig(wordsize_t=wst, alpha_tilde=5)
        )
        ctx = NeoContext(params, config=NEO_CONFIG)
        table[f"KLSS-{wst}"] = {l: ctx.keyswitch_time_us(l) for l in LEVELS}
    return table


def test_fig16_wordsize_t(benchmark):
    table = benchmark(_build_table)
    rows = [
        [label] + [f"{times[l]:.0f}" for l in LEVELS]
        for label, times in table.items()
    ]
    print()
    print(
        format_table(
            ["method"] + [f"l={l}" for l in LEVELS],
            rows,
            title="Fig. 16: KeySwitch time (us/ciphertext) by method and level",
        )
    )
    # --- Shape assertions ---------------------------------------------------
    at_top = {label: times[35] for label, times in table.items()}
    # WordSize_T = 48 is the best KLSS configuration (the paper's default).
    assert at_top["KLSS-48"] <= at_top["KLSS-36"]
    assert at_top["KLSS-48"] <= at_top["KLSS-64"]
    # KLSS-48 beats the Hybrid method at the top level.
    assert at_top["KLSS-48"] < at_top["Hybrid"]
    # Every series grows with level.
    for label, times in table.items():
        values = [times[l] for l in LEVELS]
        assert values == sorted(values), label
