"""Benchmark-history recorder: append results, flag regressions.

``repro bench <kernel> --record`` appends one structured record to
``BENCH_<name>.json`` (a JSON array -- human-diffable, append-only), and
the comparator checks fresh results against the *last* recorded run so CI
can turn "the key-switch GEMM got slower" into a red build instead of a
silent drift.

Direction matters: timings regress *up*, speedups and throughputs regress
*down*.  The comparator defaults to lower-is-better and takes an explicit
``higher_is_better`` key set; anything outside the tolerance band in the
bad direction is a :class:`Regression`.  Improvements are never flagged.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

#: Metric-name suffixes treated as higher-is-better by default.
DEFAULT_HIGHER_IS_BETTER: FrozenSet[str] = frozenset(
    {"speedup", "throughput", "rps", "cts", "hit_rate", "attainment"}
)


@dataclass(frozen=True)
class BenchRecord:
    """One recorded benchmark run."""

    name: str
    recorded_at: str
    metrics: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, str] = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        return {
            "name": self.name,
            "recorded_at": self.recorded_at,
            "metrics": dict(self.metrics),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "BenchRecord":
        return cls(
            name=data["name"],
            recorded_at=data.get("recorded_at", ""),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            meta={k: str(v) for k, v in data.get("meta", {}).items()},
        )


@dataclass(frozen=True)
class Regression:
    """One metric that moved outside tolerance in the bad direction."""

    metric: str
    previous: float
    current: float
    change: float  # signed relative change, + means increased
    higher_is_better: bool

    def format(self) -> str:
        direction = "dropped" if self.higher_is_better else "rose"
        return (
            f"{self.metric} {direction} {abs(self.change) * 100:.1f}%: "
            f"{self.previous:g} -> {self.current:g}"
        )


def history_path(name: str, directory: str = ".") -> str:
    """``BENCH_<name>.json`` under `directory` (name slug-sanitised)."""
    slug = "".join(c if c.isalnum() or c in "-_" else "-" for c in name)
    return os.path.join(directory, f"BENCH_{slug}.json")


def load_history(name: str, directory: str = ".") -> List[BenchRecord]:
    """Every recorded run of `name`, oldest first ([] when none)."""
    path = history_path(name, directory)
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path} is not a benchmark-history array")
    return [BenchRecord.from_jsonable(entry) for entry in data]


def record_result(
    name: str,
    metrics: Mapping[str, float],
    meta: Optional[Mapping[str, str]] = None,
    directory: str = ".",
) -> BenchRecord:
    """Append one run to ``BENCH_<name>.json`` and return its record."""
    record = BenchRecord(
        name=name,
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        metrics={k: float(v) for k, v in metrics.items()},
        meta={k: str(v) for k, v in (meta or {}).items()},
    )
    history = load_history(name, directory)
    history.append(record)
    os.makedirs(directory, exist_ok=True)
    path = history_path(name, directory)
    with open(path, "w") as fh:
        json.dump([r.to_jsonable() for r in history], fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
    return record


def _is_higher_better(metric: str, higher_is_better: Iterable[str]) -> bool:
    keys = set(higher_is_better)
    if metric in keys:
        return True
    tail = metric.rsplit("_", 1)[-1]
    return tail in DEFAULT_HIGHER_IS_BETTER or metric in DEFAULT_HIGHER_IS_BETTER


def compare(
    previous: BenchRecord,
    current: Mapping[str, float],
    rtol: float = 0.10,
    higher_is_better: Iterable[str] = (),
) -> List[Regression]:
    """Regressions of `current` against `previous` outside ``rtol``.

    Only metrics present in both runs are compared; new or dropped metrics
    are not regressions.  A zero previous value only regresses when the
    current one is worse in absolute terms (avoids divide-by-zero blowups
    on metrics that legitimately start at zero).
    """
    regressions: List[Regression] = []
    for metric in sorted(previous.metrics):
        if metric not in current:
            continue
        prev = previous.metrics[metric]
        curr = float(current[metric])
        higher = _is_higher_better(metric, higher_is_better)
        if prev == 0:
            worse = curr < 0 if higher else curr > 0
            change = 0.0 if not worse else (1.0 if curr > prev else -1.0)
        else:
            change = (curr - prev) / abs(prev)
            worse = change < -rtol if higher else change > rtol
        if worse:
            regressions.append(
                Regression(metric, prev, curr, change, higher)
            )
    return regressions


def compare_to_last(
    name: str,
    metrics: Mapping[str, float],
    directory: str = ".",
    rtol: float = 0.10,
    higher_is_better: Iterable[str] = (),
) -> Tuple[Optional[BenchRecord], List[Regression]]:
    """Compare `metrics` to the most recent record of `name`.

    Returns ``(baseline, regressions)``; baseline is ``None`` (and the
    regression list empty) on a first-ever run.
    """
    history = load_history(name, directory)
    if not history:
        return None, []
    baseline = history[-1]
    return baseline, compare(baseline, metrics, rtol, higher_is_better)


def format_regressions(regressions: List[Regression]) -> str:
    if not regressions:
        return "no regressions against the last recorded run"
    lines = [f"{len(regressions)} regression(s) vs last recorded run:"]
    lines.extend(f"  - {r.format()}" for r in regressions)
    return "\n".join(lines)
