"""Number-theory substrate: modular arithmetic, primes, NTT, RNS, ring polys."""

from .modarith import (
    FAST_MODULUS_BOUND,
    add_mod,
    asarray_mod,
    inv_mod,
    matmul_mod,
    mul_mod,
    pow_mod,
    sub_mod,
    to_signed,
    uses_fast_backend,
)
from .ntt import NttPlan, get_plan, multi_step_ntt, four_step_ntt
from .polynomial import RnsPolynomial, negacyclic_multiply, automorphism
from .primes import is_prime, ntt_primes, disjoint_prime_chains, root_of_unity
from .rns import RnsBasis, bconv_approx, bconv_exact, bconv_matrix

__all__ = [
    "FAST_MODULUS_BOUND",
    "NttPlan",
    "RnsBasis",
    "RnsPolynomial",
    "add_mod",
    "asarray_mod",
    "automorphism",
    "bconv_approx",
    "bconv_exact",
    "bconv_matrix",
    "disjoint_prime_chains",
    "four_step_ntt",
    "get_plan",
    "inv_mod",
    "is_prime",
    "matmul_mod",
    "mul_mod",
    "multi_step_ntt",
    "negacyclic_multiply",
    "ntt_primes",
    "pow_mod",
    "root_of_unity",
    "sub_mod",
    "to_signed",
    "uses_fast_backend",
]
