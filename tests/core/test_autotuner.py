"""Tests for the KLSS parameter autotuner."""

import pytest

from repro.ckks.params import get_set
from repro.core.autotuner import (
    TuningResult,
    best_configuration,
    hybrid_vs_best_klss,
    tune_keyswitch,
)


@pytest.fixture(scope="module")
def results():
    return tune_keyswitch(
        get_set("B"),
        dnums=(4, 6, 9, 12),
        alpha_tildes=(4, 5, 6),
        wordsizes_t=(36, 48, 64),
    )


class TestTuner:
    def test_sorted_fastest_first(self, results):
        times = [r.keyswitch_us for r in results]
        assert times == sorted(times)

    def test_grid_coverage(self, results):
        combos = {(r.dnum, r.alpha_tilde, r.wordsize_t) for r in results}
        assert len(combos) == len(results)
        assert len(results) >= 30  # most of the 36-cell grid is admissible

    def test_best_near_paper_optimum(self, results):
        """The winner lands near the paper's (dnum=9, alpha~=5, WST=48)."""
        best = results[0]
        # The grid optimum is mid-dnum and never WordSize_T = 64 (Booth-heavy);
        # the very top cell can tie between 36 and 48 within a few percent.
        assert best.wordsize_t in (36, 48)
        assert best.dnum in (6, 9, 12)
        paper_pick = [
            r for r in results
            if (r.dnum, r.alpha_tilde, r.wordsize_t) == (9, 5, 48)
        ][0]
        assert paper_pick.keyswitch_us <= 1.15 * best.keyswitch_us

    def test_best_configuration_helper(self):
        best = best_configuration(
            get_set("B"), dnums=(6, 9), alpha_tildes=(5,), wordsizes_t=(48,)
        )
        assert isinstance(best, TuningResult)
        assert best.config().wordsize_t == 48

    def test_alpha_prime_recorded(self, results):
        for r in results:
            assert r.alpha_prime >= 2

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            tune_keyswitch(get_set("B"), dnums=(), alpha_tildes=(5,))

    def test_hybrid_vs_best_klss(self):
        hybrid_us, best = hybrid_vs_best_klss(get_set("B"))
        # The paper's central claim: well-tuned KLSS beats Hybrid.
        assert best.keyswitch_us < hybrid_us
