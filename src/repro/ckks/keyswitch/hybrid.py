"""Hybrid (Han-Ki dnum) key switching.

The classic GPU pipeline the paper compares against (Fig. 5, left path):

1. **Digit decomposition** -- split the input into ``beta`` digits of
   ``alpha`` limbs each.
2. **Mod Up** -- BConv each digit from its group basis to the full ``PQ``
   basis (approximate conversion; the small ``u * Q_j`` slack is absorbed
   by the special modulus).
3. **NTT** over ``PQ``, **Inner Product** with the evk digit pairs,
   **INTT**.
4. **Mod Down** -- divide by ``P`` and return to the ciphertext basis.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ...math import modarith
from ...math.polynomial import RnsPolynomial
from ...math.rns import RnsBasis, bconv_approx
from ..keys import KeySwitchKey
from ..params import CkksParameters


def decompose_digits(
    poly: RnsPolynomial, params: CkksParameters
) -> List[RnsPolynomial]:
    """Split `poly` (coefficient form, level-``l`` basis) into digits.

    Digit ``j`` is simply the limbs of group ``j`` -- its residues *are*
    the RNS representation of ``poly mod Q_j``.
    """
    poly = poly.from_ntt()
    level = len(poly.basis) - 1
    digits = []
    for j in range(params.beta(level)):
        start, stop = params.digit_range(j, level)
        basis = RnsBasis(poly.basis.moduli[start:stop])
        digits.append(
            RnsPolynomial(poly.degree, basis, poly.limbs[start:stop], is_ntt=False)
        )
    return digits


def mod_up(
    digit: RnsPolynomial, digit_index: int, params: CkksParameters, level: int
) -> RnsPolynomial:
    """Raise one digit to the ``PQ`` basis (paper's Mod Up / BConv step).

    Limbs belonging to the digit's own group are copied verbatim; all other
    limbs come from the approximate base conversion, so the limbs jointly
    represent ``c_j + u * Q_j`` for some ``0 <= u < alpha``.
    """
    pq = params.pq_basis(level)
    start, stop = params.digit_range(digit_index, level)
    own = dict(zip(range(start, stop), digit.limbs))
    other_moduli = [
        q for idx, q in enumerate(pq.moduli) if not start <= idx < stop
    ]
    converted = bconv_approx(digit.limbs, digit.basis, RnsBasis(other_moduli))
    converted_iter = iter(converted)
    limbs = []
    for idx in range(len(pq.moduli)):
        if start <= idx < stop:
            limbs.append(own[idx])
        else:
            limbs.append(next(converted_iter))
    return RnsPolynomial(digit.degree, pq, limbs, is_ntt=False)


def restrict_to_pq(
    poly: RnsPolynomial, params: CkksParameters, level: int
) -> RnsPolynomial:
    """Restrict a top-level ``PQ_L`` polynomial to the level-``l`` ``PQ`` basis."""
    top = params.max_level
    q_limbs = poly.limbs[: level + 1]
    p_limbs = poly.limbs[top + 1 : top + 1 + len(params.special_primes)]
    return RnsPolynomial(
        poly.degree, params.pq_basis(level), q_limbs + p_limbs, poly.is_ntt
    )


def mod_down(
    poly: RnsPolynomial, params: CkksParameters, level: int
) -> RnsPolynomial:
    """Divide by ``P`` and drop the special limbs (paper's Mod Down)."""
    poly = poly.from_ntt()
    q_basis = params.q_basis(level)
    p_basis = params.p_basis()
    q_count = level + 1
    q_limbs = poly.limbs[:q_count]
    p_limbs = poly.limbs[q_count:]
    converted = bconv_approx(p_limbs, p_basis, q_basis)
    limbs = []
    for limb, conv, q in zip(q_limbs, converted, q_basis.moduli):
        p_inv = modarith.inv_mod(params.special_product % q, q)
        limbs.append(
            modarith.scalar_mul_mod(modarith.sub_mod(limb, conv, q), p_inv, q)
        )
    return RnsPolynomial(poly.degree, q_basis, limbs, is_ntt=False)


def _key_pairs_at_level(
    ksk: KeySwitchKey, params: CkksParameters, level: int
) -> List[Tuple[RnsPolynomial, RnsPolynomial]]:
    """Evk pairs restricted to the level-``l`` PQ basis, NTT form, cached."""
    cache = getattr(ksk, "_hybrid_cache", None)
    if cache is None:
        cache = {}
        ksk._hybrid_cache = cache
    pairs = cache.get(level)
    if pairs is None:
        pairs = [
            (
                restrict_to_pq(b, params, level).to_ntt(),
                restrict_to_pq(a, params, level).to_ntt(),
            )
            for b, a in ksk.pairs
        ]
        cache[level] = pairs
    return pairs


def keyswitch(
    poly: RnsPolynomial, ksk: KeySwitchKey, params: CkksParameters
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """Switch `poly` (a coefficient of ``s'``) to the key ``s``.

    Returns ``(p0, p1)`` over the ciphertext basis such that
    ``p0 + p1 * s ~ poly * s'`` (up to key-switching noise).
    """
    level = len(poly.basis) - 1
    digits = decompose_digits(poly, params)
    if len(digits) > ksk.dnum:
        raise ValueError(
            f"key has {ksk.dnum} digits but level {level} needs {len(digits)}"
        )
    pairs = _key_pairs_at_level(ksk, params, level)
    pq = params.pq_basis(level)
    acc_b = RnsPolynomial.zero(poly.degree, pq, is_ntt=True)
    acc_a = RnsPolynomial.zero(poly.degree, pq, is_ntt=True)
    for j, digit in enumerate(digits):
        raised = mod_up(digit, j, params, level).to_ntt()  # Mod Up + NTT
        b_j, a_j = pairs[j]
        acc_b = acc_b.add(raised.multiply(b_j))  # Inner Product
        acc_a = acc_a.add(raised.multiply(a_j))
    p0 = mod_down(acc_b.from_ntt(), params, level)  # INTT + Mod Down
    p1 = mod_down(acc_a.from_ntt(), params, level)
    return p0, p1
