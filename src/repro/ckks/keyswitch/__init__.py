"""Key-switching back-ends: Hybrid (Han-Ki) and KLSS (Kim-Lee-Seo-Song).

Both back-ends run through the GEMM-form engine in :mod:`.plan` by
default (Neo Algorithms 2 and 4) and keep their per-digit loop forms as
bit-identical references.
"""

from . import hybrid, klss, plan

__all__ = ["hybrid", "klss", "plan"]
