"""Functional tests for the encrypted 2-D convolution."""

import numpy as np
import pytest

from repro.apps.encrypted_conv import EncryptedConv2d
from repro.ckks import (
    CkksEncoder,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    small_test_parameters,
)

H = W = 4  # 4x4 image -> 16 slots at N = 32


@pytest.fixture(scope="module")
def conv_setup():
    params = small_test_parameters(degree=32, max_level=4, wordsize=25, dnum=2)
    gen = KeyGenerator(params, seed=55)
    sk = gen.secret_key()
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=5)
    decryptor = Decryptor(params, sk)
    evaluator = Evaluator(params, relin_key=gen.relinearisation_key(sk))
    return params, gen, sk, encoder, encryptor, decryptor, evaluator


def _build(conv_setup, kernel):
    params, gen, sk, encoder, encryptor, decryptor, evaluator = conv_setup
    conv = EncryptedConv2d(encoder, evaluator, H, W, kernel)
    galois = gen.rotation_keys(sk, conv.required_rotations())
    evaluator.galois_keys = galois
    return conv, encoder, encryptor, decryptor


SOBEL = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=float) / 4
BLUR = np.ones((3, 3)) / 9
IDENTITY = np.array([[0, 0, 0], [0, 1, 0], [0, 0, 0]], dtype=float)


@pytest.mark.parametrize("kernel", [IDENTITY, BLUR, SOBEL], ids=["id", "blur", "sobel"])
def test_matches_plaintext_convolution(conv_setup, kernel):
    conv, encoder, encryptor, decryptor = _build(conv_setup, kernel)
    rng = np.random.default_rng(0)
    image = rng.uniform(-1, 1, size=(H, W))
    ct = encryptor.encrypt(encoder.encode(conv.pack(image)))
    out = conv.apply(ct)
    got = conv.unpack(encoder.decode(decryptor.decrypt(out)))
    assert np.abs(got - conv.reference(image)).max() < 1e-2


def test_identity_kernel_single_tap(conv_setup):
    conv, *_ = _build(conv_setup, IDENTITY)
    assert len(conv._taps) == 1
    assert conv.required_rotations() == []


def test_full_kernel_needs_eight_rotations(conv_setup):
    conv, *_ = _build(conv_setup, BLUR)
    # 9 taps, one of which (centre) needs no rotation.
    assert len(conv.required_rotations()) == 8


def test_consumes_one_level(conv_setup):
    conv, encoder, encryptor, _ = _build(conv_setup, BLUR)
    ct = encryptor.encrypt(encoder.encode(conv.pack(np.ones((H, W)))))
    assert conv.apply(ct).level == ct.level - 1


def test_border_handling_is_zero_padded(conv_setup):
    """A corner pixel only sees in-bounds neighbours."""
    conv, encoder, encryptor, decryptor = _build(conv_setup, BLUR)
    image = np.zeros((H, W))
    image[0, 0] = 1.0
    ct = encryptor.encrypt(encoder.encode(conv.pack(image)))
    got = conv.unpack(encoder.decode(decryptor.decrypt(conv.apply(ct))))
    # The pulse spreads only to the 2x2 in-bounds neighbourhood.
    assert got[0, 0] == pytest.approx(1 / 9, abs=1e-2)
    assert abs(got[3, 3]) < 1e-2


class TestValidation:
    def test_non_square_kernel(self, conv_setup):
        _, _, _, encoder, _, _, evaluator = conv_setup
        with pytest.raises(ValueError):
            EncryptedConv2d(encoder, evaluator, H, W, np.ones((2, 3)))

    def test_even_kernel(self, conv_setup):
        _, _, _, encoder, _, _, evaluator = conv_setup
        with pytest.raises(ValueError):
            EncryptedConv2d(encoder, evaluator, H, W, np.ones((2, 2)))

    def test_image_too_large(self, conv_setup):
        _, _, _, encoder, _, _, evaluator = conv_setup
        with pytest.raises(ValueError):
            EncryptedConv2d(encoder, evaluator, 8, 8, IDENTITY)

    def test_pack_shape_checked(self, conv_setup):
        conv, *_ = _build(conv_setup, IDENTITY)
        with pytest.raises(ValueError):
            conv.pack(np.ones((2, 2)))
