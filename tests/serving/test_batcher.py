"""Continuous batching rules: full / window-expired / draining dispatch."""

import math

import pytest

from repro.serving import ContinuousBatcher, FifoPolicy, Request, RequestQueue


def _req(rid, app="helr", size=1, arrival=0.0):
    return Request(rid=rid, app=app, size=size, arrival_s=arrival)


def _batcher(max_batch=4, max_wait_s=10.0):
    return ContinuousBatcher(FifoPolicy(), max_batch=max_batch, max_wait_s=max_wait_s)


class TestValidation:
    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            _batcher(max_batch=0)
        with pytest.raises(ValueError):
            _batcher(max_wait_s=-1.0)


class TestDispatchRules:
    def test_empty_queue_never_dispatches(self):
        take, deadline = _batcher().candidate([], now=0.0, draining=True)
        assert take is None and deadline == math.inf

    def test_filling_batch_waits_for_window(self):
        pending = [_req(0, arrival=0.0), _req(1, arrival=2.0)]
        take, deadline = _batcher(max_wait_s=10.0).candidate(
            pending, now=5.0, draining=False
        )
        assert take is None
        assert deadline == 10.0  # oldest arrival + window

    def test_window_expiry_dispatches_partial_batch(self):
        pending = [_req(0, arrival=0.0), _req(1, arrival=2.0)]
        take, _ = _batcher(max_wait_s=10.0).candidate(pending, now=10.0, draining=False)
        assert take is not None and [r.rid for r in take] == [0, 1]

    def test_full_batch_dispatches_immediately(self):
        pending = [_req(i) for i in range(4)]
        take, _ = _batcher(max_batch=4).candidate(pending, now=0.0, draining=False)
        assert take is not None and len(take) == 4

    def test_overflow_leaves_remainder_queued(self):
        pending = [_req(i, size=3) for i in range(3)]  # 9 cts vs max_batch 4
        take, _ = _batcher(max_batch=4).candidate(pending, now=0.0, draining=False)
        assert take is not None
        assert [r.rid for r in take] == [0]  # 3 + 3 > 4: second stays queued

    def test_draining_flushes_without_waiting(self):
        pending = [_req(0)]
        take, _ = _batcher(max_wait_s=10.0).candidate(pending, now=0.0, draining=True)
        assert take is not None and len(take) == 1

    def test_oversized_single_request_dispatches_alone(self):
        pending = [_req(0, size=9), _req(1, size=1)]
        take, _ = _batcher(max_batch=4).candidate(pending, now=0.0, draining=False)
        assert take is not None
        assert [r.rid for r in take] == [0]
        assert sum(r.size for r in take) == 9

    def test_only_head_bucket_dispatches(self):
        pending = [
            _req(0, app="helr", arrival=0.0),
            _req(1, app="packbootstrap", arrival=1.0),
            _req(2, app="helr", arrival=2.0),
        ]
        take, _ = _batcher().candidate(pending, now=20.0, draining=False)
        assert take is not None
        assert all(r.app == "helr" for r in take)
        assert [r.rid for r in take] == [0, 2]


class TestQueueMetrics:
    def test_depth_accounting(self):
        queue = RequestQueue()
        queue.push(_req(0), now=0.0)
        queue.push(_req(1), now=1.0)
        queue.push(_req(2), now=2.0)
        queue.remove([_req(0), _req(1)], now=4.0)
        assert queue.max_depth() == 3
        assert len(queue) == 1
        # Step function: depth 1 for 1s, 2 for 1s, 3 for 2s over a 4s span.
        assert queue.mean_depth() == pytest.approx((1 + 2 + 3 * 2) / 4.0)

    def test_remove_is_by_rid(self):
        queue = RequestQueue()
        queue.push(_req(0), now=0.0)
        queue.push(_req(1), now=0.0)
        queue.remove([_req(0)], now=1.0)
        assert [r.rid for r in queue.requests] == [1]
