"""Round-trip tests at the paper's real word sizes (36/48/60-bit limbs).

The evaluation section's parameter sets use 36/48/60-bit rescaling primes;
with the Barrett backend every prime in these chains sits below ``2**62``,
so encryption, key switching, rescaling, automorphisms and serialization
must stay on ``uint64`` arrays end to end -- these tests pin both the
numerics and the no-object-dtype guarantee at ``N = 2**10``.
"""

import numpy as np
import pytest

from repro.ckks import (
    CkksEncoder,
    CkksParameters,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.ckks import serialization as ser
from repro.math import modarith

DEGREE = 1 << 10
WORDSIZES = (36, 48, 60)


def _make_params(wordsize: int) -> CkksParameters:
    # q0 defaults to wordsize + 5 bits, which would leave the 60-bit chain's
    # first prime above the 2**62 Barrett bound -- cap it at 61 bits.
    return CkksParameters(
        degree=DEGREE,
        max_level=2,
        wordsize=wordsize,
        dnum=1,
        first_prime_bits=min(wordsize + 5, 61),
    )


@pytest.fixture(scope="module", params=WORDSIZES, ids=[f"{w}bit" for w in WORDSIZES])
def ctx(request):
    params = _make_params(request.param)
    gen = KeyGenerator(params, seed=11)
    secret = gen.secret_key()
    public = gen.public_key(secret)
    relin = gen.relinearisation_key(secret)
    return {
        "wordsize": request.param,
        "params": params,
        "secret": secret,
        "encoder": CkksEncoder(params),
        "encryptor": Encryptor(params, public_key=public, seed=5),
        "decryptor": Decryptor(params, secret),
        "evaluator": Evaluator(params, relin_key=relin, method="hybrid"),
    }


def test_chain_is_fully_native(ctx):
    params = ctx["params"]
    for q in params.moduli + params.special_primes:
        assert modarith.uses_native_backend(q), hex(q)
    assert modarith.backend_dtype(params.moduli[-1]) == np.uint64


def test_ciphertext_stays_uint64(ctx):
    encoder, encryptor = ctx["encoder"], ctx["encryptor"]
    ct = encryptor.encrypt(encoder.encode([1.5, -0.25]))
    assert ct.c0.stack.dtype == np.uint64
    assert ct.c1.stack.dtype == np.uint64
    prod = ctx["evaluator"].multiply(ct, ct)
    assert prod.c0.stack.dtype == np.uint64


def test_encrypt_decrypt_roundtrip(ctx):
    rng = np.random.default_rng(3)
    values = rng.normal(size=DEGREE // 2) + 1j * rng.normal(size=DEGREE // 2)
    ct = ctx["encryptor"].encrypt(ctx["encoder"].encode(values))
    got = ctx["encoder"].decode(ctx["decryptor"].decrypt(ct))
    assert np.abs(got - values).max() < 1e-3


def test_multiply_rescale_roundtrip(ctx):
    rng = np.random.default_rng(4)
    values = 0.5 * (rng.normal(size=DEGREE // 2) + 1j * rng.normal(size=DEGREE // 2))
    encoder = ctx["encoder"]
    ct = ctx["encryptor"].encrypt(encoder.encode(values))
    prod = ctx["evaluator"].multiply(ct, ct)
    got = encoder.decode(ctx["decryptor"].decrypt(prod))
    assert np.abs(got - values * values).max() < 1e-2


def test_serialization_roundtrip(ctx):
    encoder = ctx["encoder"]
    values = np.array([0.5, -1.25, 2.0])
    ct = ctx["encryptor"].encrypt(encoder.encode(values))
    blob = ser.to_bytes(ser.serialize_ciphertext(ct))
    restored = ser.deserialize_ciphertext(ser.from_bytes(blob), ctx["params"])
    assert restored.c0.stack.dtype == np.uint64
    got = encoder.decode(ctx["decryptor"].decrypt(restored))
    assert np.abs(got[:3] - values).max() < 1e-3


def test_automorphism_roundtrip(ctx):
    ct = ctx["encryptor"].encrypt(ctx["encoder"].encode([1.0, 2.0, 3.0]))
    poly = ct.c0
    power = 5  # a rotation's Galois power; odd, so invertible mod 2N
    inverse_power = pow(power, -1, 2 * DEGREE)
    back = poly.automorphism(power).automorphism(inverse_power)
    assert back.stack.dtype == poly.stack.dtype == np.uint64
    assert (back.stack == poly.stack).all()
