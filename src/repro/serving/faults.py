"""Fault injection for the serving layer: bursts, slow devices, cancels.

A :class:`FaultPlan` is a declarative bundle of adverse events applied to
a :class:`~repro.serving.server.Server` *before* its drain:

* :class:`BurstFault` -- a thundering herd: `count` simultaneous arrivals
  of one application at one instant (the arrival pattern load shedding
  exists for).
* :class:`SlowDeviceFault` -- a degraded device window: every batch that
  *starts* inside ``[start_s, end_s)`` takes ``factor`` times its modelled
  service time (straggler GPUs, thermal throttling, a noisy neighbour).
* :class:`CancelFault` -- mid-drain cancellations of specific request ids
  at a simulated instant (clients hanging up while queued).

Faults stay inside the simulated clock, so every chaotic run is exactly
reproducible: the chaos suite (:mod:`tests.serving.test_fault_injection`)
drives randomised plans from a seeded RNG and asserts the server's
invariants -- no deadlock, no lost or duplicated requests, monotone batch
clocks -- hold under all of them.

Slow devices work through the server's time-aware service hook: the
server prefers ``model.service_time_at(app, size, streams, now)`` over
the stationary ``service_time_s`` when a model provides it, which is what
:class:`FaultyServiceModel` does while delegating everything else to the
wrapped model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..core.trace_cache import CacheStats
from .request import Request
from .server import Server


@dataclass(frozen=True)
class BurstFault:
    """`count` simultaneous arrivals of one app at ``at_s``."""

    at_s: float
    app: str
    count: int
    size: int = 1
    slo_s: float = 0.0
    tenant: str = "burst"
    priority: int = 0

    def __post_init__(self):
        if self.count < 1:
            raise ValueError(f"burst count must be >= 1, got {self.count}")
        if self.at_s < 0:
            raise ValueError(f"burst time must be >= 0, got {self.at_s}")


@dataclass(frozen=True)
class SlowDeviceFault:
    """Batches starting in ``[start_s, end_s)`` run ``factor`` x slower."""

    start_s: float
    end_s: float
    factor: float = 4.0

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError(
                f"need end_s > start_s, got [{self.start_s}, {self.end_s})"
            )
        if self.factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {self.factor}")

    def applies(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True)
class CancelFault:
    """Cancel the given request ids at simulated ``at_s``."""

    at_s: float
    rids: Tuple[int, ...]

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError(f"cancel time must be >= 0, got {self.at_s}")
        object.__setattr__(self, "rids", tuple(self.rids))


class FaultyServiceModel:
    """Wraps a service model with slow-device windows.

    Provides the server's preferred ``service_time_at`` hook: the batch's
    *start* instant decides whether a slowdown window applies (a batch
    started on a healthy device finishes at healthy speed -- the windows
    model device degradation, not preemption).
    """

    def __init__(self, base, slowdowns: Sequence[SlowDeviceFault] = ()):
        self._base = base
        self._slowdowns = tuple(slowdowns)

    def factor_at(self, now: float) -> float:
        """The combined slowdown multiplier in force at ``now``."""
        factor = 1.0
        for fault in self._slowdowns:
            if fault.applies(now):
                factor *= fault.factor
        return factor

    def service_time_s(self, app: str, size: int, streams: int) -> float:
        return self._base.service_time_s(app, size, streams)

    def service_time_at(
        self, app: str, size: int, streams: int, now: float
    ) -> float:
        return self._base.service_time_s(app, size, streams) * self.factor_at(
            now
        )

    def cache_stats(self) -> CacheStats:
        return self._base.cache_stats()

    def __getattr__(self, name):
        # batch_trace / batch_spans / noise_trajectory etc. pass through so
        # telemetry and the fleet layer see the wrapped model unchanged.
        return getattr(self._base, name)


@dataclass
class FaultPlan:
    """A reproducible bundle of faults applied to one server."""

    bursts: List[BurstFault] = field(default_factory=list)
    slowdowns: List[SlowDeviceFault] = field(default_factory=list)
    cancels: List[CancelFault] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.bursts or self.slowdowns or self.cancels)

    def burst_requests(self, server: Server) -> List[Request]:
        """Submit every burst's arrivals; returns the created requests."""
        created: List[Request] = []
        for burst in sorted(self.bursts, key=lambda b: b.at_s):
            for _ in range(burst.count):
                created.append(
                    server.submit(
                        app=burst.app,
                        size=burst.size,
                        arrival_s=burst.at_s,
                        slo_s=burst.slo_s,
                        tenant=burst.tenant,
                        priority=burst.priority,
                    )
                )
        return created

    def apply(self, server: Server) -> List[Request]:
        """Arm every fault on `server`; returns burst-injected requests.

        Bursts are submitted, cancels registered, and -- when slowdown
        windows exist -- the server's model is wrapped in a
        :class:`FaultyServiceModel`.  Call before ``drain``.
        """
        created = self.burst_requests(server)
        for fault in self.cancels:
            for rid in fault.rids:
                server.cancel(rid, fault.at_s)
        if self.slowdowns and not isinstance(
            server.model, FaultyServiceModel
        ):
            server.model = FaultyServiceModel(server.model, self.slowdowns)
        elif self.slowdowns:
            server.model = FaultyServiceModel(
                server.model._base,
                tuple(server.model._slowdowns) + tuple(self.slowdowns),
            )
        return created
