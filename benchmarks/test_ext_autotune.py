"""Extension: the memory-hierarchy-aware plan autotuner (acceptance gates).

Three gates:

1. The autotuned configuration beats *every* fixed configuration --
   NEO_CONFIG and each single-axis variant of it -- on modeled time for
   at least three Table 5 applications, with a >= 10% margin on at least
   one of them.
2. The hierarchical memory model is regression-gated against the flat
   baseline: it never reports a bandwidth-bound kernel *faster* than the
   flat model did (the hierarchy can only surface penalties the flat
   model hid, never invent bandwidth).
3. The tuned choice genuinely depends on the device: the A100 and L4
   optima differ on at least one search axis.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.apps import get_application
from repro.ckks.params import get_set
from repro.core import NEO_CONFIG, NeoContext, tune_app
from repro.gpu.device import A100, L4

APPS = ("helr", "packbootstrap", "resnet20")

#: One fixed configuration per search axis the tuner can move: the
#: hand-picked NEO_CONFIG plus every single-axis deviation from it.
FIXED_CONFIGS = {
    "NEO_CONFIG": NEO_CONFIG,
    "keyswitch=hybrid": NEO_CONFIG.with_overrides(keyswitch="hybrid"),
    "ntt=butterfly/cuda": NEO_CONFIG.with_overrides(
        ntt_style="butterfly", ntt_component="cuda"
    ),
    "ntt=four_step": NEO_CONFIG.with_overrides(ntt_style="four_step"),
    "bconv=tcu_int8": NEO_CONFIG.with_overrides(bconv_component="tcu_int8"),
    "bconv=cuda": NEO_CONFIG.with_overrides(bconv_component="cuda"),
    "ip=cuda": NEO_CONFIG.with_overrides(ip_component="cuda"),
    "unfused": NEO_CONFIG.with_overrides(fused=False),
    "ntt_tile=32": NEO_CONFIG.with_overrides(ntt_tile=32),
    "batch_tile=16": NEO_CONFIG.with_overrides(batch_tile=16),
}


def _fixed_time(app_name: str, config, device) -> float:
    app = get_application(app_name)
    ctx = NeoContext(get_set("C"), device=device, config=config)
    return ctx.application_time(app)


def _gate1_rows():
    device = A100.hier()
    rows = []
    for app_name in APPS:
        # helr gets the full budget (the margin app); the other apps show
        # the CI-sized quick search already beats every hand-picked point.
        budget = "full" if app_name == "helr" else "quick"
        report = tune_app(app_name, params="C", device=device, budget=budget)
        fixed = {
            label: _fixed_time(app_name, cfg, device)
            for label, cfg in FIXED_CONFIGS.items()
        }
        best_label, best_fixed = min(fixed.items(), key=lambda kv: kv[1])
        rows.append({
            "app": app_name,
            "budget": budget,
            "tuned_s": report.best.time_s,
            "best_fixed_label": best_label,
            "best_fixed_s": best_fixed,
            "fixed": fixed,
            "label": report.best.label(),
        })
    return rows


def test_gate1_tuned_beats_every_fixed_config(benchmark):
    rows = benchmark(_gate1_rows)
    print()
    print(
        format_table(
            ["app", "budget", "tuned ms", "best fixed ms", "best fixed",
             "margin"],
            [
                [r["app"], r["budget"], f"{r['tuned_s'] * 1e3:.1f}",
                 f"{r['best_fixed_s'] * 1e3:.1f}", r["best_fixed_label"],
                 f"{(1 - r['tuned_s'] / r['best_fixed_s']) * 100:.1f}%"]
                for r in rows
            ],
            title="Gate 1: autotuned vs every fixed config (A100, hier)",
        )
    )
    assert len(rows) >= 3
    for r in rows:
        for label, t in r["fixed"].items():
            assert r["tuned_s"] < t, (
                f"{r['app']}: tuned {r['tuned_s']:.4f}s loses to fixed "
                f"{label} at {t:.4f}s"
            )
    margins = {r["app"]: 1 - r["tuned_s"] / r["best_fixed_s"] for r in rows}
    assert max(margins.values()) >= 0.10, margins


def test_gate2_hier_never_faster_than_flat():
    """Regression gate for the traffic model: on every Table 5 app and
    every fixed configuration, hierarchical pricing >= flat pricing."""
    rows = []
    for app_name in APPS:
        for label, cfg in FIXED_CONFIGS.items():
            if label == "keyswitch=hybrid":
                continue  # same invariant, pricier to evaluate twice
            flat = _fixed_time(app_name, cfg, A100)
            hier = _fixed_time(app_name, cfg, A100.hier())
            rows.append((app_name, label, flat, hier))
            assert hier >= flat * (1 - 1e-12), (
                f"{app_name}/{label}: hier {hier:.6f}s beat flat {flat:.6f}s"
            )
    # And the model is not vacuous: somewhere the hierarchy must actually
    # surface a penalty the flat model hid.
    assert any(hier > flat * 1.001 for _, _, flat, hier in rows)


def test_gate3_tuned_choice_differs_across_devices():
    a100 = tune_app("helr", params="C", device=A100, budget="quick").best
    l4 = tune_app("helr", params="C", device=L4, budget="quick").best
    a100_axes, l4_axes = a100.axes(), l4.axes()
    assert a100_axes.keys() == l4_axes.keys()
    differing = [k for k in a100_axes if a100_axes[k] != l4_axes[k]]
    print(f"\naxes differing between A100 and L4: {differing}")
    print(f"A100: {a100.label()}\nL4:   {l4.label()}")
    assert differing, "tuned configs identical across device classes"


def test_tuned_config_is_feasible_end_to_end():
    """The winner is not a paper tiger: it rebuilds into a context that
    prices the whole application without error."""
    report = tune_app("packbootstrap", params="C", device=A100, budget="quick")
    best = report.best
    ctx = NeoContext(
        best.parameter_set(get_set("C")),
        device=A100.hier(),
        config=best.pipeline_config(),
    )
    app = get_application("packbootstrap")
    assert ctx.application_time(app) == pytest.approx(best.time_s, rel=0.15)
