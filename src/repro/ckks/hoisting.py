"""Hoisted rotations: share one ModUp across many rotations.

Rotating the same ciphertext by several steps -- the inner loop of every
BSGS linear transform -- naively repeats the full KeySwitch per step.  The
hoisting trick (Halevi-Shoup) exploits that digit decomposition and ModUp
act coefficient-wise, hence commute with the Galois automorphism::

    digits(tau_k(c1)) = tau_k(digits(c1))

so the expensive decompose + ModUp runs **once**, and each rotation only
pays the automorphism permutation, the inner product against its own key,
and ModDown.

Two engines share this dataflow:

* ``engine="plan"`` -- the op-plan compiler of :mod:`.keyswitch.plan`:
  one BConv GEMM raises the digits, all k automorphisms run as a single
  gathered fancy index, and all k inner products fold into one batched
  lazily-reduced einsum against the stacked Galois-key tensor.
* ``engine="loop"`` -- :class:`HoistedRotator`, the per-digit reference
  pipeline.  Bit-identical to the plan engine (same exact sums modulo
  each limb at every step), kept as the differential baseline.

Note the *hoisted* forms are NOT bit-identical to the non-hoisted
``Evaluator.rotate``: the approximate ModUp slack ``u * Q_j`` transforms
differently under the automorphism's sign flips, so hoisting changes the
(correctness-irrelevant) noise bits.  Differential tests therefore pit
plan-hoisted against loop-hoisted, never hoisted against non-hoisted.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..math.polynomial import RnsPolynomial
from ..math.rns import bconv_approx_eager
from .ciphertext import Ciphertext
from .keys import GaloisKeys, rotation_galois_power
from .keyswitch import hybrid
from .keyswitch import plan as _plan
from .params import CkksParameters


def _base_method(method: str) -> str:
    """Strip the ``-loop`` suffix: loop variants share the base key layout."""
    base = method[: -len("-loop")] if method.endswith("-loop") else method
    if base not in ("hybrid", "klss"):
        raise ValueError(f"unknown key-switch method {method!r}")
    return base


class HoistedRotator:
    """Precomputes the raised digits of one ciphertext for many rotations.

    This is the per-digit *loop* form -- the bit-identical differential
    baseline of :func:`hoisted_rotations`'s plan engine.  ``method``
    selects the key-switch family: ``"hybrid"`` raises digits into the
    ``PQ`` basis, ``"klss"`` into the auxiliary ``T`` basis (mirroring
    :func:`repro.ckks.keyswitch.klss.keyswitch_loop`, with the
    automorphism applied to the raised digits instead of the input).
    """

    def __init__(self, ct: Ciphertext, params: CkksParameters, method: str = "hybrid"):
        if ct.c2 is not None:
            raise ValueError("hoisting requires a relinearised ciphertext")
        self.ct = ct
        self.params = params
        self.level = ct.level
        self.method = _base_method(method)
        digits = hybrid.decompose_digits(ct.c1, params)
        if self.method == "hybrid":
            #: ModUp'd digits of c1, shared by every rotation (the hoisted part).
            self.raised = [
                hybrid.mod_up(digit, j, params, self.level)
                for j, digit in enumerate(digits)
            ]
        else:
            if params.klss is None:
                raise ValueError("KLSS hoisting requires parameters with a KlssConfig")
            alpha_prime, _, _ = params.klss_dims(self.level)
            t_basis = params.aux_basis.subbasis(0, alpha_prime)
            self.t_basis = t_basis
            self.raised = [
                RnsPolynomial(
                    ct.degree,
                    t_basis,
                    bconv_approx_eager(digit.limbs, digit.basis, t_basis),
                    is_ntt=False,
                )
                for digit in digits
            ]

    def rotate(self, steps: int, galois_keys: GaloisKeys) -> Ciphertext:
        """One rotation using the shared raised digits."""
        params = self.params
        if steps % params.slots == 0:
            # Identity automorphism (steps = 0 or a multiple of the slot
            # count): rotating is a no-op, so skip the key switch entirely
            # instead of looking up a Galois key for power 1.
            return self.ct
        power = rotation_galois_power(steps, params.degree)
        key = galois_keys.get(power)
        if self.method == "hybrid":
            return self._rotate_hybrid(power, key)
        return self._rotate_klss(power, key)

    def _rotate_hybrid(self, power: int, key) -> Ciphertext:
        params = self.params
        pairs = hybrid._key_pairs_at_level(key, params, self.level)
        pq = params.pq_basis(self.level)
        acc_b = RnsPolynomial.zero(self.ct.degree, pq, is_ntt=True)
        acc_a = RnsPolynomial.zero(self.ct.degree, pq, is_ntt=True)
        for j, raised in enumerate(self.raised):
            rotated = raised.automorphism(power).to_ntt()
            b_j, a_j = pairs[j]
            acc_b = acc_b.add(rotated.multiply(b_j))
            acc_a = acc_a.add(rotated.multiply(a_j))
        p0 = hybrid.mod_down(acc_b.from_ntt(), params, self.level)
        p1 = hybrid.mod_down(acc_a.from_ntt(), params, self.level)
        rotated_c0 = self.ct.c0.automorphism(power)
        return Ciphertext(
            rotated_c0.add(p0), p1, self.ct.scale, params
        )

    def _rotate_klss(self, power: int, key) -> Ciphertext:
        params = self.params
        degree = self.ct.degree
        kplan = _plan.get_keyswitch_plan(key, params, self.level, "klss")
        kk = kplan.klss_key
        t_basis = kk.t_basis
        acc: List[Tuple[RnsPolynomial, RnsPolynomial]] = [
            (
                RnsPolynomial.zero(degree, t_basis, is_ntt=True),
                RnsPolynomial.zero(degree, t_basis, is_ntt=True),
            )
            for _ in range(kk.beta_tilde)
        ]
        for j, raised in enumerate(self.raised):
            rotated = raised.automorphism(power).to_ntt()
            for i in range(kk.beta_tilde):
                evk_b, evk_a = kk.digit_pairs[i][j]
                acc_b, acc_a = acc[i]
                acc[i] = (
                    acc_b.add(rotated.multiply(evk_b)),
                    acc_a.add(rotated.multiply(evk_a)),
                )
        pq = kk.pq_basis
        out_shape = self.ct.c1.batch_shape + (degree,)
        sum_b = np.zeros(out_shape, dtype=object)
        sum_a = np.zeros(out_shape, dtype=object)
        for (acc_b, acc_a), g_hat in zip(acc, kk.gadget_factors):
            sum_b += t_basis.compose_signed(acc_b.from_ntt().limbs) * g_hat
            sum_a += t_basis.compose_signed(acc_a.from_ntt().limbs) * g_hat
        recovered_b = RnsPolynomial(degree, pq, pq.decompose(sum_b), is_ntt=False)
        recovered_a = RnsPolynomial(degree, pq, pq.decompose(sum_a), is_ntt=False)
        p0 = hybrid.mod_down(recovered_b, params, self.level, bconv=bconv_approx_eager)
        p1 = hybrid.mod_down(recovered_a, params, self.level, bconv=bconv_approx_eager)
        rotated_c0 = self.ct.c0.automorphism(power)
        return Ciphertext(rotated_c0.add(p0), p1, self.ct.scale, params)

    def rotate_many(
        self, steps: Sequence[int], galois_keys: GaloisKeys
    ) -> Dict[int, Ciphertext]:
        """All requested rotations off the single hoisted ModUp."""
        return {s: self.rotate(s, galois_keys) for s in steps}


def hoisted_rotations(
    ct: Ciphertext,
    steps: Sequence[int],
    galois_keys: GaloisKeys,
    params: CkksParameters,
    method: str = "hybrid",
    engine: str = "plan",
) -> Dict[int, Ciphertext]:
    """Rotate `ct` by every step with one shared ModUp.

    ``engine="plan"`` runs the op-plan compiler (one BConv GEMM, gathered
    automorphisms, one batched IP einsum); ``engine="loop"`` runs the
    per-digit :class:`HoistedRotator` baseline.  The two are bit-identical.
    Steps that are multiples of the slot count short-circuit to the input
    ciphertext (identity automorphism -- no key switch, no Galois key).
    """
    if engine not in ("plan", "loop"):
        raise ValueError(f"unknown hoisting engine {engine!r}")
    base = _base_method(method)
    if engine == "loop":
        return HoistedRotator(ct, params, method=base).rotate_many(steps, galois_keys)
    if ct.c2 is not None:
        raise ValueError("hoisting requires a relinearised ciphertext")
    unique = list(dict.fromkeys(steps))
    result: Dict[int, Ciphertext] = {}
    live = [s for s in unique if s % params.slots != 0]
    for s in unique:
        if s % params.slots == 0:
            result[s] = ct
    if live:
        powers = tuple(rotation_galois_power(s, params.degree) for s in live)
        hplan = _plan.get_hoisted_rotation_plan(
            galois_keys, powers, params, ct.level, base
        )
        pairs = _plan.hoisted_gemm_rotations(ct.c0, ct.c1, hplan)
        for s, (p0, p1) in zip(live, pairs):
            result[s] = Ciphertext(p0, p1, ct.scale, params)
    return result


def hoisting_modup_savings(beta: int, rotations: int) -> float:
    """Fraction of ModUp work saved versus naive per-rotation KeySwitch.

    Naive: ``rotations * beta`` digit conversions; hoisted: ``beta``.
    """
    if rotations < 1:
        raise ValueError("need at least one rotation")
    return 1.0 - 1.0 / rotations
