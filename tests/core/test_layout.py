"""Tests for the data-layout transforms (Figs. 6 and 8)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import layout


def test_bconv_forward_shape():
    t = np.arange(2 * 3 * 4).reshape(2, 3, 4)
    out = layout.bconv_forward(t)
    assert out.shape == (4, 3, 2)


def test_bconv_roundtrip():
    t = np.arange(2 * 3 * 4).reshape(2, 3, 4)
    assert (layout.bconv_backward(layout.bconv_forward(t)) == t).all()


def test_bconv_forward_semantics():
    """out[l, b, i] == in[i, b, l] -- alpha becomes the K dimension."""
    rng = np.random.default_rng(0)
    t = rng.integers(0, 100, size=(3, 2, 5))
    out = layout.bconv_forward(t)
    for i in range(3):
        for b in range(2):
            for l in range(5):
                assert out[l, b, i] == t[i, b, l]


def test_ip_limbs_roundtrip():
    t = np.arange(3 * 2 * 4 * 5).reshape(3, 2, 4, 5)
    assert (layout.ip_limbs_backward(layout.ip_limbs_forward(t)) == t).all()


def test_ip_limbs_semantics():
    """out[l, k, b, j] == in[j, k, b, l] (Fig. 8) -- beta becomes K."""
    rng = np.random.default_rng(1)
    t = rng.integers(0, 100, size=(3, 2, 4, 5))  # (beta, alpha', BS, N)
    out = layout.ip_limbs_forward(t)
    assert out.shape == (5, 2, 4, 3)
    for j in range(3):
        for k in range(2):
            for b in range(4):
                for l in range(5):
                    assert out[l, k, b, j] == t[j, k, b, l]


def test_ip_evk_roundtrip():
    t = np.arange(2 * 3 * 4 * 5).reshape(2, 3, 4, 5)
    assert (layout.ip_evk_backward(layout.ip_evk_forward(t)) == t).all()


def test_ip_evk_semantics():
    """out[l, k, j, i] == in[i, j, k, l] (Fig. 8)."""
    rng = np.random.default_rng(2)
    t = rng.integers(0, 100, size=(2, 3, 4, 5))  # (beta~, beta, alpha', N)
    out = layout.ip_evk_forward(t)
    assert out.shape == (5, 4, 3, 2)
    assert out[1, 2, 0, 1] == t[1, 0, 2, 1]


@pytest.mark.parametrize(
    "func", [layout.bconv_forward, layout.bconv_backward]
)
def test_rank_validation_3d(func):
    with pytest.raises(ValueError):
        func(np.zeros((2, 2)))


@pytest.mark.parametrize(
    "func",
    [
        layout.ip_limbs_forward,
        layout.ip_limbs_backward,
        layout.ip_evk_forward,
        layout.ip_evk_backward,
    ],
)
def test_rank_validation_4d(func):
    with pytest.raises(ValueError):
        func(np.zeros((2, 2, 2)))


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
)
def test_property_layouts_are_bijections(a, b, c, d):
    t4 = np.arange(a * b * c * d).reshape(a, b, c, d)
    assert (layout.ip_limbs_backward(layout.ip_limbs_forward(t4)) == t4).all()
    assert (layout.ip_evk_backward(layout.ip_evk_forward(t4)) == t4).all()
    t3 = np.arange(a * b * c).reshape(a, b, c)
    assert (layout.bconv_backward(layout.bconv_forward(t3)) == t3).all()
