"""Kernel -> compute-component mapping policy (Section 4.5, Figs. 4/11/12).

Neo maps every GEMM to the FP64 tensor cores *except* the IP GEMM, whose
``beta~ x beta`` dimensions shrink as the level drops: when the valid
proportion of the padded ``8x8x4`` fragments falls below the empirical 80%
threshold, the split/merge overhead no longer pays off and the GEMM runs on
CUDA cores instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..gpu.fragments import FP64_FRAGMENT, valid_proportion

#: Valid-proportion threshold above which the TCU wins for IP (Section 4.5.3).
IP_TCU_THRESHOLD = 0.8

#: Kernels that never involve GEMM and always run on CUDA cores (Fig. 4).
CUDA_ONLY_KERNELS = ("modadd", "modmul", "auto")


@dataclass(frozen=True)
class GemmShape:
    """The GEMM dimensions of one kernel invocation."""

    m: int
    n: int
    k: int

    def fp64_valid_proportion(self) -> float:
        return valid_proportion(self.m, self.n, self.k, FP64_FRAGMENT)


def ntt_gemm_shape(degree: int, batch_limbs: int, radix: int = 16) -> GemmShape:
    """Shape of one radix stage: ``(BS * N / radix) x radix x radix``."""
    return GemmShape(batch_limbs * degree // radix, radix, radix)


def bconv_gemm_shape(alpha: int, alpha_out: int, batch: int, degree: int) -> GemmShape:
    """Shape of the BConv GEMM: ``(BS * N) x alpha' x alpha`` (Section 4.5.2)."""
    return GemmShape(batch * degree, alpha_out, alpha)


def ip_gemm_shape(beta: int, beta_tilde: int, batch: int, degree: int) -> GemmShape:
    """Shape of the IP GEMM: ``(BS * N) x beta~ x beta`` (Section 4.5.3)."""
    return GemmShape(batch * degree, beta_tilde, beta)


def choose_ip_component(shape: GemmShape, threshold: float = IP_TCU_THRESHOLD) -> str:
    """Neo's dynamic mapping for IP: TCU FP64 above the threshold, else CUDA."""
    if shape.fp64_valid_proportion() > threshold:
        return "tcu_fp64"
    return "cuda"


def neo_component_map(
    degree: int,
    batch: int,
    alpha: int,
    alpha_prime: int,
    beta: int,
    beta_tilde: int,
) -> Dict[str, str]:
    """The full kernel -> component table of Fig. 4 for given parameters."""
    ip_shape = ip_gemm_shape(beta, beta_tilde, batch, degree)
    return {
        "ntt": "tcu_fp64",
        "bconv": "tcu_fp64",
        "ip": choose_ip_component(ip_shape),
        "modadd": "cuda",
        "modmul": "cuda",
        "auto": "cuda",
    }
