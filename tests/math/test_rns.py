"""Tests for RNS bases and base conversion (BConv)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.math import rns
from repro.math.primes import disjoint_prime_chains

CHAIN_Q, CHAIN_P = disjoint_prime_chains([30, 31], 64, [4, 3])
BASIS_Q = rns.RnsBasis(CHAIN_Q)
BASIS_P = rns.RnsBasis(CHAIN_P)


def test_basis_tables():
    for q, q_hat, q_hat_inv in zip(BASIS_Q.moduli, BASIS_Q.q_hat, BASIS_Q.q_hat_inv):
        assert q_hat == BASIS_Q.product // q
        assert (q_hat % q) * q_hat_inv % q == 1


def test_basis_rejects_duplicates():
    with pytest.raises(ValueError):
        rns.RnsBasis([7, 7])


def test_basis_rejects_empty():
    with pytest.raises(ValueError):
        rns.RnsBasis([])


def test_compose_decompose_roundtrip():
    rng = np.random.default_rng(0)
    values = rng.integers(0, 2**60, size=10).astype(object) % BASIS_Q.product
    limbs = BASIS_Q.decompose(values)
    assert (BASIS_Q.compose(limbs) == values).all()


def test_compose_signed_centres():
    small_negative = np.array([-5], dtype=object)
    limbs = BASIS_Q.decompose(small_negative)
    assert BASIS_Q.compose_signed(limbs)[0] == -5


def test_subbasis():
    sub = BASIS_Q.subbasis(0, 2)
    assert sub.moduli == BASIS_Q.moduli[:2]


def test_bconv_exact_matches_value():
    rng = np.random.default_rng(1)
    values = rng.integers(0, 2**50, size=8).astype(object) % BASIS_Q.product
    limbs = BASIS_Q.decompose(values)
    out = rns.bconv_exact(limbs, BASIS_Q, BASIS_P)
    for limb, p in zip(out, BASIS_P.moduli):
        assert (limb.astype(object) == values % p).all()


def test_bconv_approx_overflow_bounded():
    """bconv_approx residues represent x + u*Q with 0 <= u < len(from_basis)."""
    rng = np.random.default_rng(2)
    values = rng.integers(0, 2**50, size=32).astype(object) % BASIS_Q.product
    limbs = BASIS_Q.decompose(values)
    out = rns.bconv_approx(limbs, BASIS_Q, BASIS_P)
    bound = rns.overflow_bound(BASIS_Q)
    for idx, x in enumerate(values):
        candidates = []
        for u in range(bound + 1):
            if all(
                int(out[j][idx]) == (int(x) + u * BASIS_Q.product) % p
                for j, p in enumerate(BASIS_P.moduli)
            ):
                candidates.append(u)
        assert candidates, f"no overflow u in [0, {bound}] explains coefficient {idx}"
        assert min(candidates) < bound


def test_bconv_limb_count_checked():
    with pytest.raises(ValueError):
        rns.bconv_approx([np.zeros(4, dtype=object)], BASIS_Q, BASIS_P)


def test_bconv_matrix_equivalence():
    """Algorithm 2 (scalar-mul + GEMM with bconv_matrix) == Algorithm 1."""
    rng = np.random.default_rng(3)
    n = 16
    values = rng.integers(0, 2**60, size=n).astype(object) % BASIS_Q.product
    limbs = BASIS_Q.decompose(values)
    via_alg1 = rns.bconv_approx(limbs, BASIS_Q, BASIS_P)
    # Algorithm 2: y[i] = [x_i * qhat_inv]_{q_i}, then GEMM by B[i, j].
    scaled = np.stack(
        [
            (np.asarray(limb, dtype=object) * inv) % q
            for limb, q, inv in zip(limbs, BASIS_Q.moduli, BASIS_Q.q_hat_inv)
        ]
    )  # (alpha, N)
    b_matrix = rns.bconv_matrix(BASIS_Q, BASIS_P)  # (alpha, alpha')
    gemm = scaled.T @ b_matrix  # (N, alpha')
    for j, p in enumerate(BASIS_P.moduli):
        assert (gemm[:, j] % p == via_alg1[j].astype(object)).all()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**100))
def test_property_bconv_exact_any_value(value):
    value %= BASIS_Q.product
    limbs = BASIS_Q.decompose(np.array([value], dtype=object))
    out = rns.bconv_exact(limbs, BASIS_Q, BASIS_P)
    for limb, p in zip(out, BASIS_P.moduli):
        assert int(limb.astype(object)[0]) == value % p


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**100))
def test_property_crt_roundtrip(value):
    value %= BASIS_P.product
    limbs = BASIS_P.decompose(np.array([value], dtype=object))
    assert int(BASIS_P.compose(limbs)[0]) == value
