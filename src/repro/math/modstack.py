"""Limb-stacked modular arithmetic over a whole RNS basis at once.

The double-CRT layout stores one residue array per RNS limb; GPU FHE
libraries keep those limbs contiguous in a single ``(num_limbs, N)`` tensor
and run every element-wise kernel across the whole stack in one launch.
:class:`ModulusStack` is the numpy mirror of that idea: per-limb moduli,
Barrett constants and bit-width shifts are materialised as broadcastable
columns so that ``add/sub/neg/mul/scalar_mul`` over an ``(L, ..., N)``
stack are single vectorised expressions -- no Python-level per-limb loop.

When every modulus fits the native ``uint64`` backends the stack dtype is
``uint64``; a single limb at or above ``2**62`` demotes the whole stack to
the exact object backend (the reference oracle path).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from . import modarith

_U64 = np.uint64


class ModulusStack:
    """Vectorised mod-arithmetic context for an ordered tuple of moduli.

    Arrays handled by a stack have shape ``(L, ..., N)``: leading limb axis,
    then optional batch axes, then the coefficient axis.  All per-limb
    constants broadcast from column vectors ``(L, 1, ..., 1)``.
    """

    _CACHE: Dict[Tuple[Tuple[int, ...], bool], "ModulusStack"] = {}

    def __init__(self, moduli: Sequence[int]):
        self.moduli: Tuple[int, ...] = tuple(int(q) for q in moduli)
        if not self.moduli:
            raise ValueError("a modulus stack needs at least one modulus")
        if any(q <= 1 for q in self.moduli):
            raise ValueError("all moduli must be > 1")
        self.native = all(modarith.uses_native_backend(q) for q in self.moduli)
        if self.native:
            self._q = np.array(self.moduli, dtype=_U64)
            bits = [q.bit_length() for q in self.moduli]
            self._s_lo = np.array([k - 1 for k in bits], dtype=_U64)
            self._s_lo_c = np.array([64 - (k - 1) for k in bits], dtype=_U64)
            self._s_hi = np.array([k + 1 for k in bits], dtype=_U64)
            self._s_hi_c = np.array([64 - (k + 1) for k in bits], dtype=_U64)
            self._mu = np.array(
                [(1 << (2 * k)) // q for k, q in zip(bits, self.moduli)],
                dtype=_U64,
            )
        else:
            self._q = np.array(self.moduli, dtype=object)

    @classmethod
    def for_moduli(cls, moduli: Sequence[int]) -> "ModulusStack":
        """The cached stack for `moduli` under the current backend policy."""
        key = (tuple(int(q) for q in moduli), modarith._BARRETT_ENABLED)
        stack = cls._CACHE.get(key)
        if stack is None:
            stack = cls(key[0])
            cls._CACHE[key] = stack
        return stack

    @property
    def dtype(self):
        return np.uint64 if self.native else object

    def __len__(self) -> int:
        return len(self.moduli)

    # -- shaping ------------------------------------------------------------

    def _col(self, arr: np.ndarray, ndim: int) -> np.ndarray:
        """Reshape a per-limb ``(L,)`` constant to broadcast over `ndim` axes."""
        return arr.reshape((len(self.moduli),) + (1,) * (ndim - 1))

    @staticmethod
    def _align(a: np.ndarray, b: np.ndarray):
        """Insert batch axes after the limb axis so two stacks broadcast.

        Stacks are ``(L, batch..., N)``; numpy aligns trailing axes, so a
        rank difference means missing *batch* dims, which belong between
        the limb and coefficient axes rather than in front.
        """
        while a.ndim < b.ndim:
            a = np.expand_dims(a, 1)
        while b.ndim < a.ndim:
            b = np.expand_dims(b, 1)
        return a, b

    def q_col(self, ndim: int) -> np.ndarray:
        return self._col(self._q, ndim)

    # -- coercion -----------------------------------------------------------

    def stack_limbs(self, limbs: Sequence[np.ndarray]) -> np.ndarray:
        """Stack per-limb residue arrays into one reduced ``(L, ..., N)`` array."""
        if len(limbs) != len(self.moduli):
            raise ValueError(
                f"expected {len(self.moduli)} limb arrays, got {len(limbs)}"
            )
        reduced = [
            modarith.asarray_mod(limb, q) for limb, q in zip(limbs, self.moduli)
        ]
        if self.native:
            return np.stack(reduced)
        return np.stack([np.asarray(limb, dtype=object) for limb in reduced])

    def reduce(self, stack: np.ndarray) -> np.ndarray:
        """Reduce an integer stack limb-wise into ``[0, q_i)``."""
        stack = np.asarray(stack)
        if self.native and stack.dtype != object:
            if np.issubdtype(stack.dtype, np.signedinteger):
                q = self._col(self._q.astype(np.int64), stack.ndim)
                return (stack.astype(np.int64, copy=False) % q).astype(_U64)
            return stack.astype(_U64, copy=False) % self.q_col(stack.ndim)
        stack = np.asarray(stack, dtype=object)
        reduced = stack % self._col(self._q, stack.ndim)
        if self.native:
            return reduced.astype(_U64)
        return reduced

    def zeros(self, shape) -> np.ndarray:
        shape = (len(self.moduli),) + tuple(shape)
        if self.native:
            return np.zeros(shape, dtype=_U64)
        out = np.empty(shape, dtype=object)
        out[...] = 0
        return out

    # -- element-wise ring operations ---------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = self._align(a, b)
        q = self._col(self._q, a.ndim)
        if self.native:
            s = a + b
            return np.where(s >= q, s - q, s)
        return (a + b) % q

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = self._align(a, b)
        q = self._col(self._q, a.ndim)
        if self.native:
            s = a + (q - b)
            return np.where(s >= q, s - q, s)
        return (a - b) % q

    def neg(self, a: np.ndarray) -> np.ndarray:
        q = self._col(self._q, a.ndim)
        if self.native:
            return np.where(a == 0, a, q - a)
        return (-a) % q

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise product of two reduced stacks (Barrett per limb)."""
        a, b = self._align(a, b)
        if not self.native:
            return (a * b) % self._col(self._q, a.ndim)
        ndim = max(a.ndim, b.ndim)
        hi, lo = modarith.mul128(a, b)
        approx = (hi << self._col(self._s_lo_c, ndim)) | (
            lo >> self._col(self._s_lo, ndim)
        )
        q2_hi, q2_lo = modarith.mul128(approx, self._col(self._mu, ndim))
        quot = (q2_hi << self._col(self._s_hi_c, ndim)) | (
            q2_lo >> self._col(self._s_hi, ndim)
        )
        q = self._col(self._q, ndim)
        r = lo - quot * q
        r = np.where(r >= q, r - q, r)
        return np.where(r >= q, r - q, r)

    def shoup_mul(
        self, a: np.ndarray, w: np.ndarray, w_shoup: np.ndarray
    ) -> np.ndarray:
        """Shoup product against per-limb constant stacks (native only)."""
        a, w = self._align(a, w)
        a, w_shoup = self._align(a, w_shoup)
        return modarith.shoup_mul_mod(a, w, w_shoup, self._col(self._q, a.ndim))

    def scalar_mul(self, a: np.ndarray, scalars: Sequence[int]) -> np.ndarray:
        """Multiply limb ``i`` by Python-int ``scalars[i]``."""
        if len(scalars) != len(self.moduli):
            raise ValueError("need one scalar per limb")
        reduced = [int(s) % q for s, q in zip(scalars, self.moduli)]
        if not self.native:
            w = self._col(np.array(reduced, dtype=object), a.ndim)
            return (a * w) % self._col(self._q, a.ndim)
        w = self._col(np.array(reduced, dtype=_U64), a.ndim)
        w_shoup = self._col(
            np.array(
                [modarith.shoup_precompute(s, q) for s, q in zip(reduced, self.moduli)],
                dtype=_U64,
            ),
            a.ndim,
        )
        return modarith.shoup_mul_mod(a, w, w_shoup, self._col(self._q, a.ndim))

    def broadcast_scalar_mul(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply every limb by the same Python integer (reduced per limb)."""
        return self.scalar_mul(a, [scalar] * len(self.moduli))
