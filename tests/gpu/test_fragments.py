"""Tests for fragment tiling, padding and valid-proportion arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import fragments


def test_shapes_catalogue():
    assert fragments.FP64_FRAGMENT == fragments.FragmentShape(8, 8, 4)
    assert fragments.FragmentShape(16, 16, 16) in fragments.INT8_FRAGMENTS
    assert len(fragments.INT8_FRAGMENTS) == 3


def test_fragment_volume_and_flops():
    frag = fragments.FP64_FRAGMENT
    assert frag.volume == 8 * 8 * 4
    assert frag.flops == 2 * frag.volume
    assert str(frag) == "8x8x4"


def test_tile_counts_exact_fit():
    assert fragments.tile_counts(16, 16, 8, fragments.FP64_FRAGMENT) == (2, 2, 2)


def test_tile_counts_with_padding():
    assert fragments.tile_counts(9, 8, 4, fragments.FP64_FRAGMENT) == (2, 1, 1)


def test_fragment_ops():
    assert fragments.fragment_ops(16, 16, 16, fragments.FP64_FRAGMENT) == 2 * 2 * 4


def test_padded_dims():
    assert fragments.padded_dims(9, 5, 3, fragments.FP64_FRAGMENT) == (16, 8, 4)


def test_valid_proportion_unpadded_is_one():
    assert fragments.valid_proportion(16, 16, 16, fragments.FP64_FRAGMENT) == 1.0


def test_paper_bconv_int8_vs_fp64_example():
    """Fig. 11: BConv GEMM (BS*N) x alpha' x alpha with alpha=4, alpha'=8.

    On INT8's best 32x8x16 fragment only 25% of the MACs are valid; on the
    FP64 8x8x4 fragment there is no padding at all.
    """
    m, n, k = 128 * 2**16, 8, 4
    int8 = fragments.FragmentShape(32, 8, 16)
    assert fragments.valid_proportion(m, n, k, int8) == pytest.approx(0.25)
    assert fragments.valid_proportion(m, n, k, fragments.FP64_FRAGMENT) == 1.0


def test_best_int8_fragment_prefers_valid_proportion():
    # N=8 favours the 32x8x16 shape over 16x16x16.
    shape = fragments.best_int8_fragment(1024, 8, 16)
    assert (shape.m, shape.n, shape.k) == (32, 8, 16)


def test_best_fragment_empty():
    with pytest.raises(ValueError):
        fragments.best_fragment(1, 1, 1, [])


def test_nonpositive_dims_rejected():
    with pytest.raises(ValueError):
        fragments.tile_counts(0, 8, 4, fragments.FP64_FRAGMENT)


def test_ntt_gemm_always_fully_valid_on_fp64():
    """Fig. 12: NTT's (BS*N/16) x 16 x 16 GEMM has valid proportion 1 on FP64."""
    m = 128 * 2**16 // 16
    assert fragments.valid_proportion(m, 16, 16, fragments.FP64_FRAGMENT) == 1.0


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=4096),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
)
def test_property_valid_proportion_bounds(m, n, k):
    for shape in (fragments.FP64_FRAGMENT,) + fragments.INT8_FRAGMENTS:
        vp = fragments.valid_proportion(m, n, k, shape)
        assert 0.0 < vp <= 1.0
        pm, pn, pk = fragments.padded_dims(m, n, k, shape)
        assert pm >= m and pn >= n and pk >= k
        assert pm % shape.m == pn % shape.n == pk % shape.k == 0


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=2048),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
)
def test_property_best_fragment_is_argmax(m, n, k):
    best = fragments.best_int8_fragment(m, n, k)
    best_vp = fragments.valid_proportion(m, n, k, best)
    for shape in fragments.INT8_FRAGMENTS:
        assert best_vp >= fragments.valid_proportion(m, n, k, shape)
