"""Extension: Barrett/Shoup native-backend micro-benchmark.

The paper's kernels operate on 36/48/60-bit RNS limbs (Section 3.4's FP64
plane-splitting argument assumes machine-word residues).  The seed code ran
every such limb through exact Python-integer (``dtype=object``) arrays; the
Barrett/Shoup backend keeps them in ``uint64`` end to end.

Acceptance bar (ISSUE 3): for a 60-bit negacyclic polynomial multiply plus
an NTT round-trip at ``N = 2**12``, the native backend must be at least
**10x** faster than the object-dtype oracle while producing bit-identical
residues (measured 20-30x on the reference machine).
"""

import time

import numpy as np
import pytest

from repro.math import modarith
from repro.math import ntt as ntt_mod
from repro.math.polynomial import negacyclic_multiply
from repro.math.primes import ntt_primes

DEGREE = 1 << 12
Q = ntt_primes(60, DEGREE, 1)[0]
SPEEDUP_FLOOR = 10.0


def _workload(a, b):
    """One negacyclic multiply plus an explicit NTT round-trip."""
    product = negacyclic_multiply(a, b, DEGREE, Q)
    plan = ntt_mod.get_plan(DEGREE, Q)
    round_trip = plan.inverse(plan.forward(product.copy()))
    return product, round_trip


def _best_time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(7)
    a = rng.integers(0, Q, size=DEGREE, dtype=np.uint64)
    b = rng.integers(0, Q, size=DEGREE, dtype=np.uint64)
    return a, b


def test_60bit_modulus_selects_uint64_backend():
    assert Q.bit_length() == 60
    assert modarith.uses_barrett_backend(Q)
    assert modarith.backend_dtype(Q) == np.uint64


def test_native_matches_object_oracle_bit_for_bit(operands):
    a, b = operands
    native_prod, native_rt = _workload(a, b)
    assert native_prod.dtype == np.uint64
    assert native_rt.dtype == np.uint64
    with modarith.object_backend():
        obj_prod, obj_rt = _workload(a.astype(object), b.astype(object))
    assert obj_prod.dtype == object
    assert (native_prod.astype(object) == obj_prod).all()
    assert (native_rt.astype(object) == obj_rt).all()


def test_native_backend_speedup_at_least_10x(operands):
    a, b = operands
    _workload(a, b)  # warm the native plan cache
    t_native = _best_time(lambda: _workload(a, b), repeats=5)
    obj_a, obj_b = a.astype(object), b.astype(object)
    with modarith.object_backend():
        _workload(obj_a, obj_b)  # warm the object plan cache
        t_object = _best_time(lambda: _workload(obj_a, obj_b), repeats=2)
    speedup = t_object / t_native
    print(
        f"\n60-bit N=2^12: object {t_object * 1e3:.1f} ms, "
        f"native {t_native * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"native backend speedup only {speedup:.1f}x "
        f"(needs >= {SPEEDUP_FLOOR}x)"
    )
