"""Tests for the application op-schedule builders."""

import pytest

from repro.apps import HelrApp, PackBootstrap, ResNetApp, standard_applications
from repro.ckks.params import get_set
from repro.core import NEO_CONFIG, NeoContext


@pytest.fixture(scope="module")
def neo():
    return NeoContext("C", config=NEO_CONFIG)


@pytest.fixture(scope="module")
def params():
    return get_set("C")


class TestPackBootstrap:
    def test_schedule_structure(self, params):
        schedule = PackBootstrap().schedule(params)
        assert schedule, "schedule must not be empty"
        for level, ops in schedule.items():
            assert 0 <= level <= params.max_level
            for op, count in ops.items():
                assert count > 0
                assert op in {
                    "hmult", "hrotate", "pmult", "hadd", "padd",
                    "rescale", "double_rescale",
                }

    def test_spans_many_levels(self, params):
        schedule = PackBootstrap().schedule(params)
        assert len(schedule) >= 8, "bootstrap consumes many levels"

    def test_rotation_heavy(self, params):
        """CtS/StC dominate the op mix with rotations and PMULTs."""
        totals = PackBootstrap().operation_totals(params)
        assert totals["hrotate"] > 50
        assert totals["pmult"] > totals["hmult"]

    def test_ds_toggle(self, params):
        with_ds = PackBootstrap(use_double_rescale=True).operation_totals(params)
        without = PackBootstrap(use_double_rescale=False).operation_totals(params)
        assert "double_rescale" in with_ds
        assert "double_rescale" not in without

    def test_time_positive_and_sane(self, neo):
        t = PackBootstrap().time_s(neo)
        assert 0.01 < t < 10.0

    def test_ds_bootstrap_slower_at_same_params(self, neo):
        """DS burns two levels per step; the non-DS ladder is longer but the
        per-step cost comparison still leaves both in the same ballpark."""
        with_ds = PackBootstrap(use_double_rescale=True).time_s(neo)
        without = PackBootstrap(use_double_rescale=False).time_s(neo)
        assert 0.3 < with_ds / without < 3.0


class TestHelr:
    def test_schedule_has_gradient_pipeline(self, params):
        schedule = HelrApp().schedule(params)
        ops = set()
        for level_ops in schedule.values():
            ops.update(level_ops)
        assert {"pmult", "hmult", "hrotate", "hadd"} <= ops

    def test_iteration_time(self, neo):
        t = HelrApp().time_s(neo)
        assert 0.01 < t < 10.0

    def test_more_features_cost_more(self, neo):
        small = HelrApp(features=64).time_s(neo)
        large = HelrApp(features=1024).time_s(neo)
        assert large >= small

    def test_bootstrap_amortisation(self, neo):
        frequent = HelrApp(bootstrap_every=1).time_s(neo)
        rare = HelrApp(bootstrap_every=10).time_s(neo)
        assert frequent > rare


class TestResNet:
    def test_supported_depths(self):
        for depth in (20, 32, 56):
            assert ResNetApp(depth).name == f"resnet{depth}"
        with pytest.raises(ValueError):
            ResNetApp(44)

    def test_layer_count(self):
        assert ResNetApp(20).conv_layers == 19
        assert ResNetApp(32).conv_layers == 31
        assert ResNetApp(56).conv_layers == 55

    def test_depth_scaling(self, neo):
        """Paper: ResNet-56 ~ 2.9x ResNet-20."""
        t20 = ResNetApp(20).time_s(neo)
        t56 = ResNetApp(56).time_s(neo)
        assert 2.3 < t56 / t20 < 3.5

    def test_bootstrap_per_activation(self):
        assert ResNetApp(20).bootstrap_count() == 19

    def test_schedule_uses_hmult_for_relu(self, params):
        schedule = ResNetApp(20).schedule(params)
        total_hmult = sum(ops.get("hmult", 0) for ops in schedule.values())
        assert total_hmult >= 19 * 15  # >= 15 mults per ReLU approximation


class TestStandardApplications:
    def test_five_apps_in_table5_order(self):
        names = [app.name for app in standard_applications()]
        assert names == ["packbootstrap", "helr", "resnet20", "resnet32", "resnet56"]

    def test_fresh_instances(self):
        a = standard_applications()
        b = standard_applications()
        assert a[0] is not b[0]
