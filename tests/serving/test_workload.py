"""Workload specs: parsing, validation, and deterministic arrival synthesis."""

import pytest

from repro.serving import (
    WORKLOAD_PRESETS,
    WorkloadPhase,
    parse_workload_spec,
    synthesize_arrivals,
)


class TestPhaseValidation:
    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            WorkloadPhase("matmul", 10, 1.0)

    def test_app_name_normalised(self):
        assert WorkloadPhase("HELR", 10, 1.0).app == "helr"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"count": 0},
            {"rate_hz": 0.0},
            {"rate_hz": -1.0},
            {"size": 0},
        ],
    )
    def test_bad_numbers_rejected(self, kwargs):
        base = {"app": "helr", "count": 10, "rate_hz": 1.0}
        with pytest.raises(ValueError):
            WorkloadPhase(**{**base, **kwargs})


class TestSpecParsing:
    def test_preset_names_resolve(self):
        for name, phases in WORKLOAD_PRESETS.items():
            assert parse_workload_spec(name) == phases

    def test_explicit_spec(self):
        phases = parse_workload_spec("helr:60:1.2,packbootstrap:40:0.8:2:500")
        assert phases == (
            WorkloadPhase("helr", 60, 1.2),
            WorkloadPhase("packbootstrap", 40, 0.8, size=2, slo_s=500.0),
        )

    @pytest.mark.parametrize("spec", ["", "helr", "helr:60", "helr:x:1.0"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_workload_spec(spec)


class TestArrivalSynthesis:
    def test_same_seed_is_bit_identical(self):
        phases = parse_workload_spec("mixed")
        assert synthesize_arrivals(phases, seed=9) == synthesize_arrivals(
            phases, seed=9
        )

    def test_different_seeds_differ(self):
        phases = parse_workload_spec("mixed")
        assert synthesize_arrivals(phases, seed=1) != synthesize_arrivals(
            phases, seed=2
        )

    def test_counts_ordering_and_rids(self, seed):
        phases = parse_workload_spec("mixed")
        requests = synthesize_arrivals(phases, seed=seed)
        assert len(requests) == sum(p.count for p in phases)
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.rid for r in requests] == list(range(len(requests)))
        per_app = {p.app: p.count for p in phases}
        for app, count in per_app.items():
            assert sum(1 for r in requests if r.app == app) == count

    def test_phase_slo_carries_through(self):
        requests = synthesize_arrivals((WorkloadPhase("helr", 5, 1.0, slo_s=77.0),))
        assert all(r.slo_s == 77.0 for r in requests)
