"""GPGPU device models.

The paper evaluates on one NVIDIA A100-40GB (Table 3).  Because this
reproduction has no GPU, timing is produced by an analytic device model:
peak rates come from the A100 whitepaper (the same source the paper cites,
Section 2.3), derated by a fixed *attainable-fraction* per component.  The
efficiency factors are global constants -- they are set once here and never
tuned per experiment, so relative results (who wins, crossovers) are
produced by the algorithms, not by calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-relevant parameters of a GPGPU.

    Rates are peak hardware numbers; ``*_efficiency`` is the fraction of
    peak a well-tuned kernel attains in practice.
    """

    name: str
    sm_count: int
    #: CUDA-core FP64 peak, TFLOP/s (A100: 9.7).
    cuda_fp64_tflops: float
    #: Tensor-core FP64 peak, TFLOP/s (A100: 19.5).
    tcu_fp64_tflops: float
    #: Tensor-core INT8 peak, TOP/s (A100: 624).
    tcu_int8_tops: float
    #: HBM bandwidth, GB/s (A100-40GB: 1555).
    hbm_bandwidth_gbs: float
    #: Fixed host-side cost of one kernel launch, microseconds.
    kernel_launch_us: float = 3.0
    #: Attainable fraction of peak per component.  Compute attainment is
    #: low in absolute terms because FHE kernels issue small (16-wide)
    #: GEMM fragments and integer-heavy inner loops; streaming kernels get
    #: close to peak DRAM bandwidth.  Calibrated once against the paper's
    #: Table 6 absolute times and held fixed for every experiment.
    cuda_efficiency: float = 0.22
    tcu_fp64_efficiency: float = 0.18
    tcu_int8_efficiency: float = 0.10
    memory_efficiency: float = 0.80
    #: Global memory capacity in GiB (bounds BatchSize).
    memory_gib: float = 40.0
    #: Occupancy model: batches below this half-saturation point leave SMs
    #: idle, derating compute throughput (the Fig. 17 effect).  Zero
    #: disables it (CPUs are not occupancy-limited).
    compute_half_batch: float = 32.0
    #: Same for memory transactions (milder: coalescing saturates earlier).
    memory_half_batch: float = 8.0
    #: L2 cache capacity, MiB (A100: 40).  Zero disables the L2 tier.
    l2_mib: float = 40.0
    #: L2 aggregate bandwidth, GB/s (A100: ~4500 measured).
    l2_bandwidth_gbs: float = 4500.0
    #: Attainable fraction of L2 bandwidth.
    l2_efficiency: float = 0.85
    #: Usable shared memory per SM, KiB (A100: 164 of the 192 KiB array).
    smem_kib_per_sm: float = 164.0
    #: Memory pricing: ``"flat"`` is the original single-tier roofline
    #: (``memory_efficiency`` scalar); ``"hier"`` routes each kernel's
    #: :class:`~repro.gpu.memory_model.TrafficProfile` through the
    #: L2/shared-memory split.  Flat stays the default so the paper's
    #: headline tables are priced exactly as before; the autotuner and the
    #: hierarchy benchmarks opt in via :meth:`hier`.
    memory_model: str = "flat"

    def __post_init__(self):
        if self.memory_model not in ("flat", "hier"):
            raise ValueError(
                f"unknown memory model {self.memory_model!r}; "
                "choose 'flat' or 'hier'"
            )

    # -- occupancy -------------------------------------------------------------

    def _utilization(self, batch: int, half: float) -> float:
        """Saturating utilisation, normalised to 1.0 at BatchSize = 128.

        Clamped at 1.0: batches beyond the 128-ciphertext calibration point
        saturate the device rather than exceeding the calibrated attainable
        fraction (the raw saturation curve crosses 1.0 above batch = 128).
        """
        if half <= 0 or batch <= 0:
            return 1.0
        return min(1.0, (batch * (128 + half)) / (128 * (batch + half)))

    def derated_for_batch(self, batch: int) -> "DeviceSpec":
        """The device as seen by a workload batched `batch` ciphertexts wide."""
        cu = self._utilization(batch, self.compute_half_batch)
        mu = self._utilization(batch, self.memory_half_batch)
        if cu == 1.0 and mu == 1.0:
            return self
        return self.with_overrides(
            cuda_efficiency=self.cuda_efficiency * cu,
            tcu_fp64_efficiency=self.tcu_fp64_efficiency * cu,
            tcu_int8_efficiency=self.tcu_int8_efficiency * cu,
            memory_efficiency=self.memory_efficiency * mu,
        )

    # -- effective rates ------------------------------------------------------

    @property
    def cuda_fp64_flops(self) -> float:
        """Attainable CUDA-core FP64 throughput, FLOP/s."""
        return self.cuda_fp64_tflops * 1e12 * self.cuda_efficiency

    @property
    def tcu_fp64_flops(self) -> float:
        """Attainable tensor-core FP64 throughput, FLOP/s."""
        return self.tcu_fp64_tflops * 1e12 * self.tcu_fp64_efficiency

    @property
    def tcu_int8_ops(self) -> float:
        """Attainable tensor-core INT8 throughput, OP/s."""
        return self.tcu_int8_tops * 1e12 * self.tcu_int8_efficiency

    @property
    def memory_bytes_per_s(self) -> float:
        """Attainable global-memory bandwidth, bytes/s."""
        return self.hbm_bandwidth_gbs * 1e9 * self.memory_efficiency

    @property
    def l2_capacity_bytes(self) -> float:
        """L2 capacity, bytes."""
        return self.l2_mib * (1 << 20)

    @property
    def l2_bytes_per_s(self) -> float:
        """Attainable L2 bandwidth, bytes/s (0 disables the L2 tier)."""
        return self.l2_bandwidth_gbs * 1e9 * self.l2_efficiency

    @property
    def smem_bytes_per_sm(self) -> float:
        """Usable shared memory per SM, bytes."""
        return self.smem_kib_per_sm * 1024.0

    def hier(self) -> "DeviceSpec":
        """This device under the hierarchical memory pricing."""
        if self.memory_model == "hier":
            return self
        return self.with_overrides(memory_model="hier")

    def flat(self) -> "DeviceSpec":
        """This device under the flat (legacy) memory pricing."""
        if self.memory_model == "flat":
            return self
        return self.with_overrides(memory_model="flat")

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy with some fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


#: The evaluation platform of the paper (Table 3).
A100 = DeviceSpec(
    name="NVIDIA A100-40GB",
    sm_count=108,
    cuda_fp64_tflops=9.7,
    tcu_fp64_tflops=19.5,
    tcu_int8_tops=624.0,
    hbm_bandwidth_gbs=1555.0,
)

#: NVIDIA H100-SXM5 (Hopper): the obvious next target for Neo's mapping.
#: FP64 tensor cores grow ~3.4x, INT8 ~3.2x, HBM3 bandwidth ~2.2x over A100.
H100 = DeviceSpec(
    name="NVIDIA H100-SXM5-80GB",
    sm_count=132,
    cuda_fp64_tflops=33.5,
    tcu_fp64_tflops=66.9,
    tcu_int8_tops=1979.0,
    hbm_bandwidth_gbs=3350.0,
    memory_gib=80.0,
    l2_mib=50.0,
    l2_bandwidth_gbs=8000.0,
    smem_kib_per_sm=228.0,
)

#: A consumer/inference-class Ada part: no FP64 tensor cores at all, a
#: fifth of the A100's DRAM bandwidth, but a *larger* L2 (48 MiB) -- the
#: memory system that makes the tuned optimum land somewhere else than on
#: the datacenter parts.  ``cuda_fp64_tflops`` is the *effective scalar
#: rate* for the integer modmul slots the model prices, FP32/4 (Ada's
#: native FP64 is vestigial at 1:64, but modular arithmetic runs on the
#: integer/FP32 pipes, which do not share that handicap).
L4 = DeviceSpec(
    name="NVIDIA L4-24GB",
    sm_count=58,
    cuda_fp64_tflops=7.6,
    tcu_fp64_tflops=0.0,
    tcu_int8_tops=242.0,
    hbm_bandwidth_gbs=300.0,
    memory_gib=24.0,
    l2_mib=48.0,
    l2_bandwidth_gbs=1600.0,
    smem_kib_per_sm=100.0,
)

#: A CUDA-core-only view of the A100, used by the HEonGPU baseline model.
A100_NO_TCU = A100.with_overrides(
    name="NVIDIA A100-40GB (CUDA cores only)",
    tcu_fp64_tflops=0.0,
    tcu_int8_tops=0.0,
)

#: Name -> spec registry for the CLI (``repro tune --device ...``).
DEVICES = {
    "a100": A100,
    "h100": H100,
    "l4": L4,
    "a100-no-tcu": A100_NO_TCU,
}


def get_device(name) -> DeviceSpec:
    """Look a device up by registry name (case-insensitive); specs pass through."""
    if isinstance(name, DeviceSpec):
        return name
    try:
        return DEVICES[str(name).lower()]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise ValueError(f"unknown device {name!r}; choose from {known}") from None
