"""Table 2: kernel complexity of the Hybrid and KLSS KeySwitch methods.

These are the paper's printed formulas, reproduced verbatim (in units of
"limb operations over N coefficients").  They are analytic quantities --
the time model in :mod:`repro.core.pipeline` uses its own per-step
accounting, which agrees with these up to the conventions discussed there.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ckks.params import ParameterSet

#: Order of the breakdown rows as printed in Table 2.
TABLE2_ROWS = (
    "Mod Up",
    "NTT",
    "Inner Product",
    "Inverse NTT",
    "Recover Limbs",
    "Mod Down",
)


def hybrid_complexity(level: int, alpha: int, beta: int) -> Dict[str, int]:
    """Hybrid-method column of Table 2 at ciphertext level `level`."""
    l = level
    return {
        "Mod Up": beta * l * alpha,
        "NTT": beta * (l + alpha),
        "Inner Product": 2 * beta * (l + alpha),
        "Inverse NTT": 2 * beta * (l + alpha),
        "Recover Limbs": 0,
        "Mod Down": 2 * (l * alpha + l),
    }


def klss_complexity(
    level: int, alpha: int, beta: int, alpha_prime: int, beta_tilde: int
) -> Dict[str, int]:
    """KLSS-method column of Table 2 at ciphertext level `level`."""
    l = level
    return {
        "Mod Up": beta * alpha * alpha_prime,
        "NTT": beta_tilde * alpha_prime,
        "Inner Product": beta * beta_tilde * alpha_prime,
        "Inverse NTT": 2 * beta_tilde * alpha_prime,
        "Recover Limbs": 2 * alpha_prime * (l + alpha),
        "Mod Down": 2 * (l * alpha + l),
    }


def complexity_table(params: ParameterSet, level: Optional[int] = None) -> Dict[str, Dict[str, int]]:
    """Both Table 2 columns for a parameter set (KLSS column needs a config)."""
    level = params.max_level if level is None else level
    alpha = params.alpha
    beta = params.beta(level)
    table = {"Hybrid": hybrid_complexity(level, alpha, beta)}
    if params.klss is not None:
        alpha_prime, _, beta_tilde = params.klss_dims(level)
        table["KLSS"] = klss_complexity(level, alpha, beta, alpha_prime, beta_tilde)
    return table


def total_complexity(breakdown: Dict[str, int]) -> int:
    """Sum of a Table 2 column."""
    return sum(breakdown.values())


def klss_beats_hybrid(params: ParameterSet, level: Optional[int] = None) -> bool:
    """Does the KLSS column total below the Hybrid column? (Section 2.2:
    "judicious parameter selection enables the KLSS method to achieve a
    lower overall complexity".)"""
    table = complexity_table(params, level)
    if "KLSS" not in table:
        raise ValueError(f"set {params.name} has no KLSS configuration")
    return total_complexity(table["KLSS"]) < total_complexity(table["Hybrid"])
