"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro report              # headline summary
    python -m repro table 2|5|6|7|8     # one evaluation table
    python -m repro fig 3|14|16|17      # one evaluation figure (as text)
    python -m repro params [A-H]        # parameter-set details
    python -m repro profile <app>       # per-op/per-kernel profile
    python -m repro serve --workload mixed   # dynamic-batching serving report
    python -m repro serve --gpus 4 --workload overload  # fleet serving report
    python -m repro metrics             # metrics snapshot of a serve run
    python -m repro trace req-0         # one request's span tree
    python -m repro bench keyswitch     # loop vs GEMM key-switch timings
    python -m repro bench bootstrap     # loop vs op-plan bootstrap timings
    python -m repro bench fleet         # fleet scaling vs one device
    python -m repro bench keyswitch --record   # append to BENCH_keyswitch.json
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from .analysis import booth, complexity
from .analysis.memory_footprint import (
    ciphertext_bytes,
    hybrid_evk_bytes,
    klss_evk_bytes,
    max_batch_size,
)
from .analysis.reporting import format_table
from .analysis.security import estimated_security_bits, total_modulus_bits
from .apps import APPLICATIONS, get_application, standard_applications
from .baselines import BASELINE_MODELS, CpuModel, HeonGpuModel, TensorFheModel
from .ckks.params import TABLE4, KlssConfig, get_set
from .core import ABLATION_STEPS, NEO_CONFIG, NeoContext
from .core.profiling import chrome_trace_json, profile_application

#: profile-command system registry: the baselines plus Neo itself.
SYSTEM_MODELS = dict(
    BASELINE_MODELS,
    neo=(lambda params, batch=None: NeoContext(params, batch=batch), "C"),
)

OPS = ("hmult", "hrotate", "pmult", "hadd", "padd", "rescale")


def _print(text: str):
    print(text)
    print()


def cmd_report(_args) -> int:
    cmd_table(argparse.Namespace(number="5"))
    cmd_table(argparse.Namespace(number="7"))
    cmd_fig(argparse.Namespace(number="14"))
    return 0


def cmd_table(args) -> int:
    number = str(args.number)
    if number == "2":
        params = get_set("C")
        table = complexity.complexity_table(params)
        rows = [
            [step, table["Hybrid"][step], table["KLSS"][step]]
            for step in complexity.TABLE2_ROWS
        ]
        _print(format_table(["Breakdown", "Hybrid", "KLSS"], rows,
                            title="Table 2 (Set C, l = 35)"))
    elif number == "5":
        systems = [
            ("CPU(H)", CpuModel("H")),
            ("TensorFHE(A)", TensorFheModel("A")),
            ("TensorFHE(B)", TensorFheModel("B")),
            ("HEonGPU(E)", HeonGpuModel("E")),
            ("Neo(C)", NeoContext("C", config=NEO_CONFIG)),
            ("Neo(D)", NeoContext("D", config=NEO_CONFIG)),
        ]
        apps = standard_applications()
        rows = [
            [label] + [f"{app.time_s(ctx):.2f}" for app in apps]
            for label, ctx in systems
        ]
        _print(format_table(["system"] + [a.name for a in apps], rows,
                            title="Table 5: application time (s)"))
    elif number == "6":
        systems = [
            ("TensorFHE(A)", TensorFheModel("A")),
            ("TensorFHE(B)", TensorFheModel("B")),
            ("HEonGPU(E)", HeonGpuModel("E")),
            ("Neo(C)", NeoContext("C", config=NEO_CONFIG)),
        ]
        rows = [
            [label] + [f"{ctx.operation_time_us(op, 35):.1f}" for op in OPS]
            for label, ctx in systems
        ]
        _print(format_table(["system"] + [o.upper() for o in OPS], rows,
                            title="Table 6: operation time at l = 35 (us)"))
    elif number == "7":
        neo = NeoContext("B", config=NEO_CONFIG.with_overrides(keyswitch="hybrid"))
        tfhe = TensorFheModel("B")
        rows = []
        for kernel in ("bconv", "ip", "ntt"):
            ratio = neo.kernel_throughput(kernel) / tfhe.kernel_throughput(kernel)
            rows.append([kernel, f"{neo.kernel_throughput(kernel):.0f}",
                         f"{tfhe.kernel_throughput(kernel):.0f}", f"{ratio:.2f}x"])
        _print(format_table(["kernel", "Neo/s", "TensorFHE/s", "speedup"], rows,
                            title="Table 7: kernel throughput (Set B)"))
    elif number == "8":
        base = get_set("B")
        rows = []
        for at in (4, 5, 6, 7):
            row = [f"a~={at}"]
            for dn in (4, 6, 9, 12, 18):
                p = dataclasses.replace(
                    base, dnum=dn, klss=KlssConfig(wordsize_t=48, alpha_tilde=at)
                )
                ctx = NeoContext(p, config=NEO_CONFIG)
                row.append(f"{ctx.keyswitch_time_us(35) / 1e3:.2f}")
            rows.append(row)
        _print(format_table(["alpha~"] + [f"dnum={d}" for d in (4, 6, 9, 12, 18)],
                            rows, title="Table 8: KeySwitch ms"))
    else:
        print(f"unknown table {number!r}; choose from 2, 5, 6, 7, 8", file=sys.stderr)
        return 2
    return 0


def cmd_fig(args) -> int:
    number = str(args.number)
    if number == "3":
        rows = []
        for name, steps in booth.fig3_comparison().items():
            rows.append([name, steps.plane_products, f"{steps.total_s * 1e3:.3f}"])
        _print(format_table(["component/WS", "planes", "total ms"], rows,
                            title="Fig. 3: INT8 vs FP64 GEMM"))
    elif number == "14":
        rows = []
        base: Optional[float] = None
        for label, config in ABLATION_STEPS:
            ctx = NeoContext("C" if config.keyswitch == "klss" else "B", config=config)
            t = ctx.operation_time_us("hmult", 35)
            base = base or t
            rows.append([label, f"{t:.0f}", f"{t / base:.3f}"])
        _print(format_table(["step", "HMULT us", "norm"], rows,
                            title="Fig. 14: ablation"))
    elif number == "16":
        base = get_set("B")
        hybrid = NeoContext(base, config=NEO_CONFIG.with_overrides(keyswitch="hybrid"))
        rows = [["Hybrid", f"{hybrid.keyswitch_time_us(35):.0f}"]]
        for wst in (36, 48, 64):
            p = dataclasses.replace(
                base, dnum=9, klss=KlssConfig(wordsize_t=wst, alpha_tilde=5)
            )
            ctx = NeoContext(p, config=NEO_CONFIG)
            rows.append([f"KLSS-{wst}", f"{ctx.keyswitch_time_us(35):.0f}"])
        _print(format_table(["method", "KeySwitch us (l=35)"], rows,
                            title="Fig. 16: WordSize_T trade-off"))
    elif number == "17":
        apps = standard_applications()[:3]
        rows = []
        reference = None
        for batch in (8, 16, 32, 64, 128):
            ctx = NeoContext("C", config=NEO_CONFIG, batch=batch)
            times = {a.name: a.time_s(ctx) for a in apps}
            reference = reference or dict(times)
            rows.append([batch] + [f"{times[a.name] / reference[a.name]:.2f}"
                                   for a in apps])
        _print(format_table(["BatchSize"] + [a.name for a in apps], rows,
                            title="Fig. 17: BatchSize scaling (normalised to 8)"))
    else:
        print(f"unknown figure {number!r}; choose from 3, 14, 16, 17",
              file=sys.stderr)
        return 2
    return 0


def cmd_params(args) -> int:
    names = [args.set.upper()] if args.set else sorted(TABLE4)
    rows = []
    for name in names:
        try:
            p = get_set(name)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        klss = f"T={p.klss.wordsize_t}, a~={p.klss.alpha_tilde}" if p.klss else "-"
        rows.append(
            [
                p.name,
                f"2^{p.log_degree}",
                p.max_level,
                p.wordsize,
                p.dnum,
                klss,
                f"{total_modulus_bits(p):.0f}",
                f"{estimated_security_bits(p):.0f}",
                f"{ciphertext_bytes(p) / 2**20:.0f} MiB",
                f"{(klss_evk_bytes(p) if p.klss else hybrid_evk_bytes(p)) / 2**20:.0f} MiB",
                max_batch_size(p),
            ]
        )
    _print(
        format_table(
            ["set", "N", "L", "WS", "dnum", "KLSS", "logQP", "~sec bits",
             "ct size", "evk size", "max batch"],
            rows,
            title="Table 4 parameter sets",
        )
    )
    return 0


def cmd_profile(args) -> int:
    try:
        app = get_application(args.app)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    system = args.system.lower()
    if system not in SYSTEM_MODELS:
        print(
            f"unknown system {args.system!r}; choose from "
            + ", ".join(sorted(SYSTEM_MODELS)),
            file=sys.stderr,
        )
        return 2
    factory, default_set = SYSTEM_MODELS[system]
    if args.batch is not None and args.batch < 1:
        print(f"--batch must be >= 1, got {args.batch}", file=sys.stderr)
        return 2
    # Only forward --batch when given, so each system keeps its own default.
    kwargs = {} if args.batch is None else {"batch": args.batch}
    try:
        ctx = factory(args.set or default_set, **kwargs)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    profile = profile_application(ctx, app)
    _print(profile.format(top=args.top))
    if args.chrome_trace:
        trace = ctx.application_trace(app)
        with open(args.chrome_trace, "w") as fh:
            fh.write(chrome_trace_json(ctx, trace))
        print(
            f"chrome trace ({len(trace)} events) written to {args.chrome_trace} "
            "(open via chrome://tracing or https://ui.perfetto.dev)"
        )
    return 0


def cmd_tune(args) -> int:
    """Search the plan/parameter config space for one application."""
    import json as _json

    from .core import BUDGETS, tune_app
    from .gpu import get_device

    try:
        device = get_device(args.device)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.budget not in BUDGETS:
        print(
            f"unknown budget {args.budget!r}; choose from "
            + ", ".join(sorted(BUDGETS)),
            file=sys.stderr,
        )
        return 2
    try:
        report = tune_app(
            args.app,
            params=args.set,
            device=device,
            budget=args.budget,
            top=args.top,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(report.to_jsonable(), indent=2, sort_keys=True))
        return 0
    rows = []
    for rank, cfg in enumerate(report.results, start=1):
        rows.append([
            str(rank),
            f"{cfg.time_s * 1e3:.1f}",
            f"{cfg.speedup:.2f}x" if cfg.speedup else "n/a",
            cfg.label(),
        ])
    baseline = (
        f"{report.baseline_time_s * 1e3:.1f} ms (paper hand-picked config)"
        if report.baseline_time_s
        else "infeasible on this device"
    )
    _print(
        format_table(
            ["rank", "modeled ms", "vs baseline", "configuration"],
            rows,
            title=(
                f"Tuned frontier: {report.app} on {report.device_name} "
                f"(set {report.params_name}, budget {report.budget})"
            ),
        )
    )
    _print(f"baseline: {baseline}")
    _print(
        f"search: {report.probed} probed, {report.evaluated} full evals, "
        f"{report.pruned_dominated} dominated + {report.pruned_cutoff} "
        f"cutoff pruned; plan-cache hit rate "
        f"{report.cache_hit_rate * 100:.0f}%"
    )
    return 0


def cmd_serve(args) -> int:
    from .serving import (
        Fleet,
        OverloadPolicy,
        Server,
        parse_workload_spec,
        synthesize_arrivals,
    )
    from .gpu import get_device
    from .serving.policies import POLICIES

    try:
        device = get_device(args.device)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.policy.lower() not in POLICIES:
        print(
            f"unknown policy {args.policy!r}; choose from "
            + ", ".join(sorted(POLICIES)),
            file=sys.stderr,
        )
        return 2
    if args.gpus > 1 and (args.wall_clock or args.snapshot):
        print(
            "--wall-clock and --snapshot operate on a single server; "
            "use --gpus 1",
            file=sys.stderr,
        )
        return 2
    tracer = None
    if args.metrics or args.trace_jsonl:
        from .telemetry import Tracer, enable_telemetry

        enable_telemetry().reset()
        tracer = Tracer()
    try:
        overload = None
        if args.queue_capacity is not None:
            overload = OverloadPolicy(
                queue_capacity=args.queue_capacity,
                shed_threshold=args.shed_threshold,
                tenant_quota=args.tenant_quota,
            )
        phases = parse_workload_spec(args.workload)
        requests = synthesize_arrivals(phases, seed=args.seed)
        if args.gpus > 1:
            server = Fleet(
                gpus=args.gpus,
                params=args.set,
                policy=args.policy,
                max_batch=args.max_batch,
                max_wait_s=args.max_wait_ms / 1e3,
                lanes=args.lanes,
                placement=args.placement,
                tensor_parallel=args.tensor_parallel,
                overload=overload,
                tracer=tracer,
                device=device,
                autotune=args.autotune,
            )
        else:
            server = Server(
                params=args.set,
                policy=args.policy,
                max_batch=args.max_batch,
                max_wait_s=args.max_wait_ms / 1e3,
                lanes=args.lanes,
                overload=overload,
                tracer=tracer,
                device=device,
                autotune=args.autotune,
            )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.wall_clock:
        from .serving import run_wall_clock

        report = run_wall_clock(server, requests, time_scale=args.time_scale)
    else:
        server.submit_many(requests)
        report = server.drain()
    _print(
        f"workload {args.workload!r} (seed {args.seed}): "
        + ", ".join(f"{p.count}x {p.app} @ {p.rate_hz:g}/s" for p in phases)
    )
    _print(report.format())
    if args.autoscale and args.gpus > 1:
        _print("")
        _print(server.plan_autoscale().format())
    if args.snapshot:
        from .serving import capture_timeline

        path = capture_timeline(server, args.snapshot, report)
        print(
            f"timeline snapshot ({report.offered} requests, fingerprint "
            f"{report.fingerprint()[:12]}..) written to {path} "
            "(replay with: python -m repro replay)"
        )
    if args.chrome_trace:
        with open(args.chrome_trace, "w") as fh:
            fh.write(report.to_chrome_trace())
        print(
            f"serving timeline ({len(report.batches)} batches) written to "
            f"{args.chrome_trace} (open via chrome://tracing or "
            "https://ui.perfetto.dev)"
        )
    if args.metrics:
        from .telemetry import global_registry

        with open(args.metrics, "w") as fh:
            fh.write(global_registry().snapshot_json())
            fh.write("\n")
        print(f"metrics snapshot written to {args.metrics}")
    if args.trace_jsonl:
        with open(args.trace_jsonl, "w") as fh:
            text = tracer.to_jsonl()
            fh.write(text + ("\n" if text else ""))
        print(
            f"span log ({len(tracer)} spans, {len(tracer.trace_ids())} traces) "
            f"written to {args.trace_jsonl}"
        )
    return 0


def cmd_replay(args) -> int:
    """Replay a captured traffic snapshot; verify its fingerprint."""
    from .serving.replay import SnapshotError, TimelineSnapshot

    try:
        snapshot = TimelineSnapshot.load(args.snapshot)
    except (OSError, SnapshotError) as exc:
        print(f"cannot load snapshot {args.snapshot!r}: {exc}", file=sys.stderr)
        return 2
    try:
        if args.no_verify:
            _, report = snapshot.replay()
            verdict = "fingerprint not checked"
        else:
            report = snapshot.verify()
            verdict = (
                "fingerprint verified"
                if snapshot.fingerprint
                else "replay determinism verified (snapshot had no fingerprint)"
            )
    except SnapshotError as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 1
    _print(
        f"replayed {len(snapshot.requests)} request(s) "
        f"({len(snapshot.cancels)} cancel(s)) from {args.snapshot}: {verdict}"
    )
    _print(f"fingerprint {report.fingerprint()}")
    _print(report.format())
    return 0


def cmd_metrics(args) -> int:
    """Drive one serve run with telemetry on; print the metrics snapshot."""
    from .serving import Fleet, Server, parse_workload_spec, synthesize_arrivals
    from .telemetry import enable_telemetry

    registry = enable_telemetry()
    registry.reset()
    try:
        phases = parse_workload_spec(args.workload)
        requests = synthesize_arrivals(phases, seed=args.seed)
        if args.gpus > 1:
            server = Fleet(gpus=args.gpus, params=args.set)
        else:
            server = Server(params=args.set)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    server.submit_many(requests)
    server.drain()
    if args.format == "prometheus":
        print(registry.to_prometheus_text(), end="")
    else:
        print(registry.snapshot_json())
    return 0


def cmd_trace(args) -> int:
    """Drive one serve run with a tracer; print one request's span tree."""
    from .serving import Server, parse_workload_spec, synthesize_arrivals
    from .telemetry import Tracer

    tracer = Tracer()
    try:
        phases = parse_workload_spec(args.workload)
        requests = synthesize_arrivals(phases, seed=args.seed)
        server = Server(params=args.set, tracer=tracer)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    server.submit_many(requests)
    server.drain()
    rid = args.request_id
    trace_id = rid if rid.startswith("req-") else f"req-{rid}"
    known = tracer.trace_ids()
    if trace_id not in known:
        preview = ", ".join(known[:8]) + (", ..." if len(known) > 8 else "")
        print(
            f"no trace {trace_id!r} in this workload; request ids: {preview}",
            file=sys.stderr,
        )
        return 2
    # Kernel spans are recorded once per batch shape and linked from the
    # request's batch span (``kernel_trace`` attribute); splice them back
    # in so the printed path covers queue -> batch -> op -> kernel.
    linked: list = []
    for s in tracer.spans_for(trace_id):
        link = s.attr_dict().get("kernel_trace")
        if link and link not in linked:
            linked.append(link)
    _print(tracer.format_tree(trace_id))
    for link in linked:
        _print("")
        _print("linked kernel trace (timestamps relative to batch start):")
        _print(tracer.format_tree(link))
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            parts = [tracer.to_jsonl(trace_id)]
            parts.extend(tracer.to_jsonl(link) for link in linked)
            text = "\n".join(p for p in parts if p)
            fh.write(text + ("\n" if text else ""))
        print(f"span log for {trace_id} written to {args.jsonl}")
    return 0


def _bench_finish(args, name: str, metrics, meta) -> int:
    """Shared --record / --fail-on-regress tail of the bench commands."""
    if not (args.record or args.fail_on_regress):
        return 0
    from .telemetry.bench_history import (
        compare_to_last,
        format_regressions,
        history_path,
        record_result,
    )

    baseline, regressions = compare_to_last(
        name, metrics, directory=args.bench_dir, rtol=args.rtol
    )
    if baseline is not None:
        _print(
            f"vs last recorded run ({baseline.recorded_at}): "
            + format_regressions(regressions)
        )
    if args.record:
        record_result(name, metrics, meta=meta, directory=args.bench_dir)
        print(f"recorded to {history_path(name, args.bench_dir)}")
    if regressions and args.fail_on_regress:
        return 1
    return 0


def cmd_bench(args) -> int:
    import time

    import numpy as np

    from .ckks.keys import KeyGenerator
    from .ckks.keyswitch import hybrid, klss
    from .ckks.keyswitch import plan as ksplan
    from .ckks.params import CkksParameters
    from .math.polynomial import RnsPolynomial

    if args.kernel not in (
        "keyswitch", "bootstrap", "serving", "fleet", "autotune"
    ):
        print(
            f"unknown bench kernel {args.kernel!r}; "
            "choose from: keyswitch, bootstrap, serving, fleet, autotune",
            file=sys.stderr,
        )
        return 2
    # The serving-layer and autotune benches run entirely on the modeled
    # clock and take workload/gpus/device knobs, not ring parameters --
    # dispatch before the keyswitch-specific degree/dnum validation below.
    if args.kernel == "serving":
        return _bench_serving(args)
    if args.kernel == "fleet":
        return _bench_fleet(args)
    if args.kernel == "autotune":
        return _bench_autotune(args)
    # Kernel-specific defaults: the functional bootstrap pipeline is far
    # heavier per invocation than one key switch, and needs a longer chain.
    if args.degree is None:
        args.degree = 32 if args.kernel == "bootstrap" else 1024
    if args.dnum is None:
        args.dnum = 4 if args.kernel == "bootstrap" else 2
    if args.degree < 8 or args.degree & (args.degree - 1):
        print(f"--degree must be a power of two >= 8, got {args.degree}",
              file=sys.stderr)
        return 2
    if args.dnum < 1 or args.repeats < 1:
        print("--dnum and --repeats must be >= 1", file=sys.stderr)
        return 2
    if args.kernel == "bootstrap":
        return _bench_bootstrap(args)
    try:
        params = CkksParameters(
            degree=args.degree,
            max_level=2 * args.dnum - 1,
            wordsize=args.wordsize,
            dnum=args.dnum,
            klss=KlssConfig(wordsize_t=args.wordsize + 5, alpha_tilde=2),
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    gen = KeyGenerator(params, seed=args.seed)
    ksk = gen.relinearisation_key(gen.secret_key())
    rng = np.random.default_rng(args.seed)
    basis = params.q_basis(params.max_level)
    poly = RnsPolynomial(
        args.degree,
        basis,
        [rng.integers(0, q, size=args.degree, dtype=np.uint64)
         for q in basis.moduli],
        is_ntt=False,
    )

    def best(fn):
        t = float("inf")
        for _ in range(args.repeats):
            start = time.perf_counter()
            fn()
            t = min(t, time.perf_counter() - start)
        return t

    ksplan.clear_keyswitch_plan_cache()
    rows = []
    metrics = {}
    for name, mod in (("hybrid", hybrid), ("klss", klss)):
        mod.keyswitch(poly, ksk, params)  # warm the plan + NTT caches
        mod.keyswitch_loop(poly, ksk, params)
        t_loop = best(lambda: mod.keyswitch_loop(poly, ksk, params))
        t_gemm = best(lambda: mod.keyswitch(poly, ksk, params))
        rows.append(
            [name, f"{t_loop * 1e3:.2f}", f"{t_gemm * 1e3:.2f}",
             f"{t_loop / t_gemm:.2f}x"]
        )
        metrics[f"{name}_loop_ms"] = t_loop * 1e3
        metrics[f"{name}_gemm_ms"] = t_gemm * 1e3
        metrics[f"{name}_speedup"] = t_loop / t_gemm
    _print(
        format_table(
            ["method", "loop ms", "gemm ms", "speedup"],
            rows,
            title=(
                f"KeySwitch loop vs GEMM (N=2^{params.log_degree}, "
                f"WS={args.wordsize}, dnum={args.dnum}, "
                f"l={params.max_level})"
            ),
        )
    )
    stats = ksplan.keyswitch_plan_cache_stats()
    _print(
        "plan cache: "
        f"{stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['evictions']} evictions "
        f"(hit rate {stats['hit_rate'] * 100:.0f}%, "
        f"{ksplan.keyswitch_plan_cache_size()} plans resident)"
    )
    return _bench_finish(
        args, "keyswitch", metrics,
        meta={
            "degree": args.degree, "wordsize": args.wordsize,
            "dnum": args.dnum, "repeats": args.repeats,
        },
    )


def _bench_bootstrap(args) -> int:
    """Time the full functional bootstrap: op-plan path vs loop path."""
    import time

    import numpy as np

    from .ckks import (
        CkksEncoder,
        CkksParameters,
        Encryptor,
        Evaluator,
        KeyGenerator,
    )
    from .ckks.bootstrap import Bootstrapper
    from .ckks.keys import conjugation_galois_power
    from .ckks.keyswitch import plan as ksplan

    try:
        params = CkksParameters(
            degree=args.degree,
            max_level=3 * args.dnum,
            wordsize=args.wordsize,
            dnum=args.dnum,
            first_prime_bits=args.wordsize + 2,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    gen = KeyGenerator(params, seed=args.seed)
    sk = gen.secret_key(hamming_weight=1)
    encoder = CkksEncoder(params)
    encryptor = Encryptor(params, public_key=gen.public_key(sk), seed=args.seed + 1)
    relin = gen.relinearisation_key(sk)
    # One shared key set: key generation is randomized, so separate keys
    # would (correctly) break the bit-identity check below.
    ev_plan = Evaluator(params, relin_key=relin, method="hybrid")
    ev_loop = Evaluator(params, relin_key=relin, method="hybrid-loop")
    boot_plan = Bootstrapper(params, encoder, ev_plan)
    boot_loop = Bootstrapper(params, encoder, ev_loop)
    galois = gen.rotation_keys(sk, boot_plan.required_rotations())
    conj = conjugation_galois_power(params.degree)
    galois.add(conj, gen.galois_key(sk, conj))
    ev_plan.galois_keys = galois
    ev_loop.galois_keys = galois

    rng = np.random.default_rng(args.seed)
    v = np.clip(0.3 * rng.normal(size=params.slots), -0.8, 0.8)
    ct = encryptor.encrypt(encoder.encode(v, level=0))

    def best(fn):
        t = float("inf")
        for _ in range(args.repeats):
            start = time.perf_counter()
            fn()
            t = min(t, time.perf_counter() - start)
        return t

    ksplan.clear_keyswitch_plan_cache()
    # Warm runs compile the op plans / encode the diagonals, and feed the
    # bit-identity check.
    out_plan = boot_plan.bootstrap(ct)
    out_loop = boot_loop.bootstrap(ct)
    identical = all(
        np.array_equal(a.from_ntt().limb_stack(), b.from_ntt().limb_stack())
        for a, b in ((out_plan.c0, out_loop.c0), (out_plan.c1, out_loop.c1))
    )
    t_plan = best(lambda: boot_plan.bootstrap(ct))
    t_loop = best(lambda: boot_loop.bootstrap(ct))
    _print(
        format_table(
            ["method", "loop ms", "plan ms", "speedup", "bit-identical"],
            [["hybrid", f"{t_loop * 1e3:.1f}", f"{t_plan * 1e3:.1f}",
              f"{t_loop / t_plan:.2f}x", str(identical)]],
            title=(
                f"Bootstrap loop vs GEMM plan (N=2^{params.log_degree}, "
                f"WS={args.wordsize}, dnum={args.dnum}, L={params.max_level})"
            ),
        )
    )
    stats = ksplan.keyswitch_plan_cache_stats()
    _print(
        "plan cache: "
        f"{stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['evictions']} evictions "
        f"(hit rate {stats['hit_rate'] * 100:.0f}%, "
        f"{ksplan.keyswitch_plan_cache_size()} plans resident)"
    )
    bench_rc = _bench_finish(
        args, "bootstrap",
        {
            "loop_ms": t_loop * 1e3,
            "plan_ms": t_plan * 1e3,
            "speedup": t_loop / t_plan,
        },
        meta={
            "degree": args.degree, "wordsize": args.wordsize,
            "dnum": args.dnum, "repeats": args.repeats,
        },
    )
    return (0 if identical else 1) or bench_rc


def _bench_serving(args) -> int:
    """Continuous batching vs serial dispatch on the simulated clock."""
    from .serving import Server, parse_workload_spec, synthesize_arrivals

    workload = args.workload or "mixed"
    try:
        phases = parse_workload_spec(workload)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    requests = synthesize_arrivals(phases, seed=args.seed)
    serial = Server(policy="fifo", max_batch=1, max_wait_s=0.0, lanes=1)
    serial.submit_many(requests)
    serial_report = serial.drain()
    batched = Server()
    batched.submit_many(requests)
    batched_report = batched.drain()
    speedup = (
        batched_report.throughput_rps / serial_report.throughput_rps
        if serial_report.throughput_rps
        else 0.0
    )
    _print(
        format_table(
            ["dispatch", "req/s", "P95 s", "SLO attainment"],
            [
                ["serial", f"{serial_report.throughput_rps:.3f}",
                 f"{serial_report.latency_summary()['p95']:.1f}",
                 f"{100 * serial_report.slo_attainment:.1f}%"],
                ["continuous", f"{batched_report.throughput_rps:.3f}",
                 f"{batched_report.latency_summary()['p95']:.1f}",
                 f"{100 * batched_report.slo_attainment:.1f}%"],
            ],
            title=f"Serving throughput, workload {workload!r} (seed {args.seed})",
        )
    )
    _print(f"continuous batching speedup: {speedup:.2f}x")
    return _bench_finish(
        args, "serving",
        {
            "serial_rps": serial_report.throughput_rps,
            "continuous_rps": batched_report.throughput_rps,
            "batching_speedup": speedup,
            "continuous_attainment": batched_report.slo_attainment,
        },
        meta={"workload": workload, "seed": args.seed},
    )


def _bench_fleet(args) -> int:
    """Fleet scaling: N modeled GPUs vs one on an overload workload."""
    from .serving import Fleet, Server, parse_workload_spec, synthesize_arrivals

    workload = args.workload or "overload"
    if args.gpus < 1:
        print(f"--gpus must be >= 1, got {args.gpus}", file=sys.stderr)
        return 2
    try:
        phases = parse_workload_spec(workload)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    requests = synthesize_arrivals(phases, seed=args.seed)
    single = Server()
    single.submit_many(requests)
    single_report = single.drain()
    fleet = Fleet(gpus=args.gpus)
    fleet.submit_many(requests)
    fleet_report = fleet.drain()
    speedup = (
        fleet_report.throughput_rps / single_report.throughput_rps
        if single_report.throughput_rps
        else 0.0
    )
    _print(
        format_table(
            ["devices", "req/s", "P95 s", "SLO attainment"],
            [
                ["1", f"{single_report.throughput_rps:.3f}",
                 f"{single_report.latency_summary()['p95']:.1f}",
                 f"{100 * single_report.slo_attainment:.1f}%"],
                [str(args.gpus), f"{fleet_report.throughput_rps:.3f}",
                 f"{fleet_report.latency_summary()['p95']:.1f}",
                 f"{100 * fleet_report.slo_attainment:.1f}%"],
            ],
            title=f"Fleet scaling, workload {workload!r} (seed {args.seed})",
        )
    )
    _print(
        f"fleet speedup: {speedup:.2f}x on {args.gpus} device(s) "
        f"({100 * speedup / args.gpus:.0f}% scaling efficiency)"
    )
    return _bench_finish(
        args, "fleet",
        {
            "single_rps": single_report.throughput_rps,
            "fleet_rps": fleet_report.throughput_rps,
            "fleet_speedup": speedup,
            "fleet_attainment": fleet_report.slo_attainment,
        },
        meta={"workload": workload, "gpus": args.gpus, "seed": args.seed},
    )


def _bench_autotune(args) -> int:
    """Quick-budget plan search per app; tuned-vs-baseline on the model."""
    import time

    from .core import tune_app
    from .gpu import get_device

    try:
        device = get_device(args.device).hier()
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    apps = ("helr", "packbootstrap", "resnet20")
    rows = []
    metrics = {}
    start = time.perf_counter()
    for app in apps:
        report = tune_app(app, params="C", device=device, budget="quick")
        best = report.best
        baseline_ms = (
            f"{report.baseline_time_s * 1e3:.1f}"
            if report.baseline_time_s
            else "n/a"
        )
        rows.append([
            app, baseline_ms, f"{best.time_s * 1e3:.1f}",
            f"{best.speedup:.2f}x" if best.speedup else "n/a",
            best.label(),
        ])
        metrics[f"{app}_tuned_ms"] = best.time_s * 1e3
        if best.speedup:
            metrics[f"{app}_speedup"] = best.speedup
    metrics["search_wall_s"] = time.perf_counter() - start
    _print(
        format_table(
            ["app", "baseline ms", "tuned ms", "speedup", "configuration"],
            rows,
            title=f"Autotuned plans on {device.name} (set C, quick budget)",
        )
    )
    return _bench_finish(
        args, "autotune", metrics,
        meta={"device": device.name, "budget": "quick", "apps": list(apps)},
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Neo (ISCA'25) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("report", help="headline results").set_defaults(func=cmd_report)
    t = sub.add_parser("table", help="regenerate a paper table")
    t.add_argument("number", help="2, 5, 6, 7 or 8")
    t.set_defaults(func=cmd_table)
    f = sub.add_parser("fig", help="regenerate a paper figure (text form)")
    f.add_argument("number", help="3, 14, 16 or 17")
    f.set_defaults(func=cmd_fig)
    p = sub.add_parser("params", help="parameter-set details")
    p.add_argument("set", nargs="?", help="A-H (default: all)")
    p.set_defaults(func=cmd_params)
    prof = sub.add_parser(
        "profile", help="per-op/per-kernel profile of one application"
    )
    prof.add_argument(
        "app",
        help="application: " + ", ".join(sorted(set(APPLICATIONS) - {"bootstrap"})),
    )
    prof.add_argument(
        "--system",
        default="neo",
        help="neo, tensorfhe, heongpu or cpu (default: neo)",
    )
    prof.add_argument(
        "--set", default=None, help="parameter set A-H (default: system-specific)"
    )
    prof.add_argument("--batch", type=int, default=None, help="BatchSize override")
    prof.add_argument(
        "--top", type=int, default=12, help="kernel rows to show (default 12)"
    )
    prof.add_argument(
        "--chrome-trace",
        metavar="FILE",
        default=None,
        help="also write the simulated timeline as Chrome-trace JSON",
    )
    prof.set_defaults(func=cmd_profile)
    tune = sub.add_parser(
        "tune",
        help="autotune plan/parameter choices for one application on a device",
    )
    tune.add_argument(
        "app",
        help="application: " + ", ".join(sorted(set(APPLICATIONS) - {"bootstrap"})),
    )
    tune.add_argument("--set", default="C", help="parameter set A-H (default: C)")
    tune.add_argument(
        "--device", default="a100",
        help="target device: a100, h100, l4 or a100-no-tcu (default: a100)",
    )
    tune.add_argument(
        "--budget", default="quick", help="search budget: quick or full"
    )
    tune.add_argument(
        "--top", type=int, default=8,
        help="frontier rows to keep (default 8)",
    )
    tune.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of a table",
    )
    tune.set_defaults(func=cmd_tune)
    serve = sub.add_parser(
        "serve", help="replay a synthetic arrival trace through the serving layer"
    )
    serve.add_argument(
        "--workload",
        default="mixed",
        help="preset (mixed, bootstrap, resnet, smoke, overload10x) or "
        "app:count:rate[:size[:slo[:tier]]] entries, comma-separated",
    )
    serve.add_argument(
        "--policy",
        default="bucketed",
        help="admission policy: fifo, edf or bucketed (default: bucketed)",
    )
    serve.add_argument("--set", default="C", help="parameter set A-H (default: C)")
    serve.add_argument(
        "--max-batch", type=int, default=64, help="dynamic batch capacity (cts)"
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=30000.0,
        help="continuous-batching window, simulated ms (default 30000)",
    )
    serve.add_argument(
        "--lanes", type=int, default=2, help="concurrent batch lanes (default 2)"
    )
    serve.add_argument(
        "--gpus", type=int, default=1,
        help="modeled GPUs; > 1 routes across a fleet (default 1)",
    )
    serve.add_argument(
        "--placement", default="replicate", choices=("replicate", "shard"),
        help="evaluation-key placement across the fleet (default: replicate)",
    )
    serve.add_argument(
        "--tensor-parallel", type=int, default=1,
        help="GPUs ganged per serving group; must divide --gpus (default 1)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="arrival-trace seed (default 0)"
    )
    serve.add_argument(
        "--chrome-trace",
        metavar="FILE",
        default=None,
        help="also write the serving timeline as Chrome-trace JSON",
    )
    serve.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="enable telemetry and write the metrics snapshot (JSON)",
    )
    serve.add_argument(
        "--trace-jsonl",
        metavar="FILE",
        default=None,
        help="enable tracing and write every request's spans as JSONL",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="bound the admission queue and enable overload control "
        "(load shedding, priority eviction)",
    )
    serve.add_argument(
        "--shed-threshold", type=float, default=0.75, metavar="FRAC",
        help="queue-fill fraction where low-priority shedding starts "
        "(default 0.75; needs --queue-capacity)",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=None, metavar="N",
        help="max queued requests per tenant (needs --queue-capacity)",
    )
    serve.add_argument(
        "--wall-clock", action="store_true",
        help="ingest through the asyncio front end (live edge) instead of "
        "submitting the trace directly; same scheduler, same report",
    )
    serve.add_argument(
        "--time-scale", type=float, default=0.0, metavar="S",
        help="wall seconds per simulated second when pacing --wall-clock "
        "ingest (default 0: as fast as backpressure allows)",
    )
    serve.add_argument(
        "--snapshot", metavar="FILE", default=None,
        help="capture the traffic timeline + fingerprint as JSONL "
        "(replayable via `python -m repro replay FILE`)",
    )
    serve.add_argument(
        "--autoscale", action="store_true",
        help="with --gpus > 1, also print the hysteresis autoscale plan",
    )
    serve.add_argument(
        "--device", default="a100",
        help="modeled device: a100, h100, l4 or a100-no-tcu (default: a100)",
    )
    serve.add_argument(
        "--autotune", action="store_true",
        help="search per-app plan/parameter configs (hierarchical memory "
        "model) instead of the paper's hand-picked NEO_CONFIG",
    )
    serve.set_defaults(func=cmd_serve)
    replay = sub.add_parser(
        "replay", help="replay a captured traffic snapshot bit-for-bit"
    )
    replay.add_argument("snapshot", help="snapshot JSONL from serve --snapshot")
    replay.add_argument(
        "--no-verify", action="store_true",
        help="skip the fingerprint check (print the report only)",
    )
    replay.set_defaults(func=cmd_replay)
    metrics = sub.add_parser(
        "metrics", help="metrics snapshot of one telemetry-enabled serve run"
    )
    metrics.add_argument(
        "--workload", default="smoke",
        help="workload preset or spec (default: smoke)",
    )
    metrics.add_argument(
        "--format", default="prometheus", choices=("prometheus", "json"),
        help="output format (default: prometheus)",
    )
    metrics.add_argument("--set", default="C", help="parameter set (default: C)")
    metrics.add_argument("--seed", type=int, default=0, help="arrival seed")
    metrics.add_argument(
        "--gpus", type=int, default=1,
        help="modeled GPUs; > 1 drains a fleet and adds fleet_* metrics",
    )
    metrics.set_defaults(func=cmd_metrics)
    trace = sub.add_parser(
        "trace", help="span tree of one request from a traced serve run"
    )
    trace.add_argument("request_id", help="request id, e.g. req-0 (or just 0)")
    trace.add_argument(
        "--workload", default="smoke",
        help="workload preset or spec (default: smoke)",
    )
    trace.add_argument("--set", default="C", help="parameter set (default: C)")
    trace.add_argument("--seed", type=int, default=0, help="arrival seed")
    trace.add_argument(
        "--jsonl", metavar="FILE", default=None,
        help="also write the request's spans as JSONL",
    )
    trace.set_defaults(func=cmd_trace)
    bench = sub.add_parser(
        "bench", help="time a functional kernel (loop form vs GEMM form)"
    )
    bench.add_argument(
        "kernel",
        help="benchmark to run: keyswitch, bootstrap, serving, fleet, autotune",
    )
    bench.add_argument(
        "--device", default="a100",
        help="device for the autotune bench (default: a100)",
    )
    bench.add_argument(
        "--workload", default=None,
        help="workload preset or spec for serving/fleet benches "
        "(default: mixed for serving, overload for fleet)",
    )
    bench.add_argument(
        "--gpus", type=int, default=4,
        help="fleet size for the fleet bench (default 4)",
    )
    bench.add_argument(
        "--degree", type=int, default=None,
        help="ring degree N (default: 1024 for keyswitch, 32 for bootstrap)",
    )
    bench.add_argument(
        "--wordsize", type=int, default=25, help="limb bits (default 25)"
    )
    bench.add_argument(
        "--dnum", type=int, default=None,
        help="digit count (default: 2 for keyswitch, 4 for bootstrap)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats (default 3)"
    )
    bench.add_argument("--seed", type=int, default=0, help="rng seed (default 0)")
    bench.add_argument(
        "--record", action="store_true",
        help="append this run to BENCH_<kernel>.json",
    )
    bench.add_argument(
        "--bench-dir", default=".",
        help="directory holding BENCH_<kernel>.json (default: .)",
    )
    bench.add_argument(
        "--fail-on-regress", action="store_true",
        help="exit non-zero when a metric regresses vs the last recorded run",
    )
    bench.add_argument(
        "--rtol", type=float, default=0.5,
        help="relative regression tolerance (default 0.5 -- wall-clock "
        "timings on shared CI runners jitter)",
    )
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
