"""Number-theoretic transforms over NTT-friendly prime fields.

Three functionally equivalent implementations are provided, mirroring the
paper's discussion (Section 4.4):

* :class:`NttPlan` -- the classic in-place iterative negacyclic NTT
  (Cooley-Tukey forward / Gentleman-Sande inverse with merged ``psi``
  twisting).  This is the bit-exact reference.
* :func:`four_step_ntt` / :func:`multi_step_ntt` -- the matrix-multiplication
  formulations (four-step and the generalised "ten-step"/radix-16
  decomposition) that Neo maps onto tensor cores.  They operate on the
  *cyclic* DFT after an explicit ``psi``-twist, exactly as Fig. 9 shows
  ("Mul & Trans" = twist + transpose between GEMMs).

All transforms agree element-for-element; the test-suite asserts it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from . import modarith
from .primes import root_of_unity

_PLAN_CACHE: Dict[Tuple[int, int], "NttPlan"] = {}


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Indices of the bit-reversal permutation for power-of-two `n`."""
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def is_power_of_two(n: int) -> bool:
    """True when `n` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


class NttPlan:
    """Precomputed tables for the negacyclic NTT of a fixed ``(degree, q)``.

    The transform maps coefficient vectors of ``Z_q[X]/(X^N + 1)`` to their
    evaluations at the odd powers of a primitive ``2N``-th root ``psi``;
    multiplication becomes element-wise in that domain.
    """

    def __init__(self, degree: int, modulus: int):
        if not is_power_of_two(degree):
            raise ValueError(f"degree must be a power of two, got {degree}")
        if (modulus - 1) % (2 * degree) != 0:
            raise ValueError(f"modulus {modulus} is not NTT-friendly for degree {degree}")
        self.degree = degree
        self.modulus = modulus
        self.psi = root_of_unity(2 * degree, modulus)
        self.psi_inv = modarith.inv_mod(self.psi, modulus)
        self.degree_inv = modarith.inv_mod(degree, modulus)
        rev = _bit_reverse_permutation(degree)
        powers = self._power_table(self.psi)
        inv_powers = self._power_table(self.psi_inv)
        self._psi_rev = powers[rev]
        self._psi_inv_rev = inv_powers[rev]

    def _power_table(self, base: int) -> np.ndarray:
        table = np.empty(self.degree, dtype=object)
        value = 1
        for i in range(self.degree):
            table[i] = value
            value = value * base % self.modulus
        if modarith.uses_fast_backend(self.modulus):
            return table.astype(np.uint64)
        return table

    def _check_shape(self, arr: np.ndarray):
        if arr.ndim < 1 or arr.shape[-1] != self.degree:
            raise ValueError(
                f"last axis must have length {self.degree}, got shape {arr.shape}"
            )

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT (Cooley-Tukey; composes with
        :meth:`inverse` to the identity).

        Accepts a single coefficient vector or a *batch*: any array whose
        last axis has length ``degree`` -- the butterflies vectorise over
        the leading axes (the paper's BatchSize dimension).
        """
        q = self.modulus
        a = modarith.asarray_mod(coeffs, q)
        self._check_shape(a)
        t = self.degree
        m = 1
        while m < self.degree:
            t //= 2
            for i in range(m):
                j1 = 2 * i * t
                s = self._psi_rev[m + i]
                lo = a[..., j1 : j1 + t]
                hi = a[..., j1 + t : j1 + 2 * t]
                v = modarith.scalar_mul_mod(hi, int(s), q)
                new_lo = modarith.add_mod(lo, v, q)
                new_hi = modarith.sub_mod(lo, v, q)
                a[..., j1 : j1 + t] = new_lo
                a[..., j1 + t : j1 + 2 * t] = new_hi
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT (Gentleman-Sande); batches like
        :meth:`forward`."""
        q = self.modulus
        a = modarith.asarray_mod(values, q)
        self._check_shape(a)
        t = 1
        m = self.degree
        while m > 1:
            j1 = 0
            h = m // 2
            for i in range(h):
                s = self._psi_inv_rev[h + i]
                lo = a[..., j1 : j1 + t]
                hi = a[..., j1 + t : j1 + 2 * t]
                total = modarith.add_mod(lo, hi, q)
                scaled_diff = modarith.scalar_mul_mod(
                    modarith.sub_mod(lo, hi, q), int(s), q
                )
                a[..., j1 : j1 + t] = total
                a[..., j1 + t : j1 + 2 * t] = scaled_diff
                j1 += 2 * t
            t *= 2
            m = h
        return modarith.scalar_mul_mod(a, self.degree_inv, q)


def get_plan(degree: int, modulus: int) -> NttPlan:
    """Return the cached :class:`NttPlan` for ``(degree, modulus)``."""
    key = (degree, modulus)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = NttPlan(degree, modulus)
        _PLAN_CACHE[key] = plan
    return plan


# ---------------------------------------------------------------------------
# Matrix-multiplication NTT formulations (the forms Neo maps onto TCUs)
# ---------------------------------------------------------------------------


def dft_matrix(size: int, root: int, modulus: int) -> np.ndarray:
    """The `size` x `size` DFT matrix ``W[j, k] = root**(j*k) mod modulus``."""
    exponents = np.outer(np.arange(size), np.arange(size)) % size
    flat = np.array(
        [pow(root, int(e), modulus) for e in exponents.ravel()], dtype=object
    ).reshape(size, size)
    if modarith.uses_fast_backend(modulus):
        return flat.astype(np.uint64)
    return flat


def cyclic_dft(coeffs: np.ndarray, modulus: int, root: int) -> np.ndarray:
    """Dense (O(n^2)) cyclic DFT; ground truth for the fast decompositions."""
    w = dft_matrix(len(coeffs), root, modulus)
    return modarith.matmul_mod(w, modarith.asarray_mod(coeffs, modulus), modulus)


def multi_step_ntt(
    coeffs: np.ndarray,
    modulus: int,
    root: int,
    factors: Sequence[int],
    gemm=None,
) -> np.ndarray:
    """Cyclic DFT of ``len(coeffs)`` via recursive Cooley-Tukey GEMM steps.

    ``factors`` is the radix decomposition of the transform size: ``(n1, n2)``
    gives the paper's four-step NTT; ``(16, 16, 16, 16)`` at ``N = 2**16``
    gives the Radix-16 ("ten-step") NTT of Section 4.4.  Every butterfly
    stage is expressed as a modular GEMM so that a tensor-core GEMM emulation
    can be injected through ``gemm`` (defaults to the exact integer GEMM).

    Output is in natural (not bit-reversed) order.
    """
    n = len(coeffs)
    if int(np.prod(factors)) != n:
        raise ValueError(f"factors {tuple(factors)} do not multiply to {n}")
    if gemm is None:
        gemm = modarith.matmul_mod
    x = modarith.asarray_mod(coeffs, modulus)
    return _ct_recursive(x, modulus, root, list(factors), gemm)


def _ct_recursive(x, modulus, root, factors, gemm):
    """Recursive Cooley-Tukey split X = DFT_a combined with DFT_b blocks."""
    n = len(x)
    if len(factors) == 1:
        w = dft_matrix(n, root, modulus)
        return gemm(w, x.reshape(n, 1), modulus).reshape(n)
    a = factors[0]
    b = n // a
    # x[j] with j = j1*b + j2  ->  M[j2, j1]
    m = x.reshape(a, b).T.copy()
    # Step 1: DFT of size a along rows:  A[j2, k1] = sum_j1 M[j2, j1] w_a^{j1 k1}
    w_a = dft_matrix(a, modarith.pow_mod(root, b, modulus), modulus)
    stage = gemm(m, w_a, modulus)
    # Step 2: twiddle by root^{j2 * k1}
    twiddle_exp = np.outer(np.arange(b), np.arange(a)) % n
    twiddle = np.array(
        [pow(root, int(e), modulus) for e in twiddle_exp.ravel()], dtype=object
    ).reshape(b, a)
    stage = modarith.mul_mod(stage.astype(object), twiddle, modulus)
    if modarith.uses_fast_backend(modulus):
        stage = stage.astype(np.uint64)
    # Step 3: size-b DFT down each column, recursively decomposed.
    root_b = modarith.pow_mod(root, a, modulus)
    columns = []
    for k1 in range(a):
        columns.append(_ct_recursive(stage[:, k1], modulus, root_b, factors[1:], gemm))
    result = np.stack(columns, axis=1)  # result[k2, k1]
    return result.reshape(n)  # X[k1 + a*k2] = result[k2, k1]


def four_step_ntt(coeffs, modulus, root, n1=None, gemm=None):
    """The paper's four-step NTT: one (n1, n2) GEMM split of the cyclic DFT."""
    n = len(coeffs)
    if n1 is None:
        n1 = 1 << ((n.bit_length() - 1) // 2)
    return multi_step_ntt(coeffs, modulus, root, (n1, n // n1), gemm=gemm)


def negacyclic_twist(coeffs: np.ndarray, degree: int, modulus: int) -> np.ndarray:
    """Multiply coefficient ``i`` by ``psi**i``, mapping negacyclic to cyclic."""
    plan = get_plan(degree, modulus)
    twist = np.array(
        [pow(plan.psi, i, modulus) for i in range(degree)], dtype=object
    )
    out = modarith.mul_mod(modarith.asarray_mod(coeffs, modulus).astype(object), twist, modulus)
    if modarith.uses_fast_backend(modulus):
        return out.astype(np.uint64)
    return out


def negacyclic_untwist(coeffs: np.ndarray, degree: int, modulus: int) -> np.ndarray:
    """Inverse of :func:`negacyclic_twist` (multiply by ``psi**-i``)."""
    plan = get_plan(degree, modulus)
    untwist = np.array(
        [pow(plan.psi_inv, i, modulus) for i in range(degree)], dtype=object
    )
    out = modarith.mul_mod(modarith.asarray_mod(coeffs, modulus).astype(object), untwist, modulus)
    if modarith.uses_fast_backend(modulus):
        return out.astype(np.uint64)
    return out


def negacyclic_ntt_via_gemm(
    coeffs: np.ndarray, modulus: int, factors: Sequence[int], gemm=None
) -> np.ndarray:
    """Negacyclic NTT = psi-twist followed by the GEMM-decomposed cyclic DFT.

    Returns evaluations in natural order: entry ``k`` is the polynomial
    evaluated at ``psi**(2k+1)``.
    """
    degree = len(coeffs)
    plan = get_plan(degree, modulus)
    omega = plan.psi * plan.psi % modulus
    twisted = negacyclic_twist(coeffs, degree, modulus)
    return multi_step_ntt(twisted, modulus, omega, factors, gemm=gemm)


def negacyclic_intt_via_gemm(
    values: np.ndarray, modulus: int, factors: Sequence[int], gemm=None
) -> np.ndarray:
    """Inverse of :func:`negacyclic_ntt_via_gemm`."""
    degree = len(values)
    plan = get_plan(degree, modulus)
    omega_inv = modarith.inv_mod(plan.psi * plan.psi % modulus, modulus)
    spectrum = multi_step_ntt(values, modulus, omega_inv, factors, gemm=gemm)
    scaled = modarith.scalar_mul_mod(spectrum, plan.degree_inv, modulus)
    return negacyclic_untwist(scaled, degree, modulus)


def natural_order_negacyclic(plan: NttPlan, coeffs: np.ndarray) -> np.ndarray:
    """Reference dense negacyclic NTT in natural order (for cross-checks)."""
    degree = plan.degree
    modulus = plan.modulus
    points = [pow(plan.psi, 2 * k + 1, modulus) for k in range(degree)]
    vandermonde_rows: List[np.ndarray] = []
    for point in points:
        row = np.empty(degree, dtype=object)
        value = 1
        for i in range(degree):
            row[i] = value
            value = value * point % modulus
        vandermonde_rows.append(row)
    matrix = np.stack(vandermonde_rows)
    return modarith.matmul_mod(
        matrix, modarith.asarray_mod(coeffs, modulus).astype(object).reshape(-1, 1), modulus
    ).reshape(degree)
