"""Plain-text table/series formatting for the benchmark harness.

Every benchmark prints the rows/series its paper table or figure reports;
these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_series(
    name: str, points: Mapping[object, float], unit: str = ""
) -> str:
    """Render a one-line figure series: ``name: x=v, x=v, ...``."""
    body = ", ".join(f"{x}={_cell(y)}{unit}" for x, y in points.items())
    return f"{name}: {body}"


def ratio_report(
    label: str, measured: float, paper: float, tolerance: Optional[float] = None
) -> str:
    """One paper-vs-measured comparison line."""
    rel = measured / paper if paper else float("inf")
    line = f"{label}: measured={_cell(measured)} paper={_cell(paper)} (x{rel:.2f})"
    if tolerance is not None:
        line += "  OK" if abs(rel - 1) <= tolerance else "  DIVERGES"
    return line
