"""Dynamic-batching request serving over the Neo device model.

Turns "one application, one batch" into "a stream of concurrent requests":
jobs are admitted with per-request batch sizes and latency SLOs, folded
into dynamic batches by continuous batching with a bounded wait window,
and scheduled onto multi-stream lanes of the analytic A100 model.  See
``python -m repro serve --workload mixed`` for the CLI front end.
"""

from .batcher import Batch, ContinuousBatcher
from .fleet import (
    GALOIS_KEY_COUNTS,
    PLACEMENT_POLICIES,
    DeviceReport,
    Fleet,
    FleetReport,
    KeyPlacementPlan,
    MultiGpuServiceModel,
    app_key_bytes,
    plan_key_placement,
)
from .policies import (
    POLICIES,
    AdmissionPolicy,
    EarliestDeadlinePolicy,
    FifoPolicy,
    SizeBucketedPolicy,
    get_policy,
    next_power_of_two,
)
from .queue import RequestQueue
from .request import DEFAULT_SLO_S, Request, RequestRecord, default_slo_s
from .server import (
    FixedServiceModel,
    NeoServiceModel,
    Server,
    ServerStats,
    ServingReport,
)
from .workload import (
    WORKLOAD_PRESETS,
    WorkloadPhase,
    parse_workload_spec,
    synthesize_arrivals,
)

__all__ = [
    "AdmissionPolicy",
    "Batch",
    "ContinuousBatcher",
    "DEFAULT_SLO_S",
    "DeviceReport",
    "EarliestDeadlinePolicy",
    "FifoPolicy",
    "FixedServiceModel",
    "Fleet",
    "FleetReport",
    "GALOIS_KEY_COUNTS",
    "KeyPlacementPlan",
    "MultiGpuServiceModel",
    "NeoServiceModel",
    "PLACEMENT_POLICIES",
    "POLICIES",
    "Request",
    "RequestQueue",
    "RequestRecord",
    "Server",
    "ServerStats",
    "ServingReport",
    "SizeBucketedPolicy",
    "WORKLOAD_PRESETS",
    "WorkloadPhase",
    "app_key_bytes",
    "default_slo_s",
    "plan_key_placement",
    "get_policy",
    "next_power_of_two",
    "parse_workload_spec",
    "synthesize_arrivals",
]
