"""GEMM-form key-switch engine: per-level plans and batched kernels.

Neo's Algorithms 2 and 4 recast the two hot loops of key switching --
BConv and the Inner Product -- as data-reusing matrix multiplications.
This module is the functional-backend implementation of that idea:

* :class:`KeySwitchPlan` precomputes, once per ``(key, params, level,
  method, backend)``, everything the loop forms recompute per call: the
  gadget-decomposed evk stacked into one NTT-domain tensor, the BConv
  conversion matrices (with zero-padded short digits so every digit rides
  the same GEMM), the ModDown inverses, and the KLSS Recover-Limbs
  constants.
* :func:`gemm_keyswitch` runs the whole pipeline on the contiguous limb
  stack: one batched BConv matmul for ModUp (Algorithm 2), one
  :class:`~repro.math.ntt.NttStack` call over all digits, one
  lazy-reduction multiply-accumulate for the IP (Algorithm 4 -- 128-bit
  accumulation via :meth:`~repro.math.modstack.ModulusStack.lazy_mul_sum`),
  one batched INTT, and a native Recover Limbs / ModDown.  Outputs are
  bit-identical to the per-digit loop forms in :mod:`hybrid` and
  :mod:`klss` -- every step computes the same exact value modulo each limb.

Plans live in a bounded LRU cache keyed by the *params fingerprint* plus
the key's identity token -- never stashed on the key object itself, so a
key reused under sibling :class:`~repro.ckks.params.CkksParameters` can
not pick up stale digits.  The lock is held only around the LRU
bookkeeping; plan construction runs unlocked (concurrent misses may build
twice, first insert wins).
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, List, Tuple

import numpy as np

from ...gpu.memory_model import TrafficProfile, classify_traffic
from ...math import modarith
from ...math.modstack import ModulusStack
from ...math.ntt import PlanCache, get_stack
from ...math.polynomial import RnsPolynomial, automorphism_gather_maps
from ...math.rns import RnsBasis
from ...telemetry.stats import register_cache
from ...telemetry.tracing import span as _span
from ..params import CkksParameters

_U64 = np.uint64

#: Float margin around the 0.5 rounding boundary of the Recover-Limbs
#: overflow estimate; coefficients inside it re-run exactly on Python
#: integers.  The float error is below ``L_T * 2**-52``, orders of
#: magnitude smaller than this margin, so the fallback only fires on
#: genuinely knife-edge sums (and keeps the result exact when it does).
_RECOVER_DANGER_MARGIN = 2.0 ** -26


class KlssBoundError(ValueError):
    """Raised when the auxiliary modulus cannot hold the IP exactly (Eq. 4)."""


def _modeled_nbytes(arr: np.ndarray) -> float:
    """Modeled GPU footprint of a constant tensor: one machine word per
    residue (object-dtype arrays hold Python ints host-side, but the
    accelerator would store 64-bit words)."""
    return float(arr.size) * 8.0


def operand_traffic_report(
    operands: Dict[str, float], device, batch: int = 1
) -> Dict[str, Dict[str, object]]:
    """Classify per-operand reuse traffic against a device hierarchy.

    Each operand is re-referenced once per ciphertext of a batch; the
    first reference is compulsory, the remaining ``batch - 1`` are reuse
    that lands in shared memory, L2, or spills back to DRAM depending on
    the operand's footprint (:func:`repro.gpu.memory_model.classify_traffic`).
    """
    report: Dict[str, Dict[str, float]] = {}
    for name, nbytes in operands.items():
        split = classify_traffic(
            nbytes,
            TrafficProfile(
                reuse_bytes=nbytes * max(0, batch - 1),
                working_set_bytes=nbytes,
            ),
            device,
        )
        report[name] = {
            "bytes": nbytes,
            "hbm_bytes": split.hbm_bytes,
            "l2_bytes": split.l2_bytes,
            "captured_bytes": split.captured_bytes,
            "placement": split.placement,
        }
    return report


class KlssLevelKey:
    """The evk of one level, gadget-decomposed into the auxiliary basis."""

    def __init__(
        self,
        t_basis: RnsBasis,
        digit_pairs: List[List[Tuple[RnsPolynomial, RnsPolynomial]]],
        gadget_factors: List[int],
        pq_basis: RnsBasis,
    ):
        #: ``digit_pairs[i][j]`` = digit ``i`` of evk pair ``j``, over ``R_T`` (NTT).
        self.t_basis = t_basis
        self.digit_pairs = digit_pairs
        #: ``gadget_factors[i] = G_hat_i = PQ_l / G_i`` (exact integers).
        self.gadget_factors = gadget_factors
        self.pq_basis = pq_basis

    @property
    def beta_tilde(self) -> int:
        return len(self.digit_pairs)


def _limb_groups(n_limbs: int, alpha_tilde: int) -> List[Tuple[int, int]]:
    """Half-open limb ranges of the ``alpha~``-sized gadget groups."""
    return [
        (start, min(start + alpha_tilde, n_limbs))
        for start in range(0, n_limbs, alpha_tilde)
    ]


def _check_ip_bound(params: CkksParameters, level: int, t_basis: RnsBasis):
    """Assert the Eq. 4 correctness bound: ``T > 2 * N * beta * B * B~``."""
    pq_moduli = params.pq_basis(level).moduli
    alpha = params.alpha
    beta = params.beta(level)
    digit_bound = 0
    for j in range(beta):
        start, stop = params.digit_range(j, level)
        group = reduce(lambda a, b: a * b, params.moduli[start:stop], 1)
        digit_bound = max(digit_bound, group)
    b_bound = (alpha + 1) * digit_bound  # Mod Up overflow slack included
    groups = _limb_groups(len(pq_moduli), params.klss.alpha_tilde)
    key_digit_bound = max(
        reduce(lambda a, b: a * b, pq_moduli[start:stop], 1) for start, stop in groups
    )
    required = 2 * params.degree * beta * b_bound * key_digit_bound
    if t_basis.product <= required:
        raise KlssBoundError(
            f"auxiliary modulus T (~2^{t_basis.product.bit_length()}) too small: "
            f"Eq. 4 needs > 2^{required.bit_length()} at level {level}"
        )


def restrict_to_pq(
    poly: RnsPolynomial, params: CkksParameters, level: int
) -> RnsPolynomial:
    """Restrict a top-level ``PQ_L`` polynomial to the level-``l`` ``PQ`` basis."""
    top = params.max_level
    q_limbs = poly.limbs[: level + 1]
    p_limbs = poly.limbs[top + 1 : top + 1 + len(params.special_primes)]
    return RnsPolynomial(
        poly.degree, params.pq_basis(level), q_limbs + p_limbs, poly.is_ntt
    )


def _extract_digit(
    poly: RnsPolynomial,
    group_basis: RnsBasis,
    inv_factor: int,
    start: int,
    stop: int,
    t_basis: RnsBasis,
) -> RnsPolynomial:
    """Digit ``[v * G_hat^{-1}]_{G}`` of `poly`, lifted exactly into ``R_T``."""
    group_value = group_basis.compose(poly.limbs[start:stop])
    digit = (group_value * inv_factor) % group_basis.product
    limbs = t_basis.decompose(digit)
    return RnsPolynomial(poly.degree, t_basis, limbs, is_ntt=False).to_ntt()


def _weight_array(rows, native: bool) -> np.ndarray:
    """Nested python-int weights as a backend-typed numpy array."""
    arr = np.array(rows, dtype=object)
    return arr.astype(_U64) if native else arr


class KeySwitchPlan:
    """Everything one ``(key, params, level, method)`` key switch reuses.

    Built once and cached; holds only *constants* (weight tensors, scalar
    lists, the stacked evk) -- the engines below are pure functions of the
    plan plus the input polynomial, so a plan can serve concurrent lanes
    without locking.
    """

    def __init__(
        self, method: str, params: CkksParameters, level: int, ksk
    ):
        if method not in ("hybrid", "klss"):
            raise ValueError(f"unknown key-switch method {method!r}")
        self.method = method
        self.params = params
        self.level = level
        self.degree = params.degree
        self.q_basis = params.q_basis(level)
        self.pq_basis = params.pq_basis(level)
        self.p_basis = params.p_basis()
        self.q_mstack = ModulusStack.for_moduli(self.q_basis.moduli)
        self.pq_mstack = ModulusStack.for_moduli(self.pq_basis.moduli)
        self.p_mstack = ModulusStack.for_moduli(self.p_basis.moduli)
        self.alpha = params.alpha
        self.beta = params.beta(level)
        if self.beta > len(ksk.pairs):
            raise ValueError(
                f"key has {len(ksk.pairs)} digits but level {level} "
                f"needs {self.beta}"
            )
        self.max_source_modulus = max(self.q_basis.moduli)
        self.max_special_modulus = max(self.p_basis.moduli)

        # -- ModUp: per-limb digit scaling + padded conversion tensor ------
        group_bases = []
        modup_scalars: List[int] = []
        for j in range(self.beta):
            start, stop = params.digit_range(j, level)
            gb = RnsBasis(params.moduli[start:stop])
            group_bases.append(gb)
            modup_scalars.extend(gb.q_hat_inv)
        self.group_bases = group_bases
        self.modup_scalars = modup_scalars
        #: Rows of zero-padding that complete the last (short) digit, so
        #: the limb stack reshapes to a uniform ``(beta, alpha, ..., N)``.
        self.pad_rows = self.beta * self.alpha - (level + 1)

        if method == "hybrid":
            self._build_hybrid(ksk)
        else:
            self._build_klss(ksk)

        # -- ModDown: P -> Q conversion plus cached 1/P residues -----------
        self.moddown_scalars = list(self.p_basis.q_hat_inv)
        self.moddown_weights = _weight_array(
            [
                [p_hat % q for p_hat in self.p_basis.q_hat]
                for q in self.q_basis.moduli
            ],
            self.q_mstack.native,
        )
        self.p_inv_scalars = [
            modarith.inv_mod(params.special_product % q, q)
            for q in self.q_basis.moduli
        ]

    # -- builders ------------------------------------------------------------

    def _modup_weights(self, target_moduli: Tuple[int, ...], native: bool):
        """``(L_target, beta, alpha)`` conversion tensor, short digits padded.

        Routing a digit's *own* limbs through the full-target matmul is
        bit-identical to copying them verbatim: for ``q_k`` inside digit
        ``j``, every cross term carries the factor ``q_k`` and the own term
        reduces to ``x_k``, so the own-limb output is exactly the input
        residue -- one uniform GEMM covers own and foreign limbs alike.
        """
        w = np.zeros((len(target_moduli), self.beta, self.alpha), dtype=object)
        for j, gb in enumerate(self.group_bases):
            for a, q_hat in enumerate(gb.q_hat):
                for t, p in enumerate(target_moduli):
                    w[t, j, a] = q_hat % p
        return w.astype(_U64) if native else w

    def _build_hybrid(self, ksk):
        pq = self.pq_basis
        self.modup_weights = self._modup_weights(pq.moduli, self.pq_mstack.native)
        restricted = [
            (
                restrict_to_pq(b, self.params, self.level).to_ntt(),
                restrict_to_pq(a, self.params, self.level).to_ntt(),
            )
            for b, a in ksk.pairs[: self.beta]
        ]
        #: Per-digit NTT pairs for the loop form / hoisted rotations.
        self.key_pairs = restricted
        evk = np.empty(
            (len(pq), 2, self.beta, self.degree), dtype=self.pq_mstack.dtype
        )
        for j, (b, a) in enumerate(restricted):
            evk[:, 0, j, :] = b.stack
            evk[:, 1, j, :] = a.stack
        self.evk = evk

    def _build_klss(self, ksk):
        params, level = self.params, self.level
        if params.klss is None:
            raise ValueError("parameters carry no KLSS configuration")
        alpha_prime, beta, beta_tilde = params.klss_dims(level)
        t_basis = params.aux_basis.subbasis(0, alpha_prime)
        _check_ip_bound(params, level, t_basis)
        self.t_basis = t_basis
        self.t_mstack = ModulusStack.for_moduli(t_basis.moduli)
        self.beta_tilde = beta_tilde
        self.max_aux_modulus = max(t_basis.moduli)
        self.modup_weights = self._modup_weights(
            t_basis.moduli, self.t_mstack.native
        )

        pq = self.pq_basis
        groups = _limb_groups(len(pq.moduli), params.klss.alpha_tilde)
        pq_product = pq.product
        gadget_factors: List[int] = []
        group_data = []
        for start, stop in groups:
            group_basis = RnsBasis(pq.moduli[start:stop])
            g_hat = pq_product // group_basis.product
            inv = modarith.inv_mod(g_hat % group_basis.product, group_basis.product)
            gadget_factors.append(g_hat)
            group_data.append((group_basis, inv, start, stop))

        restricted = [
            (
                restrict_to_pq(b, params, level),
                restrict_to_pq(a, params, level),
            )
            for b, a in ksk.pairs[:beta]
        ]
        digit_pairs: List[List[Tuple[RnsPolynomial, RnsPolynomial]]] = []
        for group_basis, inv, start, stop in group_data:
            row = []
            for b, a in restricted:
                row.append(
                    (
                        _extract_digit(b, group_basis, inv, start, stop, t_basis),
                        _extract_digit(a, group_basis, inv, start, stop, t_basis),
                    )
                )
            digit_pairs.append(row)
        self.klss_key = KlssLevelKey(t_basis, digit_pairs, gadget_factors, pq)

        evk = np.empty(
            (len(t_basis), beta_tilde, 2, beta, self.degree),
            dtype=self.t_mstack.dtype,
        )
        for i, row in enumerate(digit_pairs):
            for j, (b, a) in enumerate(row):
                evk[:, i, 0, j, :] = b.stack
                evk[:, i, 1, j, :] = a.stack
        self.evk = evk

        # -- Recover Limbs constants (Step 5) --------------------------------
        # x_i = S_i - v_i*T with S_i = sum_k y'_ik * T_hat_k, so the gadget
        # recombination sum_i x_i * G_hat_i mod p_j folds into ONE GEMM over
        # (i, k) with weights G_hat_i * T_hat_k mod p_j, minus a small
        # correction GEMM over i with weights G_hat_i * T mod p_j.
        self.t_scalars = list(t_basis.q_hat_inv)
        self.t_hat = list(t_basis.q_hat)
        self.t_product = t_basis.product
        self.t_half = t_basis.product // 2
        self.t_inv_float = np.array(
            [1.0 / t for t in t_basis.moduli], dtype=np.float64
        )
        native = self.pq_mstack.native
        self.recover_weights = _weight_array(
            [
                [
                    (g_hat * t_hat) % p
                    for g_hat in gadget_factors
                    for t_hat in t_basis.q_hat
                ]
                for p in pq.moduli
            ],
            native,
        )
        self.recover_t_weights = _weight_array(
            [[(g_hat * t_basis.product) % p for g_hat in gadget_factors] for p in pq.moduli],
            native,
        )

    # -- memory-hierarchy view ------------------------------------------------

    def operand_bytes(self) -> Dict[str, float]:
        """Modeled footprints of the constants this plan re-reads per call."""
        operands = {
            "evk": _modeled_nbytes(self.evk),
            "modup_weights": _modeled_nbytes(self.modup_weights),
            "moddown_weights": _modeled_nbytes(self.moddown_weights),
        }
        if self.method == "klss":
            operands["recover_weights"] = _modeled_nbytes(self.recover_weights)
            operands["recover_t_weights"] = _modeled_nbytes(
                self.recover_t_weights
            )
        return operands

    def traffic_report(self, device, batch: int = 1) -> Dict[str, Dict[str, object]]:
        """Where each plan constant's batch reuse lands on `device`.

        The evaluation key dominates: whether its re-reads across a batch
        are L2 hits or DRAM spills is exactly what the autotuner's
        ``batch_tile`` axis trades against elementwise working sets.
        """
        return operand_traffic_report(self.operand_bytes(), device, batch)


# ---------------------------------------------------------------------------
# The GEMM engines
# ---------------------------------------------------------------------------


def _group_digits(scaled: np.ndarray, plan: KeySwitchPlan) -> np.ndarray:
    """Reshape the scaled ``(L_Q, ..., N)`` stack to ``(beta, alpha, ..., N)``.

    Digits are contiguous limb ranges of equal width except possibly the
    last; zero rows pad it so every digit rides the same batched matmul
    (zero-weight columns keep the padding inert).
    """
    if plan.pad_rows:
        pad = np.zeros((plan.pad_rows,) + scaled.shape[1:], dtype=scaled.dtype)
        scaled = np.concatenate([scaled, pad], axis=0)
    return scaled.reshape((plan.beta, plan.alpha) + scaled.shape[1:])


def _mod_down_stack(acc: np.ndarray, plan: KeySwitchPlan) -> np.ndarray:
    """ModDown of a coefficient-form ``(L_PQ, 2, ..., N)`` stack to ``L_Q``."""
    q_count = plan.level + 1
    q_part = acc[:q_count]
    p_part = acc[q_count:]
    scaled_p = plan.p_mstack.scalar_mul(p_part, plan.moddown_scalars)
    conv = plan.q_mstack.bconv_matmul(
        scaled_p, plan.moddown_weights, operand_bound=plan.max_special_modulus
    )
    diff = plan.q_mstack.sub(q_part, conv)
    return plan.q_mstack.scalar_mul(diff, plan.p_inv_scalars)


def _split_pair(
    out: np.ndarray, plan: KeySwitchPlan
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    p0 = RnsPolynomial._wrap(
        plan.degree, plan.q_basis, np.ascontiguousarray(out[:, 0]), False
    )
    p1 = RnsPolynomial._wrap(
        plan.degree, plan.q_basis, np.ascontiguousarray(out[:, 1]), False
    )
    return p0, p1


def _overflow_counts(y: np.ndarray, plan: KeySwitchPlan) -> np.ndarray:
    """The CRT overflow-plus-sign count ``v_i = round(sum_k y'_ik / t_k)``.

    ``S_i = v_i*T + x_i`` with ``|x_i| < T/2`` (Eq. 4), so ``v_i`` is the
    nearest integer of ``S_i / T = sum_k y'_ik / t_k`` -- computed in
    float64 (error ``< L_T * 2**-52``), with coefficients inside the
    rounding danger zone re-derived exactly on Python integers.  This keeps
    Recover Limbs native while staying bit-identical to the bignum
    ``compose_signed`` path always, not just with high probability.
    """
    yf = y.astype(np.float64)
    col = plan.t_inv_float.reshape((len(plan.t_basis),) + (1,) * (y.ndim - 1))
    s = (yf * col).sum(axis=0)
    frac = s - np.floor(s)
    v = np.rint(s).astype(np.int64)
    danger = np.abs(frac - 0.5) < _RECOVER_DANGER_MARGIN
    if danger.any():
        t_hat = plan.t_hat
        for idx in np.argwhere(danger):
            idx = tuple(idx)
            s_val = sum(
                int(y[(k,) + idx]) * t_hat[k] for k in range(len(t_hat))
            )
            v[idx] = s_val // plan.t_product + (
                1 if s_val % plan.t_product > plan.t_half else 0
            )
    if plan.pq_mstack.native:
        return v.astype(_U64)
    return v.astype(object)


def _recover_limbs(acc: np.ndarray, plan: KeySwitchPlan) -> np.ndarray:
    """Steps 5 of KLSS: exact signed base conversion + gadget recombination.

    One GEMM over the ``(beta~, L_T)`` fold axis against precomputed
    ``G_hat_i * T_hat_k mod p_j`` weights, minus the ``v_i * (G_hat_i * T)``
    correction -- no object-dtype CRT compose on the hot path.
    """
    y = plan.t_mstack.scalar_mul(acc, plan.t_scalars)  # y'_ik, (L_T, b~, 2, ..., N)
    v = _overflow_counts(y, plan)  # (b~, 2, ..., N)
    l_t = len(plan.t_basis)
    moved = np.ascontiguousarray(np.moveaxis(y, 0, 1))  # (b~, L_T, 2, ..., N)
    flat = moved.reshape((plan.beta_tilde * l_t,) + y.shape[2:])
    big = plan.pq_mstack.bconv_matmul(
        flat, plan.recover_weights, operand_bound=plan.max_aux_modulus
    )
    corr = plan.pq_mstack.bconv_matmul(v, plan.recover_t_weights)
    return plan.pq_mstack.sub(big, corr)


def gemm_keyswitch(
    poly: RnsPolynomial, plan: KeySwitchPlan
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """Key switch `poly` through the plan's batched GEMM pipeline.

    Bit-identical to the corresponding loop form (`hybrid.keyswitch_loop`
    / `klss.keyswitch_loop`): ModUp sums the same scaled residues modulo
    each target limb, the NTT stages are the same vectorised butterflies,
    the lazy IP computes the exact sum, and Recover Limbs/ModDown use the
    same constants.
    """
    with _span("keyswitch.gemm", category="keyswitch",
               method=plan.method, level=plan.level):
        return _gemm_keyswitch_inner(poly, plan)


def _gemm_keyswitch_inner(
    poly: RnsPolynomial, plan: KeySwitchPlan
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    raised = _modup_stack(poly.from_ntt().stack, plan)

    if plan.method == "hybrid":
        # raised: (L_PQ, beta, batch..., N)
        ntt = get_stack(plan.degree, plan.pq_basis.moduli)
        raised = ntt.forward(raised)
        n_batch = raised.ndim - 3
        evk = plan.evk.reshape(
            plan.evk.shape[:3] + (1,) * n_batch + (plan.degree,)
        )
        acc = plan.pq_mstack.lazy_mul_sum(evk, raised[:, None], axis=2)
        acc = ntt.inverse(acc)  # (L_PQ, 2, batch..., N)
    else:
        # raised: (L_T, beta, batch..., N)
        ntt = get_stack(plan.degree, plan.t_basis.moduli)
        raised = ntt.forward(raised)
        n_batch = raised.ndim - 3
        evk = plan.evk.reshape(
            plan.evk.shape[:4] + (1,) * n_batch + (plan.degree,)
        )
        acc = plan.t_mstack.lazy_mul_sum(
            evk, raised[:, None, None], axis=3
        )  # (L_T, beta~, 2, batch..., N)
        acc = ntt.inverse(acc)
        acc = _recover_limbs(acc, plan)  # (L_PQ, 2, batch..., N)

    out = _mod_down_stack(acc, plan)  # (L_Q, 2, batch..., N)
    return _split_pair(out, plan)


# ---------------------------------------------------------------------------
# Rotation op-plans: hoisted batches and giant-step batches
# ---------------------------------------------------------------------------


class HoistedRotationPlan:
    """k rotations compiled to one plan: gather maps + stacked key tensor.

    Generalises :class:`KeySwitchPlan` from one evk to a *batch* of Galois
    keys: the per-key plans (served from the shared LRU, so repeated
    rotations reuse their restrictions) contribute their stacked evk
    tensors, which are concatenated along a new rotation axis ``k``.  The
    k automorphism permutations become one ``(k, N)`` gather-index matrix
    plus a negation mask, so the engines below run every rotation of a
    batch through the same BConv GEMM, NTT, and lazily-reduced IP einsum.

    Used in two dataflows:

    * :func:`hoisted_gemm_rotations` -- ONE shared ModUp of one
      ciphertext, then all k automorphisms applied to the raised digits
      (Halevi-Shoup hoisting: decomposition and ModUp are
      coefficient-wise, hence commute with the automorphism).
    * :func:`gemm_rotation_batch` (via :class:`RotationBatchPlan`) -- k
      *different* polynomials, each rotated by its own step and key-
      switched in one batched pipeline (the BSGS giant steps).
    """

    def __init__(
        self,
        galois_keys,
        powers: Tuple[int, ...],
        params: CkksParameters,
        level: int,
        method: str,
    ):
        if not powers:
            raise ValueError("a rotation plan needs at least one Galois power")
        per_key = [
            get_keyswitch_plan(galois_keys.get(p), params, level, method)
            for p in powers
        ]
        #: ModUp / ModDown / Recover constants are key-independent, so any
        #: member plan serves as the shared front/back end.
        self.ks = per_key[0]
        self.powers = tuple(powers)
        degree = params.degree
        src = np.empty((len(powers), degree), dtype=np.int64)
        neg = np.empty((len(powers), degree), dtype=bool)
        for i, power in enumerate(powers):
            src[i], neg[i] = automorphism_gather_maps(power, degree)
        self.src = src
        self.negmask = neg
        if method == "hybrid":
            # (L_PQ, 2, k, beta, N)
            self.evk = np.stack([kp.evk for kp in per_key], axis=2)
        else:
            # (L_T, beta~, 2, k, beta, N)
            self.evk = np.stack([kp.evk for kp in per_key], axis=3)

    def __len__(self) -> int:
        return len(self.powers)

    def operand_bytes(self) -> Dict[str, float]:
        """Footprints including the k-stacked key and the gather maps."""
        operands = self.ks.operand_bytes()
        operands["evk"] = _modeled_nbytes(self.evk)  # k keys, not one
        operands["gather_maps"] = _modeled_nbytes(self.src) + float(
            self.negmask.size  # 1 byte per bool
        )
        return operands

    def traffic_report(self, device, batch: int = 1) -> Dict[str, Dict[str, object]]:
        """Placement of the batched-rotation constants on `device`."""
        return operand_traffic_report(self.operand_bytes(), device, batch)


class RotationBatchPlan(HoistedRotationPlan):
    """Per-item automorphism + one batched key switch (BSGS giant steps)."""


def _gather_rotations(
    stack: np.ndarray, rplan: HoistedRotationPlan, mstack: ModulusStack
) -> np.ndarray:
    """All k automorphisms of one ``(L, ..., N)`` stack as a single gather."""
    rot = stack[..., rplan.src]  # (L, ..., k, N)
    return np.where(rplan.negmask, mstack.neg(rot), rot)


def _gather_itemwise(
    stack: np.ndarray, rplan: HoistedRotationPlan, mstack: ModulusStack
) -> np.ndarray:
    """Automorphism ``i`` applied to batch item ``i`` of a ``(L, k, N)`` stack."""
    rot = np.take_along_axis(stack, rplan.src[None, ...], axis=-1)
    return np.where(rplan.negmask, mstack.neg(rot), rot)


def _rotation_ip(raised: np.ndarray, rplan: HoistedRotationPlan) -> np.ndarray:
    """Shared epilogue: NTT, batched lazy IP, INTT, Recover, ModDown.

    `raised` is the ModUp'd digit stack ``(L, k, beta, N)`` over PQ
    (hybrid) or T (KLSS); returns the ``(L_Q, 2, k, N)`` key-switched
    output stack in coefficient form.  Exact sums modulo each limb at
    every step, so the result is bit-identical to k per-rotation loop
    key switches.
    """
    plan = rplan.ks
    if plan.method == "hybrid":
        ntt = get_stack(plan.degree, plan.pq_basis.moduli)
        f = ntt.forward(raised)
        # (L_PQ, 2, k, beta, N) * (L_PQ, 1, k, beta, N) -> fold beta
        acc = plan.pq_mstack.lazy_mul_sum(rplan.evk, f[:, None], axis=3)
        acc = ntt.inverse(acc)  # (L_PQ, 2, k, N)
    else:
        ntt = get_stack(plan.degree, plan.t_basis.moduli)
        f = ntt.forward(raised)
        # (L_T, b~, 2, k, beta, N) * (L_T, 1, 1, k, beta, N) -> fold beta
        acc = plan.t_mstack.lazy_mul_sum(rplan.evk, f[:, None, None], axis=4)
        acc = ntt.inverse(acc)  # (L_T, b~, 2, k, N)
        acc = _recover_limbs(acc, plan)  # (L_PQ, 2, k, N)
    return _mod_down_stack(acc, plan)  # (L_Q, 2, k, N)


def _modup_stack(stack: np.ndarray, plan: KeySwitchPlan) -> np.ndarray:
    """Batched ModUp of a coefficient ``(L_Q, ..., N)`` stack (Algorithm 2)."""
    scaled = plan.q_mstack.scalar_mul(stack, plan.modup_scalars)
    grouped = _group_digits(scaled, plan)  # (beta, alpha, ..., N)
    target = plan.pq_mstack if plan.method == "hybrid" else plan.t_mstack
    return target.bconv_matmul(
        grouped, plan.modup_weights, operand_bound=plan.max_source_modulus
    )  # (L_target, beta, ..., N)


def hoisted_gemm_rotations(
    c0: RnsPolynomial, c1: RnsPolynomial, hplan: HoistedRotationPlan
) -> List[Tuple[RnsPolynomial, RnsPolynomial]]:
    """All k rotations of ``(c0, c1)`` off ONE shared ModUp (plan form).

    The hoisted dataflow: decompose + ModUp once, then every rotation is
    a gathered permutation of the raised digits, one slice of the batched
    IP, and one slice of the batched ModDown.  Bit-identical to the
    hoisted *loop* form (:class:`~repro.ckks.hoisting.HoistedRotator`):
    the gather applies the same signed permutation, BConv/IP/ModDown
    compute the same exact sums modulo each limb, and NTT-domain
    accumulation commutes with the (linear) NTT.
    """
    plan = hplan.ks
    with _span("keyswitch.hoisted_rotations", category="keyswitch",
               method=plan.method, level=plan.level, rotations=len(hplan)):
        return _hoisted_gemm_rotations_inner(c0, c1, hplan)


def _hoisted_gemm_rotations_inner(
    c0: RnsPolynomial, c1: RnsPolynomial, hplan: HoistedRotationPlan
) -> List[Tuple[RnsPolynomial, RnsPolynomial]]:
    plan = hplan.ks
    raised = _modup_stack(c1.from_ntt().stack, plan)  # (L, beta, N)
    mstack = plan.pq_mstack if plan.method == "hybrid" else plan.t_mstack
    rot = _gather_rotations(raised, hplan, mstack)  # (L, beta, k, N)
    rot = np.ascontiguousarray(np.swapaxes(rot, 1, 2))  # (L, k, beta, N)
    out = _rotation_ip(rot, hplan)  # (L_Q, 2, k, N)

    rot0 = _gather_rotations(c0.from_ntt().stack, hplan, plan.q_mstack)
    b_out = plan.q_mstack.add(rot0, out[:, 0])  # (L_Q, k, N)
    results = []
    for i in range(len(hplan)):
        p0 = RnsPolynomial._wrap(
            plan.degree, plan.q_basis, np.ascontiguousarray(b_out[:, i]), False
        )
        p1 = RnsPolynomial._wrap(
            plan.degree, plan.q_basis, np.ascontiguousarray(out[:, 1, i]), False
        )
        results.append((p0, p1))
    return results


def gemm_rotation_batch(
    c0_stack: np.ndarray, c1_stack: np.ndarray, rplan: RotationBatchPlan
) -> np.ndarray:
    """Rotate item ``i`` of a ``(L_Q, k, N)`` pair batch by power ``i``.

    The BSGS giant step: k *different* inner sums, each rotated by its
    own step -- automorphism first (itemwise gather), then one batched
    ModUp + IP + ModDown across the whole batch.  Returns the
    ``(L_Q, 2, k, N)`` rotated ciphertext stack (c0 component already
    recombined).  Bit-identical to k sequential ``Evaluator.rotate``
    calls under the same key-switch method family.
    """
    plan = rplan.ks
    rot1 = _gather_itemwise(c1_stack, rplan, plan.q_mstack)  # (L_Q, k, N)
    raised = _modup_stack(rot1, plan)  # (L, beta, k, N)
    raised = np.ascontiguousarray(np.swapaxes(raised, 1, 2))  # (L, k, beta, N)
    out = _rotation_ip(raised, rplan)  # (L_Q, 2, k, N)
    rot0 = _gather_itemwise(c0_stack, rplan, plan.q_mstack)
    out[:, 0] = plan.q_mstack.add(rot0, out[:, 0])
    return out


# ---------------------------------------------------------------------------
# The plan cache (params fingerprint + key token, LRU, lock only on books)
# ---------------------------------------------------------------------------

_PLAN_CACHE = PlanCache(maxsize=64)

register_cache("op_plans", lambda: _PLAN_CACHE.stats, lambda: len(_PLAN_CACHE))


def get_keyswitch_plan(
    ksk, params: CkksParameters, level: int, method: str
) -> KeySwitchPlan:
    """The cached :class:`KeySwitchPlan` for ``(ksk, params, level, method)``.

    Keyed by the params *fingerprint* plus the key's ``cache_token`` (and
    the backend policy), never by attributes stashed on the key -- a key
    reused under different :class:`CkksParameters` gets a fresh plan
    instead of silently stale digits.  Plan construction runs outside the
    cache lock.
    """
    key = (
        params.fingerprint(),
        ksk.cache_token,
        level,
        method,
        modarith._BARRETT_ENABLED,
    )
    return _PLAN_CACHE.get_or_build(
        key,
        lambda: KeySwitchPlan(method, params, level, ksk),
        build_outside_lock=True,
    )


def _rotation_plan_key(
    tag: str, galois_keys, powers, params: CkksParameters, level: int, method: str
):
    tokens = tuple(galois_keys.get(p).cache_token for p in powers)
    return (
        tag,
        params.fingerprint(),
        tokens,
        level,
        method,
        tuple(powers),
        modarith._BARRETT_ENABLED,
    )


def get_hoisted_rotation_plan(
    galois_keys, powers, params: CkksParameters, level: int, method: str
) -> HoistedRotationPlan:
    """The cached :class:`HoistedRotationPlan` for a batch of Galois powers.

    Keyed by the params fingerprint plus every member key's identity
    token, so the stacked evk tensor can never outlive a key swap; the
    per-key :class:`KeySwitchPlan` lookups inside the builder hit the
    same LRU, so a rotation batch that shares keys with earlier calls
    reuses their restrictions instead of re-stacking.
    """
    key = _rotation_plan_key("hoist", galois_keys, powers, params, level, method)
    return _PLAN_CACHE.get_or_build(
        key,
        lambda: HoistedRotationPlan(galois_keys, tuple(powers), params, level, method),
        build_outside_lock=True,
    )


def get_rotation_batch_plan(
    galois_keys, powers, params: CkksParameters, level: int, method: str
) -> RotationBatchPlan:
    """The cached :class:`RotationBatchPlan` (giant-step batches)."""
    key = _rotation_plan_key("rotbatch", galois_keys, powers, params, level, method)
    return _PLAN_CACHE.get_or_build(
        key,
        lambda: RotationBatchPlan(galois_keys, tuple(powers), params, level, method),
        build_outside_lock=True,
    )


def clear_keyswitch_plan_cache() -> None:
    """Drop every cached key-switch plan and reset the counters."""
    _PLAN_CACHE.clear()


def keyswitch_plan_cache_stats() -> Dict[str, float]:
    """Point-in-time hit/miss/eviction counters of the plan cache."""
    return _PLAN_CACHE.stats.as_dict()


def keyswitch_plan_cache_size() -> int:
    return len(_PLAN_CACHE)
