"""Tests for the canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from .conftest import random_slots

TOL = 1e-4  # scale 2^25 at N=32 gives ~1e-6 precision; leave margin


class TestRoundtrip:
    def test_complex_roundtrip(self, encoder, rng):
        values = random_slots(rng, encoder.slots)
        assert np.abs(encoder.decode(encoder.encode(values)) - values).max() < TOL

    def test_real_roundtrip(self, encoder):
        values = np.linspace(-2, 2, encoder.slots)
        decoded = encoder.decode(encoder.encode(values))
        assert np.abs(decoded.real - values).max() < TOL
        assert np.abs(decoded.imag).max() < TOL

    def test_short_vector_padded(self, encoder):
        decoded = encoder.decode(encoder.encode([1.0, 2.0]))
        assert np.abs(decoded[0] - 1.0) < TOL
        assert np.abs(decoded[1] - 2.0) < TOL
        assert np.abs(decoded[2:]).max() < TOL

    def test_scalar_broadcast(self, encoder):
        decoded = encoder.decode(encoder.encode_constant(0.75))
        assert np.abs(decoded - 0.75).max() < TOL

    def test_encode_at_level(self, encoder):
        pt = encoder.encode([1.0], level=2)
        assert pt.level == 2

    def test_too_many_values_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode(np.ones(encoder.slots + 1))


class TestEmbeddingProperties:
    def test_encode_is_linear(self, encoder, rng):
        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        ca = encoder.embed(a)
        cb = encoder.embed(b)
        cab = encoder.embed(a + b)
        # rounding makes this approximate: each coeff differs by <= 1.5
        assert np.abs((ca + cb - cab).astype(np.float64)).max() <= 2

    def test_coefficients_are_integers(self, encoder, rng):
        coeffs = encoder.embed(random_slots(rng, encoder.slots))
        assert all(isinstance(int(c), int) for c in coeffs)

    def test_conjugate_symmetry_gives_real_poly(self, encoder, rng):
        """Real coefficient vectors are exactly what embed produces."""
        values = random_slots(rng, encoder.slots)
        coeffs = encoder.embed(values)
        # project with no rounding error on the already-rounded coeffs
        back = encoder.project(coeffs, encoder.params.scale)
        # projecting real integer coeffs must keep conjugate pairs consistent
        assert np.abs(back - values).max() < TOL

    def test_slot_bins_are_a_permutation(self, encoder):
        slot_bins, conj_bins = encoder._slot_bins()
        combined = np.concatenate([slot_bins, conj_bins])
        assert sorted(combined) == list(range(encoder.degree))

    def test_multiplication_in_slots(self, encoder, rng):
        """Negacyclic poly product == slot-wise product (the CKKS identity)."""
        from repro.math.polynomial import RnsPolynomial

        a = random_slots(rng, encoder.slots)
        b = random_slots(rng, encoder.slots)
        pa = encoder.encode(a)
        pb = encoder.encode(b)
        product_poly = pa.poly.multiply(pb.poly).from_ntt()
        from repro.ckks.encoder import Plaintext

        product = Plaintext(product_poly, pa.scale * pb.scale)
        assert np.abs(encoder.decode(product) - a * b).max() < 1e-3

    def test_rotation_in_slots(self, encoder, rng):
        """Applying tau_{5} to the polynomial rotates the slot vector."""
        from repro.ckks.encoder import Plaintext
        from repro.ckks.keys import rotation_galois_power

        values = random_slots(rng, encoder.slots)
        pt = encoder.encode(values)
        power = rotation_galois_power(1, encoder.degree)
        rotated = Plaintext(pt.poly.automorphism(power), pt.scale)
        assert np.abs(encoder.decode(rotated) - np.roll(values, -1)).max() < TOL

    def test_conjugation_in_slots(self, encoder, rng):
        from repro.ckks.encoder import Plaintext
        from repro.ckks.keys import conjugation_galois_power

        values = random_slots(rng, encoder.slots)
        pt = encoder.encode(values)
        conj = Plaintext(
            pt.poly.automorphism(conjugation_galois_power(encoder.degree)), pt.scale
        )
        assert np.abs(encoder.decode(conj) - np.conj(values)).max() < TOL


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=-100, max_value=100), st.floats(min_value=-100, max_value=100))
def test_property_single_slot_value(real, imag):
    """Any bounded complex scalar encodes and decodes accurately."""
    import numpy as np

    from repro.ckks import CkksEncoder, small_test_parameters

    params = small_test_parameters(degree=32, max_level=2, wordsize=25, dnum=1)
    encoder = CkksEncoder(params)
    value = complex(real, imag)
    decoded = encoder.decode(encoder.encode([value]))
    assert abs(decoded[0] - value) < 1e-3 * max(1.0, abs(value))
