"""Profiling layer: per-op / per-kernel time aggregation over cached traces.

Answers "where does an application's time go?" for any context (Neo or a
baseline): how often each primitive operation runs and what it costs, which
kernels dominate, how well the multi-stream overlap works, and how the
trace cache behaved while assembling the profile.  The heavy lifting rides
on the trace cache -- profiling an application costs one trace build per
distinct (operation, level) pair, everything else is aggregation.

The timeline can also be exported in the Chrome ``chrome://tracing`` JSON
format through the discrete-event :class:`~repro.core.streams.StreamScheduler`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..analysis.reporting import format_table
from ..gpu.trace import ExecutionTrace
from .neo_context import NeoContext
from .streams import ScheduledKernel, ScheduleResult, StreamScheduler
from .trace_cache import CacheStats


@dataclass(frozen=True)
class OpProfile:
    """Aggregate cost of one primitive operation across a schedule."""

    name: str
    calls: int
    serial_s: float
    launches: float
    bytes: float

    @property
    def serial_per_call_s(self) -> float:
        return self.serial_s / self.calls if self.calls else 0.0


@dataclass
class ApplicationProfile:
    """The full profile of one application on one context."""

    app: str
    system: str
    params: str
    batch: int
    streams: int
    #: Overlapped (multi-stream) end-to-end time of one batched run.
    total_s: float
    #: Single-stream (back-to-back) time; total_s / serial_s is the overlap win.
    serial_s: float
    per_op: Dict[str, OpProfile] = field(default_factory=dict)
    #: Kernel name -> serial seconds across the whole schedule.
    per_kernel: Dict[str, float] = field(default_factory=dict)
    per_kernel_bytes: Dict[str, float] = field(default_factory=dict)
    kernel_events: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def per_ciphertext_s(self) -> float:
        return self.total_s / self.batch if self.batch else self.total_s

    def format(self, top: int = 12) -> str:
        """A printable multi-table report (per-op, per-kernel, cache)."""
        lines = [
            f"profile: {self.app} on {self.system} "
            f"(set {self.params}, batch {self.batch}, {self.streams} streams)",
            f"  total (overlapped) : {self.total_s:.4f} s"
            f"  [{self.per_ciphertext_s * 1e3:.3f} ms/ciphertext]",
            f"  serial             : {self.serial_s:.4f} s"
            f"  (overlap win {self.serial_s / self.total_s:.2f}x)"
            if self.total_s
            else "  serial             : 0 s",
            f"  kernel events      : {self.kernel_events}",
            "",
        ]
        op_rows = [
            [
                op.name,
                op.calls,
                f"{op.serial_s:.4f}",
                f"{op.serial_per_call_s * 1e6:.1f}",
                f"{100 * op.serial_s / self.serial_s:.1f}%" if self.serial_s else "-",
            ]
            for op in sorted(
                self.per_op.values(), key=lambda o: o.serial_s, reverse=True
            )
        ]
        lines.append(
            format_table(
                ["operation", "calls", "serial s", "us/call", "share"],
                op_rows,
                title="per-operation (serial attribution)",
            )
        )
        lines.append("")
        kernel_rows = [
            [
                name,
                f"{secs:.4f}",
                f"{100 * secs / self.serial_s:.1f}%" if self.serial_s else "-",
                f"{self.per_kernel_bytes.get(name, 0.0) / 2**30:.2f}",
            ]
            for name, secs in sorted(
                self.per_kernel.items(), key=lambda kv: kv[1], reverse=True
            )[:top]
        ]
        lines.append(
            format_table(
                ["kernel", "serial s", "share", "GiB moved"],
                kernel_rows,
                title=f"per-kernel (top {min(top, len(self.per_kernel))})",
            )
        )
        lines.append("")
        lines.append(
            "trace cache: "
            f"{self.cache.hits} hits / {self.cache.misses} misses "
            f"({100 * self.cache.hit_rate:.1f}% hit rate, "
            f"{self.cache.evictions} evictions)"
        )
        return "\n".join(lines)


def profile_schedule(
    ctx: NeoContext, schedule: Mapping[int, Mapping[str, int]], app_name: str = "schedule"
) -> ApplicationProfile:
    """Profile an explicit ``{level: {op: count}}`` schedule on `ctx`."""
    per_op: Dict[str, List[float]] = {}
    for level, ops in schedule.items():
        level = int(level)
        for op, count in ops.items():
            if count <= 0:
                continue
            trace = ctx.pipeline.operation_trace(op, level)
            serial = trace.serial_time_s(ctx.device) * count
            launches = sum(e.launches for e in trace.events) * count
            moved = trace.total_bytes() * count
            slot = per_op.setdefault(op, [0, 0.0, 0.0, 0.0])
            slot[0] += count
            slot[1] += serial
            slot[2] += launches
            slot[3] += moved

    full = ctx.schedule_trace(schedule)
    per_kernel: Dict[str, float] = full.breakdown_s(ctx.device)
    return ApplicationProfile(
        app=app_name,
        system=type(ctx).__name__,
        params=ctx.params.name,
        batch=ctx.batch,
        streams=ctx.config.streams,
        total_s=full.overlapped_time_s(ctx.device, ctx.config.streams),
        serial_s=full.serial_time_s(ctx.device),
        per_op={
            name: OpProfile(name, int(c), s, l, b)
            for name, (c, s, l, b) in per_op.items()
        },
        per_kernel=per_kernel,
        per_kernel_bytes=full.bytes_by_kernel(),
        kernel_events=len(full),
        cache=ctx.cache_stats(),
    )


def profile_application(ctx: NeoContext, app) -> ApplicationProfile:
    """Profile one application (anything exposing ``.schedule``/``.name``)."""
    return profile_schedule(
        ctx, app.schedule(ctx.params), app_name=getattr(app, "name", type(app).__name__)
    )


def chrome_trace_json(ctx: NeoContext, trace: ExecutionTrace) -> str:
    """Simulate `trace` on `ctx`'s device/streams and export Chrome JSON."""
    scheduler = StreamScheduler(ctx.device, max(1, ctx.config.streams))
    return scheduler.run(trace).to_chrome_trace()


# ---------------------------------------------------------------------------
# Serving-layer metrics (latency distributions, timeline export)
# ---------------------------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: deterministic, no interpolation.

    ``q`` is in percent (50 for the median).  The nearest-rank definition
    always returns an observed value, so percentile reports are reproducible
    bit for bit across runs -- the serving determinism tests rely on it.

    Edge cases (audited; regression tests in ``tests/core``):

    * ``q`` outside ``[0, 100]`` raises **before** the empty-input check,
      so an invalid quantile never silently returns 0 on an empty sample.
    * An empty sample returns 0.0 for any valid ``q``.
    * ``q=0`` is the minimum, ``q=100`` the maximum (both observed values).
    * A single sample returns that sample for every valid ``q``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def latency_percentiles(latencies: Sequence[float]) -> Dict[str, float]:
    """The standard serving summary of a latency sample: P50/P95/P99 + tails."""
    return {
        "p50": percentile(latencies, 50),
        "p95": percentile(latencies, 95),
        "p99": percentile(latencies, 99),
        "mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "max": max(latencies, default=0.0),
    }


def timeline_schedule_result(timeline: Sequence[ScheduledKernel]) -> ScheduleResult:
    """Wrap any :class:`ScheduledKernel` timeline as a :class:`ScheduleResult`.

    The serving layer places whole dynamic *batches* (rather than kernels)
    on its lanes; wrapping them in the same result type gives Chrome-trace
    export and fingerprinting for free.
    """
    busy: Dict[str, float] = defaultdict(float)
    for k in timeline:
        busy[k.resource] += k.duration_s
    makespan = max((k.end_s for k in timeline), default=0.0)
    return ScheduleResult(makespan, list(timeline), dict(busy))


def timeline_chrome_trace(timeline: Sequence[ScheduledKernel]) -> str:
    """Chrome ``chrome://tracing`` JSON for a serving (or kernel) timeline."""
    return timeline_schedule_result(timeline).to_chrome_trace()
