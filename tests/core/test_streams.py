"""Tests for the discrete-event multi-stream scheduler."""

import json

import pytest

from repro.core import HEONGPU_CONFIG, NEO_CONFIG, TENSORFHE_CONFIG, NeoContext
from repro.core.streams import ScheduledKernel, StreamScheduler
from repro.core.trace_cache import TraceCache
from repro.gpu.device import A100
from repro.gpu.kernels import KernelCost
from repro.gpu.trace import ExecutionTrace


@pytest.fixture(scope="module")
def keyswitch_trace():
    return NeoContext("C", config=NEO_CONFIG).operation_trace("keyswitch", 35)


def _mixed_trace(n=12):
    trace = ExecutionTrace()
    for i in range(n):
        if i % 2:
            trace.add(KernelCost(f"tcu{i}", tcu_fp64_flops=1e10))
        else:
            trace.add(KernelCost(f"cuda{i}", cuda_flops=1e10))
    return trace


class TestScheduler:
    def test_single_stream_is_serial(self):
        trace = _mixed_trace()
        scheduler = StreamScheduler(A100, streams=1)
        assert scheduler.makespan_s(trace) == pytest.approx(
            trace.serial_time_s(A100), rel=0.05
        )

    def test_streams_overlap_mixed_work(self):
        trace = _mixed_trace()
        serial = StreamScheduler(A100, streams=1).makespan_s(trace)
        overlapped = StreamScheduler(A100, streams=4).makespan_s(trace)
        assert overlapped < 0.8 * serial

    def test_homogeneous_work_does_not_overlap(self):
        """All-CUDA kernels serialise on the CUDA resource regardless of
        stream count."""
        trace = ExecutionTrace()
        for i in range(8):
            trace.add(KernelCost(f"k{i}", cuda_flops=1e10))
        one = StreamScheduler(A100, streams=1).makespan_s(trace)
        many = StreamScheduler(A100, streams=8).makespan_s(trace)
        assert many == pytest.approx(one, rel=0.05)

    def test_simulation_between_bounds(self, keyswitch_trace):
        """Simulated makespan in [analytic lower bound, serial time]."""
        for streams in (2, 4, 8):
            simulated = StreamScheduler(A100, streams).makespan_s(keyswitch_trace)
            serial = keyswitch_trace.serial_time_s(A100)
            analytic = keyswitch_trace.overlapped_time_s(A100, streams)
            assert simulated <= serial * 1.001
            assert simulated >= 0.8 * analytic

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            StreamScheduler(A100, streams=0)


class TestSchedulerInvariant:
    """analytic lower bound <= simulated makespan <= serial time.

    The exact sandwich holds when every kernel exercises one resource and
    launch overhead is off (the simulator books each kernel against its
    dominant resource only, and spreads launch overhead differently from
    the analytic model); real mixed traces keep the serial upper bound
    exactly and the analytic bound to within the documented tolerance.
    """

    #: Launch-free device: the analytic and simulated overhead accounting
    #: coincide, making the lower bound exact.
    DEVICE = A100.with_overrides(kernel_launch_us=0.0)

    def _single_resource_trace(self, n=24):
        trace = ExecutionTrace()
        for i in range(n):
            kind = i % 3
            if kind == 0:
                trace.add(KernelCost(f"c{i}", cuda_flops=(1 + i) * 1e9))
            elif kind == 1:
                trace.add(KernelCost(f"t{i}", tcu_fp64_flops=(1 + i) * 1e9))
            else:
                trace.add(KernelCost(f"m{i}", bytes_read=(1 + i) * 1e7))
        return trace

    @pytest.mark.parametrize("streams", (1, 2, 4, 8, 16))
    def test_exact_sandwich_on_single_resource_kernels(self, streams):
        trace = self._single_resource_trace()
        serial = trace.serial_time_s(self.DEVICE)
        analytic = trace.overlapped_time_s(self.DEVICE, streams)
        simulated = StreamScheduler(self.DEVICE, streams).makespan_s(trace)
        assert analytic <= simulated * (1 + 1e-9)
        assert simulated <= serial * (1 + 1e-9)

    @pytest.mark.parametrize(
        "config,set_name",
        [
            (NEO_CONFIG, "C"),
            (TENSORFHE_CONFIG.with_overrides(keyswitch="hybrid"), "B"),
            (HEONGPU_CONFIG, "E"),
        ],
    )
    @pytest.mark.parametrize("op", ("keyswitch", "hmult", "hrotate"))
    def test_real_traces_respect_bounds(self, config, set_name, op):
        ctx = NeoContext(set_name, config=config, trace_cache=TraceCache())
        trace = ctx.operation_trace(op, 35)
        for streams in (2, 4, 8):
            serial = trace.serial_time_s(ctx.device)
            analytic = trace.overlapped_time_s(ctx.device, streams)
            simulated = StreamScheduler(ctx.device, streams).makespan_s(trace)
            assert simulated <= serial * (1 + 1e-9)
            # Dominant-resource approximation: allow the documented slack.
            assert simulated >= 0.8 * analytic


class TestScheduleResult:
    def test_utilisation_bounded(self, keyswitch_trace):
        result = StreamScheduler(A100, 8).run(keyswitch_trace)
        for resource, frac in result.utilisation().items():
            assert 0.0 <= frac <= 1.0, resource

    def test_busy_resource_identified(self):
        trace = ExecutionTrace().add(KernelCost("t", tcu_fp64_flops=1e11))
        result = StreamScheduler(A100, 2).run(trace)
        assert result.timeline[0].resource == "tcu"
        assert result.resource_busy_s["tcu"] > 0

    def test_timeline_is_consistent(self, keyswitch_trace):
        result = StreamScheduler(A100, 4).run(keyswitch_trace)
        # No overlapping intervals on the same stream or resource.
        by_stream = {}
        for k in result.timeline:
            by_stream.setdefault(k.stream, []).append(k)
        for kernels in by_stream.values():
            kernels.sort(key=lambda k: k.start_s)
            for a, b in zip(kernels, kernels[1:]):
                assert b.start_s >= a.end_s - 1e-12

    def test_chrome_trace_export(self, keyswitch_trace):
        result = StreamScheduler(A100, 4).run(keyswitch_trace)
        payload = json.loads(result.to_chrome_trace())
        assert len(payload["traceEvents"]) == len(keyswitch_trace)
        event = payload["traceEvents"][0]
        assert {"name", "ph", "ts", "dur", "tid"} <= set(event)

    def test_empty_trace(self):
        result = StreamScheduler(A100, 4).run(ExecutionTrace())
        assert result.makespan_s == 0.0
        assert result.utilisation()["cuda"] == 0.0

    def test_scheduled_kernel_duration(self):
        k = ScheduledKernel("x", 0, "cuda", 1.0, 3.5)
        assert k.duration_s == 2.5
