"""Tests for the radix-16 (ten-step) NTT kernel."""

import numpy as np
import pytest

from repro.core.radix16_ntt import NeoNtt, ntt_cost, ntt_gemm_macs, radix16_factors
from repro.gpu.device import A100
from repro.math.primes import ntt_primes


class TestFactorisation:
    def test_2_16(self):
        assert radix16_factors(1 << 16) == [16, 16, 16, 16]

    def test_partial_last_stage(self):
        assert radix16_factors(1 << 10) == [16, 16, 4]

    def test_small(self):
        assert radix16_factors(8) == [8]

    def test_invalid(self):
        with pytest.raises(ValueError):
            radix16_factors(12)
        with pytest.raises(ValueError):
            radix16_factors(0)


class TestGemmMacCounts:
    def test_paper_complexity_claim(self):
        """Section 4.4: radix-16 GEMM MACs are 1/8 of four-step at N=2^16."""
        n = 1 << 16
        four_step = ntt_gemm_macs(n, [256, 256])
        radix16 = ntt_gemm_macs(n, radix16_factors(n))
        assert four_step == 2**25
        assert radix16 == 2**22
        assert four_step / radix16 == 8


class TestFunctionalNtt:
    DEGREE = 256
    Q = ntt_primes(28, 256, 1)[0]

    def test_forward_inverse_roundtrip(self):
        rng = np.random.default_rng(0)
        coeffs = rng.integers(0, self.Q, size=self.DEGREE)
        kernel = NeoNtt(self.DEGREE, self.Q, use_tcu=False)
        assert kernel.factors == [16, 16]
        back = kernel.inverse(kernel.forward(coeffs))
        assert (back.astype(object) == coeffs.astype(object)).all()

    def test_matches_iterative_plan_values(self):
        """The GEMM NTT evaluates the same polynomial (natural order)."""
        from repro.math.ntt import get_plan, natural_order_negacyclic

        degree, q = 16, ntt_primes(28, 16, 1)[0]
        rng = np.random.default_rng(1)
        coeffs = rng.integers(0, q, size=degree)
        kernel = NeoNtt(degree, q, use_tcu=False)
        got = kernel.forward(coeffs)
        want = natural_order_negacyclic(get_plan(degree, q), coeffs.astype(object))
        assert (got.astype(object) == want.astype(object)).all()

    def test_tcu_path_bit_exact(self):
        """Running the GEMM stages on the FP64 TCU emulation changes nothing."""
        degree = 64
        q = ntt_primes(36, 64, 1)[0]
        rng = np.random.default_rng(2)
        coeffs = rng.integers(0, 2**36, size=degree).astype(object) % q
        plain = NeoNtt(degree, q, use_tcu=False)
        tcu = NeoNtt(degree, q, use_tcu=True)
        assert (tcu.forward(coeffs) == plain.forward(coeffs)).all()
        assert (tcu.inverse(tcu.forward(coeffs)).astype(object) == coeffs).all()

    def test_custom_factors_validated(self):
        with pytest.raises(ValueError):
            NeoNtt(64, self.Q, factors=(4, 4))


class TestNttCost:
    def test_radix16_beats_four_step_on_tcu(self):
        r16 = ntt_cost(1 << 16, 128, 36, style="radix16", component="tcu_fp64")
        fs = ntt_cost(1 << 16, 128, 36, style="four_step", component="tcu_fp64")
        assert r16.time_s(A100) < fs.time_s(A100)

    def test_fp64_beats_int8_at_36bit(self):
        fp64 = ntt_cost(1 << 16, 128, 36, style="radix16", component="tcu_fp64")
        int8 = ntt_cost(1 << 16, 128, 36, style="radix16", component="tcu_int8")
        assert fp64.time_s(A100) < int8.time_s(A100)

    def test_butterfly_runs_on_cuda_only(self):
        cost = ntt_cost(1 << 16, 128, 36, style="butterfly")
        assert cost.tcu_fp64_flops == 0 and cost.tcu_int8_ops == 0
        assert cost.cuda_flops > 0

    def test_inverse_flag_names_kernel(self):
        assert ntt_cost(256, 1, 36, inverse=True).name == "intt"
        assert ntt_cost(256, 1, 36).name == "ntt"

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            ntt_cost(256, 1, 36, style="warp")

    def test_unknown_component(self):
        with pytest.raises(ValueError):
            ntt_cost(256, 1, 36, component="npu")
