"""Extension: projecting Neo onto an H100 (what-if study).

The paper's methodology (architecture-aware mapping, fixed attainment
fractions) transfers directly to newer hardware.  Hopper more than triples
FP64 tensor-core throughput and doubles HBM bandwidth, so Neo's
TCU-resident kernels should gain more than the CUDA-only baseline does.
"""

from repro.analysis.reporting import format_table
from repro.apps import PackBootstrap, ResNetApp
from repro.baselines import HeonGpuModel
from repro.core import NEO_CONFIG, NeoContext
from repro.gpu.device import A100, H100

APPS = (PackBootstrap(), ResNetApp(20))


def _build_rows():
    rows = []
    for device in (A100, H100):
        neo = NeoContext("C", device=device, config=NEO_CONFIG)
        heon = HeonGpuModel("E", device=device)
        rows.append(
            [device.name, "Neo(C)"]
            + [f"{app.time_s(neo):.2f}" for app in APPS]
            + [f"{neo.operation_time_us('hmult', 35):.0f}"]
        )
        rows.append(
            [device.name, "HEonGPU(E)"]
            + [f"{app.time_s(heon):.2f}" for app in APPS]
            + [f"{heon.operation_time_us('hmult', 35):.0f}"]
        )
    return rows


def test_h100_projection(benchmark):
    rows = benchmark(_build_rows)
    print()
    print(
        format_table(
            ["device", "system"] + [a.name for a in APPS] + ["HMULT us"],
            rows,
            title="Extension: A100 -> H100 projection",
        )
    )
    table = {(r[0], r[1]): [float(x) for x in r[2:]] for r in rows}
    neo_a = table[(A100.name, "Neo(C)")]
    neo_h = table[(H100.name, "Neo(C)")]
    heon_a = table[(A100.name, "HEonGPU(E)")]
    heon_h = table[(H100.name, "HEonGPU(E)")]
    # Everyone gets faster on H100.
    for a, h in zip(neo_a + heon_a, neo_h + heon_h):
        assert h < a
    # Neo keeps (indeed grows) its advantage on the TCU-richer part:
    # HMULT speedup of Neo across devices exceeds HEonGPU's.
    neo_gain = neo_a[-1] / neo_h[-1]
    heon_gain = heon_a[-1] / heon_h[-1]
    assert 1.5 < neo_gain < 5.0
    assert neo_gain > heon_gain * 0.9
