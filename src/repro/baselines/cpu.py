"""CPU reference model.

The paper's CPU rows (Table 5/6) are cited from Craterlake and 100x rather
than measured; we model a 32-core server (Table 3's Hygon C86 7285) as a
"device" with CPU-class arithmetic and memory rates driving the same
operation pipelines.  Shape expectation: two to three orders of magnitude
slower than any GPU implementation.
"""

from __future__ import annotations

from typing import Optional

from ..ckks.params import ParameterSet
from ..core.neo_context import NeoContext
from ..core.pipeline import PipelineConfig
from ..gpu.device import DeviceSpec

#: A 32-core server-class CPU: ~1 TFLOP/s FP64 peak with FHE-typical
#: attainment, ~100 GB/s of DDR4 bandwidth, negligible "launch" cost.
CPU_DEVICE = DeviceSpec(
    name="32-core server CPU",
    sm_count=32,
    cuda_fp64_tflops=1.0,
    tcu_fp64_tflops=0.0,
    tcu_int8_tops=0.0,
    hbm_bandwidth_gbs=100.0,
    kernel_launch_us=0.1,
    cuda_efficiency=0.06,
    memory_efficiency=0.6,
    memory_gib=512.0,
    compute_half_batch=0.0,  # CPUs are not occupancy-limited
    memory_half_batch=0.0,
)

#: CPU libraries (SEAL/HEAAN-style): Hybrid KS, butterfly NTT, no batching.
CPU_CONFIG = PipelineConfig(
    keyswitch="hybrid",
    bconv_style="gemm",  # cache-blocked loops: read-once traffic
    ip_style="gemm",
    ntt_style="butterfly",
    ntt_component="cuda",
    bconv_component="cuda",
    ip_component="cuda",
    hybrid_accumulate_ntt=True,
    fused=True,
    streams=1,
)


class CpuModel(NeoContext):
    """A :class:`NeoContext` pinned to the CPU device and configuration."""

    def __init__(self, params: ParameterSet | str = "H", batch: Optional[int] = 1):
        super().__init__(params, device=CPU_DEVICE, config=CPU_CONFIG, batch=batch)
