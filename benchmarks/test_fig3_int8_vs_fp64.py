"""Fig. 3: INT8 vs FP64 tensor-core time for 36/48-bit modular GEMMs.

Paper: the 2^19 x 16 x 16 GEMM is 1.65x faster on FP64 at WordSize 36
(3 vs 25 plane products) and 1.74x faster at WordSize 48 (4 vs 36).
"""

from repro.analysis.booth import fig3_comparison, fp64_speedup
from repro.analysis.paper_data import HEADLINES
from repro.analysis.reporting import format_table


def test_fig3_int8_vs_fp64(benchmark):
    bars = benchmark(fig3_comparison)
    rows = []
    for name, steps in bars.items():
        rows.append(
            [
                name,
                steps.plane_products,
                f"{steps.split_s * 1e3:.3f}",
                f"{steps.matmul_s * 1e3:.3f}",
                f"{steps.merge_s * 1e3:.3f}",
                f"{steps.total_s * 1e3:.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["component/WS", "planes", "split ms", "matmul ms", "merge ms", "total ms"],
            rows,
            title="Fig. 3: split/matmul/merge times of a 2^19x16x16 modular GEMM",
        )
    )
    s36 = fp64_speedup(36)
    s48 = fp64_speedup(48)
    print(
        f"FP64 speedup over INT8: WS=36 -> {s36:.2f}x (paper "
        f"{HEADLINES['fp64_vs_int8_speedup_ws36']}x), WS=48 -> {s48:.2f}x "
        f"(paper {HEADLINES['fp64_vs_int8_speedup_ws48']}x)"
    )
    # Shape assertions straight from the paper's Section 3.4.
    assert bars["int8_ws36"].plane_products == 25
    assert bars["fp64_ws36"].plane_products == 3
    assert bars["int8_ws48"].plane_products == 36
    assert bars["fp64_ws48"].plane_products == 4
    assert s36 > 1.2, "FP64 must win at WordSize 36"
    assert s48 > 1.2, "FP64 must win at WordSize 48"
    assert s48 > s36 * 0.9, "the FP64 advantage persists (grows) at 48 bits"
    # The raw matmul step alone is *faster* on INT8 per plane set -- the
    # win comes from plane-count complexity, as Fig. 3 argues.
    assert bars["int8_ws36"].matmul_s < bars["int8_ws36"].total_s
