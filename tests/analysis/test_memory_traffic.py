"""Tests for the data-transfer model (Figs. 2 and 15)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import memory_traffic as mt
from repro.ckks.params import get_set


class TestKernelTransfer:
    def test_bconv_original_amplifies_by_alpha_out(self):
        base = mt.bconv_transfer_bytes(4, 8, 1, 16, 36, optimized=True)
        orig = mt.bconv_transfer_bytes(4, 8, 1, 16, 36, optimized=False)
        # original reads the input alpha' times: 4*8 + 8 vs 4 + 8 elements
        assert orig == (4 * 8 + 8) * 16 * 8
        assert base == (4 + 8) * 16 * 8

    def test_ip_optimized_single_pass(self):
        opt = mt.ip_transfer_bytes(3, 2, 4, 2, 16, 48, optimized=True)
        limbs, evk, out = 3 * 4 * 2 * 16, 2 * 3 * 4 * 16, 2 * 4 * 2 * 16
        assert opt == (2 * limbs + evk + 2 * out) * 8

    def test_ip_original_larger(self):
        opt = mt.ip_transfer_bytes(3, 2, 4, 2, 16, 48, optimized=True)
        orig = mt.ip_transfer_bytes(3, 2, 4, 2, 16, 48, optimized=False)
        assert orig > opt

    def test_ntt_transfer(self):
        assert mt.ntt_transfer_bytes(3, 2, 16, 36) == 2 * 3 * 2 * 16 * 8


class TestKeySwitchBreakdown:
    @pytest.mark.parametrize("set_name", ["B", "C"])
    def test_shares_sum_to_one(self, set_name):
        shares = mt.keyswitch_transfer_shares(get_set(set_name), 35)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == {"bconv", "ip", "ntt", "other"}

    def test_bconv_and_ip_dominate_at_l35(self):
        """Fig. 2's headline: BConv + IP are the transfer majority."""
        shares = mt.keyswitch_transfer_shares(get_set("C"), 35)
        assert shares["bconv"] + shares["ip"] > 0.5

    def test_total_grows_with_level(self):
        params = get_set("C")
        totals = [
            sum(mt.keyswitch_transfer_breakdown(params, l).values())
            for l in (5, 15, 25, 35)
        ]
        assert totals == sorted(totals)

    def test_hybrid_upper_bar_vs_klss_lower_bar(self):
        """Fig. 2 draws Hybrid and KLSS bars; both must be positive and the
        two methods must differ."""
        hybrid = sum(mt.keyswitch_transfer_breakdown(get_set("B"), 35).values())
        klss = sum(mt.keyswitch_transfer_breakdown(get_set("C"), 35).values())
        assert hybrid > 0 and klss > 0
        assert hybrid != klss


class TestFig15Reduction:
    def test_reduction_below_one(self):
        params = get_set("C")
        for kernel in ("bconv", "ip"):
            assert mt.transfer_reduction(params, 35, kernel) < 1.0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            mt.transfer_reduction(get_set("C"), 35, "ntt")


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=16),
)
def test_property_optimized_never_exceeds_original(alpha, alpha_out, batch):
    opt = mt.bconv_transfer_bytes(alpha, alpha_out, batch, 64, 36, optimized=True)
    orig = mt.bconv_transfer_bytes(alpha, alpha_out, batch, 64, 36, optimized=False)
    assert opt <= orig


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=8),
)
def test_property_ip_optimized_never_exceeds_original(beta, beta_tilde, alpha_p, batch):
    opt = mt.ip_transfer_bytes(beta, beta_tilde, alpha_p, batch, 64, 48, optimized=True)
    orig = mt.ip_transfer_bytes(beta, beta_tilde, alpha_p, batch, 64, 48, optimized=False)
    assert opt <= orig
