"""CKKS parameter sets: functional (reduced-N) and the paper's Table 4.

Two kinds of parameter objects live here:

* :class:`CkksParameters` -- a *functional* parameter set with concrete
  prime chains, usable for real encryption at any ring degree.  Tests use
  reduced degrees (``N = 2**5 .. 2**12``) with fast-backend moduli.
* :class:`ParameterSet` -- the *analytic* description of the paper's sets
  A-H (Table 4) at ``N = 2**16``, which feed the performance model without
  materialising 36/60-bit prime chains.

KLSS hyper-parameters (``WordSize_T``, ``alpha~``) and derived quantities
(``alpha'``, ``beta~``, the Eq. 4 security/correctness bound) are computed
in :class:`KlssConfig`.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from functools import reduce
from typing import Dict, Optional, Tuple

from ..math.primes import disjoint_prime_chains
from ..math.rns import RnsBasis


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class KlssConfig:
    """Hyper-parameters of the KLSS key-switching method."""

    #: Bit width of the auxiliary primes ``t_i`` (paper: 36 / 48 / 64).
    wordsize_t: int
    #: Number of PQ limbs grouped into one evk digit (paper's alpha~).
    alpha_tilde: int

    def beta_tilde(self, level: int, alpha: int) -> int:
        """Digit count after IP: ``ceil((l + alpha + 1) / alpha~)`` (Table 1)."""
        return ceil_div(level + alpha + 1, self.alpha_tilde)

    def alpha_prime(self, level: int, alpha: int, wordsize: int, log_degree: int) -> int:
        """Limbs of the auxiliary basis ``T`` (Eq. 4 correctness bound).

        ``T`` must exceed the worst-case integer inner product
        ``beta * N * B * B~`` (with a factor 2 for signs), where ``B`` bounds
        a mod-upped ciphertext digit (``alpha`` limbs plus the approximate
        BConv overflow) and ``B~`` bounds an evk digit (``alpha~`` limbs).
        """
        beta = ceil_div(level + 1, alpha)
        bound_bits = (
            1  # sign
            + math.ceil(math.log2(max(beta, 1))) + 1
            + log_degree
            + wordsize * alpha + 8 + math.ceil(math.log2(alpha + 1))  # B (q0 slack)
            + (wordsize + 1) * self.alpha_tilde  # B~ (special primes are w+1 bits)
        )
        return ceil_div(bound_bits, self.wordsize_t)


@dataclass(frozen=True)
class ParameterSet:
    """One column of the paper's Table 4 (analytic, for the cost model)."""

    name: str
    log_degree: int
    max_level: int
    wordsize: int
    dnum: int
    security: int
    batch_size: Optional[int] = 128
    klss: Optional[KlssConfig] = None
    #: Which KeySwitch the set drives (Hybrid unless a KLSS config is given).
    keyswitch: str = field(init=False, default="hybrid")

    def __post_init__(self):
        object.__setattr__(self, "keyswitch", "klss" if self.klss else "hybrid")

    @property
    def degree(self) -> int:
        return 1 << self.log_degree

    @property
    def alpha(self) -> int:
        """Limbs per digit: ``ceil((L + 1) / dnum)`` (Table 1)."""
        return ceil_div(self.max_level + 1, self.dnum)

    def beta(self, level: int) -> int:
        """Digit count at `level`: ``ceil((l + 1) / alpha)`` (Table 1)."""
        return ceil_div(level + 1, self.alpha)

    def klss_dims(self, level: int) -> Tuple[int, int, int]:
        """``(alpha', beta, beta~)`` at `level` for the KLSS method."""
        if self.klss is None:
            raise ValueError(f"set {self.name} has no KLSS configuration")
        alpha_prime = self.klss.alpha_prime(
            level, self.alpha, self.wordsize, self.log_degree
        )
        return alpha_prime, self.beta(level), self.klss.beta_tilde(level, self.alpha)


def _table4() -> Dict[str, ParameterSet]:
    """The paper's Table 4 parameter sets."""
    sets = [
        ParameterSet("A", 16, 35, 36, dnum=1, security=128),
        ParameterSet("B", 16, 35, 36, dnum=3, security=128),
        ParameterSet("C", 16, 35, 36, dnum=9, security=128,
                     klss=KlssConfig(wordsize_t=48, alpha_tilde=5)),
        ParameterSet("D", 16, 35, 60, dnum=36, security=128,
                     klss=KlssConfig(wordsize_t=64, alpha_tilde=3)),
        ParameterSet("E", 16, 35, 60, dnum=36, security=128, batch_size=None),
        ParameterSet("F", 16, 23, 36, dnum=1, security=128),
        ParameterSet("G", 16, 23, 36, dnum=6, security=128,
                     klss=KlssConfig(wordsize_t=48, alpha_tilde=5)),
        ParameterSet("H", 16, 44, 60, dnum=45, security=98, batch_size=None),
    ]
    return {s.name: s for s in sets}


#: Table 4, keyed by set name ("A" .. "H").
TABLE4: Dict[str, ParameterSet] = _table4()


def get_set(name: str) -> ParameterSet:
    """Look up one of the paper's parameter sets by letter."""
    try:
        return TABLE4[name.upper()]
    except KeyError:
        raise ValueError(f"unknown parameter set {name!r}; choose from {sorted(TABLE4)}")


class CkksParameters:
    """A concrete, functional CKKS parameter set with real prime chains.

    Args:
        degree: ring degree ``N`` (power of two).
        max_level: ``L``; the chain has ``L + 1`` ciphertext primes.
        wordsize: bit width of the rescaling primes ``q_1 .. q_L``.
        dnum: key-switching digit count (Hybrid and KLSS).
        first_prime_bits: bit width of ``q_0`` (noise headroom; defaults to
            ``wordsize + 5``).
        scale_bits: encoding scale is ``2**scale_bits`` (defaults to
            `wordsize`).
        klss: optional KLSS configuration; when present, an auxiliary basis
            ``T`` is materialised and KLSS key-switching becomes available.
        error_std: Gaussian error standard deviation (sigma = 3.2).
    """

    def __init__(
        self,
        degree: int,
        max_level: int,
        wordsize: int,
        dnum: int,
        first_prime_bits: Optional[int] = None,
        scale_bits: Optional[int] = None,
        klss: Optional[KlssConfig] = None,
        error_std: float = 3.2,
    ):
        if degree & (degree - 1) or degree < 8:
            raise ValueError(f"degree must be a power of two >= 8, got {degree}")
        if max_level < 1:
            raise ValueError("max_level must be >= 1")
        self.degree = degree
        self.log_degree = degree.bit_length() - 1
        self.max_level = max_level
        self.wordsize = wordsize
        self.dnum = dnum
        self.alpha = ceil_div(max_level + 1, dnum)
        self.scale_bits = wordsize if scale_bits is None else scale_bits
        self.scale = float(1 << self.scale_bits)
        self.error_std = error_std
        self.klss = klss
        first_bits = wordsize + 5 if first_prime_bits is None else first_prime_bits

        chain_specs = [(first_bits, 1), (wordsize, max_level), (wordsize + 1, self.alpha)]
        if klss is not None:
            alpha_prime = klss.alpha_prime(
                max_level, self.alpha, wordsize, self.log_degree
            )
            chain_specs.append((klss.wordsize_t, alpha_prime))
        chains = disjoint_prime_chains(
            [bits for bits, _ in chain_specs], degree, [n for _, n in chain_specs]
        )
        q0 = chains[0]
        q_rest = chains[1]
        self.special_primes: Tuple[int, ...] = tuple(chains[2])
        self.moduli: Tuple[int, ...] = tuple(q0 + q_rest)
        self.aux_primes: Tuple[int, ...] = tuple(chains[3]) if klss else ()

        #: ``P`` = product of the special primes.
        self.special_product: int = reduce(lambda a, b: a * b, self.special_primes, 1)
        self._q_basis_cache: Dict[int, RnsBasis] = {}
        self._pq_basis_cache: Dict[int, RnsBasis] = {}
        self.aux_basis: Optional[RnsBasis] = (
            RnsBasis(self.aux_primes) if self.aux_primes else None
        )
        self._fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        """Short stable digest of everything that defines this parameter set.

        Two :class:`CkksParameters` instances with the same fingerprint are
        interchangeable for cached derived data (key-switch plans, NTT
        plans); sibling sets that differ only in e.g. the KLSS configuration
        get distinct fingerprints even when their prime chains coincide.
        """
        if self._fingerprint is None:
            klss = (
                (self.klss.wordsize_t, self.klss.alpha_tilde) if self.klss else None
            )
            payload = repr(
                (
                    self.degree,
                    self.max_level,
                    self.wordsize,
                    self.dnum,
                    self.scale_bits,
                    self.moduli,
                    self.special_primes,
                    self.aux_primes,
                    klss,
                )
            ).encode()
            self._fingerprint = hashlib.sha256(payload).hexdigest()[:16]
        return self._fingerprint

    # -- bases -------------------------------------------------------------------

    def q_basis(self, level: int) -> RnsBasis:
        """The ciphertext basis ``q_0 .. q_level``."""
        self._check_level(level)
        basis = self._q_basis_cache.get(level)
        if basis is None:
            basis = RnsBasis(self.moduli[: level + 1])
            self._q_basis_cache[level] = basis
        return basis

    def pq_basis(self, level: int) -> RnsBasis:
        """The extended basis ``q_0 .. q_level, p_0 .. p_{alpha-1}``."""
        self._check_level(level)
        basis = self._pq_basis_cache.get(level)
        if basis is None:
            basis = RnsBasis(self.moduli[: level + 1] + self.special_primes)
            self._pq_basis_cache[level] = basis
        return basis

    def p_basis(self) -> RnsBasis:
        return RnsBasis(self.special_primes)

    def _check_level(self, level: int):
        if not 0 <= level <= self.max_level:
            raise ValueError(f"level {level} outside [0, {self.max_level}]")

    # -- digit machinery -----------------------------------------------------------

    def beta(self, level: int) -> int:
        """Hybrid digit count at `level`."""
        return ceil_div(level + 1, self.alpha)

    def digit_range(self, digit: int, level: int) -> Tuple[int, int]:
        """Half-open limb range ``[start, stop)`` of `digit` at `level`."""
        start = digit * self.alpha
        stop = min(start + self.alpha, level + 1)
        if start >= stop:
            raise ValueError(f"digit {digit} empty at level {level}")
        return start, stop

    def klss_dims(self, level: int) -> Tuple[int, int, int]:
        """``(alpha', beta, beta~)`` at `level`."""
        if self.klss is None:
            raise ValueError("parameters built without a KLSS configuration")
        alpha_prime = self.klss.alpha_prime(
            level, self.alpha, self.wordsize, self.log_degree
        )
        if alpha_prime > len(self.aux_primes):
            raise ValueError(
                f"auxiliary basis too small at level {level}: "
                f"need {alpha_prime} limbs, have {len(self.aux_primes)}"
            )
        return alpha_prime, self.beta(level), self.klss.beta_tilde(level, self.alpha)

    @property
    def slots(self) -> int:
        return self.degree // 2

    def __repr__(self) -> str:
        ks = "klss" if self.klss else "hybrid"
        return (
            f"CkksParameters(N={self.degree}, L={self.max_level}, "
            f"w={self.wordsize}, dnum={self.dnum}, {ks})"
        )


def small_test_parameters(
    degree: int = 32,
    max_level: int = 5,
    wordsize: int = 25,
    dnum: int = 3,
    klss: Optional[KlssConfig] = None,
) -> CkksParameters:
    """Reduced-size functional parameters used across the test-suite.

    25-bit primes keep every limb on the fast ``uint64`` backend while the
    KLSS auxiliary basis (28-bit) still satisfies the Eq. 4 bound.
    """
    return CkksParameters(
        degree=degree,
        max_level=max_level,
        wordsize=wordsize,
        dnum=dnum,
        klss=klss,
    )
