"""Data layout pre/post-processing for the GEMM-form kernels (Section 4.3).

Neo reorders limb tensors so that the accumulation axis of each kernel
becomes the K dimension of a GEMM:

* BConv (Fig. 6): ``(alpha, BatchSize, N) -> (N, BatchSize, alpha)`` --
  accumulation runs over ``alpha``.
* IP (Fig. 8): limbs ``(beta, alpha', BS, N) -> (N, alpha', BS, beta)`` and
  evaluation keys ``(beta~, beta, alpha', N) -> (N, alpha', beta, beta~)`` --
  accumulation runs over ``beta``.

The transforms are pure permutations (numpy transposes); their inverses
restore the original limb-contiguous layout.  On the GPU these reorders are
the CUDA-core "Data Reorder" steps of Algorithms 2 and 4.
"""

from __future__ import annotations

import numpy as np


def _require_rank(tensor: np.ndarray, rank: int, name: str):
    if tensor.ndim != rank:
        raise ValueError(f"{name} must have rank {rank}, got shape {tensor.shape}")


def bconv_forward(tensor: np.ndarray) -> np.ndarray:
    """``(alpha, BS, N) -> (N, BS, alpha)`` (Algorithm 2, step 1 reorder)."""
    _require_rank(tensor, 3, "BConv input")
    return np.ascontiguousarray(np.transpose(tensor, (2, 1, 0)))


def bconv_backward(tensor: np.ndarray) -> np.ndarray:
    """``(N, BS, alpha') -> (alpha', BS, N)`` (Algorithm 2, step 8 reorder)."""
    _require_rank(tensor, 3, "BConv output")
    return np.ascontiguousarray(np.transpose(tensor, (2, 1, 0)))


def ip_limbs_forward(tensor: np.ndarray) -> np.ndarray:
    """``(beta, alpha', BS, N) -> (N, alpha', BS, beta)`` (Algorithm 4)."""
    _require_rank(tensor, 4, "IP limb input")
    return np.ascontiguousarray(np.transpose(tensor, (3, 1, 2, 0)))


def ip_limbs_backward(tensor: np.ndarray) -> np.ndarray:
    """``(N, alpha', BS, beta~) -> (beta~, alpha', BS, N)`` (Algorithm 4)."""
    _require_rank(tensor, 4, "IP limb output")
    return np.ascontiguousarray(np.transpose(tensor, (3, 1, 2, 0)))


def ip_evk_forward(tensor: np.ndarray) -> np.ndarray:
    """``(beta~, beta, alpha', N) -> (N, alpha', beta, beta~)`` (Fig. 8)."""
    _require_rank(tensor, 4, "IP evk input")
    return np.ascontiguousarray(np.transpose(tensor, (3, 2, 1, 0)))


def ip_evk_backward(tensor: np.ndarray) -> np.ndarray:
    """Inverse of :func:`ip_evk_forward`."""
    _require_rank(tensor, 4, "IP evk tensor")
    return np.ascontiguousarray(np.transpose(tensor, (3, 2, 1, 0)))
