"""The four incremental optimisation steps of Fig. 14.

Starting from the TensorFHE configuration, each step enables one of Neo's
optimisations:

1. ``+KLSS``         -- switch KeySwitch from Hybrid to the KLSS method.
2. ``+dataflow``     -- BConv and IP become GEMMs (data-layout optimisation);
                        the GEMMs still run on CUDA cores.
3. ``+ten-step NTT`` -- the four-step NTT becomes the radix-16 NTT.
4. ``+FP64 TCU``     -- all GEMMs move to the FP64 tensor-core components
                        (with the 80% rule for IP), fusion and multi-stream.

The final step equals :data:`~repro.core.pipeline.NEO_CONFIG`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .pipeline import NEO_CONFIG, TENSORFHE_CONFIG, PipelineConfig

#: Ordered (label, config) ablation steps, baseline first.
ABLATION_STEPS: Tuple[Tuple[str, PipelineConfig], ...] = (
    ("TensorFHE", TENSORFHE_CONFIG),
    ("+KLSS", TENSORFHE_CONFIG.with_overrides(keyswitch="klss")),
    (
        "+dataflow opted",
        TENSORFHE_CONFIG.with_overrides(
            keyswitch="klss",
            bconv_style="gemm",
            ip_style="gemm",
            bconv_component="cuda",
            ip_component="cuda",
        ),
    ),
    (
        "+ten-step NTT",
        TENSORFHE_CONFIG.with_overrides(
            keyswitch="klss",
            bconv_style="gemm",
            ip_style="gemm",
            bconv_component="cuda",
            ip_component="cuda",
            ntt_style="radix16",
        ),
    ),
    ("+FP64 TCU", NEO_CONFIG),
)


def ablation_labels() -> List[str]:
    return [label for label, _ in ABLATION_STEPS]


def ablation_configs() -> Dict[str, PipelineConfig]:
    return dict(ABLATION_STEPS)
