"""Keyed LRU cache of :class:`~repro.gpu.trace.ExecutionTrace` objects.

Trace construction is deterministic: the same (parameter set, pipeline
config, batch, operation, level) always yields the same event list, yet the
model layer used to rebuild it on every timing query -- an application
schedule re-derives the identical KeySwitch trace hundreds of times.  GPU
FHE libraries avoid exactly this by precomputing execution plans once and
replaying them (Cheddar's kernel plans, TensorFHE's batched kernel reuse);
this module is the model-side mirror of that idea.

Keys must be fully value-based: :class:`~repro.ckks.params.ParameterSet`
and :class:`~repro.core.pipeline.PipelineConfig` are frozen dataclasses, so
two pipelines built from equal inputs share cached traces even across
contexts.  The device is deliberately *not* part of the key -- traces
describe resource demands, and devices only enter when a trace is timed.

Cached traces are returned ``frozen()`` (tuple-backed event lists), so a
cache hit can be handed to many callers without aliasing hazards.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional, Tuple

from ..gpu.trace import ExecutionTrace
from ..telemetry.stats import CacheStats, register_cache

#: A fully value-based cache key: (params, config, batch, operation, level).
TraceKey = Tuple[Hashable, ...]

__all__ = ["CacheStats", "TraceCache", "TraceKey", "GLOBAL_TRACE_CACHE",
           "default_trace_cache"]


@dataclass
class TraceCache:
    """An LRU-bounded map from :data:`TraceKey` to frozen traces.

    ``maxsize=0`` disables storage entirely (every lookup misses and the
    freshly built trace is returned uncached) -- the benchmarks use this to
    time the uncached construction path against the cached one.
    """

    maxsize: int = 1024
    _entries: "OrderedDict[TraceKey, ExecutionTrace]" = field(
        default_factory=OrderedDict, repr=False
    )
    _stats: CacheStats = field(default_factory=CacheStats, repr=False)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def get_or_build(
        self, key: TraceKey, builder: Callable[[], ExecutionTrace]
    ) -> ExecutionTrace:
        """The cached trace for `key`, building (and storing) it on a miss."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return cached
            self._stats.misses += 1
            trace = builder().frozen()
            if self.maxsize > 0:
                self._entries[key] = trace
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self._stats.evictions += 1
            return trace

    def get(self, key: TraceKey) -> Optional[ExecutionTrace]:
        """Peek without counting a hit/miss or building."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        """A point-in-time copy of the counters."""
        with self._lock:
            return self._stats.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: TraceKey) -> bool:
        with self._lock:
            return key in self._entries


#: Process-wide default cache shared by every pipeline that is not handed
#: its own.  Keys are fully value-based, so sharing across parameter sets,
#: configs and batch sizes is safe by construction.
GLOBAL_TRACE_CACHE = TraceCache(maxsize=4096)

# All long-lived caches announce themselves to the telemetry directory so
# `ServingReport`, `repro metrics` and the exporters can enumerate them.
register_cache(
    "trace_cache",
    lambda: GLOBAL_TRACE_CACHE.stats,
    lambda: len(GLOBAL_TRACE_CACHE),
)


def default_trace_cache() -> TraceCache:
    """The shared process-wide trace cache."""
    return GLOBAL_TRACE_CACHE
