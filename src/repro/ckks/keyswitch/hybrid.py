"""Hybrid (Han-Ki dnum) key switching.

The classic GPU pipeline the paper compares against (Fig. 5, left path):

1. **Digit decomposition** -- split the input into ``beta`` digits of
   ``alpha`` limbs each.
2. **Mod Up** -- BConv each digit from its group basis to the full ``PQ``
   basis (approximate conversion; the small ``u * Q_j`` slack is absorbed
   by the special modulus).
3. **NTT** over ``PQ``, **Inner Product** with the evk digit pairs,
   **INTT**.
4. **Mod Down** -- divide by ``P`` and return to the ciphertext basis.

:func:`keyswitch` runs the GEMM-form engine of :mod:`.plan` (batched
BConv matmul + lazy-reduction IP, Neo Algorithms 2 and 4);
:func:`keyswitch_loop` keeps the per-digit reference pipeline.  The two
are bit-identical.
"""

from __future__ import annotations

from typing import List, Tuple

from ...math import modarith
from ...math.polynomial import RnsPolynomial
from ...math.rns import RnsBasis, bconv_approx, bconv_approx_eager
from ..keys import KeySwitchKey
from ..params import CkksParameters
from . import plan as _plan
from .plan import restrict_to_pq  # noqa: F401  (re-exported, used by hoisting)


def decompose_digits(
    poly: RnsPolynomial, params: CkksParameters
) -> List[RnsPolynomial]:
    """Split `poly` (coefficient form, level-``l`` basis) into digits.

    Digit ``j`` is simply the limbs of group ``j`` -- its residues *are*
    the RNS representation of ``poly mod Q_j``.
    """
    poly = poly.from_ntt()
    level = len(poly.basis) - 1
    digits = []
    for j in range(params.beta(level)):
        start, stop = params.digit_range(j, level)
        basis = RnsBasis(poly.basis.moduli[start:stop])
        digits.append(
            RnsPolynomial(poly.degree, basis, poly.limbs[start:stop], is_ntt=False)
        )
    return digits


def mod_up(
    digit: RnsPolynomial,
    digit_index: int,
    params: CkksParameters,
    level: int,
    bconv=bconv_approx,
) -> RnsPolynomial:
    """Raise one digit to the ``PQ`` basis (paper's Mod Up / BConv step).

    Limbs belonging to the digit's own group are copied verbatim; all other
    limbs come from the approximate base conversion, so the limbs jointly
    represent ``c_j + u * Q_j`` for some ``0 <= u < alpha``.
    """
    pq = params.pq_basis(level)
    start, stop = params.digit_range(digit_index, level)
    own = dict(zip(range(start, stop), digit.limbs))
    other_moduli = [
        q for idx, q in enumerate(pq.moduli) if not start <= idx < stop
    ]
    converted = bconv(digit.limbs, digit.basis, RnsBasis(other_moduli))
    converted_iter = iter(converted)
    limbs = []
    for idx in range(len(pq.moduli)):
        if start <= idx < stop:
            limbs.append(own[idx])
        else:
            limbs.append(next(converted_iter))
    return RnsPolynomial(digit.degree, pq, limbs, is_ntt=False)


def mod_down(
    poly: RnsPolynomial,
    params: CkksParameters,
    level: int,
    bconv=bconv_approx,
) -> RnsPolynomial:
    """Divide by ``P`` and drop the special limbs (paper's Mod Down)."""
    poly = poly.from_ntt()
    q_basis = params.q_basis(level)
    p_basis = params.p_basis()
    q_count = level + 1
    q_limbs = poly.limbs[:q_count]
    p_limbs = poly.limbs[q_count:]
    converted = bconv(p_limbs, p_basis, q_basis)
    limbs = []
    for limb, conv, q in zip(q_limbs, converted, q_basis.moduli):
        p_inv = modarith.inv_mod(params.special_product % q, q)
        limbs.append(
            modarith.scalar_mul_mod(modarith.sub_mod(limb, conv, q), p_inv, q)
        )
    return RnsPolynomial(poly.degree, q_basis, limbs, is_ntt=False)


def _key_pairs_at_level(
    ksk: KeySwitchKey, params: CkksParameters, level: int
) -> List[Tuple[RnsPolynomial, RnsPolynomial]]:
    """Evk pairs restricted to the level-``l`` PQ basis, NTT form, cached.

    Served from the shared :mod:`.plan` cache -- keyed by the params
    fingerprint and the key's identity token, so a key reused under
    sibling parameter sets never sees stale restrictions.
    """
    return _plan.get_keyswitch_plan(ksk, params, level, "hybrid").key_pairs


def keyswitch(
    poly: RnsPolynomial, ksk: KeySwitchKey, params: CkksParameters
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """Switch `poly` (a coefficient of ``s'``) to the key ``s``.

    Returns ``(p0, p1)`` over the ciphertext basis such that
    ``p0 + p1 * s ~ poly * s'`` (up to key-switching noise).  Runs the
    batched GEMM pipeline; bit-identical to :func:`keyswitch_loop`.
    """
    level = len(poly.basis) - 1
    ks_plan = _plan.get_keyswitch_plan(ksk, params, level, "hybrid")
    return _plan.gemm_keyswitch(poly, ks_plan)


def keyswitch_loop(
    poly: RnsPolynomial, ksk: KeySwitchKey, params: CkksParameters
) -> Tuple[RnsPolynomial, RnsPolynomial]:
    """The per-digit reference pipeline (kept for differential testing).

    This is the pre-GEMM dataflow: one BConv with eager per-step reduction
    per digit (:func:`~repro.math.rns.bconv_approx_eager`), one NTT per
    digit, and an inner product of per-limb ``multiply``/``add`` calls with
    a full Barrett reduction per step.  Bit-identical to :func:`keyswitch`.
    """
    level = len(poly.basis) - 1
    digits = decompose_digits(poly, params)
    if len(digits) > ksk.dnum:
        raise ValueError(
            f"key has {ksk.dnum} digits but level {level} needs {len(digits)}"
        )
    pairs = _key_pairs_at_level(ksk, params, level)
    pq = params.pq_basis(level)
    acc_b = RnsPolynomial.zero(poly.degree, pq, is_ntt=True)
    acc_a = RnsPolynomial.zero(poly.degree, pq, is_ntt=True)
    for j, digit in enumerate(digits):
        raised = mod_up(
            digit, j, params, level, bconv=bconv_approx_eager
        ).to_ntt()  # Mod Up + NTT
        b_j, a_j = pairs[j]
        acc_b = acc_b.add(raised.multiply(b_j))  # Inner Product
        acc_a = acc_a.add(raised.multiply(a_j))
    p0 = mod_down(  # INTT + Mod Down
        acc_b.from_ntt(), params, level, bconv=bconv_approx_eager
    )
    p1 = mod_down(acc_a.from_ntt(), params, level, bconv=bconv_approx_eager)
    return p0, p1
