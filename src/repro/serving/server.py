"""The request server: simulated-clock continuous batching over the Neo model.

:class:`Server` admits a stream of FHE jobs (``submit``), forms dynamic
batches through :class:`~repro.serving.batcher.ContinuousBatcher`, and
replays the whole arrival trace on a simulated clock (``drain``), placing
each batch on the first free *lane*.  Lanes are disjoint groups of CUDA
streams: the device's ``config.streams`` streams are partitioned evenly,
so each batch's service time is its trace's overlapped time under its
lane's stream share (the Section 4.6 multi-stream model), and batches on
different lanes run concurrently -- exactly the TCU/CUDA-core overlap the
paper exploits *within* a batch, lifted across batches.

Everything is deterministic: the same submitted trace always yields the
same schedule, and :meth:`ServingReport.fingerprint` hashes the timeline so
replays can assert bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..analysis.reporting import format_table
from ..ckks.keyswitch import plan as ksplan
from ..apps import get_application
from ..core.neo_context import NeoContext
from ..core.pipeline import NEO_CONFIG, PipelineConfig
from ..core.profiling import latency_percentiles, timeline_schedule_result
from ..core.streams import ScheduledKernel
from ..core.trace_cache import CacheStats, TraceCache
from .batcher import Batch, ContinuousBatcher
from .policies import AdmissionPolicy, get_policy
from .queue import RequestQueue
from .request import Request, RequestRecord


class NeoServiceModel:
    """Times dynamic batches on the analytic A100 device model.

    One root :class:`NeoContext` owns the trace cache; per-batch-size
    sibling contexts share it, so a (app, BatchSize) shape is built at most
    once per server lifetime and every repeat is a cache hit.
    """

    def __init__(
        self,
        params: str = "C",
        config: PipelineConfig = NEO_CONFIG,
        trace_cache: Optional[TraceCache] = None,
    ):
        self._root = NeoContext(
            params, config=config, batch=1, trace_cache=trace_cache or TraceCache()
        )
        self._apps: Dict[str, object] = {}

    def service_time_s(self, app: str, size: int, streams: int) -> float:
        """Wall time of one `app` batch of `size` ciphertexts on `streams`."""
        if app not in self._apps:
            self._apps[app] = get_application(app)
        ctx = self._root.with_batch(size)
        trace = ctx.application_trace(self._apps[app])
        return trace.overlapped_time_s(ctx.device, streams)

    def cache_stats(self) -> CacheStats:
        return self._root.cache_stats()


class FixedServiceModel:
    """Test double: service time from a user-supplied function."""

    def __init__(self, time_fn: Callable[[str, int], float]):
        self._time_fn = time_fn

    def service_time_s(self, app: str, size: int, streams: int) -> float:
        return self._time_fn(app, size)

    def cache_stats(self) -> CacheStats:
        return CacheStats()


@dataclass
class ServingReport:
    """Everything one ``drain`` produced: records, batches, metrics."""

    records: List[RequestRecord] = field(default_factory=list)
    batches: List[Batch] = field(default_factory=list)
    lanes: int = 1
    streams_per_lane: int = 1
    makespan_s: float = 0.0
    mean_queue_depth: float = 0.0
    max_queue_depth: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    #: Key-switch / rotation op-plan cache counters (hits, misses,
    #: evictions, hit_rate) snapshotted at drain time -- shows how much
    #: GEMM-plan compilation the serving run amortised.
    op_plans: Dict[str, float] = field(default_factory=dict)

    # -- headline metrics ---------------------------------------------------------

    @property
    def served(self) -> int:
        return len(self.records)

    @property
    def ciphertexts(self) -> int:
        return sum(r.request.size for r in self.records)

    @property
    def throughput_rps(self) -> float:
        """Requests per simulated second over the makespan."""
        return self.served / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def throughput_cts(self) -> float:
        """Ciphertexts per simulated second over the makespan."""
        return self.ciphertexts / self.makespan_s if self.makespan_s > 0 else 0.0

    def latencies_s(self) -> List[float]:
        return [r.latency_s for r in self.records]

    def latency_summary(self) -> Dict[str, float]:
        return latency_percentiles(self.latencies_s())

    @property
    def slo_violations(self) -> int:
        return sum(1 for r in self.records if not r.slo_met)

    @property
    def slo_attainment(self) -> float:
        return 1.0 - self.slo_violations / self.served if self.served else 1.0

    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.total_size for b in self.batches) / len(self.batches)

    def batch_size_histogram(self) -> Dict[int, int]:
        """Executed BatchSize -> number of batches (sorted by size)."""
        hist: Dict[int, int] = {}
        for b in self.batches:
            hist[b.executed_size] = hist.get(b.executed_size, 0) + 1
        return dict(sorted(hist.items()))

    # -- timeline -----------------------------------------------------------------

    def timeline(self) -> List[ScheduledKernel]:
        """One :class:`ScheduledKernel` block per dispatched batch."""
        spans: Dict[int, RequestRecord] = {}
        for record in self.records:
            spans.setdefault(record.batch_id, record)
        blocks = []
        for batch in self.batches:
            span = spans[batch.bid]
            blocks.append(
                ScheduledKernel(
                    name=f"{batch.app} x{batch.total_size} (b{batch.executed_size})",
                    stream=span.lane,
                    resource=batch.app,
                    start_s=span.start_s,
                    end_s=span.finish_s,
                )
            )
        return blocks

    def to_chrome_trace(self) -> str:
        """The serving timeline in Chrome ``chrome://tracing`` JSON."""
        return timeline_schedule_result(self.timeline()).to_chrome_trace()

    def fingerprint(self) -> str:
        """SHA-256 of the batch timeline; equal across identical replays."""
        return timeline_schedule_result(self.timeline()).fingerprint()

    # -- reporting ----------------------------------------------------------------

    def format(self) -> str:
        """A printable throughput / latency / batching report."""
        lat = self.latency_summary()
        lines = [
            f"served {self.served} requests ({self.ciphertexts} ciphertexts) "
            f"in {self.makespan_s:.1f} simulated s "
            f"on {self.lanes} lane(s) x {self.streams_per_lane} stream(s)",
            f"  throughput : {self.throughput_rps:.3f} req/s"
            f"  ({self.throughput_cts:.3f} ct/s)",
            f"  latency    : P50 {lat['p50']:.1f} s, P95 {lat['p95']:.1f} s, "
            f"P99 {lat['p99']:.1f} s, max {lat['max']:.1f} s",
            f"  SLO        : {self.slo_violations} violations "
            f"({100 * self.slo_attainment:.1f}% attainment)",
            f"  queue      : mean depth {self.mean_queue_depth:.1f}, "
            f"peak {self.max_queue_depth}",
            f"  batches    : {len(self.batches)} formed, "
            f"mean fill {self.mean_batch_size():.1f} cts",
            "",
        ]
        per_app: Dict[str, List[RequestRecord]] = {}
        for record in self.records:
            per_app.setdefault(record.request.app, []).append(record)
        rows = []
        for app in sorted(per_app):
            records = per_app[app]
            app_lat = latency_percentiles([r.latency_s for r in records])
            rows.append(
                [
                    app,
                    len(records),
                    f"{app_lat['p50']:.1f}",
                    f"{app_lat['p95']:.1f}",
                    f"{app_lat['p99']:.1f}",
                    sum(1 for r in records if not r.slo_met),
                ]
            )
        lines.append(
            format_table(
                ["application", "requests", "P50 s", "P95 s", "P99 s", "SLO miss"],
                rows,
                title="per-application latency",
            )
        )
        hist = self.batch_size_histogram()
        if hist:
            lines.append("")
            lines.append(
                format_table(
                    ["BatchSize", "batches"],
                    [[size, count] for size, count in hist.items()],
                    title="dynamic batch sizes",
                )
            )
        lines.append("")
        lines.append(
            "trace cache: "
            f"{self.cache.hits} hits / {self.cache.misses} misses "
            f"({100 * self.cache.hit_rate:.1f}% hit rate)"
        )
        if self.op_plans:
            lines.append(
                "op-plan cache: "
                f"{int(self.op_plans.get('hits', 0))} hits / "
                f"{int(self.op_plans.get('misses', 0))} misses "
                f"({100 * self.op_plans.get('hit_rate', 0.0):.1f}% hit rate)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time server counters (live between submit and drain)."""

    submitted: int
    served: int
    pending: int
    batches: int


class Server:
    """A dynamic-batching FHE request server over the Neo device model.

    Args:
        params: Table 4 parameter set (or a ``ParameterSet``).
        config: pipeline configuration; its ``streams`` are split across lanes.
        policy: admission policy name or instance (fifo / edf / bucketed).
        max_batch: dynamic-batch capacity, ciphertexts.
        max_wait_s: continuous-batching window, simulated seconds.
        lanes: concurrent batch slots (each gets ``streams // lanes`` streams).
        model: service-time model; defaults to :class:`NeoServiceModel`.
    """

    def __init__(
        self,
        params: str = "C",
        config: PipelineConfig = NEO_CONFIG,
        policy: Union[str, AdmissionPolicy] = "fifo",
        max_batch: int = 64,
        max_wait_s: float = 30.0,
        lanes: int = 2,
        model=None,
        trace_cache: Optional[TraceCache] = None,
    ):
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        self.policy = get_policy(policy)
        self.batcher = ContinuousBatcher(self.policy, max_batch, max_wait_s)
        self.lanes = lanes
        self.streams_per_lane = max(1, config.streams // lanes)
        self.model = model or NeoServiceModel(params, config, trace_cache)
        self._submitted: List[Request] = []
        self._next_rid = 0
        self._last_report: Optional[ServingReport] = None

    # -- admission ----------------------------------------------------------------

    def submit(
        self,
        request: Optional[Request] = None,
        *,
        app: Optional[str] = None,
        size: int = 1,
        arrival_s: float = 0.0,
        slo_s: float = 0.0,
    ) -> Request:
        """Enqueue one request (an instance, or fields to build one)."""
        if request is None:
            if app is None:
                raise ValueError("submit needs a Request or an app name")
            request = Request(
                rid=self._next_rid,
                app=app,
                size=size,
                arrival_s=arrival_s,
                slo_s=slo_s,
            )
        self._next_rid = max(self._next_rid, request.rid) + 1
        self._submitted.append(request)
        return request

    def submit_many(self, requests: Iterable[Request]) -> int:
        count = 0
        for request in requests:
            self.submit(request)
            count += 1
        return count

    def stats(self) -> ServerStats:
        report = self._last_report
        return ServerStats(
            submitted=len(self._submitted),
            served=report.served if report else 0,
            pending=len(self._submitted) - (report.served if report else 0),
            batches=len(report.batches) if report else 0,
        )

    @property
    def last_report(self) -> Optional[ServingReport]:
        return self._last_report

    # -- simulation ---------------------------------------------------------------

    def drain(self) -> ServingReport:
        """Replay every submitted request to completion; return the report.

        The loop advances the simulated clock to the next decision point
        (an arrival, a lane becoming free, or a batching window expiring),
        admits due arrivals, and dispatches whatever batch the batcher
        deems ready onto the earliest-free lane.  No randomness anywhere:
        the schedule is a pure function of the submitted trace.
        """
        arrivals = sorted(self._submitted, key=lambda r: (r.arrival_s, r.rid))
        queue = RequestQueue()
        lane_free = [0.0] * self.lanes
        records: List[RequestRecord] = []
        batches: List[Batch] = []
        index, total = 0, len(arrivals)
        now = 0.0
        next_bid = 0

        while index < total or queue:
            if not queue:
                now = max(now, arrivals[index].arrival_s)
            while index < total and arrivals[index].arrival_s <= now:
                request = arrivals[index]
                queue.push(request, request.arrival_s)
                index += 1
            if not queue:
                continue

            lane = min(range(self.lanes), key=lane_free.__getitem__)
            if lane_free[lane] > now:
                # Every lane is busy: run the clock to the first free slot
                # (admitting anything that arrives on the way).
                now = lane_free[lane]
                continue

            draining = index >= total
            take, window_deadline = self.batcher.candidate(
                queue.requests, now, draining
            )
            if take is None:
                # The head batch is still filling: sleep until its window
                # expires or the next arrival tops it up.
                next_arrival = arrivals[index].arrival_s
                now = min(window_deadline, next_arrival)
                continue

            total_size = sum(r.size for r in take)
            executed = self.policy.executed_size(total_size)
            app = take[0].app
            service = self.model.service_time_s(
                app, executed, self.streams_per_lane
            )
            start = now
            finish = start + service
            lane_free[lane] = finish
            queue.remove(take, now)
            batch = Batch(
                bid=next_bid,
                app=app,
                requests=tuple(take),
                executed_size=executed,
                formed_s=now,
            )
            next_bid += 1
            batches.append(batch)
            records.extend(
                RequestRecord(
                    request=r,
                    batch_id=batch.bid,
                    lane=lane,
                    batch_size=executed,
                    dispatch_s=now,
                    start_s=start,
                    finish_s=finish,
                )
                for r in take
            )

        report = ServingReport(
            records=records,
            batches=batches,
            lanes=self.lanes,
            streams_per_lane=self.streams_per_lane,
            makespan_s=max((r.finish_s for r in records), default=0.0),
            mean_queue_depth=queue.mean_depth(),
            max_queue_depth=queue.max_depth(),
            cache=self.model.cache_stats(),
            op_plans=ksplan.keyswitch_plan_cache_stats(),
        )
        self._last_report = report
        return report
