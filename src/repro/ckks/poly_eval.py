"""Homomorphic polynomial evaluation (Paterson-Stockmeyer).

EvalMod in bootstrapping -- and any smooth non-linearity (sigmoid, ReLU
approximations) -- is a polynomial evaluated on every slot.  The
Paterson-Stockmeyer arrangement uses ``~2*sqrt(d)`` ciphertext-ciphertext
multiplications and ``log2(d)`` depth instead of Horner's ``d`` and ``d``:

    p(x) = sum_j chunk_j(x) * x**(j*m),   deg(chunk_j) < m

with the baby powers ``x .. x**m`` and giant powers ``x**(j*m)`` shared.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from .ciphertext import Ciphertext
from .encoder import CkksEncoder
from .evaluator import Evaluator


def _power_plan(max_power: int) -> Dict[int, tuple]:
    """How to build each needed power from smaller ones (binary splits)."""
    plan = {}
    for p in range(2, max_power + 1):
        half = 1 << (p.bit_length() - 1)
        if half == p:
            plan[p] = (half // 2, half // 2)
        else:
            plan[p] = (half, p - half)
    return plan


class PolynomialEvaluator:
    """Evaluates real/complex-coefficient polynomials on ciphertext slots."""

    def __init__(self, encoder: CkksEncoder, evaluator: Evaluator):
        self.encoder = encoder
        self.evaluator = evaluator
        #: Encoded coefficient constants keyed by (value, level, scale) --
        #: EvalMod re-evaluates the same polynomial every bootstrap, so the
        #: chunk constants encode once and replay from here.
        self._const_cache: Dict[tuple, object] = {}

    def _constant(self, value: complex, level: int, scale: Optional[float] = None):
        key = (complex(value), level, scale)
        pt = self._const_cache.get(key)
        if pt is None:
            if scale is None:
                pt = self.encoder.encode_constant(complex(value), level=level)
            else:
                pt = self.encoder.encode_constant(
                    complex(value), level=level, scale=scale
                )
            self._const_cache[key] = pt
        return pt

    # -- power ladder ----------------------------------------------------------

    def powers(self, ct: Ciphertext, max_power: int) -> Dict[int, Ciphertext]:
        """``{p: ct**p}`` for p = 1 .. max_power, built with log depth."""
        if max_power < 1:
            raise ValueError("max_power must be >= 1")
        ev = self.evaluator
        table: Dict[int, Ciphertext] = {1: ct}
        for p, (a, b) in _power_plan(max_power).items():
            left, right = table[a], table[b]
            level = min(left.level, right.level)
            left = ev.mod_switch_to_level(left, level)
            right = ev.mod_switch_to_level(right, level)
            table[p] = ev.rescale(ev.multiply(left, right))
        return table

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, ct: Ciphertext, coeffs: Sequence[complex]) -> Ciphertext:
        """Compute ``p(x) = sum_k coeffs[k] * x**k`` slot-wise.

        Consumes roughly ``log2(deg) + 2`` levels.  Coefficients below
        1e-12 in magnitude are skipped.
        """
        coeffs = np.asarray(coeffs, dtype=np.complex128)
        while len(coeffs) > 1 and abs(coeffs[-1]) < 1e-12:
            coeffs = coeffs[:-1]
        degree = len(coeffs) - 1
        if degree == 0:
            pt = self._constant(complex(coeffs[0]), ct.level, ct.scale)
            zero = self.evaluator.sub(ct, ct)
            return self.evaluator.add_plain(zero, pt)

        ev = self.evaluator
        m = 1 << max(1, math.ceil(math.log2(math.sqrt(degree + 1))))
        chunk_count = -(-(degree + 1) // m)
        max_giant = (chunk_count - 1) * m
        table = self.powers(ct, max(m, 2))
        # Giant powers x**(j*m), j >= 1, extending the ladder as needed.
        giants: Dict[int, Ciphertext] = {m: table[m]}
        for j in range(2, chunk_count):
            prev = giants[(j - 1) * m]
            base = table[m]
            level = min(prev.level, base.level)
            giants[j * m] = ev.rescale(
                ev.multiply(
                    ev.mod_switch_to_level(prev, level),
                    ev.mod_switch_to_level(base, level),
                )
            )

        result: Optional[Ciphertext] = None
        for j in range(chunk_count):
            chunk = coeffs[j * m : (j + 1) * m]
            partial = self._evaluate_chunk(ct, table, chunk)
            if j > 0 and partial is not None:
                giant = giants[j * m]
                level = min(partial.level, giant.level)
                partial = ev.rescale(
                    ev.multiply(
                        ev.mod_switch_to_level(partial, level),
                        ev.mod_switch_to_level(giant, level),
                    )
                )
            if partial is None:
                continue
            result = partial if result is None else ev.add(result, partial)
        if result is None:
            raise ValueError("polynomial is numerically zero")
        return result

    def _evaluate_chunk(
        self, ct: Ciphertext, table: Dict[int, Ciphertext], chunk: np.ndarray
    ) -> Optional[Ciphertext]:
        """``sum_b chunk[b] * x**b`` using the shared baby powers."""
        ev = self.evaluator
        result: Optional[Ciphertext] = None
        for b, coeff in enumerate(chunk):
            if abs(coeff) < 1e-12 or b == 0:
                continue
            power = table[b]
            pt = self._constant(complex(coeff), power.level)
            term = ev.rescale(ev.multiply_plain(power, pt))
            result = term if result is None else ev.add(result, term)
        constant = complex(chunk[0]) if len(chunk) else 0.0
        if abs(constant) >= 1e-12:
            if result is None:
                # Constant-only chunk: encode on a zero ciphertext.
                zero = ev.sub(ct, ct)
                zero = ev.rescale(
                    ev.multiply_plain(zero, self._constant(1.0, zero.level))
                )
                result = ev.add_plain(
                    zero, self._constant(constant, zero.level, zero.scale)
                )
            else:
                result = ev.add_plain(
                    result, self._constant(constant, result.level, result.scale)
                )
        return result


def chebyshev_coefficients(
    func, degree: int, domain: float
) -> np.ndarray:
    """Power-basis coefficients of the Chebyshev fit of `func` on
    ``[-domain, domain]``.

    Suitable up to degree ~20 (the basis conversion amplifies roundoff by
    ``~2**degree``); bootstrapping's EvalMod uses degree <= 15 here.
    """
    xs = np.cos(np.pi * (np.arange(4 * degree + 4) + 0.5) / (4 * degree + 4))
    xs = xs * domain
    fit = np.polynomial.chebyshev.Chebyshev.fit(
        xs, np.asarray([func(x) for x in xs]), deg=degree, domain=[-domain, domain]
    )
    return fit.convert(kind=np.polynomial.Polynomial).coef
