"""GPGPU substrate: device model, fragments, tensor-core emulation, costs."""

from .device import A100, A100_NO_TCU, H100, DeviceSpec
from .fragments import (
    FP64_FRAGMENT,
    INT8_FRAGMENTS,
    FragmentShape,
    best_int8_fragment,
    fragment_ops,
    padded_dims,
    tile_counts,
    valid_proportion,
)
from .kernels import (
    CUDA_MODMUL_FLOPS,
    KernelCost,
    elementwise_cost,
    gemm_cost_cuda,
    gemm_cost_tcu_fp64,
    gemm_cost_tcu_int8,
    word_bytes,
    zero_cost,
)
from .tensorcore import (
    PrecisionOverflowError,
    SplitPlan,
    fp64_gemm_mod,
    int8_gemm_mod,
    make_tcu_gemm,
    plan_fp64_split,
    plan_int8_split,
    reference_gemm_mod,
)
from .multi_gpu import NVLINK3, PCIE4, Interconnect, MultiGpuModel
from .trace import ExecutionTrace

__all__ = [
    "A100",
    "A100_NO_TCU",
    "CUDA_MODMUL_FLOPS",
    "DeviceSpec",
    "ExecutionTrace",
    "FP64_FRAGMENT",
    "FragmentShape",
    "H100",
    "INT8_FRAGMENTS",
    "Interconnect",
    "KernelCost",
    "MultiGpuModel",
    "NVLINK3",
    "PCIE4",
    "PrecisionOverflowError",
    "SplitPlan",
    "best_int8_fragment",
    "elementwise_cost",
    "fp64_gemm_mod",
    "fragment_ops",
    "gemm_cost_cuda",
    "gemm_cost_tcu_fp64",
    "gemm_cost_tcu_int8",
    "int8_gemm_mod",
    "make_tcu_gemm",
    "padded_dims",
    "plan_fp64_split",
    "plan_int8_split",
    "reference_gemm_mod",
    "tile_counts",
    "valid_proportion",
    "word_bytes",
    "zero_cost",
]
