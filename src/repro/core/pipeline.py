"""Operation pipelines: KeySwitch and primitive-operation cost traces.

This module turns a :class:`~repro.ckks.params.ParameterSet` plus a
:class:`PipelineConfig` (which algorithm/mapping choices are enabled) into
:class:`~repro.gpu.trace.ExecutionTrace` objects for KeySwitch and for every
primitive CKKS operation.  Neo and the baselines differ *only* in their
config -- exactly the paper's ablation axis (Fig. 14).

Conventions:
* Ciphertexts live in NTT (evaluation) form between operations, as in all
  GPU CKKS libraries; KeySwitch therefore pays the surrounding domain
  conversions, which is why NTT dominates it.
* All costs are for one *batch* of ``batch`` ciphertexts (the paper reports
  per-batch averages, Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..ckks.params import ParameterSet
from ..gpu.kernels import KernelCost, elementwise_cost
from ..gpu.trace import ExecutionTrace
from ..telemetry.registry import global_registry
from .bconv_matmul import bconv_cost
from .ip_matmul import ip_cost
from .mapping import choose_ip_component, ip_gemm_shape
from .radix16_ntt import ntt_cost
from .trace_cache import TraceCache, TraceKey, default_trace_cache


#: Cached ``(family, child)`` counter handles per op name.  The family is
#: re-validated against the registry on every event (``registry.get``), so
#: a ``reset()`` -- which drops families -- invalidates stale handles and
#: the next event re-creates them; the common case is one dict lookup +
#: ``inc()`` instead of the full get-or-create path per trace request.
_OP_COUNTER_HANDLES: dict = {}

_OP_COUNTER_NAME = "core_operation_traces_total"


def _count_operation_trace(name: str) -> None:
    """Per-op trace-request counter (hot path: cached child handle)."""
    registry = global_registry()
    cached = _OP_COUNTER_HANDLES.get(name)
    if cached is not None and registry.get(_OP_COUNTER_NAME) is cached[0]:
        cached[1].inc()
        return
    family = registry.counter(
        _OP_COUNTER_NAME,
        "Operation-trace requests through the pipeline, by operation",
        labelnames=("op",),
    )
    child = family.labels(op=name)
    _OP_COUNTER_HANDLES[name] = (family, child)
    child.inc()


@dataclass(frozen=True)
class PipelineConfig:
    """Algorithm and mapping switches (one per paper optimisation step)."""

    #: Key-switching method: "hybrid" or "klss".
    keyswitch: str = "klss"
    #: BConv kernel style: "elementwise" (Alg. 1) or "gemm" (Alg. 2).
    bconv_style: str = "gemm"
    #: IP kernel style: "elementwise" (Alg. 3) or "gemm" (Alg. 4).
    ip_style: str = "gemm"
    #: NTT decomposition: "butterfly", "four_step" or "radix16".
    ntt_style: str = "radix16"
    #: NTT GEMM execution unit: "cuda", "tcu_int8" or "tcu_fp64".
    ntt_component: str = "tcu_fp64"
    #: BConv GEMM execution unit.
    bconv_component: str = "tcu_fp64"
    #: IP GEMM unit: "auto" applies the 80% valid-proportion rule.
    ip_component: str = "auto"
    #: Hybrid external product: accumulate in NTT domain before the inverse
    #: transform (2*(l+alpha) INTTs, modern libraries) instead of the
    #: per-digit accounting of Table 2 (2*beta*(l+alpha) INTTs).
    hybrid_accumulate_ntt: bool = False
    #: Kernel fusion of split/GEMM/merge stages (Section 4.6).
    fused: bool = True
    #: CUDA streams for TCU/CUDA-core overlap (Section 4.6).
    streams: int = 8
    #: Ciphertexts per BConv/IP kernel tile (``None`` = whole batch).  Only
    #: the hierarchical memory model reacts to it: small tiles keep the
    #: element-wise working sets L2-resident but re-stream the evaluation
    #: key once per tile.  The autotuner searches this axis.
    batch_tile: Optional[int] = None
    #: Polynomials chunked through all NTT stages per launch group
    #: (``None`` = whole batch per stage).  Under the hierarchical model a
    #: chunk that fits L2 keeps the inter-stage intermediates out of DRAM
    #: at the price of extra launches.  The autotuner searches this axis.
    ntt_tile: Optional[int] = None

    def with_overrides(self, **kwargs) -> "PipelineConfig":
        return replace(self, **kwargs)


#: Neo's full configuration (all four optimisation steps on).
NEO_CONFIG = PipelineConfig()

#: TensorFHE: Hybrid KS, element-wise BConv/IP (the poor-reuse kernels of
#: Section 3.3), four-step NTT on the INT8 tensor cores, single stream.
TENSORFHE_CONFIG = PipelineConfig(
    keyswitch="hybrid",
    bconv_style="elementwise",
    ip_style="elementwise",
    ntt_style="four_step",
    ntt_component="tcu_int8",
    bconv_component="cuda",
    ip_component="cuda",
    fused=True,
    streams=1,
)

#: HEonGPU: a modern CUDA-core-only library -- Hybrid KS, classic butterfly
#: NTT, well-tiled (read-once) BConv/IP kernels, but no tensor cores.
HEONGPU_CONFIG = PipelineConfig(
    keyswitch="hybrid",
    bconv_style="gemm",
    ip_style="gemm",
    ntt_style="butterfly",
    ntt_component="cuda",
    bconv_component="cuda",
    ip_component="cuda",
    hybrid_accumulate_ntt=True,
    fused=True,
    streams=4,
)


class OperationPipeline:
    """Builds cost traces for KeySwitch and the six primitive operations."""

    def __init__(
        self,
        params: ParameterSet,
        config: PipelineConfig = NEO_CONFIG,
        batch: Optional[int] = None,
        cache: Optional[TraceCache] = None,
    ):
        if config.keyswitch == "klss" and params.klss is None:
            raise ValueError(
                f"config requests KLSS but set {params.name} has no KLSS parameters"
            )
        self.params = params
        self.config = config
        self.batch = batch if batch is not None else (params.batch_size or 1)
        #: Trace cache consulted by :meth:`operation_trace`.  Defaults to the
        #: process-wide shared cache; pass ``TraceCache(maxsize=0)`` to force
        #: uncached construction.
        self.cache = cache if cache is not None else default_trace_cache()

    # -- small helpers -------------------------------------------------------------

    @property
    def degree(self) -> int:
        return self.params.degree

    @property
    def wordsize(self) -> int:
        return self.params.wordsize

    def _ntt(self, limbs: int, inverse: bool = False, wordsize: Optional[int] = None) -> KernelCost:
        return ntt_cost(
            self.degree,
            batch_limbs=self.batch * limbs,
            wordsize=self.wordsize if wordsize is None else wordsize,
            style=self.config.ntt_style,
            component=self.config.ntt_component,
            inverse=inverse,
            tile_polys=self.config.ntt_tile,
        )

    def _bconv(self, alpha_in: int, alpha_out: int, wordsize: Optional[int] = None) -> KernelCost:
        return bconv_cost(
            alpha_in,
            alpha_out,
            self.batch,
            self.degree,
            self.wordsize if wordsize is None else wordsize,
            style=self.config.bconv_style,
            component=self.config.bconv_component,
            fused=self.config.fused,
            batch_tile=self.config.batch_tile,
        )

    def _elementwise(self, name: str, limbs: int, flops: float = 8.0) -> KernelCost:
        return elementwise_cost(
            name, limbs * self.batch * self.degree, self.wordsize,
            flops_per_element=flops,
        )

    # -- KeySwitch ------------------------------------------------------------------

    def keyswitch_trace(self, level: int) -> ExecutionTrace:
        """The full KeySwitch of one (batched) polynomial at `level`."""
        if self.config.keyswitch == "klss":
            return self._keyswitch_klss(level)
        return self._keyswitch_hybrid(level)

    def _keyswitch_hybrid(self, level: int) -> ExecutionTrace:
        p = self.params
        alpha = p.alpha
        beta = p.beta(level)
        extended = level + 1 + alpha  # limbs of the PQ basis
        trace = ExecutionTrace()
        # Input leaves evaluation form for digit decomposition.
        trace.add(self._ntt(level + 1, inverse=True))
        # Mod Up: one BConv per digit into the complement of its group.
        for j in range(beta):
            start = j * alpha
            own = min(alpha, level + 1 - start)
            trace.add(self._bconv(own, extended - own))
        # Forward NTT of the raised digits.
        trace.add(self._ntt(beta * extended))
        # Inner Product: the Hybrid external product is an IP with
        # beta~ = 2 (the two output components); its K dimension (beta) is
        # too small for a TCU GEMM, so the GEMM form runs on CUDA cores.
        trace.add(
            ip_cost(
                beta,
                2,
                extended,
                self.batch,
                self.degree,
                self.wordsize,
                style=self.config.ip_style,
                component="cuda",
                fused=self.config.fused,
                pair_factor=1,
                batch_tile=self.config.batch_tile,
            )
        )
        # INTT: Table 2 counts 2*beta*(l+alpha) inverse transforms for the
        # Hybrid external product (per-digit accumulation, as in the KLSS
        # paper's accounting); libraries that accumulate in the NTT domain
        # only pay 2*(l+alpha).
        intt_digits = 1 if self.config.hybrid_accumulate_ntt else beta
        trace.add(self._ntt(2 * intt_digits * extended, inverse=True))
        # Mod Down: BConv the special limbs onto the Q limbs, then fix up.
        for _ in range(2):
            trace.add(self._bconv(alpha, level + 1))
        trace.add(self._elementwise("moddown", 2 * (level + 1)))
        # Back to evaluation form.
        trace.add(self._ntt(2 * (level + 1)))
        return trace

    def _keyswitch_klss(self, level: int) -> ExecutionTrace:
        p = self.params
        alpha = p.alpha
        alpha_prime, beta, beta_tilde = p.klss_dims(level)
        wst = p.klss.wordsize_t
        extended = level + 1 + alpha
        trace = ExecutionTrace()
        trace.add(self._ntt(level + 1, inverse=True))
        # Mod Up into R_T: one alpha -> alpha' BConv per digit.
        for j in range(beta):
            start = j * alpha
            own = min(alpha, level + 1 - start)
            trace.add(self._bconv(own, alpha_prime, wordsize=wst))
        # NTT over R_T.
        trace.add(self._ntt(beta * alpha_prime, wordsize=wst))
        # IP as GEMM (or CUDA cores when the valid proportion is low).
        component = self.config.ip_component
        if component == "auto":
            shape = ip_gemm_shape(beta, beta_tilde, self.batch, self.degree)
            component = choose_ip_component(shape)
        trace.add(
            ip_cost(
                beta,
                beta_tilde,
                alpha_prime,
                self.batch,
                self.degree,
                wst,
                style=self.config.ip_style,
                component=component,
                fused=self.config.fused,
                batch_tile=self.config.batch_tile,
            )
        )
        # INTT of the beta~ accumulated pairs over R_T.
        trace.add(self._ntt(2 * beta_tilde * alpha_prime, inverse=True, wordsize=wst))
        # Recover Limbs: Table 2 counts 2*alpha'*(l+alpha) work -- one fused
        # conversion per component with K = alpha' (the gadget recombination
        # folds into the conversion matrix and the beta~ groups stream
        # through the same kernel).
        for _ in range(2):
            trace.add(self._bconv(alpha_prime, extended, wordsize=wst))
        trace.add(self._elementwise("recover", 2 * extended))
        # Mod Down by P.
        for _ in range(2):
            trace.add(self._bconv(alpha, level + 1))
        trace.add(self._elementwise("moddown", 2 * (level + 1)))
        trace.add(self._ntt(2 * (level + 1)))
        return trace

    # -- primitive operations -----------------------------------------------------------

    def hmult_trace(self, level: int) -> ExecutionTrace:
        """HMULT: tensor product + KeySwitch(d2) + combination."""
        limbs = level + 1
        trace = ExecutionTrace()
        trace.add(self._elementwise("modmul", 4 * limbs))  # d0, d1 (x2), d2
        trace.add(self._elementwise("modadd", 1 * limbs, flops=1.0))
        trace = trace.merged(self.keyswitch_trace(level))
        trace.add(self._elementwise("modadd", 2 * limbs, flops=1.0))
        return trace

    def hrotate_trace(self, level: int) -> ExecutionTrace:
        """HROTATE: AUTO permutation + KeySwitch + combination."""
        limbs = level + 1
        trace = ExecutionTrace()
        trace.add(self._elementwise("auto", 2 * limbs, flops=1.0))
        trace = trace.merged(self.keyswitch_trace(level))
        trace.add(self._elementwise("modadd", limbs, flops=1.0))
        return trace

    def pmult_trace(self, level: int) -> ExecutionTrace:
        return ExecutionTrace().add(self._elementwise("modmul", 2 * (level + 1)))

    def hadd_trace(self, level: int) -> ExecutionTrace:
        return ExecutionTrace().add(
            self._elementwise("modadd", 2 * (level + 1), flops=1.0)
        )

    def padd_trace(self, level: int) -> ExecutionTrace:
        return ExecutionTrace().add(
            self._elementwise("modadd", level + 1, flops=1.0)
        )

    def rescale_trace(self, level: int) -> ExecutionTrace:
        """Rescale: INTT the last limb, broadcast-correct, return to NTT."""
        trace = ExecutionTrace()
        trace.add(self._ntt(2, inverse=True))  # last limb of both components
        trace.add(self._elementwise("rescale", 2 * level))
        trace.add(self._ntt(2))
        return trace

    def double_rescale_trace(self, level: int) -> ExecutionTrace:
        """DS: same dataflow over the last two limbs, dropping two levels."""
        trace = ExecutionTrace()
        trace.add(self._ntt(4, inverse=True))
        trace.add(self._elementwise("rescale", 2 * (level - 1) * 2))
        trace.add(self._ntt(4))
        return trace

    #: operation name -> trace-builder method name.
    OPERATION_BUILDERS = {
        "hmult": "hmult_trace",
        "hrotate": "hrotate_trace",
        "pmult": "pmult_trace",
        "hadd": "hadd_trace",
        "padd": "padd_trace",
        "rescale": "rescale_trace",
        "double_rescale": "double_rescale_trace",
        "keyswitch": "keyswitch_trace",
    }

    def trace_key(self, name: str, level: int) -> TraceKey:
        """The value-based cache key of one operation trace."""
        return (self.params, self.config, self.batch, name.lower(), level)

    def build_operation_trace(self, name: str, level: int) -> ExecutionTrace:
        """Construct an operation trace from scratch (never touches the cache).

        The builder is resolved *before* it runs, so a ``KeyError`` raised
        inside a trace builder propagates as-is instead of being misreported
        as an unknown operation.
        """
        try:
            builder = getattr(self, self.OPERATION_BUILDERS[name.lower()])
        except KeyError:
            raise ValueError(f"unknown operation {name!r}") from None
        return builder(level)

    def operation_trace(self, name: str, level: int) -> ExecutionTrace:
        """Dispatch by operation name (HMult, HRotate, PMult, ...), cached.

        Returns a frozen (immutable, shared) trace; callers must not mutate
        it -- derive with ``merged``/``scaled`` instead.
        """
        # Validate the name eagerly so unknown operations raise even on what
        # would otherwise be a cache hit.
        if name.lower() not in self.OPERATION_BUILDERS:
            raise ValueError(f"unknown operation {name!r}")
        if global_registry().enabled:
            _count_operation_trace(name.lower())
        return self.cache.get_or_build(
            self.trace_key(name, level),
            lambda: self.build_operation_trace(name, level),
        )

    def scaled_operation_trace(
        self, name: str, level: int, count: float
    ) -> ExecutionTrace:
        """:meth:`operation_trace` repeated `count` times, cached as a whole.

        Schedule assembly replays the same (op, level, count) cells on every
        timing query; caching the *scaled* trace under its own key removes
        the per-event ``scaled`` rebuild from the warm path.  The entry
        lives in the same :class:`TraceCache`, so ``maxsize=0`` (the
        benchmarks' uncached mode) disables it together with the base
        entries.
        """
        if count == 1:
            return self.operation_trace(name, level)
        if name.lower() not in self.OPERATION_BUILDERS:
            raise ValueError(f"unknown operation {name!r}")
        if global_registry().enabled:
            _count_operation_trace(name.lower())
        return self.cache.get_or_build(
            self.trace_key(name, level) + ("scaled", count),
            lambda: self.build_operation_trace(name, level).scaled(count),
        )
