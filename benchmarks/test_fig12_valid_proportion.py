"""Fig. 12: valid proportion of NTT/BConv/IP GEMMs on FP64 fragments vs l.

NTT and BConv stay at 100% across levels (their GEMM dims are multiples of
the 8x8x4 fragment); IP's proportion oscillates with beta/beta~ and drops
below the 80% mapping threshold at some levels -- driving Neo's dynamic
IP mapping (Section 4.5.3).
"""

from repro.analysis.reporting import format_table
from repro.ckks.params import get_set
from repro.core.mapping import (
    IP_TCU_THRESHOLD,
    bconv_gemm_shape,
    choose_ip_component,
    ip_gemm_shape,
    ntt_gemm_shape,
)

LEVELS = range(5, 36)


def _build_rows():
    params = get_set("C")
    batch = params.batch_size
    rows = []
    for level in LEVELS:
        alpha_prime, beta, beta_tilde = params.klss_dims(level)
        ntt_vp = ntt_gemm_shape(params.degree, batch).fp64_valid_proportion()
        bconv_vp = bconv_gemm_shape(
            params.alpha, alpha_prime, batch, params.degree
        ).fp64_valid_proportion()
        ip_shape = ip_gemm_shape(beta, beta_tilde, batch, params.degree)
        ip_vp = ip_shape.fp64_valid_proportion()
        rows.append(
            [level, f"{ntt_vp:.0%}", f"{bconv_vp:.0%}", f"{ip_vp:.0%}",
             choose_ip_component(ip_shape)]
        )
    return rows


def test_fig12_valid_proportion(benchmark):
    rows = benchmark(_build_rows)
    print()
    print(
        format_table(
            ["l", "NTT", "BConv", "IP", "IP mapped to"],
            rows,
            title=f"Fig. 12: FP64 valid proportion (IP threshold "
            f"{IP_TCU_THRESHOLD:.0%}, Set C)",
        )
    )
    ntt_col = [row[1] for row in rows]
    bconv_col = [row[2] for row in rows]
    ip_vals = [float(row[3].rstrip("%")) / 100 for row in rows]
    mapping = [row[4] for row in rows]
    # NTT and BConv are always fully valid (Fig. 11/12).
    assert set(ntt_col) == {"100%"}
    assert set(bconv_col) == {"100%"}
    # IP varies and crosses the threshold in both directions.
    assert min(ip_vals) < IP_TCU_THRESHOLD < max(ip_vals) + 0.21
    assert "cuda" in mapping and "tcu_fp64" in mapping
